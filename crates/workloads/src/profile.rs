//! Locality profiles: the tunable parameters of the synthetic program model.
//!
//! A profile is a passive bag of parameters describing *how a program
//! behaves* — code footprint and popularity skew, basic-block run lengths,
//! loop/call/branch behaviour, and the mix and footprints of its data
//! streams. The [`ProgramGenerator`](crate::ProgramGenerator) turns a
//! profile plus a seed into a deterministic reference stream.
//!
//! Calibration note: the paper's Table 7 decomposes (empirically) into
//! three behavioural components per architecture, and the profile exposes a
//! knob for each:
//!
//! * a **working-set** component (code + stack + globals) captured as the
//!   cache grows — controlled by `code_functions`, `function_words` and the
//!   loop parameters;
//! * a **sequential-sweep** component (large arrays walked once) whose miss
//!   ratio scales as `word/block` — controlled by `data_mix.sweep`;
//! * a **scattered-heap** component insensitive to block size — controlled
//!   by `data_mix.heap` and `heap_words`.

use crate::arch::Architecture;

/// Relative weights of the four data-reference streams.
///
/// Weights need not sum to 1; they are normalised by the generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DataMix {
    /// Stack-frame accesses near the stack pointer (strong temporal reuse).
    pub stack: f64,
    /// Zipf-distributed references to a small set of hot global words.
    pub globals: f64,
    /// A long sequential sweep over a region much larger than any on-chip
    /// cache (perfect spatial locality, no temporal reuse).
    pub sweep: f64,
    /// Uniform-random references into a heap region (no spatial locality).
    pub heap: f64,
}

impl DataMix {
    pub(crate) fn normalised(&self) -> [f64; 4] {
        let total = self.stack + self.globals + self.sweep + self.heap;
        assert!(total > 0.0, "data mix must have positive total weight");
        [
            self.stack / total,
            self.globals / total,
            self.sweep / total,
            self.heap / total,
        ]
    }
}

/// The full parameter set of the synthetic program model.
///
/// This is a passive data structure in the C spirit: every field is public
/// and independently tweakable, because calibration experiments need to
/// perturb them one at a time.
#[derive(Debug, Clone, PartialEq)]
pub struct Profile {
    /// Architecture this program runs on (fixes word size, address space).
    pub arch: Architecture,
    /// Number of distinct functions in the program's hot code.
    pub code_functions: usize,
    /// Mean function length in words (individual functions vary ±50%).
    pub function_words: usize,
    /// Zipf exponent of function popularity (larger = tighter hot set).
    pub function_zipf: f64,
    /// Mean sequential instructions executed between branch decisions.
    pub mean_run: f64,
    /// At a branch decision: probability of entering a backward loop.
    pub loop_prob: f64,
    /// Mean loop-body length in words.
    pub loop_body: f64,
    /// Mean number of iterations each loop executes.
    pub loop_iters: f64,
    /// At a branch decision: probability of calling another function.
    pub call_prob: f64,
    /// At a branch decision: probability of returning to the caller.
    pub return_prob: f64,
    /// Per instruction, probability of one accompanying data reference.
    pub mem_ref_prob: f64,
    /// Fraction of data references that are writes.
    pub write_frac: f64,
    /// Relative weights of the data streams.
    pub data_mix: DataMix,
    /// Number of distinct hot global records.
    pub global_records: usize,
    /// Zipf exponent over global records.
    pub global_zipf: f64,
    /// Spacing between consecutive global records, in words. A stride of 1
    /// packs the records into a contiguous array; larger strides scatter
    /// them across the address space (records cluster at the word scale
    /// but not at the sector scale — the behaviour that defeats the
    /// 360/85's 1024-byte sectors in Table 6).
    pub global_stride_words: u64,
    /// Mean within-record offset of a global access, in words.
    pub global_record_spread: f64,
    /// Mean cold-code gap between consecutive functions, in words (0 packs
    /// functions back to back; a gap comparable to the function size
    /// scatters hot code across the binary as linkers do).
    pub code_gap_words: usize,
    /// Code density: bytes of layout per instruction, as a fraction of the
    /// word size. `1.0` is the normal one-instruction-per-word layout;
    /// `0.8` models the RISC II half-word code compaction (§2.3), where a
    /// 40% half-word fraction packs the same instructions into 80% of the
    /// bytes (two half-word instructions share a word address).
    pub code_density: f64,
    /// Sequential-sweep region size in words (should dwarf any cache).
    pub sweep_words: u64,
    /// Heap region size in words.
    pub heap_words: u64,
    /// Stack region size in words.
    pub stack_words: u64,
    /// Words a call frame shifts the stack pointer by.
    pub frame_words: u64,
    /// Mean offset (in words) of a stack access above the stack pointer.
    pub stack_spread: f64,
}

impl Profile {
    /// Baseline profile for an architecture; the named workload
    /// constructors in [`WorkloadSpec`](crate::WorkloadSpec) perturb these.
    ///
    /// The numbers are calibrated so that full-grid simulations reproduce
    /// the *shape* of the paper's Table 7 (see EXPERIMENTS.md for the
    /// paper-vs-measured record).
    pub fn baseline(arch: Architecture) -> Profile {
        match arch {
            Architecture::Pdp11 => Profile {
                arch,
                code_functions: 28,
                function_words: 128,
                function_zipf: 2.3,
                mean_run: 7.0,
                loop_prob: 0.32,
                loop_body: 14.0,
                loop_iters: 20.0,
                call_prob: 0.10,
                return_prob: 0.10,
                mem_ref_prob: 0.65,
                write_frac: 0.30,
                data_mix: DataMix {
                    stack: 0.40,
                    globals: 0.37,
                    sweep: 0.16,
                    heap: 0.04,
                },
                global_records: 256,
                global_zipf: 0.7,
                global_stride_words: 1,
                global_record_spread: 1.0,
                code_gap_words: 0,
                code_density: 1.0,
                sweep_words: 18_000,
                heap_words: 2_048,
                stack_words: 512,
                frame_words: 24,
                stack_spread: 8.0,
            },
            Architecture::Z8000 => Profile {
                arch,
                code_functions: 8,
                function_words: 96,
                function_zipf: 2.5,
                mean_run: 8.0,
                loop_prob: 0.36,
                loop_body: 12.0,
                loop_iters: 26.0,
                call_prob: 0.09,
                return_prob: 0.09,
                mem_ref_prob: 0.60,
                write_frac: 0.30,
                data_mix: DataMix {
                    stack: 0.50,
                    globals: 0.33,
                    sweep: 0.12,
                    heap: 0.02,
                },
                global_records: 160,
                global_zipf: 0.7,
                global_stride_words: 1,
                global_record_spread: 1.0,
                code_gap_words: 0,
                code_density: 1.0,
                sweep_words: 16_000,
                heap_words: 1_024,
                stack_words: 384,
                frame_words: 10,
                stack_spread: 6.0,
            },
            Architecture::Vax11 => Profile {
                arch,
                code_functions: 32,
                function_words: 192,
                function_zipf: 2.2,
                mean_run: 6.0,
                loop_prob: 0.34,
                loop_body: 8.0,
                loop_iters: 30.0,
                call_prob: 0.11,
                return_prob: 0.11,
                mem_ref_prob: 0.65,
                write_frac: 0.30,
                data_mix: DataMix {
                    stack: 0.40,
                    globals: 0.34,
                    sweep: 0.14,
                    heap: 0.04,
                },
                global_records: 320,
                global_zipf: 0.7,
                global_stride_words: 1,
                global_record_spread: 1.0,
                code_gap_words: 0,
                code_density: 1.0,
                sweep_words: 48_000,
                heap_words: 16_384,
                stack_words: 768,
                frame_words: 12,
                stack_spread: 2.0,
            },
            Architecture::S370 => Profile {
                arch,
                code_functions: 144,
                function_words: 256,
                function_zipf: 0.8,
                mean_run: 5.0,
                loop_prob: 0.28,
                loop_body: 12.0,
                loop_iters: 10.0,
                call_prob: 0.13,
                return_prob: 0.13,
                mem_ref_prob: 0.90,
                write_frac: 0.30,
                data_mix: DataMix {
                    stack: 0.18,
                    globals: 0.13,
                    sweep: 0.50,
                    heap: 0.19,
                },
                global_records: 512,
                global_zipf: 0.8,
                global_stride_words: 1,
                global_record_spread: 1.0,
                code_gap_words: 0,
                code_density: 1.0,
                sweep_words: 96_000,
                heap_words: 65_536,
                stack_words: 2_048,
                frame_words: 16,
                stack_spread: 6.0,
            },
        }
    }

    /// Code footprint in bytes (mean; individual layouts vary slightly).
    pub fn code_footprint(&self) -> u64 {
        self.code_functions as u64 * self.function_words as u64 * self.arch.word_size()
    }

    /// Sanity-checks the profile, panicking with a description on misuse.
    ///
    /// # Panics
    ///
    /// Panics if probabilities are out of range, region sizes are zero, or
    /// the regions cannot fit in the architecture's address space.
    pub fn validate(&self) {
        assert!(self.code_functions > 0, "need at least one function");
        assert!(self.function_words >= 4, "functions must hold a few words");
        assert!(self.mean_run >= 1.0, "mean run must be at least 1");
        assert!(self.loop_body >= 1.0 && self.loop_iters >= 0.0);
        for (what, p) in [
            ("loop_prob", self.loop_prob),
            ("call_prob", self.call_prob),
            ("return_prob", self.return_prob),
            ("mem_ref_prob", self.mem_ref_prob),
            ("write_frac", self.write_frac),
        ] {
            assert!((0.0..=1.0).contains(&p), "{what} out of [0,1]: {p}");
        }
        assert!(
            self.loop_prob + self.call_prob + self.return_prob <= 1.0,
            "branch-kind probabilities exceed 1"
        );
        assert!(self.sweep_words > 0 && self.heap_words > 0 && self.stack_words > 0);
        let word = self.arch.word_size();
        assert!(self.global_stride_words >= 1, "global stride must be >= 1");
        assert!(
            self.code_density > 0.0 && self.code_density <= 1.0,
            "code density must be in (0, 1]"
        );
        assert!(self.global_record_spread >= 1.0);
        let code_bytes =
            self.code_functions as u64 * (self.function_words + self.code_gap_words) as u64 * word;
        let globals_bytes = self.global_records as u64 * self.global_stride_words * word;
        let total_bytes = code_bytes
            + globals_bytes
            + (self.sweep_words + self.heap_words + self.stack_words) * word;
        assert!(
            total_bytes <= self.arch.address_space(),
            "regions ({total_bytes} bytes) exceed the {} address space",
            self.arch
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baselines_validate() {
        for arch in Architecture::ALL {
            Profile::baseline(arch).validate();
        }
    }

    #[test]
    fn footprints_grow_with_architecture_class() {
        // §4.2.5: Z8000 utilities are small and compact; System/370 jobs use
        // hundreds of kilobytes. The model must preserve that ordering.
        let z = Profile::baseline(Architecture::Z8000).code_footprint();
        let p = Profile::baseline(Architecture::Pdp11).code_footprint();
        let v = Profile::baseline(Architecture::Vax11).code_footprint();
        let s = Profile::baseline(Architecture::S370).code_footprint();
        assert!(z < p && p < v && v < s, "{z} {p} {v} {s}");
    }

    #[test]
    fn sixteen_bit_profiles_fit_their_address_space() {
        for arch in [Architecture::Pdp11, Architecture::Z8000] {
            let p = Profile::baseline(arch);
            let total = p.code_footprint()
                + (p.global_records as u64 * p.global_stride_words
                    + p.sweep_words
                    + p.heap_words
                    + p.stack_words)
                    * arch.word_size();
            assert!(total <= 65_536, "{arch}: {total}");
        }
    }

    #[test]
    fn data_mix_normalises() {
        let mix = DataMix {
            stack: 2.0,
            globals: 1.0,
            sweep: 1.0,
            heap: 0.0,
        };
        let n = mix.normalised();
        assert!((n.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((n[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive total weight")]
    fn empty_mix_panics() {
        DataMix {
            stack: 0.0,
            globals: 0.0,
            sweep: 0.0,
            heap: 0.0,
        }
        .normalised();
    }

    #[test]
    #[should_panic(expected = "exceed")]
    fn oversized_regions_fail_validation() {
        let mut p = Profile::baseline(Architecture::Pdp11);
        p.sweep_words = 1 << 20;
        p.validate();
    }
}
