#![warn(missing_docs)]

//! # occache-workloads — synthetic architecture workload models
//!
//! The paper's evaluation rests on trace tapes of real 1983-era programs
//! (Tables 2–5) that no longer exist. This crate substitutes parameterised
//! synthetic program models whose locality structure — code footprint and
//! popularity skew, basic-block runs, loops and calls, stack/global/array/
//! heap data streams — is calibrated so that full-grid cache simulations
//! reproduce the *shape* of the paper's results (see `EXPERIMENTS.md` at
//! the workspace root for the paper-vs-measured record).
//!
//! * [`Architecture`] — the four traced machines and their data-path widths,
//! * [`Profile`] — the tunable locality parameters,
//! * [`ProgramGenerator`] — a deterministic, endless reference stream,
//! * [`WorkloadSpec`] — the named traces of Tables 2–5 plus the special
//!   sets: the 360/85 six-program mix (Table 6) and the RISC II
//!   instruction-only workload (§2.3).
//!
//! ```
//! use occache_trace::{TraceSource, TraceStats};
//! use occache_workloads::{Architecture, WorkloadSpec};
//!
//! let mut stats = TraceStats::new(Architecture::Z8000.word_size());
//! let mut gen = WorkloadSpec::z8000_grep().generator(0);
//! for r in gen.collect_refs(10_000) {
//!     stats.observe(r);
//! }
//! assert!(stats.ifetch_fraction() > 0.5, "instruction fetches dominate");
//! ```

mod arch;
mod generator;
mod multiprogram;
mod profile;
mod spec;
mod special;

pub use arch::Architecture;
pub use generator::ProgramGenerator;
pub use multiprogram::Multiprogram;
pub use profile::{DataMix, Profile};
pub use spec::WorkloadSpec;
pub use special::{m85_mix, riscii_instruction_workload};

/// The paper's standard trace length: "Traces were run for 1 million
/// addresses without context switches" (§3.3).
pub const PAPER_TRACE_LEN: usize = 1_000_000;
