//! Special-purpose workloads: the 360/85 comparison mix (Table 6) and the
//! RISC II instruction-only workload (§2.3).

use crate::arch::Architecture;
use crate::profile::{DataMix, Profile};
use crate::spec::WorkloadSpec;

/// The six-program System/360-class mix behind Table 6: "1 Fortran Go Step,
/// 1 Fortran Compile, 2 Cobol programs, and 2 PL/I Go Steps".
///
/// These are *not* the Table 5 System/370 jobs: the 1968-era mix behind
/// Liptay's measurements is far friendlier to a 16 KB cache (the paper
/// measures a 0.0258 miss ratio for the 360/85 and 0.0088 for 4-way
/// set-associative mapping). What defeats the sector organisation is that
/// the working set — small enough to fit 16 KB at 64-byte granularity — is
/// *scattered across many more 1024-byte regions than the cache has
/// sectors*. The profiles here model that structure directly: hot global
/// records strided 1 KB apart, hot functions separated by cold code, and a
/// compact stack.
pub fn m85_mix() -> Vec<WorkloadSpec> {
    vec![
        m85_program("M85-FGO", "Fortran Go step (360 mix)", 0x36_01, 1.15, 0.9),
        m85_program("M85-FCOMP", "Fortran compile (360 mix)", 0x36_02, 0.9, 1.2),
        m85_program(
            "M85-COBOL1",
            "Cobol: record processing (360 mix)",
            0x36_03,
            1.0,
            1.0,
        ),
        m85_program(
            "M85-COBOL2",
            "Cobol: record processing (360 mix)",
            0x36_04,
            1.1,
            1.05,
        ),
        m85_program("M85-PGO1", "PL/I Go step (360 mix)", 0x36_05, 0.95, 1.1),
        m85_program("M85-PGO2", "PL/I Go step (360 mix)", 0x36_06, 1.05, 0.95),
    ]
}

/// One program of the 360 mix; `data_scale` scales the scattered-record
/// weight and `code_scale` the code footprint, for variety across the six.
fn m85_program(
    name: &'static str,
    description: &'static str,
    seed: u64,
    data_scale: f64,
    code_scale: f64,
) -> WorkloadSpec {
    let profile = Profile {
        arch: Architecture::S370,
        code_functions: (40.0 * code_scale) as usize,
        function_words: 192,
        function_zipf: 1.2,
        mean_run: 5.0,
        loop_prob: 0.30,
        loop_body: 12.0,
        loop_iters: 14.0,
        call_prob: 0.12,
        return_prob: 0.12,
        mem_ref_prob: 0.80,
        write_frac: 0.30,
        data_mix: DataMix {
            stack: 0.80,
            globals: 0.06 * data_scale,
            sweep: 0.08,
            heap: 0.005,
        },
        global_records: 128,
        global_zipf: 0.45,
        global_stride_words: 256,
        global_record_spread: 3.0,
        code_gap_words: 320,
        code_density: 1.0,
        sweep_words: 64_000,
        heap_words: 8_192,
        stack_words: 512,
        frame_words: 12,
        stack_spread: 4.0,
    };
    WorkloadSpec::with_profile(name, description, seed, profile)
}

/// The RISC II instruction-cache workload of §2.3: instruction fetches
/// only (the RISC II cache chip held no data), 32-bit instructions,
/// RISC-style short basic blocks with frequent calls.
///
/// Used to reproduce the size curve 0.148 / 0.125 / 0.098 / 0.078 for
/// 512 → 4096-byte direct-mapped caches with 8-byte blocks.
pub fn riscii_instruction_workload() -> WorkloadSpec {
    let mut p = Profile::baseline(Architecture::Vax11);
    // Instruction-only: no data references at all.
    p.mem_ref_prob = 0.0;
    // RISC code is less dense: ~30% more instructions for the same work,
    // and register windows encourage frequent small procedures.
    p.code_functions = 40;
    p.function_words = 128;
    p.function_zipf = 0.75;
    p.mean_run = 4.5;
    p.loop_prob = 0.24;
    p.loop_body = 10.0;
    p.loop_iters = 5.0;
    p.call_prob = 0.18;
    p.return_prob = 0.18;
    WorkloadSpec::with_profile(
        "RISCII",
        "RISC II instruction-fetch stream (benchmarks of [12])",
        0x52_01,
        p,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use occache_trace::{AccessKind, TraceSource};

    #[test]
    fn m85_mix_has_six_programs() {
        let mix = m85_mix();
        assert_eq!(mix.len(), 6);
        for spec in &mix {
            assert_eq!(spec.arch(), Architecture::S370, "{}", spec.name());
        }
    }

    #[test]
    fn m85_mix_names_are_unique() {
        let mut names: Vec<_> = m85_mix().iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 6);
    }

    #[test]
    fn m85_globals_scatter_across_kilobyte_regions() {
        // The property that defeats the sector cache: far more distinct
        // 1 KB regions than the 360/85 has sectors.
        use std::collections::HashSet;
        let spec = &m85_mix()[0];
        let refs = spec.generator(0).collect_refs(200_000);
        let regions: HashSet<u64> = refs.iter().map(|r| r.address().value() / 1024).collect();
        assert!(regions.len() > 64, "only {} regions", regions.len());
    }

    #[test]
    fn riscii_emits_only_instruction_fetches() {
        let refs = riscii_instruction_workload()
            .generator(0)
            .collect_refs(20_000);
        assert!(refs.iter().all(|r| r.kind() == AccessKind::InstrFetch));
    }
}
