//! The synthetic program generator: turns a [`Profile`] + seed into a
//! deterministic, endless reference stream.
//!
//! The model executes an abstract program:
//!
//! * **Instruction stream** — a program counter walks word-by-word through
//!   the current function. At the end of each basic-block run a branch
//!   decision is taken: iterate a backward loop, call another (Zipf-chosen)
//!   function, return, or skip forward.
//! * **Data stream** — each instruction may carry one data reference drawn
//!   from four streams: stack frames near SP, Zipf-hot globals, one long
//!   sequential sweep, or uniform-random heap words.
//!
//! Everything is word-aligned at the architecture's data-path width, as the
//! paper's traces were.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use occache_trace::sample::{chance, geometric_run, Zipf};
use occache_trace::{AccessKind, Address, MemRef};

use crate::profile::Profile;

/// Memory-map layout derived from a profile: region base addresses.
#[derive(Debug, Clone, Copy)]
struct Layout {
    code_base: u64,
    globals_base: u64,
    sweep_base: u64,
    heap_base: u64,
    stack_base: u64,
}

#[derive(Debug, Clone, Copy)]
struct LoopState {
    start_offset: u64,
    body_len: usize,
    iters_left: usize,
}

/// Endless deterministic reference stream for one synthetic program.
///
/// Implements [`Iterator`] (never returns `None`), so all the
/// [`TraceSource`](occache_trace::TraceSource) adapters apply.
///
/// ```
/// use occache_trace::TraceSource;
/// use occache_workloads::{Architecture, Profile, ProgramGenerator};
///
/// let profile = Profile::baseline(Architecture::Pdp11);
/// let mut a = ProgramGenerator::new(profile.clone(), 1);
/// let mut b = ProgramGenerator::new(profile, 1);
/// assert_eq!(a.collect_refs(100), b.collect_refs(100), "same seed, same trace");
/// ```
#[derive(Debug, Clone)]
pub struct ProgramGenerator {
    profile: Profile,
    layout: Layout,
    word: u64,
    rng: StdRng,
    function_zipf: Zipf,
    global_zipf: Zipf,
    data_mix: [f64; 4],
    /// Per-function sizes in words (vary around `profile.function_words`).
    function_sizes: Vec<u64>,
    /// Per-function base offsets in words from `code_base`.
    function_starts: Vec<u64>,
    /// Per-record base offsets (in words) within the globals region.
    /// Contiguous (`idx`) when the stride is 1; irregularly scattered
    /// otherwise — real linkers and allocators do not place records at
    /// exact power-of-two strides, and arithmetic strides would alias all
    /// records into a handful of cache sets.
    global_record_bases: Vec<u64>,
    // --- execution state ---
    current_fn: usize,
    offset: u64,
    run_left: usize,
    loop_state: Option<LoopState>,
    call_stack: Vec<(usize, u64)>,
    sp: u64,
    sweep_cursor: u64,
    pending_data: Option<MemRef>,
}

const MAX_CALL_DEPTH: usize = 64;

impl ProgramGenerator {
    /// Builds the generator; identical `(profile, seed)` pairs produce
    /// identical streams.
    ///
    /// # Panics
    ///
    /// Panics if the profile fails [`Profile::validate`].
    pub fn new(profile: Profile, seed: u64) -> Self {
        profile.validate();
        let mut rng = StdRng::seed_from_u64(seed);
        let word = profile.arch.word_size();

        // Function sizes vary in [0.5, 1.5] × mean, laid out contiguously.
        let mut function_sizes = Vec::with_capacity(profile.code_functions);
        let mut function_starts = Vec::with_capacity(profile.code_functions);
        let mut cursor = 0u64;
        for _ in 0..profile.code_functions {
            let lo = (profile.function_words / 2).max(4) as u64;
            let hi = (profile.function_words * 3 / 2).max(5) as u64;
            let size = rng.gen_range(lo..=hi);
            function_starts.push(cursor);
            function_sizes.push(size);
            cursor += size;
            if profile.code_gap_words > 0 {
                // Cold code (unexecuted paths, other modules) separates hot
                // functions, as linkers lay binaries out.
                cursor += geometric_run(&mut rng, profile.code_gap_words as f64, 1 << 14) as u64;
            }
        }
        // Compacted code packs instructions into fewer layout words.
        let code_words = (cursor as f64 * profile.code_density).ceil() as u64 + 1;

        let globals_words = profile.global_records as u64 * profile.global_stride_words;
        let global_record_bases: Vec<u64> = if profile.global_stride_words == 1 {
            (0..profile.global_records as u64).collect()
        } else {
            let limit = globals_words
                .saturating_sub(profile.global_stride_words)
                .max(1);
            (0..profile.global_records)
                .map(|_| rng.gen_range(0..limit))
                .collect()
        };
        let layout = {
            let code_base = 0x100;
            let globals_base = code_base + code_words * word;
            let sweep_base = globals_base + globals_words * word;
            let heap_base = sweep_base + profile.sweep_words * word;
            let stack_base = heap_base + profile.heap_words * word;
            Layout {
                code_base,
                globals_base,
                sweep_base,
                heap_base,
                stack_base,
            }
        };

        let function_zipf = Zipf::new(profile.code_functions, profile.function_zipf);
        let global_zipf = Zipf::new(profile.global_records, profile.global_zipf);
        let data_mix = profile.data_mix.normalised();
        let mean_run = profile.mean_run;
        let mut generator = ProgramGenerator {
            profile,
            layout,
            word,
            rng,
            function_zipf,
            global_zipf,
            data_mix,
            function_sizes,
            function_starts,
            global_record_bases,
            current_fn: 0,
            offset: 0,
            run_left: 1,
            loop_state: None,
            call_stack: Vec::new(),
            sp: 0,
            sweep_cursor: 0,
            pending_data: None,
        };
        generator.current_fn = generator.function_zipf.sample(&mut generator.rng);
        generator.run_left = geometric_run(&mut generator.rng, mean_run, 1 << 12);
        generator
    }

    /// The profile this generator runs.
    pub fn profile(&self) -> &Profile {
        &self.profile
    }

    fn pc_address(&self) -> Address {
        let instr_index = self.function_starts[self.current_fn] + self.offset;
        // Map the instruction index into the (possibly compacted) layout:
        // with density < 1, several instructions share a word address,
        // exactly as RISC II half-word encodings share words (§2.3).
        let words = (instr_index as f64 * self.profile.code_density) as u64;
        Address::new(self.layout.code_base + words * self.word)
    }

    fn function_len(&self) -> u64 {
        self.function_sizes[self.current_fn]
    }

    fn new_run(&mut self) {
        self.run_left = geometric_run(&mut self.rng, self.profile.mean_run, 1 << 12);
    }

    /// Branch decision at the end of a basic-block run.
    fn branch(&mut self) {
        // Iterating loop: jump back to the loop head.
        if let Some(state) = &mut self.loop_state {
            if state.iters_left > 0 {
                state.iters_left -= 1;
                self.offset = state.start_offset;
                self.run_left = state.body_len;
                return;
            }
            self.loop_state = None;
        }

        let p = &self.profile;
        let r: f64 = self.rng.gen();
        if r < p.loop_prob && self.offset > 1 {
            // Enter a backward loop over the last `body` words.
            let body = geometric_run(&mut self.rng, p.loop_body, self.offset as usize);
            let iters = if p.loop_iters < 1.0 {
                0
            } else {
                geometric_run(&mut self.rng, p.loop_iters, 1 << 16)
            };
            self.loop_state = Some(LoopState {
                start_offset: self.offset - body as u64,
                body_len: body,
                iters_left: iters,
            });
            self.offset -= body as u64;
            self.run_left = body;
        } else if r < p.loop_prob + p.call_prob {
            self.call();
        } else if r < p.loop_prob + p.call_prob + p.return_prob {
            self.return_or_jump();
        } else {
            // Forward skip within the function.
            let skip = geometric_run(&mut self.rng, p.mean_run, 1 << 12) as u64;
            self.offset += skip;
            if self.offset >= self.function_len() {
                self.return_or_jump();
            }
            self.new_run();
        }
    }

    fn call(&mut self) {
        if self.call_stack.len() < MAX_CALL_DEPTH {
            self.call_stack.push((self.current_fn, self.offset));
            self.sp += self.profile.frame_words;
        }
        self.current_fn = self.function_zipf.sample(&mut self.rng);
        self.offset = 0;
        self.loop_state = None;
        self.new_run();
    }

    fn return_or_jump(&mut self) {
        self.loop_state = None;
        if let Some((f, off)) = self.call_stack.pop() {
            self.sp = self.sp.saturating_sub(self.profile.frame_words);
            self.current_fn = f;
            self.offset = off.min(self.function_sizes[f].saturating_sub(1));
        } else {
            self.current_fn = self.function_zipf.sample(&mut self.rng);
            self.offset = 0;
        }
        self.new_run();
    }

    fn data_ref(&mut self) -> MemRef {
        let p = &self.profile;
        let r: f64 = self.rng.gen();
        let addr = if r < self.data_mix[0] {
            // Stack: SP plus a small spread, wrapped into the stack region.
            let spread = geometric_run(&mut self.rng, p.stack_spread, 64) as u64 - 1;
            let word_idx = (self.sp + spread) % p.stack_words;
            self.layout.stack_base + word_idx * self.word
        } else if r < self.data_mix[0] + self.data_mix[1] {
            // A word within a (possibly scattered) global record.
            let record = self.global_zipf.sample(&mut self.rng);
            let stride = p.global_stride_words;
            let offset = geometric_run(
                &mut self.rng,
                p.global_record_spread,
                stride.max(1) as usize,
            ) as u64
                - 1;
            let base = self.global_record_bases[record];
            self.layout.globals_base + (base + offset % stride) * self.word
        } else if r < self.data_mix[0] + self.data_mix[1] + self.data_mix[2] {
            let addr = self.layout.sweep_base + self.sweep_cursor * self.word;
            self.sweep_cursor = (self.sweep_cursor + 1) % p.sweep_words;
            addr
        } else {
            let idx = self.rng.gen_range(0..p.heap_words);
            self.layout.heap_base + idx * self.word
        };
        let kind = if chance(&mut self.rng, p.write_frac) {
            AccessKind::DataWrite
        } else {
            AccessKind::DataRead
        };
        MemRef::new(Address::new(addr), kind)
    }
}

impl Iterator for ProgramGenerator {
    type Item = MemRef;

    fn next(&mut self) -> Option<MemRef> {
        if let Some(d) = self.pending_data.take() {
            return Some(d);
        }
        let fetch = MemRef::new(self.pc_address(), AccessKind::InstrFetch);
        let mem_ref_prob = self.profile.mem_ref_prob;
        if chance(&mut self.rng, mem_ref_prob) {
            self.pending_data = Some(self.data_ref());
        }
        // Advance the program counter.
        self.offset += 1;
        self.run_left = self.run_left.saturating_sub(1);
        if self.offset >= self.function_len() {
            self.return_or_jump();
        } else if self.run_left == 0 {
            self.branch();
        }
        Some(fetch)
    }
}

impl ProgramGenerator {
    /// Fills `buf` with the next references of the stream and returns
    /// the count written (always `buf.len()`: the generator is endless).
    ///
    /// This is the streaming-evaluation entry point: a sweep refills one
    /// small buffer per engine chunk instead of materialising the whole
    /// trace, and the references are exactly what per-item [`Iterator`]
    /// calls would have produced.
    pub fn next_chunk(&mut self, buf: &mut [MemRef]) -> usize {
        for slot in buf.iter_mut() {
            // The generator never returns None.
            *slot = self.next().expect("ProgramGenerator is endless");
        }
        buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::Architecture;
    use occache_trace::{TraceSource, TraceStats};

    fn generator(arch: Architecture, seed: u64) -> ProgramGenerator {
        ProgramGenerator::new(Profile::baseline(arch), seed)
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generator(Architecture::Pdp11, 7).collect_refs(5_000);
        let b = generator(Architecture::Pdp11, 7).collect_refs(5_000);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generator(Architecture::Pdp11, 1).collect_refs(2_000);
        let b = generator(Architecture::Pdp11, 2).collect_refs(2_000);
        assert_ne!(a, b);
    }

    #[test]
    fn generator_is_endless() {
        let mut g = generator(Architecture::Z8000, 3);
        for _ in 0..100_000 {
            assert!(g.next().is_some());
        }
    }

    #[test]
    fn addresses_are_word_aligned() {
        let word = Architecture::Vax11.word_size();
        for r in generator(Architecture::Vax11, 4).collect_refs(20_000) {
            assert_eq!(r.address().value() % word, 0, "{r}");
        }
    }

    #[test]
    fn sixteen_bit_traces_stay_in_address_space() {
        for arch in [Architecture::Pdp11, Architecture::Z8000] {
            for r in generator(arch, 5).collect_refs(50_000) {
                assert!(r.address().value() < 65_536, "{arch}: {r}");
            }
        }
    }

    #[test]
    fn reference_mix_is_plausible() {
        let mut stats = TraceStats::new(2);
        for r in generator(Architecture::Pdp11, 6).collect_refs(100_000) {
            stats.observe(r);
        }
        let ifrac = stats.ifetch_fraction();
        assert!((0.5..0.75).contains(&ifrac), "ifetch fraction {ifrac}");
        assert!(stats.writes() > 0, "writes must appear");
        assert!(stats.reads() > 2 * stats.writes(), "reads dominate writes");
    }

    #[test]
    fn instruction_stream_has_sequential_runs() {
        let mut stats = TraceStats::new(2);
        for r in generator(Architecture::Pdp11, 8).collect_refs(100_000) {
            stats.observe(r);
        }
        let run = stats.mean_ifetch_run();
        assert!((2.0..20.0).contains(&run), "mean run {run}");
    }

    #[test]
    fn s370_footprint_dwarfs_z8000() {
        // §4.2.5's explanation of the inter-architecture ordering.
        let mut z = TraceStats::new(2);
        for r in generator(Architecture::Z8000, 9).collect_refs(200_000) {
            z.observe(r);
        }
        let mut s = TraceStats::new(4);
        for r in generator(Architecture::S370, 9).collect_refs(200_000) {
            s.observe(r);
        }
        assert!(
            s.footprint_bytes() > 4 * z.footprint_bytes(),
            "S/370 {} vs Z8000 {}",
            s.footprint_bytes(),
            z.footprint_bytes()
        );
    }

    #[test]
    fn chunked_generation_matches_per_item_iteration() {
        // Uneven chunk sizes exercise the pending-data carry across
        // refill boundaries.
        let expected = generator(Architecture::Pdp11, 11).collect_refs(10_000);
        let mut gen = generator(Architecture::Pdp11, 11);
        let mut got = Vec::with_capacity(10_000);
        let mut buf = vec![MemRef::new(Address::new(0), AccessKind::InstrFetch); 257];
        while got.len() < 10_000 {
            let room = (10_000 - got.len()).min(buf.len());
            let n = gen.next_chunk(&mut buf[..room]);
            assert_eq!(n, room);
            got.extend_from_slice(&buf[..n]);
        }
        assert_eq!(got, expected);
    }

    #[test]
    fn regions_do_not_overlap() {
        let g = generator(Architecture::Pdp11, 10);
        let l = g.layout;
        assert!(l.code_base < l.globals_base);
        assert!(l.globals_base < l.sweep_base);
        assert!(l.sweep_base < l.heap_base);
        assert!(l.heap_base < l.stack_base);
    }
}
