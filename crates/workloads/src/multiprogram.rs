//! Multiprogramming: round-robin interleaving of several programs.
//!
//! §3.3 concedes that "the omission of task switching effects will bias
//! our estimated performance upward, although the small sizes of the
//! caches studied make this effect minor". This module makes that claim
//! testable: [`Multiprogram`] interleaves several generators with a fixed
//! quantum, exactly the structure a time-shared 1984 system imposed, so
//! experiments can measure the degradation directly (see the
//! `task_switch` experiment binary).

use occache_trace::{Address, MemRef};

use crate::generator::ProgramGenerator;
use crate::spec::WorkloadSpec;

/// Physical relocation distance between tasks: each task's address space
/// is placed in its own region, as a memory-mapped multiprogrammed system
/// would, so distinct programs never falsely share cache blocks.
const RELOCATION_STRIDE: u64 = 1 << 24;

/// Round-robin interleaving of several endless program generators.
///
/// ```
/// use occache_trace::TraceSource;
/// use occache_workloads::{Multiprogram, WorkloadSpec};
///
/// let mut mp = Multiprogram::new(
///     vec![
///         WorkloadSpec::pdp11_ed().generator(0),
///         WorkloadSpec::pdp11_opsys().generator(0),
///     ],
///     1_000,
/// );
/// let refs = mp.collect_refs(5_000);
/// assert_eq!(refs.len(), 5_000);
/// ```
#[derive(Debug, Clone)]
pub struct Multiprogram {
    tasks: Vec<ProgramGenerator>,
    quantum: usize,
    current: usize,
    remaining: usize,
    switches: u64,
}

impl Multiprogram {
    /// Interleaves `tasks`, switching every `quantum` references.
    ///
    /// # Panics
    ///
    /// Panics if `tasks` is empty or `quantum` is zero.
    pub fn new(tasks: Vec<ProgramGenerator>, quantum: usize) -> Self {
        assert!(!tasks.is_empty(), "need at least one task");
        assert!(quantum > 0, "quantum must be positive");
        Multiprogram {
            tasks,
            quantum,
            current: 0,
            remaining: quantum,
            switches: 0,
        }
    }

    /// Convenience constructor: one canonical generator per spec.
    pub fn from_specs(specs: &[WorkloadSpec], quantum: usize) -> Self {
        Multiprogram::new(specs.iter().map(|s| s.generator(0)).collect(), quantum)
    }

    /// Context switches taken so far.
    pub fn switches(&self) -> u64 {
        self.switches
    }

    /// Number of interleaved tasks.
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// The physical base address of task `index`.
    pub fn task_base(index: usize) -> u64 {
        index as u64 * RELOCATION_STRIDE
    }
}

impl Iterator for Multiprogram {
    type Item = MemRef;

    fn next(&mut self) -> Option<MemRef> {
        if self.remaining == 0 {
            self.current = (self.current + 1) % self.tasks.len();
            self.remaining = self.quantum;
            self.switches += 1;
        }
        self.remaining -= 1;
        let base = Multiprogram::task_base(self.current);
        self.tasks[self.current]
            .next()
            .map(|r| MemRef::new(Address::new(base + r.address().value()), r.kind()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use occache_trace::{TraceSource, TraceStats};

    fn two_tasks(quantum: usize) -> Multiprogram {
        Multiprogram::from_specs(
            &[WorkloadSpec::pdp11_ed(), WorkloadSpec::pdp11_plot()],
            quantum,
        )
    }

    #[test]
    fn switches_happen_at_quantum_boundaries() {
        let mut mp = two_tasks(100);
        let _ = mp.collect_refs(1_000);
        assert_eq!(mp.switches(), 9, "one switch per quantum after the first");
    }

    #[test]
    fn single_task_matches_plain_generator() {
        let mut solo = Multiprogram::from_specs(&[WorkloadSpec::pdp11_ed()], 64);
        let mut plain = WorkloadSpec::pdp11_ed().generator(0);
        assert_eq!(solo.collect_refs(2_000), plain.collect_refs(2_000));
    }

    #[test]
    fn interleaving_preserves_per_task_streams() {
        // The quantum chunks of task 0 concatenated must equal the plain
        // task-0 stream (task 0 is relocated to base 0).
        let mut mp = two_tasks(50);
        let refs = mp.collect_refs(1_000);
        let task0: Vec<_> = refs.chunks(50).step_by(2).flatten().copied().collect();
        let mut plain = WorkloadSpec::pdp11_ed().generator(0);
        assert_eq!(task0, plain.collect_refs(500));
    }

    #[test]
    fn tasks_are_relocated_apart() {
        let mut mp = two_tasks(10);
        let refs = mp.collect_refs(20);
        // The second quantum belongs to task 1 and lives in its region.
        for r in &refs[10..20] {
            assert!(r.address().value() >= Multiprogram::task_base(1), "{r}");
        }
        for r in &refs[..10] {
            assert!(r.address().value() < Multiprogram::task_base(1), "{r}");
        }
    }

    #[test]
    fn footprint_grows_with_task_count() {
        let mut solo = Multiprogram::from_specs(&[WorkloadSpec::pdp11_ed()], 500);
        let mut duo = two_tasks(500);
        let word = 2;
        let mut s1 = TraceStats::new(word);
        let mut s2 = TraceStats::new(word);
        for r in solo.collect_refs(50_000) {
            s1.observe(r);
        }
        for r in duo.collect_refs(50_000) {
            s2.observe(r);
        }
        assert!(s2.footprint_bytes() > s1.footprint_bytes());
    }

    #[test]
    #[should_panic(expected = "at least one task")]
    fn rejects_empty_task_list() {
        let _ = Multiprogram::new(Vec::new(), 10);
    }
}
