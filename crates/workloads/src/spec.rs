//! Named workload specifications mirroring the paper's Tables 2–5.
//!
//! Each specification pairs a [`Profile`] (perturbed from its
//! architecture's baseline to reflect the program's character — a Fortran
//! plotter sweeps arrays, a C compiler has a large code footprint, `qsort`
//! lives on the stack) with a fixed base seed, so every named trace is
//! reproducible. The per-architecture set functions return the exact trace
//! lists the paper's figures average over.

use crate::arch::Architecture;
use crate::generator::ProgramGenerator;
use crate::profile::Profile;

/// A named, reproducible synthetic trace: the stand-in for one of the
/// paper's trace tapes.
///
/// ```
/// use occache_trace::TraceSource;
/// use occache_workloads::WorkloadSpec;
///
/// let spec = WorkloadSpec::pdp11_ed();
/// assert_eq!(spec.name(), "ED");
/// let refs = spec.generator(0).collect_refs(1000);
/// assert_eq!(refs.len(), 1000);
/// ```
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    name: &'static str,
    description: &'static str,
    profile: Profile,
    base_seed: u64,
}

impl WorkloadSpec {
    fn new(
        name: &'static str,
        description: &'static str,
        base_seed: u64,
        profile: Profile,
    ) -> Self {
        profile.validate();
        WorkloadSpec {
            name,
            description,
            profile,
            base_seed,
        }
    }

    /// Creates a custom named workload from an arbitrary profile — the
    /// escape hatch used by the special mixes (360/85, RISC II) and by
    /// user experiments.
    ///
    /// # Panics
    ///
    /// Panics if the profile fails [`Profile::validate`].
    pub fn with_profile(
        name: &'static str,
        description: &'static str,
        base_seed: u64,
        profile: Profile,
    ) -> Self {
        WorkloadSpec::new(name, description, base_seed, profile)
    }

    /// Trace name as the paper prints it.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// One-line description from the paper's workload table.
    pub fn description(&self) -> &'static str {
        self.description
    }

    /// The architecture this trace belongs to.
    pub fn arch(&self) -> Architecture {
        self.profile.arch
    }

    /// The underlying locality profile.
    pub fn profile(&self) -> &Profile {
        &self.profile
    }

    /// Builds the deterministic reference stream; `seed` perturbs the base
    /// seed (pass 0 for the canonical trace).
    pub fn generator(&self, seed: u64) -> ProgramGenerator {
        ProgramGenerator::new(
            self.profile.clone(),
            self.base_seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(seed),
        )
    }

    // ------------------------------------------------------------------
    // PDP-11 workload (Table 2)
    // ------------------------------------------------------------------

    /// `OPSYS` — C, toy operating system.
    pub fn pdp11_opsys() -> WorkloadSpec {
        let mut p = Profile::baseline(Architecture::Pdp11);
        p.call_prob = 0.14;
        p.return_prob = 0.14;
        p.data_mix.globals *= 1.3;
        WorkloadSpec::new("OPSYS", "C: toy operating system", 0x11_01, p)
    }

    /// `PLOT` — Fortran, printer plotter program.
    pub fn pdp11_plot() -> WorkloadSpec {
        let mut p = Profile::baseline(Architecture::Pdp11);
        p.data_mix.sweep *= 1.5;
        p.loop_iters = 20.0;
        p.code_functions = 28;
        WorkloadSpec::new("PLOT", "Fortran: printer plotter program", 0x11_02, p)
    }

    /// `SIMP` — Fortran, pipeline simulation program.
    pub fn pdp11_simp() -> WorkloadSpec {
        let mut p = Profile::baseline(Architecture::Pdp11);
        p.loop_prob = 0.38;
        p.loop_iters = 18.0;
        p.data_mix.heap *= 1.2;
        WorkloadSpec::new("SIMP", "Fortran: pipeline simulation program", 0x11_03, p)
    }

    /// `TRACE` — PDP-11 assembly, tracing program tracing ED.
    pub fn pdp11_trace() -> WorkloadSpec {
        let mut p = Profile::baseline(Architecture::Pdp11);
        p.code_functions = 24;
        p.function_words = 128;
        p.loop_iters = 18.0;
        WorkloadSpec::new(
            "TRACE",
            "PDP-11 assembly: tracing program tracing ED",
            0x11_04,
            p,
        )
    }

    /// `ROFF` — PDP-11 assembly, text output and formatting program.
    pub fn pdp11_roff() -> WorkloadSpec {
        let mut p = Profile::baseline(Architecture::Pdp11);
        p.data_mix.sweep *= 1.3;
        p.mean_run = 7.0;
        WorkloadSpec::new(
            "ROFF",
            "PDP-11 assembly: text output and formatting",
            0x11_05,
            p,
        )
    }

    /// `ED` — C, text editor.
    pub fn pdp11_ed() -> WorkloadSpec {
        let p = Profile::baseline(Architecture::Pdp11);
        WorkloadSpec::new("ED", "C: text editor", 0x11_06, p)
    }

    // ------------------------------------------------------------------
    // Z8000 workload (Table 3)
    // ------------------------------------------------------------------

    /// `CPP` — C, first phase of the C compiler.
    pub fn z8000_cpp() -> WorkloadSpec {
        let mut p = Profile::baseline(Architecture::Z8000);
        p.code_functions = 30;
        p.function_words = 144;
        p.data_mix.sweep *= 1.4;
        WorkloadSpec::new("CPP", "C: first phase of C compiler", 0x80_01, p)
    }

    /// `C1` — C, second phase of the C compiler.
    pub fn z8000_c1() -> WorkloadSpec {
        let mut p = Profile::baseline(Architecture::Z8000);
        p.code_functions = 34;
        p.function_words = 152;
        p.data_mix.heap *= 1.4;
        WorkloadSpec::new("C1", "C: second phase of C compiler", 0x80_02, p)
    }

    /// `C2` — C, third phase of the C compiler.
    pub fn z8000_c2() -> WorkloadSpec {
        let mut p = Profile::baseline(Architecture::Z8000);
        p.code_functions = 28;
        p.function_words = 136;
        WorkloadSpec::new("C2", "C: third phase of C compiler", 0x80_03, p)
    }

    /// `OD` — C, Unix utility for dumping files in ASCII.
    pub fn z8000_od() -> WorkloadSpec {
        let mut p = Profile::baseline(Architecture::Z8000);
        p.code_functions = 12;
        p.data_mix.sweep *= 1.3;
        p.loop_iters = 28.0;
        WorkloadSpec::new(
            "OD",
            "C: Unix utility for dumping files in ASCII",
            0x80_04,
            p,
        )
    }

    /// `GREP` — C, Unix utility for string searching.
    pub fn z8000_grep() -> WorkloadSpec {
        let mut p = Profile::baseline(Architecture::Z8000);
        p.code_functions = 14;
        p.loop_iters = 26.0;
        p.data_mix.sweep *= 1.2;
        WorkloadSpec::new("GREP", "C: Unix utility for string searching", 0x80_05, p)
    }

    /// `SORT` — C, Unix utility for sorting.
    pub fn z8000_sort() -> WorkloadSpec {
        let mut p = Profile::baseline(Architecture::Z8000);
        p.code_functions = 16;
        p.data_mix.heap *= 1.3;
        p.call_prob = 0.12;
        p.return_prob = 0.12;
        WorkloadSpec::new("SORT", "C: Unix utility for sorting", 0x80_06, p)
    }

    /// `LS` — C, Unix utility for listing files.
    pub fn z8000_ls() -> WorkloadSpec {
        let mut p = Profile::baseline(Architecture::Z8000);
        p.code_functions = 14;
        p.data_mix.globals *= 1.2;
        WorkloadSpec::new("LS", "C: Unix utility for listing files", 0x80_07, p)
    }

    /// `NM` — C, Unix utility for printing a symbol table.
    pub fn z8000_nm() -> WorkloadSpec {
        let mut p = Profile::baseline(Architecture::Z8000);
        p.code_functions = 12;
        p.data_mix.sweep *= 1.1;
        WorkloadSpec::new(
            "NM",
            "C: Unix utility printing an object file's symbol table",
            0x80_08,
            p,
        )
    }

    /// `NROFF` — C, Unix utility for formatting text files.
    pub fn z8000_nroff() -> WorkloadSpec {
        let mut p = Profile::baseline(Architecture::Z8000);
        p.code_functions = 24;
        p.function_words = 128;
        WorkloadSpec::new(
            "NROFF",
            "C: Unix utility formatting text for printing",
            0x80_09,
            p,
        )
    }

    // ------------------------------------------------------------------
    // VAX-11 workload (Table 4)
    // ------------------------------------------------------------------

    /// `spice` — Fortran, circuit simulation.
    pub fn vax_spice() -> WorkloadSpec {
        let mut p = Profile::baseline(Architecture::Vax11);
        p.data_mix.sweep *= 1.4;
        p.data_mix.heap *= 1.2;
        p.loop_iters = 16.0;
        WorkloadSpec::new("spice", "Fortran: circuit simulation", 0x5a_01, p)
    }

    /// `otmdl` — Pascal, constructs an LR(0) parser.
    pub fn vax_otmdl() -> WorkloadSpec {
        let mut p = Profile::baseline(Architecture::Vax11);
        p.call_prob = 0.14;
        p.return_prob = 0.14;
        p.data_mix.heap *= 1.3;
        WorkloadSpec::new("otmdl", "Pascal: constructs LR(0) parser", 0x5a_02, p)
    }

    /// `sedx` — C, stream editor.
    pub fn vax_sedx() -> WorkloadSpec {
        let mut p = Profile::baseline(Architecture::Vax11);
        p.code_functions = 40;
        p.data_mix.sweep *= 1.2;
        WorkloadSpec::new("sedx", "C: stream editor", 0x5a_03, p)
    }

    /// `qsort` — C, quick sort.
    pub fn vax_qsort() -> WorkloadSpec {
        let mut p = Profile::baseline(Architecture::Vax11);
        p.code_functions = 16;
        p.function_words = 96;
        p.data_mix.stack *= 1.5;
        p.data_mix.heap *= 1.2;
        p.call_prob = 0.16;
        p.return_prob = 0.16;
        WorkloadSpec::new("qsort", "C: Quick sort", 0x5a_04, p)
    }

    /// `troff` — C, text formatter.
    pub fn vax_troff() -> WorkloadSpec {
        let mut p = Profile::baseline(Architecture::Vax11);
        p.code_functions = 96;
        p.function_words = 224;
        WorkloadSpec::new("troff", "C: text formatter", 0x5a_05, p)
    }

    /// `c2` — C, third phase of the C compiler.
    pub fn vax_c2() -> WorkloadSpec {
        let mut p = Profile::baseline(Architecture::Vax11);
        p.code_functions = 64;
        WorkloadSpec::new("c2", "C: third phase of C compiler", 0x5a_06, p)
    }

    // ------------------------------------------------------------------
    // IBM System/370 workload (Table 5)
    // ------------------------------------------------------------------

    /// `FGO1` — Fortran Go step, single-precision factor analysis.
    pub fn s370_fgo1() -> WorkloadSpec {
        let mut p = Profile::baseline(Architecture::S370);
        p.data_mix.sweep *= 1.2;
        p.loop_iters = 12.0;
        WorkloadSpec::new(
            "FGO1",
            "Fortran Go step: single-precision factor analysis",
            0x37_01,
            p,
        )
    }

    /// `FCOMP1` — Fortran compile of a PDE solver.
    pub fn s370_fcomp1() -> WorkloadSpec {
        let mut p = Profile::baseline(Architecture::S370);
        p.code_functions = 192;
        p.data_mix.sweep *= 0.8;
        p.data_mix.heap *= 1.2;
        WorkloadSpec::new(
            "FCOMP1",
            "Compile of a program solving Reynolds partial differential equation",
            0x37_02,
            p,
        )
    }

    /// `PGO1` — PL/I Go step.
    pub fn s370_pgo1() -> WorkloadSpec {
        let mut p = Profile::baseline(Architecture::S370);
        p.data_mix.heap *= 1.1;
        WorkloadSpec::new("PGO1", "PL/I Go step", 0x37_03, p)
    }

    /// `PGO2` — PL/I Go step, CCW analysis.
    pub fn s370_pgo2() -> WorkloadSpec {
        let mut p = Profile::baseline(Architecture::S370);
        p.data_mix.sweep *= 1.1;
        p.code_functions = 160;
        WorkloadSpec::new(
            "PGO2",
            "PL/I Go step: program does CCW analysis",
            0x37_04,
            p,
        )
    }

    // ------------------------------------------------------------------
    // Trace sets as the paper's figures use them
    // ------------------------------------------------------------------

    /// The six PDP-11 traces of Table 2 (Figures 1, 2, 7, 8).
    pub fn pdp11_set() -> Vec<WorkloadSpec> {
        vec![
            WorkloadSpec::pdp11_opsys(),
            WorkloadSpec::pdp11_plot(),
            WorkloadSpec::pdp11_simp(),
            WorkloadSpec::pdp11_trace(),
            WorkloadSpec::pdp11_roff(),
            WorkloadSpec::pdp11_ed(),
        ]
    }

    /// The last five Table 3 traces — the Unix utilities the Z8000 figures
    /// use (§4.2.2: "see last five traces in Table 3").
    pub fn z8000_set() -> Vec<WorkloadSpec> {
        vec![
            WorkloadSpec::z8000_grep(),
            WorkloadSpec::z8000_sort(),
            WorkloadSpec::z8000_ls(),
            WorkloadSpec::z8000_nm(),
            WorkloadSpec::z8000_nroff(),
        ]
    }

    /// All nine Z8000 traces of Table 3.
    pub fn z8000_full_set() -> Vec<WorkloadSpec> {
        vec![
            WorkloadSpec::z8000_cpp(),
            WorkloadSpec::z8000_c1(),
            WorkloadSpec::z8000_c2(),
            WorkloadSpec::z8000_od(),
            WorkloadSpec::z8000_grep(),
            WorkloadSpec::z8000_sort(),
            WorkloadSpec::z8000_ls(),
            WorkloadSpec::z8000_nm(),
            WorkloadSpec::z8000_nroff(),
        ]
    }

    /// The three compiler-phase traces the load-forward study uses
    /// (§4.4: "traces CPP, C1 and C2").
    pub fn z8000_load_forward_set() -> Vec<WorkloadSpec> {
        vec![
            WorkloadSpec::z8000_cpp(),
            WorkloadSpec::z8000_c1(),
            WorkloadSpec::z8000_c2(),
        ]
    }

    /// The six VAX-11 traces of Table 4 (Figure 5).
    pub fn vax11_set() -> Vec<WorkloadSpec> {
        vec![
            WorkloadSpec::vax_spice(),
            WorkloadSpec::vax_otmdl(),
            WorkloadSpec::vax_sedx(),
            WorkloadSpec::vax_qsort(),
            WorkloadSpec::vax_troff(),
            WorkloadSpec::vax_c2(),
        ]
    }

    /// The four System/370 traces of Table 5 (Figure 6).
    pub fn s370_set() -> Vec<WorkloadSpec> {
        vec![
            WorkloadSpec::s370_fgo1(),
            WorkloadSpec::s370_fcomp1(),
            WorkloadSpec::s370_pgo1(),
            WorkloadSpec::s370_pgo2(),
        ]
    }

    /// The trace set an architecture's main figures average over.
    pub fn set_for(arch: Architecture) -> Vec<WorkloadSpec> {
        match arch {
            Architecture::Pdp11 => WorkloadSpec::pdp11_set(),
            Architecture::Z8000 => WorkloadSpec::z8000_set(),
            Architecture::Vax11 => WorkloadSpec::vax11_set(),
            Architecture::S370 => WorkloadSpec::s370_set(),
        }
    }

    /// Every named trace of Tables 2–5 (all architectures).
    pub fn all_named() -> Vec<WorkloadSpec> {
        let mut all = WorkloadSpec::pdp11_set();
        all.extend(WorkloadSpec::z8000_full_set());
        all.extend(WorkloadSpec::vax11_set());
        all.extend(WorkloadSpec::s370_set());
        all
    }

    /// Looks a trace up by its paper name, case-insensitively (e.g.
    /// `"ED"`, `"grep"`, `"spice"`, `"FGO1"`).
    ///
    /// The paper reuses one name across architectures (`C2`, the third
    /// compiler phase, appears in both the Z8000 and VAX-11 tables), so a
    /// name may be qualified with an architecture prefix:
    /// `"z8000:C2"` / `"vax11:c2"`. Unqualified lookups return the first
    /// match in Tables 2–5 order.
    pub fn by_name(name: &str) -> Option<WorkloadSpec> {
        let (arch_filter, bare) = match name.split_once(':') {
            Some((prefix, rest)) => {
                let arch = match prefix.to_ascii_lowercase().as_str() {
                    "pdp11" | "pdp-11" => Architecture::Pdp11,
                    "z8000" => Architecture::Z8000,
                    "vax11" | "vax-11" | "vax" => Architecture::Vax11,
                    "s370" | "370" | "s/370" => Architecture::S370,
                    _ => return None,
                };
                (Some(arch), rest)
            }
            None => (None, name),
        };
        WorkloadSpec::all_named().into_iter().find(|spec| {
            arch_filter.is_none_or(|a| a == spec.arch()) && spec.name().eq_ignore_ascii_case(bare)
        })
    }

    /// Looks a *workload model* — a named trace set — up by name,
    /// case-insensitively. This is the vocabulary the serving layer and
    /// load generator speak: an architecture name (`"pdp11"`, `"z8000"`,
    /// `"vax11"`, `"s370"`, with the same aliases as [`by_name`]) yields
    /// its paper trace set; `"z8000-full"`, `"z8000-compilers"`, `"m85"`
    /// and `"all"` name the other sets; any single-trace name accepted by
    /// [`by_name`] (e.g. `"ED"`, `"z8000:C2"`) yields that one trace.
    pub fn set_by_name(name: &str) -> Option<Vec<WorkloadSpec>> {
        match name.to_ascii_lowercase().as_str() {
            "pdp11" | "pdp-11" => Some(WorkloadSpec::pdp11_set()),
            "z8000" => Some(WorkloadSpec::z8000_set()),
            "z8000-full" => Some(WorkloadSpec::z8000_full_set()),
            "z8000-compilers" => Some(WorkloadSpec::z8000_load_forward_set()),
            "vax11" | "vax-11" | "vax" => Some(WorkloadSpec::vax11_set()),
            "s370" | "370" | "s/370" => Some(WorkloadSpec::s370_set()),
            "m85" => Some(crate::m85_mix()),
            "all" => Some(WorkloadSpec::all_named()),
            _ => WorkloadSpec::by_name(name).map(|spec| vec![spec]),
        }
    }

    /// The set names [`set_by_name`] accepts (canonical spellings only;
    /// single-trace names from Tables 2–5 also resolve). The serving
    /// layer's error messages and docs list these.
    pub fn set_names() -> &'static [&'static str] {
        &[
            "pdp11",
            "z8000",
            "z8000-full",
            "z8000-compilers",
            "vax11",
            "s370",
            "m85",
            "all",
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use occache_trace::TraceSource;

    #[test]
    fn all_sets_have_paper_cardinality() {
        assert_eq!(WorkloadSpec::pdp11_set().len(), 6);
        assert_eq!(WorkloadSpec::z8000_set().len(), 5);
        assert_eq!(WorkloadSpec::z8000_full_set().len(), 9);
        assert_eq!(WorkloadSpec::z8000_load_forward_set().len(), 3);
        assert_eq!(WorkloadSpec::vax11_set().len(), 6);
        assert_eq!(WorkloadSpec::s370_set().len(), 4);
    }

    #[test]
    fn names_are_unique_within_sets() {
        for set in [
            WorkloadSpec::pdp11_set(),
            WorkloadSpec::z8000_full_set(),
            WorkloadSpec::vax11_set(),
            WorkloadSpec::s370_set(),
        ] {
            let mut names: Vec<_> = set.iter().map(|s| s.name()).collect();
            names.sort_unstable();
            names.dedup();
            assert_eq!(names.len(), set.len());
        }
    }

    #[test]
    fn specs_have_consistent_architecture() {
        for spec in WorkloadSpec::vax11_set() {
            assert_eq!(spec.arch(), Architecture::Vax11, "{}", spec.name());
        }
        for spec in WorkloadSpec::s370_set() {
            assert_eq!(spec.arch(), Architecture::S370, "{}", spec.name());
        }
    }

    #[test]
    fn distinct_traces_produce_distinct_streams() {
        let a = WorkloadSpec::pdp11_opsys().generator(0).collect_refs(2000);
        let b = WorkloadSpec::pdp11_plot().generator(0).collect_refs(2000);
        assert_ne!(a, b);
    }

    #[test]
    fn canonical_trace_is_reproducible() {
        let a = WorkloadSpec::vax_spice().generator(0).collect_refs(2000);
        let b = WorkloadSpec::vax_spice().generator(0).collect_refs(2000);
        assert_eq!(a, b);
    }

    #[test]
    fn by_name_finds_every_named_trace() {
        for spec in WorkloadSpec::all_named() {
            // Qualified lookups are exact even for the duplicated C2 name.
            let qualified = format!("{}:{}", arch_prefix(spec.arch()), spec.name());
            let found = WorkloadSpec::by_name(&qualified)
                .unwrap_or_else(|| panic!("lookup failed for {}", spec.name()));
            assert_eq!(found.name(), spec.name());
            assert_eq!(found.arch(), spec.arch());
        }
    }

    fn arch_prefix(arch: Architecture) -> &'static str {
        match arch {
            Architecture::Pdp11 => "pdp11",
            Architecture::Z8000 => "z8000",
            Architecture::Vax11 => "vax11",
            Architecture::S370 => "s370",
        }
    }

    #[test]
    fn by_name_is_case_insensitive() {
        assert_eq!(WorkloadSpec::by_name("grep").unwrap().name(), "GREP");
        assert_eq!(WorkloadSpec::by_name("SPICE").unwrap().name(), "spice");
        assert!(WorkloadSpec::by_name("nonexistent").is_none());
    }

    #[test]
    fn set_by_name_covers_every_listed_set_and_single_traces() {
        for &name in WorkloadSpec::set_names() {
            let set = WorkloadSpec::set_by_name(name)
                .unwrap_or_else(|| panic!("set lookup failed for {name}"));
            assert!(!set.is_empty(), "{name} resolved to an empty set");
        }
        assert_eq!(WorkloadSpec::set_by_name("PDP-11").unwrap().len(), 6);
        assert_eq!(WorkloadSpec::set_by_name("m85").unwrap().len(), 6);
        // Single-trace names fall through to by_name.
        let ed = WorkloadSpec::set_by_name("ed").unwrap();
        assert_eq!(ed.len(), 1);
        assert_eq!(ed[0].name(), "ED");
        assert!(WorkloadSpec::set_by_name("nonexistent").is_none());
    }

    #[test]
    fn qualified_names_disambiguate_c2() {
        // "C2" appears in both the Z8000 and VAX-11 tables.
        let z = WorkloadSpec::by_name("z8000:C2").unwrap();
        let v = WorkloadSpec::by_name("vax:c2").unwrap();
        assert_eq!(z.arch(), Architecture::Z8000);
        assert_eq!(v.arch(), Architecture::Vax11);
        assert!(WorkloadSpec::by_name("mips:c2").is_none(), "unknown prefix");
    }

    #[test]
    fn the_only_cross_table_name_collision_is_c2() {
        let all = WorkloadSpec::all_named();
        let mut names: Vec<String> = all.iter().map(|s| s.name().to_ascii_lowercase()).collect();
        names.sort();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before - 1, "exactly one duplicate (c2)");
    }

    #[test]
    fn descriptions_are_present() {
        for spec in WorkloadSpec::z8000_full_set() {
            assert!(!spec.description().is_empty(), "{}", spec.name());
        }
    }
}
