//! The four traced architectures of the study.

use std::fmt;

/// An architecture whose programs were traced in the paper.
///
/// Fixes the data-path (bus word) width the paper assumed when creating
/// traces — 2 bytes for the 16-bit machines, 4 bytes for the 32-bit ones —
/// and the native address-space width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Architecture {
    /// DEC PDP-11 (16-bit); Table 2 workload.
    Pdp11,
    /// Zilog Z8000 (16-bit); Table 3 workload.
    Z8000,
    /// DEC VAX-11 (32-bit); Table 4 workload.
    Vax11,
    /// IBM System/370 (32-bit); Table 5 workload.
    S370,
}

impl Architecture {
    /// All four architectures, in the paper's presentation order.
    pub const ALL: [Architecture; 4] = [
        Architecture::Pdp11,
        Architecture::Z8000,
        Architecture::Vax11,
        Architecture::S370,
    ];

    /// Bus word (data-path) width in bytes.
    pub const fn word_size(self) -> u64 {
        match self {
            Architecture::Pdp11 | Architecture::Z8000 => 2,
            Architecture::Vax11 | Architecture::S370 => 4,
        }
    }

    /// Native address-space width in bits.
    pub const fn address_bits(self) -> u32 {
        match self {
            Architecture::Pdp11 | Architecture::Z8000 => 16,
            Architecture::Vax11 | Architecture::S370 => 32,
        }
    }

    /// Size of the native address space in bytes.
    pub const fn address_space(self) -> u64 {
        1u64 << self.address_bits()
    }

    /// Human-readable name as the paper prints it.
    pub const fn name(self) -> &'static str {
        match self {
            Architecture::Pdp11 => "PDP-11",
            Architecture::Z8000 => "Z8000",
            Architecture::Vax11 => "VAX-11",
            Architecture::S370 => "IBM System/370",
        }
    }
}

impl fmt::Display for Architecture {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_sizes_match_paper_trace_creation() {
        // §3.3: "Traces were created for the Z8000 and PDP-11 by assuming 2
        // byte data paths and for the System/370 and VAX-11 assuming 4 byte
        // data paths to memory."
        assert_eq!(Architecture::Pdp11.word_size(), 2);
        assert_eq!(Architecture::Z8000.word_size(), 2);
        assert_eq!(Architecture::Vax11.word_size(), 4);
        assert_eq!(Architecture::S370.word_size(), 4);
    }

    #[test]
    fn address_spaces() {
        assert_eq!(Architecture::Pdp11.address_space(), 65_536);
        assert_eq!(Architecture::Vax11.address_space(), 1 << 32);
    }

    #[test]
    fn names_and_order() {
        let names: Vec<_> = Architecture::ALL.iter().map(|a| a.name()).collect();
        assert_eq!(names, ["PDP-11", "Z8000", "VAX-11", "IBM System/370"]);
    }
}
