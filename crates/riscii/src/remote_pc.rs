//! The remote program counter: next-instruction-address prediction.
//!
//! The real RISC II chip used limited instruction decode plus static
//! jump-likely hints to follow the instruction stream ahead of the
//! processor. Without instruction encodings in our traces, we model the
//! same capability as: *sequential prediction by default, plus a small
//! direct-mapped jump table remembering the last taken transfer out of
//! each address* — the moral equivalent of "this instruction is a branch
//! and it is usually taken to X". Loops, which dominate instruction
//! streams, are exactly the case both mechanisms capture.

use occache_trace::Address;

/// Next-address predictor for an instruction-fetch stream.
#[derive(Debug, Clone)]
pub struct RemoteProgramCounter {
    instr_size: u64,
    /// Direct-mapped jump memory: `(from, to)` pairs.
    jump_table: Vec<Option<(u64, u64)>>,
    predicted: Option<u64>,
    last_fetch: Option<u64>,
    predictions: u64,
    correct: u64,
}

impl RemoteProgramCounter {
    /// Creates a predictor with `entries` jump-table slots (power of two)
    /// for `instr_size`-byte instructions.
    ///
    /// # Panics
    ///
    /// Panics unless `entries` and `instr_size` are nonzero powers of two.
    pub fn new(entries: usize, instr_size: u64) -> Self {
        assert!(entries.is_power_of_two(), "entries must be a power of two");
        assert!(
            instr_size.is_power_of_two(),
            "instruction size must be a power of two"
        );
        RemoteProgramCounter {
            instr_size,
            jump_table: vec![None; entries],
            predicted: None,
            last_fetch: None,
            predictions: 0,
            correct: 0,
        }
    }

    /// The RISC II configuration: 32-bit instructions, a small jump memory.
    pub fn riscii() -> Self {
        RemoteProgramCounter::new(256, 4)
    }

    fn slot(&self, addr: u64) -> usize {
        ((addr / self.instr_size) as usize) & (self.jump_table.len() - 1)
    }

    /// Feeds one instruction fetch; returns whether the chip had
    /// correctly predicted this address (i.e. its store access had
    /// already begun).
    pub fn observe(&mut self, addr: Address) -> bool {
        let addr = addr.value();
        let hit = match self.predicted {
            Some(predicted) => {
                self.predictions += 1;
                let hit = predicted == addr;
                if hit {
                    self.correct += 1;
                }
                hit
            }
            None => false,
        };

        // Learn taken transfers — but only *backward* ones (loop
        // branches). These are the statically jump-likely edges the real
        // chip's hints marked: a loop branch is overwhelmingly re-taken,
        // whereas remembering one-off forward skips and returns poisons
        // later sequential predictions from the same address.
        if let Some(last) = self.last_fetch {
            if last + self.instr_size != addr {
                let slot = self.slot(last);
                if addr < last {
                    self.jump_table[slot] = Some((last, addr));
                } else if matches!(self.jump_table[slot], Some((from, _)) if from == last) {
                    // The loop exited via this address: forget the edge.
                    self.jump_table[slot] = None;
                }
            }
        }
        self.last_fetch = Some(addr);

        // Predict the next fetch: follow a remembered jump out of this
        // address, else sequential.
        self.predicted = Some(match self.jump_table[self.slot(addr)] {
            Some((from, to)) if from == addr => to,
            _ => addr + self.instr_size,
        });
        hit
    }

    /// Fetches observed with an active prediction.
    pub fn predictions(&self) -> u64 {
        self.predictions
    }

    /// Fraction of predictions that were correct (0 if none made).
    pub fn accuracy(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.correct as f64 / self.predictions as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(rpc: &mut RemoteProgramCounter, addrs: impl IntoIterator<Item = u64>) {
        for a in addrs {
            rpc.observe(Address::new(a));
        }
    }

    #[test]
    fn sequential_code_is_perfectly_predicted() {
        let mut rpc = RemoteProgramCounter::riscii();
        feed(&mut rpc, (0..100).map(|i| 0x1000 + i * 4));
        assert!(rpc.accuracy() > 0.99, "{}", rpc.accuracy());
    }

    #[test]
    fn loops_are_learned_after_one_lap() {
        let mut rpc = RemoteProgramCounter::riscii();
        // 10 laps of an 8-instruction loop.
        for _ in 0..10 {
            feed(&mut rpc, (0..8).map(|i| 0x2000 + i * 4));
        }
        // First lap: the loop-back edge is unknown (1 bad prediction);
        // thereafter everything is predicted.
        let wrong = rpc.predictions() - (rpc.accuracy() * rpc.predictions() as f64) as u64;
        assert!(wrong <= 2, "wrong predictions: {wrong}");
    }

    #[test]
    fn alternating_targets_defeat_the_table() {
        let mut rpc = RemoteProgramCounter::riscii();
        // A branch at 0x100 alternating between two targets never becomes
        // predictable with a last-target table.
        for lap in 0..50u64 {
            rpc.observe(Address::new(0x100));
            let target = if lap % 2 == 0 { 0x200 } else { 0x300 };
            rpc.observe(Address::new(target));
            // come back
            rpc.observe(Address::new(0x100 - 4));
        }
        assert!(rpc.accuracy() < 0.7, "{}", rpc.accuracy());
    }

    #[test]
    fn accuracy_is_zero_before_any_prediction() {
        let rpc = RemoteProgramCounter::riscii();
        assert_eq!(rpc.accuracy(), 0.0);
        assert_eq!(rpc.predictions(), 0);
    }

    #[test]
    fn first_observation_makes_no_prediction_claim() {
        let mut rpc = RemoteProgramCounter::riscii();
        assert!(!rpc.observe(Address::new(0x500)));
        assert_eq!(rpc.predictions(), 0);
        // The second observation is predicted (sequentially).
        assert!(rpc.observe(Address::new(0x504)));
        assert_eq!(rpc.predictions(), 1);
    }

    #[test]
    fn table_conflicts_degrade_gracefully() {
        // Two jump sources that collide in a 64-entry table (same slot).
        let mut rpc = RemoteProgramCounter::new(256, 4);
        let a = 0x0u64;
        let b = 64 * 4; // same direct-mapped slot as `a`
        for _ in 0..20 {
            rpc.observe(Address::new(a));
            rpc.observe(Address::new(0x1000)); // jump from a
            rpc.observe(Address::new(b));
            rpc.observe(Address::new(0x2000)); // jump from b, evicts a's entry
        }
        // Still functions; accuracy bounded by the conflict.
        assert!(rpc.accuracy() < 0.9);
    }
}
