#![warn(missing_docs)]

//! # occache-riscii — the RISC II instruction cache chip (§2.3)
//!
//! The paper's "implemented example" of an on-chip cache is the RISC II
//! instruction cache \[12\]: a single 45,000-transistor NMOS chip holding
//! 512 bytes in 64 direct-mapped 8-byte blocks, with two architectural
//! innovations this crate models:
//!
//! * a **remote program counter** ([`RemoteProgramCounter`]) that guesses
//!   the next instruction address so the chip can start reading its store
//!   before the processor presents the address — the paper measured 89.9%
//!   correct predictions cutting the processor-visible access time 42.2%,
//! * **code compaction** ([`compact_profile`]) — selected half-word
//!   instructions shrinking code ~20% and improving the miss ratio ~27%.
//!
//! [`RiscIiCache`] composes the predictor with a direct-mapped
//! `occache-core` cache into a chip-level model that reports miss ratio,
//! prediction accuracy and the processor-visible mean access time.
//!
//! ```
//! use occache_riscii::RiscIiCache;
//! use occache_trace::Address;
//!
//! let mut chip = RiscIiCache::paper_chip()?;
//! // A tight loop: after the first lap the remote PC predicts every fetch.
//! for _ in 0..100 {
//!     for pc in (0x1000u64..0x1020).step_by(4) {
//!         chip.fetch(Address::new(pc));
//!     }
//! }
//! assert!(chip.prediction_accuracy() > 0.9);
//! # Ok::<(), occache_core::ConfigError>(())
//! ```

mod chip;
mod compact;
mod remote_pc;

pub use chip::{ChipTiming, RiscIiCache};
pub use compact::compact_profile;
pub use remote_pc::RemoteProgramCounter;
