//! The chip-level model: direct-mapped instruction store + remote PC.

use occache_core::{AccessOutcome, CacheConfig, ConfigError, SubBlockCache};
use occache_trace::{AccessKind, Address};

use crate::remote_pc::RemoteProgramCounter;

/// Access-time parameters of the chip as seen by the processor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChipTiming {
    /// Hit latency when the remote PC had *not* predicted the address
    /// (the chip starts its store access only when the address arrives).
    pub hit_unpredicted: f64,
    /// Hit latency when the remote PC had predicted the address (store
    /// access already under way).
    pub hit_predicted: f64,
    /// Miss latency (main memory fill).
    pub miss: f64,
}

impl ChipTiming {
    /// Timings calibrated to the paper's chip: 250 ns nominal access,
    /// with a correct prediction hiding enough of it that 89.9% accuracy
    /// yields the reported 42.2% access-time reduction, and a 1500 ns
    /// off-chip miss.
    pub fn paper() -> ChipTiming {
        ChipTiming {
            hit_unpredicted: 250.0,
            hit_predicted: 132.0,
            miss: 1500.0,
        }
    }
}

/// The RISC II instruction-cache chip: 512 bytes, 64 direct-mapped
/// 8-byte blocks, fronted by a remote program counter.
#[derive(Debug, Clone)]
pub struct RiscIiCache {
    cache: SubBlockCache,
    rpc: RemoteProgramCounter,
    timing: ChipTiming,
    fetches: u64,
    predicted_hits: u64,
    total_time: f64,
}

impl RiscIiCache {
    /// Builds the chip as published: 512-byte store, 8-byte blocks,
    /// direct mapped, 32-bit instructions.
    ///
    /// # Errors
    ///
    /// Propagates [`ConfigError`] (cannot occur for the fixed geometry;
    /// kept for API uniformity with [`RiscIiCache::with_store`]).
    pub fn paper_chip() -> Result<RiscIiCache, ConfigError> {
        RiscIiCache::with_store(512, ChipTiming::paper())
    }

    /// Builds a chip variant with a different store size (the paper's
    /// size study covers 512–4096 bytes).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if `store_bytes` is not a valid net size
    /// for 8-byte direct-mapped blocks.
    pub fn with_store(store_bytes: u64, timing: ChipTiming) -> Result<RiscIiCache, ConfigError> {
        let config = CacheConfig::builder()
            .net_size(store_bytes)
            .block_size(8)
            .sub_block_size(8)
            .associativity(1)
            .word_size(4)
            .build()?;
        Ok(RiscIiCache {
            cache: SubBlockCache::new(config),
            rpc: RemoteProgramCounter::riscii(),
            timing,
            fetches: 0,
            predicted_hits: 0,
            total_time: 0.0,
        })
    }

    /// Presents one instruction fetch to the chip.
    pub fn fetch(&mut self, addr: Address) -> AccessOutcome {
        let predicted = self.rpc.observe(addr);
        let outcome = self.cache.access(addr, AccessKind::InstrFetch);
        self.fetches += 1;
        let latency = if outcome.is_miss() {
            self.timing.miss
        } else if predicted {
            self.predicted_hits += 1;
            self.timing.hit_predicted
        } else {
            self.timing.hit_unpredicted
        };
        self.total_time += latency;
        outcome
    }

    /// Miss ratio of the instruction store.
    pub fn miss_ratio(&self) -> f64 {
        self.cache.metrics().miss_ratio()
    }

    /// Remote-PC prediction accuracy (the paper measures 89.9%).
    pub fn prediction_accuracy(&self) -> f64 {
        self.rpc.accuracy()
    }

    /// Mean processor-visible access time over all fetches.
    pub fn mean_access_time(&self) -> f64 {
        if self.fetches == 0 {
            0.0
        } else {
            self.total_time / self.fetches as f64
        }
    }

    /// Mean access time over *hits only* — the quantity whose 42.2%
    /// reduction the paper reports (the remote PC does not help misses).
    pub fn mean_hit_time(&self) -> f64 {
        let hits = self.fetches - self.cache.metrics().misses();
        if hits == 0 {
            return 0.0;
        }
        let predicted = self.predicted_hits as f64;
        let unpredicted = hits as f64 - predicted;
        (predicted * self.timing.hit_predicted + unpredicted * self.timing.hit_unpredicted)
            / hits as f64
    }

    /// Relative reduction in hit access time vs a chip with no remote PC.
    pub fn hit_time_reduction(&self) -> f64 {
        let base = self.timing.hit_unpredicted;
        (base - self.mean_hit_time()) / base
    }

    /// Total fetches presented.
    pub fn fetches(&self) -> u64 {
        self.fetches
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_chip_geometry() {
        let chip = RiscIiCache::paper_chip().unwrap();
        assert_eq!(chip.cache.config().net_size(), 512);
        assert_eq!(chip.cache.config().num_blocks(), 64);
        assert_eq!(chip.cache.config().effective_associativity(), 1);
    }

    #[test]
    fn loop_fetches_become_fast_hits() {
        let mut chip = RiscIiCache::paper_chip().unwrap();
        for _ in 0..200 {
            for pc in (0x1000u64..0x1040).step_by(4) {
                chip.fetch(Address::new(pc));
            }
        }
        assert!(chip.miss_ratio() < 0.01, "{}", chip.miss_ratio());
        assert!(chip.prediction_accuracy() > 0.95);
        // Hit time approaches the predicted-hit latency.
        assert!(chip.mean_hit_time() < 140.0, "{}", chip.mean_hit_time());
        assert!(chip.hit_time_reduction() > 0.4);
    }

    #[test]
    fn cold_chip_pays_unpredicted_and_miss_latencies() {
        let mut chip = RiscIiCache::paper_chip().unwrap();
        chip.fetch(Address::new(0));
        assert_eq!(chip.mean_access_time(), 1500.0, "first fetch misses");
        assert_eq!(chip.prediction_accuracy(), 0.0);
    }

    #[test]
    fn zero_fetch_chip_reports_zeroes() {
        let chip = RiscIiCache::paper_chip().unwrap();
        assert_eq!(chip.mean_access_time(), 0.0);
        assert_eq!(chip.mean_hit_time(), 0.0);
        assert_eq!(chip.fetches(), 0);
    }

    #[test]
    fn store_size_variants_build() {
        for size in [512u64, 1024, 2048, 4096] {
            let chip = RiscIiCache::with_store(size, ChipTiming::paper()).unwrap();
            assert_eq!(chip.cache.config().net_size(), size);
        }
        assert!(RiscIiCache::with_store(500, ChipTiming::paper()).is_err());
    }
}
