//! Code compaction (§2.3): the RISC II cache's dynamic code expansion.
//!
//! The chip accepted *half-word* (16-bit) encodings for selected
//! instructions and expanded them to the standard 32-bit form before
//! handing them to the processor, so the cache effectively held more
//! instructions: the paper reports a ~20% code-size reduction yielding a
//! ~27% miss-ratio improvement at no cost to the processor's decode PLA.
//!
//! We model compaction where it acts — on the code layout: a compacted
//! program's functions occupy fewer words, so the same loops and runs fit
//! in fewer cache blocks.

use occache_workloads::Profile;

/// Returns the profile of the same program compiled with half-word
/// encodings for a fraction `halfword_fraction` of its instructions.
///
/// A fraction `f` of instructions at half size shrinks the code by
/// `f / 2`; the RISC II experiments correspond to `f = 0.4` (a 20%
/// reduction).
///
/// # Panics
///
/// Panics if `halfword_fraction` is outside `[0, 1]`.
pub fn compact_profile(profile: &Profile, halfword_fraction: f64) -> Profile {
    assert!(
        (0.0..=1.0).contains(&halfword_fraction),
        "half-word fraction out of range: {halfword_fraction}"
    );
    let shrink = 1.0 - halfword_fraction / 2.0;
    let mut compacted = profile.clone();
    // The program executes the same instructions; only the layout packs
    // them into fewer bytes.
    compacted.code_density = profile.code_density * shrink;
    compacted
}

#[cfg(test)]
mod tests {
    use super::*;
    use occache_core::{simulate, CacheConfig};
    use occache_workloads::riscii_instruction_workload;
    use occache_workloads::ProgramGenerator;

    #[test]
    fn twenty_percent_reduction_at_paper_fraction() {
        let base = riscii_instruction_workload().profile().clone();
        let compacted = compact_profile(&base, 0.4);
        assert!((compacted.code_density - 0.8).abs() < 1e-12);
        // The instruction count is untouched; only the layout shrinks.
        assert_eq!(compacted.function_words, base.function_words);
    }

    #[test]
    fn zero_fraction_changes_only_nothing() {
        let base = riscii_instruction_workload().profile().clone();
        let same = compact_profile(&base, 0.0);
        assert_eq!(base, same);
    }

    #[test]
    fn compaction_improves_miss_ratio() {
        let base = riscii_instruction_workload().profile().clone();
        let compacted = compact_profile(&base, 0.4);
        let config = CacheConfig::builder()
            .net_size(512)
            .block_size(8)
            .sub_block_size(8)
            .associativity(1)
            .word_size(4)
            .build()
            .unwrap();
        let run = |p: &Profile| {
            let trace: Vec<_> = ProgramGenerator::new(p.clone(), 11).take(120_000).collect();
            simulate(config, trace, 0).miss_ratio()
        };
        let standard = run(&base);
        let improved = run(&compacted);
        assert!(
            improved < standard,
            "compacted {improved} vs standard {standard}"
        );
        let improvement = 1.0 - improved / standard;
        assert!(
            (0.05..0.6).contains(&improvement),
            "improvement {improvement} out of plausible band (paper: 0.27)"
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_fraction() {
        let base = riscii_instruction_workload().profile().clone();
        let _ = compact_profile(&base, 1.5);
    }
}
