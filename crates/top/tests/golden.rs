//! Golden-frame regression: a synthetic [`Frame`] exercising every
//! pane renders to byte-identical committed fixtures, in both plain
//! and ANSI modes.
//!
//! The fixtures were produced by this same test (run with
//! `OCCACHE_GOLDEN_REGEN=1`), so any renderer change that moves a
//! single byte fails here first — which is the property the binary's
//! diff-free full-redraw loop and the CI `--once --plain` gate both
//! depend on. The frame is synthetic (fixed counts, fixed uptimes) so
//! the output carries no wall-clock.

use std::path::{Path, PathBuf};

use occache_runtime::progress::ProgressSnapshot;
use occache_top::render::render;
use occache_top::sources::{
    ArtifactEntry, BenchSeries, Frame, NodeOps, PhaseRow, ReportSummary, RunEntry,
};

const WIDTH: usize = 100;

fn fixture_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join(name)
}

/// A frame that lights up every pane: a live phase with ETA, a
/// mid-flight report, one healthy node with peers in all three breaker
/// states plus one dead node, a clean and a torn journal, artifacts,
/// and two bench series.
fn reference_frame() -> Frame {
    Frame {
        results_dir: "results/".to_string(),
        progress: Some(ProgressSnapshot {
            artifact: "fig6".to_string(),
            total: 1024,
            computed: 500,
            restored: 12,
            failed: 3,
            timed_out: 2,
            quarantined: 1,
            retries: 4,
            engine_points: [420, 50, 18],
            direct_points: 12,
            elapsed_ms: 8_200,
            sealed: false,
            interrupted: false,
        }),
        report: Some(ReportSummary {
            in_progress: true,
            interrupted: false,
            phases: vec![
                PhaseRow {
                    artifact: "table7".to_string(),
                    computed: 120,
                    restored: 0,
                    failed: 0,
                    timed_out: 0,
                    quarantined: 0,
                    retries: 0,
                    wall_ms: 4_100,
                },
                PhaseRow {
                    artifact: "fig5".to_string(),
                    computed: 88,
                    restored: 40,
                    failed: 2,
                    timed_out: 1,
                    quarantined: 1,
                    retries: 3,
                    wall_ms: 65_000,
                },
            ],
        }),
        nodes: vec![
            NodeOps {
                addr: "127.0.0.1:7801".to_string(),
                reachable: true,
                service: "occache-serve".to_string(),
                uptime_s: Some(42),
                journal_replayed: Some(3),
                queue_depth: Some(2.0),
                shed_interactive: Some(0.0),
                shed_bulk: Some(5.0),
                p50_s: Some(0.004_1),
                p99_s: Some(0.017_9),
                peers: vec![
                    ("127.0.0.1:7801".to_string(), 2),
                    ("127.0.0.1:7802".to_string(), 1),
                    ("127.0.0.1:7803".to_string(), 0),
                ],
            },
            NodeOps {
                addr: "127.0.0.1:7804".to_string(),
                reachable: false,
                ..NodeOps::default()
            },
        ],
        runs: vec![
            RunEntry {
                artifact: "fig6".to_string(),
                points: 512,
                fails: 1,
                bad_lines: 0,
                torn_tail_bytes: 0,
                readable: true,
            },
            RunEntry {
                artifact: "table7".to_string(),
                points: 120,
                fails: 0,
                bad_lines: 2,
                torn_tail_bytes: 13,
                readable: true,
            },
        ],
        artifacts: vec![
            ArtifactEntry {
                name: "RUN_REPORT.json".to_string(),
                bytes: 800,
            },
            ArtifactEntry {
                name: "table7.txt".to_string(),
                bytes: 3_200,
            },
        ],
        bench: vec![
            BenchSeries {
                name: "sweep Mref/s".to_string(),
                unit: "M".to_string(),
                values: vec![25.0, 26.0, 24.0, 150.0, 207.7],
            },
            BenchSeries {
                name: "serve p99".to_string(),
                unit: "ms".to_string(),
                values: vec![18.0, 13.6],
            },
        ],
    }
}

fn check_or_regen(name: &str, rendered: &str) {
    let path = fixture_path(name);
    if std::env::var_os("OCCACHE_GOLDEN_REGEN").is_some() {
        std::fs::write(&path, rendered).expect("write golden fixture");
        eprintln!("regenerated {}", path.display());
        return;
    }
    let committed = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{name} missing ({e}); regenerate with OCCACHE_GOLDEN_REGEN=1"));
    assert_eq!(
        rendered, committed,
        "{name} diverged from the committed golden; if the change is \
         intentional, regenerate with OCCACHE_GOLDEN_REGEN=1"
    );
}

#[test]
fn plain_frame_matches_committed_golden() {
    check_or_regen("golden_plain.txt", &render(&reference_frame(), WIDTH, true));
}

#[test]
fn ansi_frame_matches_committed_golden() {
    check_or_regen("golden_ansi.txt", &render(&reference_frame(), WIDTH, false));
}

#[test]
fn render_is_deterministic_across_calls() {
    let frame = reference_frame();
    assert_eq!(
        render(&frame, WIDTH, false),
        render(&frame, WIDTH, false),
        "renderer must be a pure function of the frame"
    );
}
