//! The presentation layer: a pure function from a collected
//! [`Frame`](crate::sources::Frame) to the string one redraw prints.
//!
//! Byte-stable by construction — the same frame, width and mode always
//! produce the same bytes (the golden tests pin this), which is what
//! lets the binary redraw by full-screen replacement with no diffing
//! and lets `--once --plain` output feed shell pipelines and the CI
//! gate. ANSI mode adds colors and bold; plain mode is the identical
//! layout with no escape sequences at all.

use crate::sources::{Frame, NodeOps};

/// The widest a pane body line may grow before it is clipped.
pub const MIN_WIDTH: usize = 40;

const BOLD: &str = "\x1b[1m";
const DIM: &str = "\x1b[2m";
const RED: &str = "\x1b[31m";
const GREEN: &str = "\x1b[32m";
const YELLOW: &str = "\x1b[33m";
const CYAN: &str = "\x1b[36m";
const RESET: &str = "\x1b[0m";

/// The eight sparkline levels, U+2581 (lowest) through U+2588 (full).
const SPARKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Renders one full dashboard frame. `width` is clamped to at least
/// [`MIN_WIDTH`]; `plain` suppresses every ANSI escape.
pub fn render(frame: &Frame, width: usize, plain: bool) -> String {
    let width = width.max(MIN_WIDTH);
    let style = Style { plain };
    let mut out = String::new();
    let mut push = |line: String| {
        out.push_str(&clip(&line, width));
        out.push('\n');
    };

    push(style.paint(
        BOLD,
        &format!("occache-top — results: {}", frame.results_dir),
    ));

    push(style.rule("SWEEP", width));
    render_sweep(frame, width, &style, &mut push);

    push(style.rule("OPS", width));
    render_ops(frame, &style, &mut push);

    push(style.rule("RUNS", width));
    render_runs(frame, &style, &mut push);

    push(style.rule("BENCH", width));
    render_bench(frame, &style, &mut push);

    out
}

struct Style {
    plain: bool,
}

impl Style {
    fn paint(&self, code: &str, text: &str) -> String {
        if self.plain {
            text.to_string()
        } else {
            format!("{code}{text}{RESET}")
        }
    }

    /// A pane divider: `── TITLE ────…` padded out to `width`.
    fn rule(&self, title: &str, width: usize) -> String {
        let head = format!("── {title} ");
        let tail = "─".repeat(width.saturating_sub(head.chars().count()));
        self.paint(CYAN, &format!("{head}{tail}"))
    }
}

fn render_sweep(frame: &Frame, width: usize, style: &Style, push: &mut impl FnMut(String)) {
    match &frame.progress {
        None => push(style.paint(DIM, " no progress feed (.checkpoint/PROGRESS.json)")),
        Some(p) => {
            let done = p.computed + p.restored + p.failed + p.quarantined;
            let pct = if p.total == 0 {
                100.0
            } else {
                100.0 * done as f64 / p.total as f64
            };
            let state = if p.interrupted {
                style.paint(RED, "interrupted")
            } else if p.sealed {
                style.paint(GREEN, "sealed")
            } else {
                style.paint(YELLOW, "live")
            };
            let eta = match p.eta_ms() {
                Some(ms) if !p.sealed => format!("  ETA {}", fmt_ms(ms)),
                _ => String::new(),
            };
            let bar_width = (width / 4).clamp(10, 30);
            push(format!(
                " {}  {}  {}/{} pts  {:.1}%  {}{}",
                p.artifact,
                bar(done, p.total, bar_width),
                done,
                p.total,
                pct,
                state,
                eta,
            ));
            push(format!(
                "   computed {}  restored {}  failed {} ({} timeout)  quarantined {}  retries {}  elapsed {}",
                p.computed,
                p.restored,
                p.failed,
                p.timed_out,
                p.quarantined,
                p.retries,
                fmt_ms(p.elapsed_ms),
            ));
            // Which evaluation path computed the points: the three
            // one-pass slice engines and the direct-simulator fallback.
            // `direct` is the column an operator wants at zero on a
            // stock grid, so it gets the warning color when non-zero.
            let direct = if p.direct_points == 0 {
                style.paint(GREEN, "direct 0")
            } else {
                style.paint(YELLOW, &format!("direct {}", p.direct_points))
            };
            push(format!(
                "   engines: lru {}  fifo {}  random {}  {}",
                p.engine_points[0], p.engine_points[1], p.engine_points[2], direct,
            ));
        }
    }
    if let Some(report) = &frame.report {
        let state = if report.interrupted {
            style.paint(RED, "interrupted")
        } else if report.in_progress {
            style.paint(YELLOW, "in progress")
        } else {
            style.paint(GREEN, "complete")
        };
        push(format!(
            " report: {state}  ({} phases)",
            report.phases.len()
        ));
        if !report.phases.is_empty() {
            push(style.paint(
                DIM,
                &format!(
                    "   {:<14} {:>8} {:>8} {:>6} {:>4} {:>4} {:>5} {:>9}",
                    "phase", "computed", "restored", "failed", "t/o", "quar", "retry", "wall"
                ),
            ));
        }
        for p in &report.phases {
            push(format!(
                "   {:<14} {:>8} {:>8} {:>6} {:>4} {:>4} {:>5} {:>9}",
                p.artifact,
                p.computed,
                p.restored,
                p.failed,
                p.timed_out,
                p.quarantined,
                p.retries,
                fmt_ms(u128::from(p.wall_ms)),
            ));
        }
    }
}

fn render_ops(frame: &Frame, style: &Style, push: &mut impl FnMut(String)) {
    if frame.nodes.is_empty() {
        push(style.paint(DIM, " no nodes (pass --metrics host:port[,host:port])"));
        return;
    }
    for node in &frame.nodes {
        if !node.reachable {
            push(format!(
                " {}  {}",
                node.addr,
                style.paint(RED, "unreachable")
            ));
            continue;
        }
        push(format!(
            " {}  {}  up {}  replayed {}",
            node.addr,
            style.paint(BOLD, &node.service),
            node.uptime_s
                .map_or_else(|| "?".into(), |s| format!("{s}s")),
            fmt_opt_count(node.journal_replayed),
        ));
        push(format!(
            "   queue {}  shed {}i/{}b  p50 {}  p99 {}",
            fmt_opt_f64(node.queue_depth, 0),
            fmt_opt_f64(node.shed_interactive, 0),
            fmt_opt_f64(node.shed_bulk, 0),
            fmt_opt_seconds(node.p50_s),
            fmt_opt_seconds(node.p99_s),
        ));
        if !node.peers.is_empty() {
            push(format!("   peers: {}", peer_list(node, style)));
        }
    }
}

fn peer_list(node: &NodeOps, style: &Style) -> String {
    node.peers
        .iter()
        .map(|(addr, state)| {
            let label = match state {
                2 => style.paint(GREEN, "up"),
                1 => style.paint(YELLOW, "half-open"),
                _ => style.paint(RED, "down"),
            };
            format!("{addr} {label}")
        })
        .collect::<Vec<_>>()
        .join("  ")
}

fn render_runs(frame: &Frame, style: &Style, push: &mut impl FnMut(String)) {
    if frame.runs.is_empty() {
        push(style.paint(DIM, " no checkpoint journals"));
    } else {
        push(style.paint(
            DIM,
            &format!(
                "   {:<14} {:>7} {:>6}  integrity",
                "journal", "points", "fails"
            ),
        ));
        for run in &frame.runs {
            let integrity = if !run.readable {
                style.paint(RED, "unreadable")
            } else if run.healthy() {
                style.paint(GREEN, "ok")
            } else {
                let mut issues = Vec::new();
                if run.bad_lines > 0 {
                    issues.push(format!("{} bad lines", run.bad_lines));
                }
                if run.torn_tail_bytes > 0 {
                    issues.push(format!("torn tail ({}B)", run.torn_tail_bytes));
                }
                style.paint(YELLOW, &issues.join(", "))
            };
            push(format!(
                "   {:<14} {:>7} {:>6}  {}",
                run.artifact, run.points, run.fails, integrity
            ));
        }
    }
    if !frame.artifacts.is_empty() {
        let list = frame
            .artifacts
            .iter()
            .map(|a| format!("{} {}", a.name, fmt_bytes(a.bytes)))
            .collect::<Vec<_>>()
            .join("  ");
        push(format!(" artifacts: {list}"));
    }
}

fn render_bench(frame: &Frame, style: &Style, push: &mut impl FnMut(String)) {
    if frame.bench.is_empty() {
        push(style.paint(DIM, " no committed benchmarks"));
        return;
    }
    for series in &frame.bench {
        let latest = series.values.last().copied().unwrap_or(0.0);
        push(format!(
            " {:<14} {}  {:.1}{}  ({} commits)",
            series.name,
            sparkline(&series.values),
            latest,
            series.unit,
            series.values.len(),
        ));
    }
}

/// A fixed-width progress bar, `#` for done and `.` for remaining.
pub fn bar(done: usize, total: usize, width: usize) -> String {
    // An empty phase (total 0) renders as fully done.
    let filled = (done * width)
        .checked_div(total)
        .map_or(width, |f| f.min(width));
    format!("[{}{}]", "#".repeat(filled), ".".repeat(width - filled))
}

/// A unicode sparkline, one character per value, min-max normalized.
/// A constant (or single-value) series renders at the lowest level so
/// flat history looks flat.
pub fn sparkline(values: &[f64]) -> String {
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in values {
        if v.is_finite() {
            lo = lo.min(v);
            hi = hi.max(v);
        }
    }
    if !lo.is_finite() || !hi.is_finite() {
        return String::new();
    }
    let span = hi - lo;
    values
        .iter()
        .map(|&v| {
            if !v.is_finite() {
                return ' ';
            }
            if span <= f64::EPSILON {
                return SPARKS[0];
            }
            let level = ((v - lo) / span * 7.0).round() as usize;
            SPARKS[level.min(7)]
        })
        .collect()
}

/// Milliseconds as a human duration: `8.2s`, `03:25`, `1:07:09`.
pub fn fmt_ms(ms: u128) -> String {
    let secs = ms / 1000;
    if secs < 60 {
        return format!("{:.1}s", ms as f64 / 1000.0);
    }
    let (h, m, s) = (secs / 3600, (secs % 3600) / 60, secs % 60);
    if h == 0 {
        format!("{m:02}:{s:02}")
    } else {
        format!("{h}:{m:02}:{s:02}")
    }
}

/// Bytes as a short size: `800B`, `1.2K`, `3.4M`.
pub fn fmt_bytes(bytes: u64) -> String {
    if bytes < 1024 {
        format!("{bytes}B")
    } else if bytes < 1024 * 1024 {
        format!("{:.1}K", bytes as f64 / 1024.0)
    } else {
        format!("{:.1}M", bytes as f64 / (1024.0 * 1024.0))
    }
}

fn fmt_opt_count(v: Option<u64>) -> String {
    v.map_or_else(|| "?".into(), |n| n.to_string())
}

fn fmt_opt_f64(v: Option<f64>, decimals: usize) -> String {
    v.map_or_else(|| "?".into(), |n| format!("{n:.decimals$}"))
}

fn fmt_opt_seconds(v: Option<f64>) -> String {
    v.map_or_else(|| "?".into(), |s| format!("{:.1}ms", s * 1e3))
}

/// Clips a line to `width` visible characters, passing ANSI CSI
/// sequences through without counting them (and never splitting one).
pub fn clip(line: &str, width: usize) -> String {
    let mut out = String::new();
    let mut visible = 0usize;
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        if c == '\x1b' {
            // Copy the whole CSI sequence: ESC '[' params final-byte.
            out.push(c);
            if chars.peek() == Some(&'[') {
                for e in chars.by_ref() {
                    out.push(e);
                    if e.is_ascii_alphabetic() {
                        break;
                    }
                }
            }
            continue;
        }
        if visible >= width {
            // Keep consuming so trailing reset sequences still land.
            continue;
        }
        out.push(c);
        visible += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sources::BenchSeries;

    #[test]
    fn bar_fills_proportionally_and_handles_empty_totals() {
        assert_eq!(bar(0, 10, 10), "[..........]");
        assert_eq!(bar(5, 10, 10), "[#####.....]");
        assert_eq!(bar(10, 10, 10), "[##########]");
        assert_eq!(bar(0, 0, 4), "[####]", "empty phase counts as done");
        assert_eq!(bar(20, 10, 10), "[##########]", "overshoot clamps");
    }

    #[test]
    fn sparkline_normalizes_and_survives_degenerate_series() {
        assert_eq!(sparkline(&[1.0, 2.0, 3.0]).chars().count(), 3);
        assert_eq!(sparkline(&[0.0, 7.0]), "▁█");
        assert_eq!(sparkline(&[5.0, 5.0, 5.0]), "▁▁▁", "flat stays flat");
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[f64::NAN]), "");
    }

    #[test]
    fn durations_and_sizes_read_naturally() {
        assert_eq!(fmt_ms(8_200), "8.2s");
        assert_eq!(fmt_ms(205_000), "03:25");
        assert_eq!(fmt_ms(4_029_000), "1:07:09");
        assert_eq!(fmt_bytes(800), "800B");
        assert_eq!(fmt_bytes(1_228), "1.2K");
        assert_eq!(fmt_bytes(3_565_158), "3.4M");
    }

    #[test]
    fn clip_counts_visible_chars_not_escape_bytes() {
        assert_eq!(clip("abcdef", 4), "abcd");
        assert_eq!(clip("ab", 4), "ab");
        let colored = format!("{RED}abcdef{RESET}");
        let clipped = clip(&colored, 4);
        assert!(clipped.starts_with(RED));
        assert!(clipped.ends_with(RESET), "reset survives the clip");
        assert!(clipped.contains("abcd"));
        assert!(!clipped.contains("abcde"));
    }

    #[test]
    fn plain_mode_emits_no_escapes_and_every_pane_header() {
        let frame = Frame {
            results_dir: "results/".into(),
            bench: vec![BenchSeries {
                name: "sweep Mref/s".into(),
                unit: "M".into(),
                values: vec![1.0, 2.0],
            }],
            ..Frame::default()
        };
        let text = render(&frame, 100, true);
        assert!(!text.contains('\x1b'));
        for pane in ["SWEEP", "OPS", "RUNS", "BENCH"] {
            assert!(text.contains(pane), "missing pane {pane} in:\n{text}");
        }
        assert!(text.contains("no progress feed"));
        assert!(text.contains("sweep Mref/s"));
        let ansi = render(&frame, 100, false);
        assert!(ansi.contains('\x1b'));
    }
}
