//! `occache-top` — live operations dashboard and run browser.
//!
//! Interactive mode takes over the alternate screen and redraws the
//! full frame every tick (no diffing: the renderer is byte-stable and
//! a frame is a few KB). `--once` collects and prints a single frame
//! and exits, and `--plain` drops every ANSI escape — together they
//! make the dashboard scriptable, which is how the CI observability
//! gate consumes it. `--parse-metrics FILE --get NAME` bypasses the
//! dashboard entirely and runs one file through the strict Prometheus
//! text parser, replacing fragile `grep`s over `/metrics` dumps.
//!
//! Environment: `OCCACHE_RESULTS` (results directory), `OCCACHE_TOP_TICK`
//! (tick interval ms, min 100), `COLUMNS` (frame width).

use std::io::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use occache_runtime::instrument::Exposition;
use occache_runtime::{config, interrupt};
use occache_top::render::render;
use occache_top::sources::{collect, CollectConfig};

const ENTER_ALT: &str = "\x1b[?1049h\x1b[?25l";
const LEAVE_ALT: &str = "\x1b[?1049l\x1b[?25h";
const HOME_CLEAR: &str = "\x1b[H\x1b[2J";

const USAGE: &str = "\
occache-top: live operations dashboard and run browser

USAGE:
    occache-top [OPTIONS]
    occache-top --parse-metrics FILE --get NAME

OPTIONS:
    --once                collect and print one frame, then exit
    --plain               no ANSI escapes (implies no alternate screen)
    --results DIR         results directory [default: $OCCACHE_RESULTS or results]
    --metrics ADDRS       comma-separated host:port list to scrape
    --tick MS             redraw interval [default: $OCCACHE_TOP_TICK or 1000]
    --width COLS          frame width [default: $COLUMNS or 100]
    --no-bench            skip the benchmark-trajectory pane (no git walks)
    --parse-metrics FILE  parse FILE as Prometheus text, then exit
    --get NAME            with --parse-metrics: print the sample NAME;
                          NAME may carry a label block, e.g.
                          occache_peer_state{peer=\"127.0.0.1:7801\"}
    --help                print this help
";

struct Options {
    once: bool,
    plain: bool,
    results: PathBuf,
    metrics: Vec<String>,
    tick: Duration,
    width: usize,
    bench: bool,
    parse_metrics: Option<PathBuf>,
    get: Option<String>,
}

fn env_or<T>(name: &str, parse: impl Fn(&str) -> Option<T>, default: T) -> T {
    std::env::var(name)
        .ok()
        .and_then(|v| parse(v.trim()))
        .unwrap_or(default)
}

fn parse_options() -> Result<Options, String> {
    let tick_ms = config::try_top_tick_ms()?;
    let mut opts = Options {
        once: false,
        plain: false,
        results: PathBuf::from(env_or(
            "OCCACHE_RESULTS",
            |v| Some(v.to_string()),
            "results".into(),
        )),
        metrics: Vec::new(),
        tick: Duration::from_millis(tick_ms),
        width: env_or("COLUMNS", |v| v.parse().ok(), 100),
        bench: true,
        parse_metrics: None,
        get: None,
    };
    let mut args = std::env::args().skip(1);
    let value = |args: &mut dyn Iterator<Item = String>, flag: &str| {
        args.next().ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--once" => opts.once = true,
            "--plain" => opts.plain = true,
            "--no-bench" => opts.bench = false,
            "--results" => opts.results = PathBuf::from(value(&mut args, "--results")?),
            "--metrics" => {
                opts.metrics = value(&mut args, "--metrics")?
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(str::to_string)
                    .collect();
            }
            "--tick" => {
                let ms: u64 = value(&mut args, "--tick")?
                    .parse()
                    .map_err(|e| format!("--tick: {e}"))?;
                opts.tick = Duration::from_millis(ms.max(100));
            }
            "--width" => {
                opts.width = value(&mut args, "--width")?
                    .parse()
                    .map_err(|e| format!("--width: {e}"))?;
            }
            "--parse-metrics" => {
                opts.parse_metrics = Some(PathBuf::from(value(&mut args, "--parse-metrics")?));
            }
            "--get" => opts.get = Some(value(&mut args, "--get")?),
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other} (try --help)")),
        }
    }
    if opts.get.is_some() && opts.parse_metrics.is_none() {
        return Err("--get requires --parse-metrics".into());
    }
    Ok(opts)
}

/// `--parse-metrics FILE [--get NAME]`: validate FILE through the
/// strict exposition parser; with `--get`, print one sample's raw
/// value. Exit 0 on found/valid, 1 on not-found, 2 on parse error —
/// so shell gates distinguish "metric absent" from "output corrupt".
fn run_parse_metrics(file: &PathBuf, get: Option<&str>) -> ExitCode {
    let text = match std::fs::read_to_string(file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("occache-top: {}: {e}", file.display());
            return ExitCode::from(2);
        }
    };
    let exposition = match Exposition::parse(&text) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("occache-top: {}: {e}", file.display());
            return ExitCode::from(2);
        }
    };
    let Some(query) = get else {
        println!("ok: {} families", exposition.families.len());
        return ExitCode::SUCCESS;
    };
    // Split an optional label block off the query: name{labels}.
    let (name, labels) = match query.split_once('{') {
        Some((n, rest)) => (n, Some(format!("{{{rest}"))),
        None => (query, None),
    };
    let sample = exposition.family(name).and_then(|family| {
        family
            .samples
            .iter()
            .find(|s| labels.as_deref().is_none_or(|want| s.labels == want))
    });
    match sample {
        Some(s) => {
            println!("{}", s.raw_value);
            ExitCode::SUCCESS
        }
        None => {
            eprintln!("occache-top: no sample matches {query}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let opts = match parse_options() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("occache-top: {e}");
            return ExitCode::from(2);
        }
    };
    if let Some(file) = &opts.parse_metrics {
        return run_parse_metrics(file, opts.get.as_deref());
    }

    let config = CollectConfig {
        results_dir: opts.results.clone(),
        metrics_addrs: opts.metrics.clone(),
        repo_dir: opts.bench.then(|| PathBuf::from(".")),
    };

    if opts.once {
        print!("{}", render(&collect(&config), opts.width, opts.plain));
        return ExitCode::SUCCESS;
    }

    interrupt::install();
    let mut stdout = std::io::stdout();
    if !opts.plain {
        let _ = stdout.write_all(ENTER_ALT.as_bytes());
    }
    // Redraw until interrupted. Restore the terminal on every exit
    // path — the alternate screen must never leak past the process.
    while !interrupt::requested() {
        let frame = collect(&config);
        let text = render(&frame, opts.width, opts.plain);
        let mut ok = true;
        if opts.plain {
            ok &= stdout.write_all(text.as_bytes()).is_ok();
        } else {
            ok &= stdout.write_all(HOME_CLEAR.as_bytes()).is_ok();
            ok &= stdout.write_all(text.as_bytes()).is_ok();
        }
        ok &= stdout.flush().is_ok();
        if !ok {
            // Downstream closed (e.g. piped to head): stop quietly.
            break;
        }
        // Sleep in short slices so an interrupt ends the loop promptly
        // even with a slow tick.
        let mut left = opts.tick;
        while !interrupt::requested() && left > Duration::ZERO {
            let slice = left.min(Duration::from_millis(50));
            std::thread::sleep(slice);
            left = left.saturating_sub(slice);
        }
    }
    if !opts.plain {
        let _ = stdout.write_all(LEAVE_ALT.as_bytes());
        let _ = stdout.flush();
    }
    ExitCode::SUCCESS
}
