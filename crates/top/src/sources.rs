//! The data layer of the dashboard: every pane's content, collected
//! into one plain [`Frame`] value with no terminal or timing concerns.
//!
//! Each source degrades independently — a missing progress file, an
//! unreachable node or a repo without committed benchmarks leaves its
//! pane empty instead of failing the collection — so the dashboard is
//! usable at every stage of a run's life. Everything here is pure with
//! respect to rendering: [`collect`] reads the world once and the
//! renderer ([`crate::render`]) turns the resulting [`Frame`] into a
//! string, which is what makes both sides testable without a terminal.

use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::Duration;

use occache_runtime::instrument::Exposition;
use occache_runtime::journal;
use occache_runtime::progress::{progress_path, read_progress, ProgressSnapshot};
use occache_serve::json::Json;
use occache_serve::peer::http_call;

/// How long a node scrape may take before the ops pane marks the node
/// unreachable. Short: a dashboard must never hang on a dead peer.
pub const SCRAPE_TIMEOUT: Duration = Duration::from_secs(2);

/// How many committed benchmark revisions the trajectory pane walks.
pub const BENCH_DEPTH: usize = 16;

/// Everything the renderer needs for one full redraw.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Frame {
    /// The results directory the sweep panes were read from.
    pub results_dir: String,
    /// The live (or last sealed) sweep phase, if a progress feed exists.
    pub progress: Option<ProgressSnapshot>,
    /// The run report accumulated so far, if RUN_REPORT.json exists.
    pub report: Option<ReportSummary>,
    /// One entry per scraped node, in `--metrics` order.
    pub nodes: Vec<NodeOps>,
    /// The run browser: every checkpoint journal under the results dir.
    pub runs: Vec<RunEntry>,
    /// Result artifacts (non-hidden files) under the results dir.
    pub artifacts: Vec<ArtifactEntry>,
    /// Benchmark trajectories over committed history, oldest first.
    pub bench: Vec<BenchSeries>,
}

/// RUN_REPORT.json, reduced to what the report pane shows.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReportSummary {
    /// True while a run is mid-flight (phase-boundary flush); false once
    /// the final sealed report landed.
    pub in_progress: bool,
    /// True when the run was stopped by SIGINT/SIGTERM.
    pub interrupted: bool,
    /// Per-phase rows, in recording order.
    pub phases: Vec<PhaseRow>,
}

/// One phase line of RUN_REPORT.json.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PhaseRow {
    /// The artifact (journal) name.
    pub artifact: String,
    /// Points computed in the run.
    pub computed: u64,
    /// Points restored from the journal.
    pub restored: u64,
    /// Failed points, all classes.
    pub failed: u64,
    /// Deadline overruns among the failures.
    pub timed_out: u64,
    /// Points skipped as quarantined.
    pub quarantined: u64,
    /// Supervisor retry attempts.
    pub retries: u64,
    /// Phase wall-clock, milliseconds.
    pub wall_ms: u64,
}

/// One scraped serve/route node for the ops pane.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NodeOps {
    /// The address that was scraped.
    pub addr: String,
    /// False when neither endpoint answered inside [`SCRAPE_TIMEOUT`].
    pub reachable: bool,
    /// `"occache-serve"` / `"occache-route"` from `/v1/status`.
    pub service: String,
    /// Integer uptime from `/v1/status`.
    pub uptime_s: Option<u64>,
    /// Points replayed from the write-behind journal at startup.
    pub journal_replayed: Option<u64>,
    /// Live queue depth.
    pub queue_depth: Option<f64>,
    /// Interactive-class requests shed under overload.
    pub shed_interactive: Option<f64>,
    /// Bulk-class requests shed under overload.
    pub shed_bulk: Option<f64>,
    /// Request latency p50, seconds.
    pub p50_s: Option<f64>,
    /// Request latency p99, seconds.
    pub p99_s: Option<f64>,
    /// Per-peer breaker state: 0 down, 1 half-open, 2 up.
    pub peers: Vec<(String, u64)>,
}

/// One checkpoint journal in the run browser.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunEntry {
    /// Artifact name (journal file stem).
    pub artifact: String,
    /// Intact completed points.
    pub points: usize,
    /// Keys with failure tombstones.
    pub fails: usize,
    /// Corrupt lines found by the scan.
    pub bad_lines: usize,
    /// Bytes of torn tail (crash mid-append).
    pub torn_tail_bytes: usize,
    /// False when the scan could not read the file at all.
    pub readable: bool,
}

impl RunEntry {
    /// Whether the journal needs no repair: every line intact, sealed
    /// newline present.
    pub fn healthy(&self) -> bool {
        self.readable && self.bad_lines == 0 && self.torn_tail_bytes == 0
    }
}

/// One result artifact file in the run browser.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ArtifactEntry {
    /// File name under the results directory.
    pub name: String,
    /// Size in bytes.
    pub bytes: u64,
}

/// One benchmark metric over committed history, oldest first.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BenchSeries {
    /// Display name, e.g. `"sweep Mref/s"`.
    pub name: String,
    /// Unit suffix for the latest value, e.g. `"M"` or `"ms"`.
    pub unit: String,
    /// The values, oldest first; the last entry is the newest commit.
    pub values: Vec<f64>,
}

/// What to collect; the binary builds this from flags and environment.
#[derive(Debug, Clone, Default)]
pub struct CollectConfig {
    /// The results directory for the sweep/report/run-browser panes.
    pub results_dir: PathBuf,
    /// Node addresses (`host:port`) for the ops pane.
    pub metrics_addrs: Vec<String>,
    /// Repository root for the bench trajectory pane; `None` skips it.
    pub repo_dir: Option<PathBuf>,
}

/// Reads the world once. Infallible by design: each absent or broken
/// source leaves its pane empty.
pub fn collect(config: &CollectConfig) -> Frame {
    Frame {
        results_dir: config.results_dir.display().to_string(),
        progress: read_progress(&progress_path(&config.results_dir)),
        report: read_report(&config.results_dir.join("RUN_REPORT.json")),
        nodes: config
            .metrics_addrs
            .iter()
            .map(|a| scrape_node(a))
            .collect(),
        runs: scan_runs(&config.results_dir),
        artifacts: scan_artifacts(&config.results_dir),
        bench: config
            .repo_dir
            .as_deref()
            .map(bench_trajectories)
            .unwrap_or_default(),
    }
}

/// Parses RUN_REPORT.json into a [`ReportSummary`]. `None` for a
/// missing or unparseable file.
pub fn read_report(path: &Path) -> Option<ReportSummary> {
    let text = std::fs::read_to_string(path).ok()?;
    parse_report(&text)
}

/// [`read_report`] on in-memory text (tests, and torn-read tolerance:
/// an unparseable flush-in-flight read is `None`, never a panic).
pub fn parse_report(text: &str) -> Option<ReportSummary> {
    let doc = Json::parse(text).ok()?;
    let phases = doc
        .get("phases")
        .and_then(Json::as_array)?
        .iter()
        .map(|p| {
            let field = |name: &str| p.get(name).and_then(Json::as_u64).unwrap_or(0);
            PhaseRow {
                artifact: p
                    .get("artifact")
                    .and_then(Json::as_str)
                    .unwrap_or("?")
                    .to_string(),
                computed: field("computed"),
                restored: field("restored"),
                failed: field("failed"),
                timed_out: field("timed_out"),
                quarantined: field("quarantined"),
                retries: field("retries"),
                wall_ms: field("wall_ms"),
            }
        })
        .collect();
    Some(ReportSummary {
        in_progress: doc
            .get("in_progress")
            .and_then(Json::as_bool)
            .unwrap_or(false),
        interrupted: doc
            .get("interrupted")
            .and_then(Json::as_bool)
            .unwrap_or(false),
        phases,
    })
}

/// Scrapes one node: `/v1/status` for the service summary, `/metrics`
/// (through the strict parser) for queue, shed, latency and breakers.
pub fn scrape_node(addr: &str) -> NodeOps {
    let mut node = NodeOps {
        addr: addr.to_string(),
        ..NodeOps::default()
    };
    if let Ok((200, body)) = http_call(addr, "GET", "/v1/status", b"", SCRAPE_TIMEOUT) {
        if let Ok(doc) = Json::parse(&String::from_utf8_lossy(&body)) {
            node.reachable = true;
            node.service = doc
                .get("service")
                .and_then(Json::as_str)
                .unwrap_or("?")
                .to_string();
            node.uptime_s = doc.get("uptime_s").and_then(Json::as_u64);
            node.journal_replayed = doc.get("journal_replayed").and_then(Json::as_u64);
        }
    }
    if let Ok((200, body)) = http_call(addr, "GET", "/metrics", b"", SCRAPE_TIMEOUT) {
        if let Ok(exposition) = Exposition::parse(&String::from_utf8_lossy(&body)) {
            node.reachable = true;
            node.queue_depth = exposition.value("occache_queue_depth");
            node.shed_interactive = exposition.value("occache_shed_interactive_total");
            node.shed_bulk = exposition.value("occache_shed_bulk_total");
            node.p50_s = exposition.labeled("occache_request_seconds", "quantile", "0.5");
            node.p99_s = exposition.labeled("occache_request_seconds", "quantile", "0.99");
            if let Some(family) = exposition.family("occache_peer_state") {
                node.peers = family
                    .samples
                    .iter()
                    .filter_map(|s| Some((s.label("peer")?.to_string(), s.value as u64)))
                    .collect();
            }
        }
    }
    node
}

/// Scans every checkpoint journal under `dir/.checkpoint/`, torn tails
/// and corrupt lines tolerated (they become integrity counts, exactly
/// as resume sees them).
pub fn scan_runs(dir: &Path) -> Vec<RunEntry> {
    let ckpt = dir.join(".checkpoint");
    let Ok(entries) = std::fs::read_dir(&ckpt) else {
        return Vec::new();
    };
    let mut runs: Vec<RunEntry> = entries
        .flatten()
        .filter_map(|e| {
            let name = e.file_name().into_string().ok()?;
            let artifact = name.strip_suffix(".jsonl")?.to_string();
            let entry = match journal::scan_journal(&e.path()) {
                Ok(scan) => RunEntry {
                    artifact,
                    points: scan.points.len(),
                    fails: scan.fails.len(),
                    bad_lines: scan.issues.len(),
                    torn_tail_bytes: scan.torn_tail_bytes,
                    readable: true,
                },
                Err(_) => RunEntry {
                    artifact,
                    readable: false,
                    ..RunEntry::default()
                },
            };
            Some(entry)
        })
        .collect();
    runs.sort_by(|a, b| a.artifact.cmp(&b.artifact));
    runs
}

/// Lists the non-hidden regular files of the results directory.
pub fn scan_artifacts(dir: &Path) -> Vec<ArtifactEntry> {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut artifacts: Vec<ArtifactEntry> = entries
        .flatten()
        .filter_map(|e| {
            let name = e.file_name().into_string().ok()?;
            if name.starts_with('.') {
                return None;
            }
            let meta = e.metadata().ok()?;
            meta.is_file().then_some(ArtifactEntry {
                name,
                bytes: meta.len(),
            })
        })
        .collect();
    artifacts.sort_by(|a, b| a.name.cmp(&b.name));
    artifacts
}

/// One `git` invocation in `repo`, stdout as a string; `None` on any
/// failure (no git, not a repo, no such revision). The dashboard never
/// requires version control — the bench pane just stays empty.
fn git(repo: &Path, args: &[&str]) -> Option<String> {
    let out = Command::new("git")
        .arg("-C")
        .arg(repo)
        .args(args)
        .output()
        .ok()?;
    out.status
        .success()
        .then(|| String::from_utf8_lossy(&out.stdout).into_owned())
}

/// The committed revisions of `file`, oldest first, newest-first input
/// from `git log` reversed, capped at [`BENCH_DEPTH`].
fn bench_revisions(repo: &Path, file: &str) -> Vec<String> {
    let depth = BENCH_DEPTH.to_string();
    let Some(log) = git(
        repo,
        &["log", "--format=%H", "--max-count", &depth, "--", file],
    ) else {
        return Vec::new();
    };
    let mut revs: Vec<String> = log.lines().map(str::to_string).collect();
    revs.reverse();
    revs
}

/// Extracts one numeric field from a committed benchmark revision.
fn bench_value(repo: &Path, rev: &str, file: &str, path: &[&str]) -> Option<f64> {
    let text = git(repo, &["show", &format!("{rev}:{file}")])?;
    let doc = Json::parse(&text).ok()?;
    let mut node = &doc;
    for key in path {
        node = node.get(key)?;
    }
    node.as_f64()
}

/// The benchmark trajectories: each committed revision of the two
/// benchmark files contributes one sample per series.
pub fn bench_trajectories(repo: &Path) -> Vec<BenchSeries> {
    let mut series = Vec::new();
    let mut push = |name: &str, unit: &str, file: &str, path: &[&str], scale: f64| {
        let values: Vec<f64> = bench_revisions(repo, file)
            .iter()
            .filter_map(|rev| bench_value(repo, rev, file, path).map(|v| v * scale))
            .collect();
        if !values.is_empty() {
            series.push(BenchSeries {
                name: name.to_string(),
                unit: unit.to_string(),
                values,
            });
        }
    };
    push(
        "sweep Mref/s",
        "M",
        "BENCH_sweep.json",
        &["effective_refs_per_sec"],
        1e-6,
    );
    push("sweep speedup", "x", "BENCH_sweep.json", &["speedup"], 1.0);
    push(
        "serve p99",
        "ms",
        "BENCH_serve.json",
        &["singles", "p99_seconds"],
        1e3,
    );
    push(
        "batch pts/s",
        "",
        "BENCH_serve.json",
        &["batch", "throughput_pps"],
        1.0,
    );
    series
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_parses_the_experiments_renderer_output() {
        let text = "{\n\"in_progress\": true,\n\"interrupted\": false,\n\"phases\": [\n\
                    {\"artifact\":\"table7\",\"computed\":10,\"restored\":5,\"failed\":1,\
                    \"timed_out\":1,\"quarantined\":0,\"non_finite\":0,\"retries\":2,\
                    \"abandoned_threads\":1,\"bad_journal_lines\":0,\"repaired_tail_bytes\":0,\
                    \"wall_ms\":42,\"trace_fp\":\"0000000000000abc\",\"config_fp\":\"0000000000000def\"}],\n\
                    \"totals\": {\n\"phases\": 1\n}\n}\n";
        let report = parse_report(text).expect("parse");
        assert!(report.in_progress);
        assert!(!report.interrupted);
        assert_eq!(report.phases.len(), 1);
        let p = &report.phases[0];
        assert_eq!(p.artifact, "table7");
        assert_eq!((p.computed, p.restored, p.failed), (10, 5, 1));
        assert_eq!((p.timed_out, p.retries, p.wall_ms), (1, 2, 42));
    }

    #[test]
    fn torn_report_reads_reject_cleanly() {
        assert_eq!(parse_report(""), None);
        assert_eq!(parse_report("{\"interrupted\": fal"), None);
        assert_eq!(parse_report("{\"interrupted\": false}"), None, "no phases");
    }

    #[test]
    fn run_and_artifact_scans_tolerate_absence_and_damage() {
        let dir = std::env::temp_dir().join(format!("occache-top-scan-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        assert!(scan_runs(&dir).is_empty(), "missing dir");
        assert!(scan_artifacts(&dir).is_empty(), "missing dir");
        std::fs::create_dir_all(dir.join(".checkpoint")).expect("mkdir");
        std::fs::write(dir.join(".checkpoint/torn.jsonl"), b"{\"v\":2,\"key\"").expect("write");
        std::fs::write(dir.join("table7.json"), b"{}").expect("write");
        std::fs::write(dir.join(".hidden"), b"x").expect("write");
        let runs = scan_runs(&dir);
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].artifact, "torn");
        assert!(!runs[0].healthy(), "{:?}", runs[0]);
        let artifacts = scan_artifacts(&dir);
        assert_eq!(artifacts.len(), 1);
        assert_eq!(artifacts[0].name, "table7.json");
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn unreachable_node_is_marked_not_fatal() {
        // A port from the TCP test range nothing listens on: bind one,
        // take its address, drop the listener.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        drop(listener);
        let node = scrape_node(&addr);
        assert!(!node.reachable);
        assert_eq!(node.addr, addr);
        assert_eq!(node.queue_depth, None);
    }
}
