//! `occache-top`: live operations dashboard and run browser for the
//! occache workspace.
//!
//! The crate is split the same way the dashboards it replaces were
//! not: [`sources`] is the pure data layer (read the progress feed,
//! the run report, node `/v1/status` + `/metrics`, checkpoint
//! journals and committed benchmarks into one [`sources::Frame`]),
//! and [`render`] is a pure `Frame -> String` function. Neither side
//! touches a terminal, so both are testable headlessly; the binary
//! (`occache-top`) only owns flags, the tick loop and the alternate
//! screen. Std-only, like the rest of the workspace: the TUI is
//! hand-rolled ANSI, not a widget library.

pub mod render;
pub mod sources;
