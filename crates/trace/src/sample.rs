//! Deterministic sampling utilities used by the synthetic workload models.
//!
//! The workload generators (crate `occache-workloads`) need a few standard
//! distributions with *reproducible* draws: a Zipf sampler for hot-set
//! selection (functions, global variables), and a bounded geometric sampler
//! for run lengths (basic blocks, array bursts). Both are small, exact and
//! seedable so that every named trace in the study is a pure function of its
//! seed.

use rand::Rng;

/// Zipf-distributed sampler over ranks `0..n` with exponent `s`.
///
/// Rank 0 is the most popular item. Sampling is by binary search over the
/// precomputed CDF — O(log n) per draw, exact, and allocation-free after
/// construction.
///
/// ```
/// use occache_trace::sample::Zipf;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let zipf = Zipf::new(100, 1.0);
/// let mut rng = StdRng::seed_from_u64(7);
/// let first = zipf.sample(&mut rng);
/// assert!(first < 100);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds a sampler over `n` ranks with exponent `s` (`s >= 0`).
    ///
    /// `s = 0` is the uniform distribution; larger `s` concentrates mass on
    /// low ranks.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is negative or non-finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf over an empty domain");
        assert!(
            s >= 0.0 && s.is_finite(),
            "Zipf exponent must be finite and >= 0"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for rank in 0..n {
            total += 1.0 / ((rank + 1) as f64).powf(s);
            cdf.push(total);
        }
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks in the domain.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the domain is empty (never true; kept for API completeness).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws a rank in `0..len()`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        // partition_point returns the count of entries < u, i.e. the first
        // rank whose CDF value reaches u.
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// Draws a run length from a geometric distribution with mean `mean`,
/// clamped to `1..=max`.
///
/// Used for basic-block lengths and sequential data bursts; the clamp keeps
/// generated runs inside their region.
///
/// # Panics
///
/// Panics if `mean < 1.0` or `max == 0`.
pub fn geometric_run<R: Rng + ?Sized>(rng: &mut R, mean: f64, max: usize) -> usize {
    assert!(mean >= 1.0, "geometric mean run length must be >= 1");
    assert!(max > 0, "max run length must be positive");
    if mean == 1.0 {
        return 1;
    }
    // Run length L >= 1 with P(L = k) = (1-p)^(k-1) p has mean 1/p.
    let p = 1.0 / mean;
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let len = 1 + (u.ln() / (1.0 - p).ln()).floor() as usize;
    len.clamp(1, max)
}

/// Returns `true` with probability `p`.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]`.
pub fn chance<R: Rng + ?Sized>(rng: &mut R, p: f64) -> bool {
    assert!((0.0..=1.0).contains(&p), "probability out of range");
    if p <= 0.0 {
        false
    } else if p >= 1.0 {
        true
    } else {
        rng.gen::<f64>() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zipf_prefers_low_ranks() {
        let zipf = Zipf::new(50, 1.2);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = vec![0usize; 50];
        for _ in 0..20_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[0] > counts[49] * 5);
    }

    #[test]
    fn zipf_zero_exponent_is_roughly_uniform() {
        let zipf = Zipf::new(4, 0.0);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = vec![0usize; 4];
        for _ in 0..40_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 600.0, "counts {counts:?}");
        }
    }

    #[test]
    fn zipf_samples_in_range() {
        let zipf = Zipf::new(3, 2.0);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(zipf.sample(&mut rng) < 3);
        }
    }

    #[test]
    #[should_panic(expected = "empty domain")]
    fn zipf_rejects_empty_domain() {
        let _ = Zipf::new(0, 1.0);
    }

    #[test]
    fn geometric_run_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let len = geometric_run(&mut rng, 6.0, 20);
            assert!((1..=20).contains(&len));
        }
    }

    #[test]
    fn geometric_run_mean_is_close() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 50_000;
        let total: usize = (0..n).map(|_| geometric_run(&mut rng, 5.0, 1000)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 5.0).abs() < 0.2, "observed mean {mean}");
    }

    #[test]
    fn geometric_mean_one_is_constant() {
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..100 {
            assert_eq!(geometric_run(&mut rng, 1.0, 10), 1);
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = StdRng::seed_from_u64(7);
        assert!(!chance(&mut rng, 0.0));
        assert!(chance(&mut rng, 1.0));
    }

    #[test]
    fn chance_is_calibrated() {
        let mut rng = StdRng::seed_from_u64(8);
        let hits = (0..50_000).filter(|_| chance(&mut rng, 0.25)).count();
        let frac = hits as f64 / 50_000.0;
        assert!((frac - 0.25).abs() < 0.02, "observed {frac}");
    }
}
