//! A compact, structure-of-arrays trace buffer.
//!
//! A [`MemRef`] is 16 bytes (a padded `u64` address plus a discriminant);
//! a million-reference trace held as `Vec<MemRef>` costs 16 MB per copy
//! and streams poorly when several sweep workers walk it at once.
//! [`PackedTrace`] stores the same information as parallel `Vec<u64>`
//! addresses and one kind byte per reference — 9 bytes per reference —
//! and yields `MemRef`s on iteration, so simulators consume it unchanged.
//!
//! The experiment harness wraps a `PackedTrace` in an [`Arc`] and shares
//! it by reference across the sweep worker pool: cloning a trace set is
//! then a reference-count bump, not a copy of the reference stream.
//!
//! [`Arc`]: std::sync::Arc

use crate::record::{AccessKind, MemRef};

const KIND_IFETCH: u8 = 0;
const KIND_READ: u8 = 1;
const KIND_WRITE: u8 = 2;

const fn kind_to_byte(kind: AccessKind) -> u8 {
    match kind {
        AccessKind::InstrFetch => KIND_IFETCH,
        AccessKind::DataRead => KIND_READ,
        AccessKind::DataWrite => KIND_WRITE,
    }
}

const fn byte_to_kind(byte: u8) -> AccessKind {
    match byte {
        KIND_IFETCH => AccessKind::InstrFetch,
        KIND_READ => AccessKind::DataRead,
        // Kind bytes are private and only written by `push`, so anything
        // else is unreachable; mapping it keeps decoding branch-cheap.
        _ => AccessKind::DataWrite,
    }
}

/// A reference stream stored as separate address and kind arrays
/// (structure-of-arrays), 9 bytes per reference instead of 16.
///
/// ```
/// use occache_trace::{MemRef, PackedTrace};
///
/// let packed: PackedTrace = vec![MemRef::ifetch(0x100), MemRef::write(0x8)]
///     .into_iter()
///     .collect();
/// assert_eq!(packed.len(), 2);
/// let back: Vec<MemRef> = packed.iter().collect();
/// assert_eq!(back[0], MemRef::ifetch(0x100));
/// assert_eq!(back[1], MemRef::write(0x8));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PackedTrace {
    addrs: Vec<u64>,
    kinds: Vec<u8>,
}

impl PackedTrace {
    /// Creates an empty trace buffer.
    pub fn new() -> Self {
        PackedTrace::default()
    }

    /// Creates an empty buffer with room for `capacity` references.
    pub fn with_capacity(capacity: usize) -> Self {
        PackedTrace {
            addrs: Vec::with_capacity(capacity),
            kinds: Vec::with_capacity(capacity),
        }
    }

    /// Appends one reference.
    pub fn push(&mut self, r: MemRef) {
        self.addrs.push(r.address().value());
        self.kinds.push(kind_to_byte(r.kind()));
    }

    /// Number of references.
    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    /// Whether the trace holds no references.
    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }

    /// The `i`-th reference, or `None` past the end.
    pub fn get(&self, i: usize) -> Option<MemRef> {
        let &addr = self.addrs.get(i)?;
        Some(MemRef::new(addr.into(), byte_to_kind(self.kinds[i])))
    }

    /// Iterates the references as [`MemRef`]s (by value; the backing
    /// storage never holds `MemRef`s).
    pub fn iter(&self) -> PackedIter<'_> {
        PackedIter {
            addrs: self.addrs.iter(),
            kinds: self.kinds.iter(),
        }
    }

    /// Bytes of heap storage used (the 9-bytes-per-reference claim,
    /// ignoring `Vec` over-allocation).
    pub fn payload_bytes(&self) -> usize {
        self.addrs.len() * std::mem::size_of::<u64>() + self.kinds.len()
    }
}

impl FromIterator<MemRef> for PackedTrace {
    fn from_iter<I: IntoIterator<Item = MemRef>>(iter: I) -> Self {
        let iter = iter.into_iter();
        let mut packed = PackedTrace::with_capacity(iter.size_hint().0);
        for r in iter {
            packed.push(r);
        }
        packed
    }
}

impl Extend<MemRef> for PackedTrace {
    fn extend<I: IntoIterator<Item = MemRef>>(&mut self, iter: I) {
        for r in iter {
            self.push(r);
        }
    }
}

impl<'a> IntoIterator for &'a PackedTrace {
    type Item = MemRef;
    type IntoIter = PackedIter<'a>;

    fn into_iter(self) -> PackedIter<'a> {
        self.iter()
    }
}

/// Iterator over a [`PackedTrace`], yielding owned [`MemRef`]s.
#[derive(Debug, Clone)]
pub struct PackedIter<'a> {
    addrs: std::slice::Iter<'a, u64>,
    kinds: std::slice::Iter<'a, u8>,
}

impl Iterator for PackedIter<'_> {
    type Item = MemRef;

    fn next(&mut self) -> Option<MemRef> {
        let &addr = self.addrs.next()?;
        let &kind = self.kinds.next()?;
        Some(MemRef::new(addr.into(), byte_to_kind(kind)))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.addrs.size_hint()
    }
}

impl ExactSizeIterator for PackedIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<MemRef> {
        vec![
            MemRef::ifetch(0x1000),
            MemRef::read(0x2004),
            MemRef::write(0x2004),
            MemRef::ifetch(0x1002),
        ]
    }

    #[test]
    fn round_trips_every_kind() {
        let refs = sample();
        let packed: PackedTrace = refs.iter().copied().collect();
        assert_eq!(packed.len(), refs.len());
        let back: Vec<MemRef> = packed.iter().collect();
        assert_eq!(back, refs);
    }

    #[test]
    fn get_matches_iteration_and_bounds() {
        let packed: PackedTrace = sample().into_iter().collect();
        for (i, r) in packed.iter().enumerate() {
            assert_eq!(packed.get(i), Some(r));
        }
        assert_eq!(packed.get(packed.len()), None);
    }

    #[test]
    fn payload_is_nine_bytes_per_reference() {
        let packed: PackedTrace = sample().into_iter().collect();
        assert_eq!(packed.payload_bytes(), 9 * packed.len());
    }

    #[test]
    fn iterator_is_exact_size() {
        let packed: PackedTrace = sample().into_iter().collect();
        let mut it = packed.iter();
        assert_eq!(it.len(), 4);
        it.next();
        assert_eq!(it.len(), 3);
    }

    #[test]
    fn extend_appends() {
        let mut packed: PackedTrace = sample().into_iter().collect();
        packed.extend([MemRef::read(0x42)]);
        assert_eq!(packed.len(), 5);
        assert_eq!(packed.get(4), Some(MemRef::read(0x42)));
    }

    #[test]
    fn empty_trace_behaves() {
        let packed = PackedTrace::new();
        assert!(packed.is_empty());
        assert_eq!(packed.iter().count(), 0);
        assert_eq!(packed.get(0), None);
    }
}
