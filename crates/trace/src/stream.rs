//! The [`TraceSource`] abstraction and stream combinators.
//!
//! A trace source is anything that produces [`MemRef`]s in program order.
//! The blanket impl makes every `Iterator<Item = MemRef>` a source, so plain
//! vectors, generators and file readers all compose with the same adapters.

use crate::record::{AccessKind, MemRef};

/// A producer of memory references in program order.
///
/// Implemented for every `Iterator<Item = MemRef>`; cache simulators and
/// statistics collectors consume sources generically.
///
/// ```
/// use occache_trace::{MemRef, TraceSource};
///
/// let mut source = vec![MemRef::ifetch(0), MemRef::read(16)].into_iter();
/// assert!(source.next_ref().is_some());
/// assert!(source.next_ref().is_some());
/// assert!(source.next_ref().is_none());
/// ```
pub trait TraceSource {
    /// Produces the next reference, or `None` at end of trace.
    fn next_ref(&mut self) -> Option<MemRef>;

    /// Adapter: only references of kinds accepted by `predicate`.
    fn filter_kind<F>(self, predicate: F) -> FilterKind<Self, F>
    where
        Self: Sized,
        F: FnMut(AccessKind) -> bool,
    {
        FilterKind {
            inner: self,
            predicate,
        }
    }

    /// Adapter: at most `n` references.
    fn take_refs(self, n: usize) -> TakeRefs<Self>
    where
        Self: Sized,
    {
        TakeRefs {
            inner: self,
            remaining: n,
        }
    }

    /// Collects up to `n` references into a vector.
    fn collect_refs(&mut self, n: usize) -> Vec<MemRef> {
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            match self.next_ref() {
                Some(r) => out.push(r),
                None => break,
            }
        }
        out
    }
}

impl<I: Iterator<Item = MemRef>> TraceSource for I {
    fn next_ref(&mut self) -> Option<MemRef> {
        self.next()
    }
}

/// Source adapter produced by [`TraceSource::filter_kind`].
#[derive(Debug, Clone)]
pub struct FilterKind<S, F> {
    inner: S,
    predicate: F,
}

impl<S, F> TraceSource for FilterKind<S, F>
where
    S: TraceSource,
    F: FnMut(AccessKind) -> bool,
{
    fn next_ref(&mut self) -> Option<MemRef> {
        loop {
            let r = self.inner.next_ref()?;
            if (self.predicate)(r.kind()) {
                return Some(r);
            }
        }
    }
}

/// Source adapter produced by [`TraceSource::take_refs`].
#[derive(Debug, Clone)]
pub struct TakeRefs<S> {
    inner: S,
    remaining: usize,
}

impl<S: TraceSource> TraceSource for TakeRefs<S> {
    fn next_ref(&mut self) -> Option<MemRef> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        self.inner.next_ref()
    }
}

/// Bridges a [`TraceSource`] back into a standard [`Iterator`].
///
/// Needed when a type implements `TraceSource` directly (e.g. an adapter)
/// and you want `Iterator` conveniences such as `collect`.
#[derive(Debug, Clone)]
pub struct IntoIter<S>(pub S);

impl<S: TraceSource> Iterator for IntoIter<S> {
    type Item = MemRef;

    fn next(&mut self) -> Option<MemRef> {
        self.0.next_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::AccessKind;

    fn sample() -> Vec<MemRef> {
        vec![
            MemRef::ifetch(0),
            MemRef::read(100),
            MemRef::write(200),
            MemRef::ifetch(2),
            MemRef::read(104),
        ]
    }

    #[test]
    fn vec_iterator_is_a_source() {
        let mut s = sample().into_iter();
        assert_eq!(s.next_ref(), Some(MemRef::ifetch(0)));
    }

    #[test]
    fn filter_kind_drops_unmatched() {
        let s = sample()
            .into_iter()
            .filter_kind(|k| k == AccessKind::InstrFetch);
        let out: Vec<_> = IntoIter(s).collect();
        assert_eq!(out, vec![MemRef::ifetch(0), MemRef::ifetch(2)]);
    }

    #[test]
    fn take_refs_truncates() {
        let s = sample().into_iter().take_refs(2);
        let out: Vec<_> = IntoIter(s).collect();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn take_refs_beyond_end_is_fine() {
        let s = sample().into_iter().take_refs(99);
        assert_eq!(IntoIter(s).count(), 5);
    }

    #[test]
    fn collect_refs_gathers_up_to_n() {
        let mut s = sample().into_iter();
        let first = s.collect_refs(3);
        assert_eq!(first.len(), 3);
        let rest = s.collect_refs(99);
        assert_eq!(rest.len(), 2);
    }
}
