//! Fault-injection reader for hardening tests.
//!
//! Trace files arrive over flaky pipes, get truncated by full disks and
//! corrupted by partial writes. [`FaultyReader`] wraps any [`Read`] and
//! reproduces those failure modes deterministically so parser and harness
//! error paths can be exercised without real I/O failures:
//!
//! ```
//! use std::io::Read;
//! use occache_trace::fault::{FaultMode, FaultyReader};
//! use occache_trace::io::parse_trace;
//!
//! // A trace whose backing file vanishes after 8 bytes.
//! let good = "i 400\nr 8000\nw 42\n";
//! let mut failing = FaultyReader::new(good.as_bytes(), FaultMode::ErrorAfter(8));
//! assert!(parse_trace(&mut failing).is_err());
//! ```

use std::io::{self, Read};

/// What kind of fault to inject, and after how many delivered bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// Deliver the first `n` bytes, then report clean end-of-file — a
    /// truncated file (possibly mid-record).
    TruncateAfter(usize),
    /// Deliver the first `n` bytes, then fail every read with an I/O
    /// error — a dying pipe or remote filesystem.
    ErrorAfter(usize),
    /// Deliver all bytes, but flip every bit from byte `n` onward — a
    /// corrupted tail (bad sector, partial overwrite).
    CorruptAfter(usize),
}

/// A [`Read`] adaptor that injects the configured [`FaultMode`].
#[derive(Debug)]
pub struct FaultyReader<R> {
    inner: R,
    mode: FaultMode,
    delivered: usize,
}

impl<R: Read> FaultyReader<R> {
    /// Wraps `inner`, injecting `mode`.
    pub fn new(inner: R, mode: FaultMode) -> Self {
        FaultyReader {
            inner,
            mode,
            delivered: 0,
        }
    }

    /// Bytes delivered to the consumer so far.
    pub fn delivered(&self) -> usize {
        self.delivered
    }
}

impl<R: Read> Read for FaultyReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self.mode {
            FaultMode::TruncateAfter(limit) => {
                let budget = limit.saturating_sub(self.delivered);
                if budget == 0 {
                    return Ok(0);
                }
                let take = budget.min(buf.len());
                let n = self.inner.read(&mut buf[..take])?;
                self.delivered += n;
                Ok(n)
            }
            FaultMode::ErrorAfter(limit) => {
                let budget = limit.saturating_sub(self.delivered);
                if budget == 0 {
                    return Err(io::Error::other(format!(
                        "injected fault after {limit} bytes"
                    )));
                }
                let take = budget.min(buf.len());
                let n = self.inner.read(&mut buf[..take])?;
                self.delivered += n;
                Ok(n)
            }
            FaultMode::CorruptAfter(limit) => {
                let n = self.inner.read(buf)?;
                for (i, byte) in buf[..n].iter_mut().enumerate() {
                    if self.delivered + i >= limit {
                        *byte = !*byte;
                    }
                }
                self.delivered += n;
                Ok(n)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::{parse_trace, MalformedKind, ParseTraceError};

    const TRACE: &str = "i 400\nr 8000\nw 42\n";

    #[test]
    fn truncation_cuts_mid_record() {
        let mut r = FaultyReader::new(TRACE.as_bytes(), FaultMode::TruncateAfter(8));
        let mut out = String::new();
        r.read_to_string(&mut out).unwrap();
        assert_eq!(out, "i 400\nr ");
        assert_eq!(r.delivered(), 8);
    }

    #[test]
    fn truncated_trace_is_a_structured_error() {
        let r = FaultyReader::new(TRACE.as_bytes(), FaultMode::TruncateAfter(8));
        match parse_trace(r) {
            Err(ParseTraceError::Malformed { line, kind, .. }) => {
                assert_eq!(line, 2);
                assert_eq!(kind, MalformedKind::MissingAddress);
            }
            other => panic!("expected mid-record truncation error, got {other:?}"),
        }
    }

    #[test]
    fn error_mode_surfaces_as_io_error() {
        let r = FaultyReader::new(TRACE.as_bytes(), FaultMode::ErrorAfter(6));
        match parse_trace(r) {
            Err(ParseTraceError::Io(e)) => {
                assert!(e.to_string().contains("injected fault"), "{e}")
            }
            other => panic!("expected io error, got {other:?}"),
        }
    }

    #[test]
    fn corruption_flips_tail_bytes() {
        let mut r = FaultyReader::new(TRACE.as_bytes(), FaultMode::CorruptAfter(6));
        let mut out = Vec::new();
        r.read_to_end(&mut out).unwrap();
        assert_eq!(&out[..6], b"i 400\n");
        assert_ne!(&out[6..], &TRACE.as_bytes()[6..]);
    }

    #[test]
    fn zero_limit_faults_immediately() {
        let r = FaultyReader::new(TRACE.as_bytes(), FaultMode::TruncateAfter(0));
        assert_eq!(parse_trace(r).unwrap(), vec![]);
        let r = FaultyReader::new(TRACE.as_bytes(), FaultMode::ErrorAfter(0));
        assert!(matches!(parse_trace(r), Err(ParseTraceError::Io(_))));
    }
}
