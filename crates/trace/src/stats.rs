//! Locality statistics for characterising traces.
//!
//! The paper argues (§3.3) that synthetic workloads "often lack" the embedded
//! correlations of real traces; our workload models are therefore validated
//! by measuring exactly those correlations — footprint, access mix,
//! sequential-run structure — and checking that they differ across the four
//! architectures in the way the paper describes (small compact Z8000
//! utilities vs hundreds-of-kilobytes System/370 jobs).

use std::collections::HashSet;

use crate::record::{AccessKind, MemRef};

/// Aggregate statistics over a trace, collected in a single pass.
///
/// ```
/// use occache_trace::{MemRef, TraceStats};
///
/// let mut stats = TraceStats::new(2);
/// for r in [MemRef::ifetch(0), MemRef::ifetch(2), MemRef::read(100)] {
///     stats.observe(r);
/// }
/// assert_eq!(stats.total(), 3);
/// assert_eq!(stats.ifetches(), 2);
/// assert_eq!(stats.footprint_words(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct TraceStats {
    word_size: u64,
    total: u64,
    ifetches: u64,
    reads: u64,
    writes: u64,
    touched_words: HashSet<u64>,
    last_ifetch_word: Option<u64>,
    current_run: u64,
    runs: u64,
    run_total: u64,
}

impl TraceStats {
    /// Creates a collector; `word_size` is the architecture data-path width
    /// in bytes (2 for PDP-11/Z8000, 4 for VAX-11/System/370).
    ///
    /// # Panics
    ///
    /// Panics if `word_size` is not a power of two.
    pub fn new(word_size: u64) -> Self {
        assert!(
            word_size.is_power_of_two(),
            "word size must be a power of two"
        );
        TraceStats {
            word_size,
            total: 0,
            ifetches: 0,
            reads: 0,
            writes: 0,
            touched_words: HashSet::new(),
            last_ifetch_word: None,
            current_run: 0,
            runs: 0,
            run_total: 0,
        }
    }

    /// Records one reference.
    pub fn observe(&mut self, r: MemRef) {
        self.total += 1;
        let word = r.address().value() / self.word_size;
        self.touched_words.insert(word);
        match r.kind() {
            AccessKind::InstrFetch => {
                self.ifetches += 1;
                match self.last_ifetch_word {
                    Some(prev) if word == prev + 1 => self.current_run += 1,
                    _ => {
                        self.flush_run();
                        self.current_run = 1;
                    }
                }
                self.last_ifetch_word = Some(word);
            }
            AccessKind::DataRead => self.reads += 1,
            AccessKind::DataWrite => self.writes += 1,
        }
    }

    fn flush_run(&mut self) {
        if self.current_run > 0 {
            self.runs += 1;
            self.run_total += self.current_run;
            self.current_run = 0;
        }
    }

    /// Total references observed.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Instruction fetches observed.
    pub fn ifetches(&self) -> u64 {
        self.ifetches
    }

    /// Data reads observed.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Data writes observed.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Number of distinct words touched (temporal footprint).
    pub fn footprint_words(&self) -> usize {
        self.touched_words.len()
    }

    /// Footprint in bytes.
    pub fn footprint_bytes(&self) -> u64 {
        self.footprint_words() as u64 * self.word_size
    }

    /// Fraction of references that are instruction fetches.
    pub fn ifetch_fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.ifetches as f64 / self.total as f64
        }
    }

    /// Mean sequential instruction-fetch run length in words.
    ///
    /// A "run" is a maximal sequence of consecutive-word instruction fetches;
    /// longer runs mean more spatial locality for larger (sub-)blocks to
    /// exploit.
    pub fn mean_ifetch_run(&self) -> f64 {
        let runs = self.runs + u64::from(self.current_run > 0);
        let total = self.run_total + self.current_run;
        if runs == 0 {
            0.0
        } else {
            total as f64 / runs as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_by_kind() {
        let mut s = TraceStats::new(2);
        for r in [
            MemRef::ifetch(0),
            MemRef::read(10),
            MemRef::write(10),
            MemRef::read(12),
        ] {
            s.observe(r);
        }
        assert_eq!(s.total(), 4);
        assert_eq!(s.ifetches(), 1);
        assert_eq!(s.reads(), 2);
        assert_eq!(s.writes(), 1);
        assert!((s.ifetch_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn footprint_counts_distinct_words() {
        let mut s = TraceStats::new(4);
        for addr in [0u64, 0, 4, 4, 8] {
            s.observe(MemRef::read(addr));
        }
        assert_eq!(s.footprint_words(), 3);
        assert_eq!(s.footprint_bytes(), 12);
    }

    #[test]
    fn sequential_runs_are_measured() {
        let mut s = TraceStats::new(2);
        // Run of 3 sequential fetches, a branch, then a run of 2.
        for addr in [0u64, 2, 4, 100, 102] {
            s.observe(MemRef::ifetch(addr));
        }
        assert!((s.mean_ifetch_run() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn data_refs_do_not_break_ifetch_runs() {
        let mut s = TraceStats::new(2);
        s.observe(MemRef::ifetch(0));
        s.observe(MemRef::read(500));
        s.observe(MemRef::ifetch(2));
        assert!((s.mean_ifetch_run() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_yields_zeroes() {
        let s = TraceStats::new(2);
        assert_eq!(s.total(), 0);
        assert_eq!(s.ifetch_fraction(), 0.0);
        assert_eq!(s.mean_ifetch_run(), 0.0);
    }
}
