#![warn(missing_docs)]

//! Address-trace substrate for the `occache` cache-simulation workspace.
//!
//! Hill & Smith's 1984 study is *trace driven*: every experiment consumes a
//! stream of memory references. This crate provides the building blocks that
//! the rest of the workspace shares:
//!
//! * [`MemRef`], [`Address`] and [`AccessKind`] — the trace record types,
//! * [`PackedTrace`] — a compact structure-of-arrays reference buffer
//!   shared across sweep workers ([`packed`]),
//! * the [`TraceSource`] abstraction plus combinators ([`stream`]),
//! * a `dinero`-style text format for persisting traces ([`io`]),
//! * a fault-injecting reader for hardening tests ([`fault`]),
//! * locality statistics used to characterise traces ([`stats`]),
//! * deterministic sampling utilities (Zipf, geometric) used by the synthetic
//!   workload generators ([`sample`]).
//!
//! # Example
//!
//! ```
//! use occache_trace::{AccessKind, Address, MemRef, TraceSource};
//!
//! // A trace is anything that yields `MemRef`s; a vector works out of the box.
//! let refs = vec![
//!     MemRef::new(Address::new(0x100), AccessKind::InstrFetch),
//!     MemRef::new(Address::new(0x8000), AccessKind::DataRead),
//! ];
//! let mut source = refs.into_iter();
//! assert_eq!(source.next_ref().unwrap().address().value(), 0x100);
//! ```

pub mod din;
pub mod fault;
pub mod io;
pub mod packed;
pub mod record;
pub mod sample;
pub mod stats;
pub mod stream;
pub mod workingset;

pub use packed::PackedTrace;
pub use record::{AccessKind, Address, MemRef};
pub use stats::TraceStats;
pub use stream::TraceSource;
pub use workingset::WorkingSetCurve;
