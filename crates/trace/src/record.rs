//! Trace record types: addresses, access kinds, and memory references.

use std::fmt;

/// A byte address in a (up to) 32-bit address space.
///
/// The paper computes gross cache sizes assuming 32-bit addresses even for the
/// 16-bit architectures, so a `u64` backing store is comfortably sufficient;
/// addresses are validated against the architecture's address width by the
/// workload generators, not here.
///
/// ```
/// use occache_trace::Address;
/// let a = Address::new(0x1234);
/// assert_eq!(a.value(), 0x1234);
/// assert_eq!(a.block_number(8), 0x246);
/// assert_eq!(a.offset_in_block(8), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Address(u64);

impl Address {
    /// Creates an address from a raw byte address.
    pub const fn new(value: u64) -> Self {
        Address(value)
    }

    /// The raw byte address.
    pub const fn value(self) -> u64 {
        self.0
    }

    /// The block number this address falls in, for power-of-two `block_size`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `block_size` is not a power of two.
    pub const fn block_number(self, block_size: u64) -> u64 {
        debug_assert!(block_size.is_power_of_two());
        self.0 / block_size
    }

    /// The byte offset of this address within its block.
    pub const fn offset_in_block(self, block_size: u64) -> u64 {
        debug_assert!(block_size.is_power_of_two());
        self.0 % block_size
    }

    /// This address rounded down to a multiple of `alignment` (power of two).
    pub const fn align_down(self, alignment: u64) -> Address {
        debug_assert!(alignment.is_power_of_two());
        Address(self.0 & !(alignment - 1))
    }

    /// Returns the address `bytes` higher.
    pub const fn offset(self, bytes: u64) -> Address {
        Address(self.0 + bytes)
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for Address {
    fn from(value: u64) -> Self {
        Address(value)
    }
}

impl From<Address> for u64 {
    fn from(addr: Address) -> Self {
        addr.0
    }
}

/// The kind of memory reference.
///
/// The paper's metrics count only instruction fetches and data reads; data
/// writes update cache state but are filtered out of the miss/traffic ratios
/// (paper §3.1: "Write-back issues were filtered out of our results by
/// calculating performance metrics for only data reads and instruction
/// fetches").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// An instruction fetch.
    InstrFetch,
    /// A data read (load).
    DataRead,
    /// A data write (store).
    DataWrite,
}

impl AccessKind {
    /// Whether this access contributes to the paper's miss/traffic metrics.
    pub const fn is_counted(self) -> bool {
        matches!(self, AccessKind::InstrFetch | AccessKind::DataRead)
    }

    /// Whether this is a data access (read or write).
    pub const fn is_data(self) -> bool {
        !matches!(self, AccessKind::InstrFetch)
    }

    /// One-letter mnemonic used by the text trace format (`i`, `r`, `w`).
    pub const fn mnemonic(self) -> char {
        match self {
            AccessKind::InstrFetch => 'i',
            AccessKind::DataRead => 'r',
            AccessKind::DataWrite => 'w',
        }
    }

    /// Parses the one-letter mnemonic; inverse of [`AccessKind::mnemonic`].
    pub fn from_mnemonic(c: char) -> Option<AccessKind> {
        match c {
            'i' => Some(AccessKind::InstrFetch),
            'r' => Some(AccessKind::DataRead),
            'w' => Some(AccessKind::DataWrite),
            _ => None,
        }
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            AccessKind::InstrFetch => "ifetch",
            AccessKind::DataRead => "read",
            AccessKind::DataWrite => "write",
        };
        f.write_str(name)
    }
}

/// One memory reference: an address plus the kind of access.
///
/// References are word-aligned by construction in the workload generators
/// (2-byte words for PDP-11/Z8000 traces, 4-byte for VAX-11/System/370,
/// matching the data-path widths the paper assumed when creating its traces).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemRef {
    address: Address,
    kind: AccessKind,
}

impl MemRef {
    /// Creates a memory reference.
    pub const fn new(address: Address, kind: AccessKind) -> Self {
        MemRef { address, kind }
    }

    /// Convenience constructor for an instruction fetch.
    pub const fn ifetch(address: u64) -> Self {
        MemRef::new(Address::new(address), AccessKind::InstrFetch)
    }

    /// Convenience constructor for a data read.
    pub const fn read(address: u64) -> Self {
        MemRef::new(Address::new(address), AccessKind::DataRead)
    }

    /// Convenience constructor for a data write.
    pub const fn write(address: u64) -> Self {
        MemRef::new(Address::new(address), AccessKind::DataWrite)
    }

    /// The referenced address.
    pub const fn address(self) -> Address {
        self.address
    }

    /// The access kind.
    pub const fn kind(self) -> AccessKind {
        self.kind
    }
}

impl fmt::Display for MemRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {:x}", self.kind.mnemonic(), self.address)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn address_block_arithmetic() {
        let a = Address::new(0x1237);
        assert_eq!(a.block_number(16), 0x123);
        assert_eq!(a.offset_in_block(16), 7);
        assert_eq!(a.align_down(16).value(), 0x1230);
        assert_eq!(a.offset(9).value(), 0x1240);
    }

    #[test]
    fn address_display_is_hex() {
        assert_eq!(Address::new(0xbeef).to_string(), "0xbeef");
        assert_eq!(format!("{:x}", Address::new(0xbeef)), "beef");
    }

    #[test]
    fn kind_counted_excludes_writes() {
        assert!(AccessKind::InstrFetch.is_counted());
        assert!(AccessKind::DataRead.is_counted());
        assert!(!AccessKind::DataWrite.is_counted());
    }

    #[test]
    fn kind_data_classification() {
        assert!(!AccessKind::InstrFetch.is_data());
        assert!(AccessKind::DataRead.is_data());
        assert!(AccessKind::DataWrite.is_data());
    }

    #[test]
    fn mnemonic_round_trips() {
        for kind in [
            AccessKind::InstrFetch,
            AccessKind::DataRead,
            AccessKind::DataWrite,
        ] {
            assert_eq!(AccessKind::from_mnemonic(kind.mnemonic()), Some(kind));
        }
        assert_eq!(AccessKind::from_mnemonic('x'), None);
    }

    #[test]
    fn memref_constructors() {
        assert_eq!(MemRef::ifetch(4).kind(), AccessKind::InstrFetch);
        assert_eq!(MemRef::read(4).kind(), AccessKind::DataRead);
        assert_eq!(MemRef::write(4).kind(), AccessKind::DataWrite);
        assert_eq!(MemRef::read(4).address().value(), 4);
    }

    #[test]
    fn memref_display_matches_trace_format() {
        assert_eq!(MemRef::ifetch(0x100).to_string(), "i 100");
        assert_eq!(MemRef::write(0xff).to_string(), "w ff");
    }
}
