//! The classic `din` trace format of the dinero simulator family.
//!
//! One record per line: `<label> <hex-address>`, with numeric labels
//! 0 = data read, 1 = data write, 2 = instruction fetch. This is the
//! interchange format the trace-driven-simulation community settled on
//! shortly after the paper; supporting it lets occache consume traces
//! produced for dinero and vice versa.
//!
//! ```
//! use occache_trace::din::{parse_din, write_din};
//! use occache_trace::MemRef;
//!
//! let refs = vec![MemRef::ifetch(0x400), MemRef::write(0x8000)];
//! let mut text = Vec::new();
//! write_din(&mut text, refs.iter().copied())?;
//! assert_eq!(String::from_utf8_lossy(&text), "2 400\n1 8000\n");
//! assert_eq!(parse_din(&text[..])?, refs);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::io::{self, BufRead, BufReader, Read, Write};

use crate::io::{MalformedKind, ParseTraceError};
use crate::record::{AccessKind, Address, MemRef};

/// The `din` numeric label for an access kind.
pub const fn din_label(kind: AccessKind) -> u8 {
    match kind {
        AccessKind::DataRead => 0,
        AccessKind::DataWrite => 1,
        AccessKind::InstrFetch => 2,
    }
}

/// The access kind for a `din` numeric label (0, 1 or 2).
pub const fn kind_from_label(label: u8) -> Option<AccessKind> {
    match label {
        0 => Some(AccessKind::DataRead),
        1 => Some(AccessKind::DataWrite),
        2 => Some(AccessKind::InstrFetch),
        _ => None,
    }
}

/// Parses a single `din` record, reporting *why* a bad record was
/// rejected.
///
/// # Errors
///
/// Returns the specific [`MalformedKind`]: truncated records (a label with
/// no address), labels outside `0..=2`, non-hex or oversized addresses.
pub fn classify_din_record(text: &str) -> Result<MemRef, MalformedKind> {
    let mut parts = text.split_whitespace();
    let label_token = parts.next().ok_or(MalformedKind::MissingAddress)?;
    let kind = label_token
        .parse::<u8>()
        .ok()
        .and_then(kind_from_label)
        .ok_or(MalformedKind::BadKind)?;
    let addr_token = parts.next().ok_or(MalformedKind::MissingAddress)?;
    // dinero tolerates trailing fields (some tracers append sizes); we
    // accept and ignore them.
    let value = crate::io::parse_hex_address(addr_token)?;
    Ok(MemRef::new(Address::new(value), kind))
}

/// Parses a single `din` record.
///
/// `None` collapses all rejection reasons; use [`classify_din_record`]
/// when the reason matters.
pub fn parse_din_record(text: &str) -> Option<MemRef> {
    classify_din_record(text).ok()
}

/// Parses an entire `din` trace.
///
/// Blank lines and `#` comments are ignored (not part of the original
/// format, but harmless and useful for provenance headers).
///
/// # Errors
///
/// Returns [`ParseTraceError::Io`] if reading fails and
/// [`ParseTraceError::Malformed`] on the first invalid line.
pub fn parse_din<R: Read>(reader: R) -> Result<Vec<MemRef>, ParseTraceError> {
    let buf = BufReader::new(reader);
    let mut out = Vec::new();
    for (idx, line) in buf.lines().enumerate() {
        let line = line?;
        if let Some(kind) = crate::io::pre_screen(&line) {
            return Err(crate::io::malformed(idx + 1, &line, kind));
        }
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        out.push(
            classify_din_record(trimmed)
                .map_err(|kind| crate::io::malformed(idx + 1, &line, kind))?,
        );
    }
    Ok(out)
}

/// Writes references in `din` format, one per line.
///
/// # Errors
///
/// Propagates any I/O error from the writer.
pub fn write_din<W, I>(mut writer: W, refs: I) -> io::Result<()>
where
    W: Write,
    I: IntoIterator<Item = MemRef>,
{
    for r in refs {
        writeln!(writer, "{} {:x}", din_label(r.kind()), r.address())?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip() {
        for kind in [
            AccessKind::DataRead,
            AccessKind::DataWrite,
            AccessKind::InstrFetch,
        ] {
            assert_eq!(kind_from_label(din_label(kind)), Some(kind));
        }
        assert_eq!(kind_from_label(3), None);
    }

    #[test]
    fn trace_round_trips() {
        let refs = vec![
            MemRef::read(0x10),
            MemRef::write(0x20),
            MemRef::ifetch(0x1000),
        ];
        let mut text = Vec::new();
        write_din(&mut text, refs.iter().copied()).unwrap();
        assert_eq!(parse_din(&text[..]).unwrap(), refs);
    }

    #[test]
    fn format_matches_dinero_convention() {
        let mut text = Vec::new();
        write_din(&mut text, [MemRef::read(0xff), MemRef::ifetch(0x400)]).unwrap();
        assert_eq!(String::from_utf8(text).unwrap(), "0 ff\n2 400\n");
    }

    #[test]
    fn trailing_fields_are_tolerated() {
        assert_eq!(parse_din_record("2 400 4"), Some(MemRef::ifetch(0x400)));
    }

    #[test]
    fn bad_labels_and_addresses_rejected() {
        assert_eq!(parse_din_record("7 400"), None);
        assert_eq!(parse_din_record("0 zz"), None);
        assert_eq!(parse_din_record(""), None);
    }

    #[test]
    fn malformed_line_is_located() {
        let text = "2 400\n9 9\n";
        match parse_din(text.as_bytes()) {
            Err(ParseTraceError::Malformed { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected malformed, got {other:?}"),
        }
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let refs = parse_din("# header\n\n0 10\n".as_bytes()).unwrap();
        assert_eq!(refs, vec![MemRef::read(0x10)]);
    }
}
