//! Denning working-set analysis.
//!
//! The paper's inter-architecture comparison (§4.2.5) comes down to
//! working-set size: Z8000 utilities are "small, compact pieces of code"
//! while System/370 jobs use "hundreds of kilobytes". This module measures
//! that directly: the mean working-set size `s(T)` — the average number of
//! distinct blocks touched in a backward window of `T` references —
//! computed for all window sizes in one pass via the Denning–Schwartz
//! identity: each reference contributes `min(gᵢ, T)` window positions in
//! which it is its block's most recent occurrence, where `gᵢ` is the
//! forward re-reference gap (for a block's final reference, the distance
//! to the end of the trace).

use std::collections::HashMap;

use crate::record::MemRef;

/// Single-pass working-set curve estimator at block granularity.
///
/// ```
/// use occache_trace::workingset::WorkingSetCurve;
/// use occache_trace::MemRef;
///
/// let mut ws = WorkingSetCurve::new(16);
/// for r in [MemRef::read(0), MemRef::read(16), MemRef::read(0)] {
///     ws.observe(r);
/// }
/// // In windows of 1 reference, each access sees exactly 1 block.
/// assert!((ws.mean_working_set(1) - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct WorkingSetCurve {
    block_size: u64,
    last_access: HashMap<u64, u64>,
    /// Histogram of inter-reference gaps (index = gap, saturating).
    gap_histogram: Vec<u64>,
    total: u64,
    clock: u64,
}

/// Gaps beyond this are treated as first touches; windows larger than
/// this saturate the estimate.
const MAX_GAP: usize = 1 << 20;

impl WorkingSetCurve {
    /// Creates an estimator at the given block granularity.
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is not a power of two.
    pub fn new(block_size: u64) -> Self {
        assert!(
            block_size.is_power_of_two(),
            "block size must be a power of two"
        );
        WorkingSetCurve {
            block_size,
            last_access: HashMap::new(),
            gap_histogram: Vec::new(),
            total: 0,
            clock: 0,
        }
    }

    /// Records one reference.
    pub fn observe(&mut self, r: MemRef) {
        let block = r.address().block_number(self.block_size);
        self.clock += 1;
        self.total += 1;
        if let Some(previous) = self.last_access.insert(block, self.clock) {
            let gap = ((self.clock - previous) as usize).min(MAX_GAP);
            if gap >= self.gap_histogram.len() {
                self.gap_histogram.resize(gap + 1, 0);
            }
            self.gap_histogram[gap] += 1;
        }
    }

    /// Total references observed.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Distinct blocks observed (the footprint in blocks).
    pub fn footprint_blocks(&self) -> usize {
        self.last_access.len()
    }

    /// Mean working-set size (in blocks) for a backward window of
    /// `window` references.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn mean_working_set(&self, window: u64) -> f64 {
        assert!(window > 0, "window must be positive");
        if self.total == 0 {
            return 0.0;
        }
        // Closed references contribute min(forward gap, T); each block's
        // final reference stays in windows until the end of the trace.
        let mut sum = 0.0;
        for (gap, &count) in self.gap_histogram.iter().enumerate() {
            sum += count as f64 * (gap as u64).min(window) as f64;
        }
        for &last in self.last_access.values() {
            sum += (self.clock - last + 1).min(window) as f64;
        }
        sum / self.total as f64
    }

    /// The curve at a list of window sizes.
    pub fn curve(&self, windows: &[u64]) -> Vec<(u64, f64)> {
        windows
            .iter()
            .map(|&w| (w, self.mean_working_set(w)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(ws: &mut WorkingSetCurve, addrs: &[u64]) {
        for &a in addrs {
            ws.observe(MemRef::read(a));
        }
    }

    #[test]
    fn window_of_one_is_one_block() {
        let mut ws = WorkingSetCurve::new(8);
        feed(&mut ws, &[0, 8, 16, 0, 8]);
        assert!((ws.mean_working_set(1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tight_loop_saturates_at_loop_size() {
        // Cycling over 4 blocks: large windows see exactly 4 blocks.
        let addrs: Vec<u64> = (0..400).map(|i| (i % 4) * 8).collect();
        let mut ws = WorkingSetCurve::new(8);
        feed(&mut ws, &addrs);
        let s = ws.mean_working_set(10_000);
        assert!((s - 4.0).abs() < 0.2, "{s}");
    }

    #[test]
    fn curve_is_monotone_nondecreasing() {
        let addrs: Vec<u64> = (0..1000).map(|i| (i * 37) % 64 * 8).collect();
        let mut ws = WorkingSetCurve::new(8);
        feed(&mut ws, &addrs);
        let mut previous = 0.0;
        for (_, s) in ws.curve(&[1, 2, 4, 8, 16, 32, 64, 128]) {
            assert!(s >= previous - 1e-12);
            previous = s;
        }
    }

    #[test]
    fn working_set_never_exceeds_footprint_or_window() {
        let addrs: Vec<u64> = (0..500).map(|i| (i * 13) % 32 * 8).collect();
        let mut ws = WorkingSetCurve::new(8);
        feed(&mut ws, &addrs);
        for window in [1u64, 10, 100, 100_000] {
            let s = ws.mean_working_set(window);
            assert!(s <= window as f64 + 1e-12);
            assert!(s <= ws.footprint_blocks() as f64 + 1e-9);
        }
    }

    #[test]
    fn streaming_references_grow_linearly() {
        // A pure sweep never re-references: the average over all window
        // positions of min(t, 100) is exactly 95.05 for N = 1000.
        let addrs: Vec<u64> = (0..1000u64).map(|i| i * 8).collect();
        let mut ws = WorkingSetCurve::new(8);
        feed(&mut ws, &addrs);
        let s = ws.mean_working_set(100);
        assert!((s - 95.05).abs() < 1e-9, "{s}");
    }

    #[test]
    fn empty_curve_is_zero() {
        let ws = WorkingSetCurve::new(8);
        assert_eq!(ws.mean_working_set(64), 0.0);
        assert_eq!(ws.footprint_blocks(), 0);
    }
}
