//! Text trace format, in the style of the `dinero` trace format the cache
//! simulation community standardised on shortly after the paper.
//!
//! Each line is `<kind> <hex-address>`, where kind is `i` (instruction
//! fetch), `r` (data read) or `w` (data write). Blank lines and lines
//! beginning with `#` are ignored, so traces can carry provenance comments.
//!
//! ```
//! use occache_trace::io::{parse_trace, write_trace};
//! use occache_trace::MemRef;
//!
//! let refs = vec![MemRef::ifetch(0x400), MemRef::read(0x8000)];
//! let mut text = Vec::new();
//! write_trace(&mut text, refs.iter().copied())?;
//! let back = parse_trace(&text[..])?;
//! assert_eq!(back, refs);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::error::Error;
use std::fmt;
use std::io::{self, BufRead, BufReader, Read, Write};

use crate::record::{AccessKind, Address, MemRef};

/// Longest accepted trace line, in bytes. Real records are a dozen bytes;
/// anything longer is corrupt or binary input, rejected before it can blow
/// up memory or produce a megabyte-long error message.
pub const MAX_LINE_BYTES: usize = 4096;

/// Widest accepted hex address: 16 digits fills `u64` exactly; more would
/// silently overflow or describe an address no simulated machine has.
pub const MAX_ADDRESS_DIGITS: usize = 16;

/// Why a single trace record was rejected (carried inside
/// [`ParseTraceError::Malformed`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MalformedKind {
    /// The record ended before its address field (truncated line or
    /// mid-record EOF).
    MissingAddress,
    /// The kind/label field was not one of the legal values.
    BadKind,
    /// The address field contained non-hex characters.
    BadAddress,
    /// The address had more than [`MAX_ADDRESS_DIGITS`] hex digits and
    /// would overflow the 64-bit address space.
    AddressTooWide,
    /// The line contained an embedded NUL byte (binary/corrupt input).
    EmbeddedNul,
    /// The line exceeded [`MAX_LINE_BYTES`] (binary/corrupt input).
    LineTooLong,
    /// The record carried unexpected extra fields.
    TrailingGarbage,
}

impl fmt::Display for MalformedKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let reason = match self {
            MalformedKind::MissingAddress => "record truncated before its address",
            MalformedKind::BadKind => "unrecognised access kind",
            MalformedKind::BadAddress => "address is not hexadecimal",
            MalformedKind::AddressTooWide => "address wider than 64 bits",
            MalformedKind::EmbeddedNul => "embedded NUL byte",
            MalformedKind::LineTooLong => "line implausibly long",
            MalformedKind::TrailingGarbage => "unexpected trailing fields",
        };
        f.write_str(reason)
    }
}

/// Error parsing a text trace.
#[derive(Debug)]
pub enum ParseTraceError {
    /// The underlying reader failed.
    Io(io::Error),
    /// A line did not match `<kind> <hex-address>`.
    Malformed {
        /// 1-based line number of the offending line.
        line: usize,
        /// The offending line's contents (truncated for display safety).
        text: String,
        /// What specifically was wrong with the record.
        kind: MalformedKind,
    },
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseTraceError::Io(e) => write!(f, "trace read failed: {e}"),
            ParseTraceError::Malformed { line, text, kind } => {
                write!(
                    f,
                    "malformed trace record at line {line} ({kind}): {text:?}"
                )
            }
        }
    }
}

impl Error for ParseTraceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ParseTraceError::Io(e) => Some(e),
            ParseTraceError::Malformed { .. } => None,
        }
    }
}

impl From<io::Error> for ParseTraceError {
    fn from(e: io::Error) -> Self {
        ParseTraceError::Io(e)
    }
}

/// Parses an entire text trace from a reader.
///
/// A `&mut` reference may be passed as the reader.
///
/// # Errors
///
/// Returns [`ParseTraceError::Io`] if reading fails and
/// [`ParseTraceError::Malformed`] on the first syntactically invalid line.
pub fn parse_trace<R: Read>(reader: R) -> Result<Vec<MemRef>, ParseTraceError> {
    let buf = BufReader::new(reader);
    let mut out = Vec::new();
    for (idx, line) in buf.lines().enumerate() {
        let line = line?;
        if let Some(kind) = pre_screen(&line) {
            return Err(malformed(idx + 1, &line, kind));
        }
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        out.push(classify_record(trimmed).map_err(|kind| malformed(idx + 1, &line, kind))?);
    }
    Ok(out)
}

/// Line-level sanity checks shared by both formats: embedded NUL bytes and
/// implausible line lengths mark binary or corrupt input regardless of
/// record syntax.
pub(crate) fn pre_screen(line: &str) -> Option<MalformedKind> {
    if line.len() > MAX_LINE_BYTES {
        Some(MalformedKind::LineTooLong)
    } else if line.contains('\0') {
        Some(MalformedKind::EmbeddedNul)
    } else {
        None
    }
}

/// Builds a [`ParseTraceError::Malformed`], clamping the echoed text so a
/// corrupt multi-kilobyte line cannot flood the caller's error path.
pub(crate) fn malformed(line: usize, text: &str, kind: MalformedKind) -> ParseTraceError {
    let text: String = text.chars().take(80).collect();
    ParseTraceError::Malformed { line, text, kind }
}

/// Parses a single `<kind> <hex-address>` record, reporting *why* a bad
/// record was rejected.
///
/// # Errors
///
/// Returns the specific [`MalformedKind`] for truncated records, unknown
/// kinds, non-hex or oversized addresses, and trailing garbage.
pub fn classify_record(text: &str) -> Result<MemRef, MalformedKind> {
    let mut parts = text.split_whitespace();
    let kind_token = parts.next().ok_or(MalformedKind::MissingAddress)?;
    if kind_token.chars().count() != 1 {
        return Err(MalformedKind::BadKind);
    }
    let kind = kind_token
        .chars()
        .next()
        .and_then(AccessKind::from_mnemonic)
        .ok_or(MalformedKind::BadKind)?;
    let addr_token = parts.next().ok_or(MalformedKind::MissingAddress)?;
    if parts.next().is_some() {
        return Err(MalformedKind::TrailingGarbage);
    }
    let value = parse_hex_address(addr_token)?;
    Ok(MemRef::new(Address::new(value), kind))
}

/// Parses a hex address token (optional `0x`/`0X` prefix), distinguishing
/// overflow from syntax errors.
pub(crate) fn parse_hex_address(token: &str) -> Result<u64, MalformedKind> {
    let digits = token
        .strip_prefix("0x")
        .or_else(|| token.strip_prefix("0X"))
        .unwrap_or(token);
    if digits.is_empty() {
        return Err(MalformedKind::BadAddress);
    }
    if !digits.bytes().all(|b| b.is_ascii_hexdigit()) {
        return Err(MalformedKind::BadAddress);
    }
    if digits.trim_start_matches('0').len() > MAX_ADDRESS_DIGITS {
        return Err(MalformedKind::AddressTooWide);
    }
    u64::from_str_radix(digits, 16).map_err(|_| MalformedKind::AddressTooWide)
}

/// Parses a single `<kind> <hex-address>` record.
///
/// `None` collapses all rejection reasons; use [`classify_record`] when the
/// reason matters.
pub fn parse_record(text: &str) -> Option<MemRef> {
    classify_record(text).ok()
}

/// Parses a trace in either supported format, auto-detected from the
/// first record: a `0|1|2` label selects the dinero [`din`](crate::din)
/// format, an `i|r|w` mnemonic selects the text format.
///
/// A `&mut` reference may be passed as the reader.
///
/// # Errors
///
/// As [`parse_trace`]; an empty input yields an empty trace.
pub fn parse_trace_auto<R: Read>(reader: R) -> Result<Vec<MemRef>, ParseTraceError> {
    let buf = BufReader::new(reader);
    let mut lines = Vec::new();
    for line in buf.lines() {
        lines.push(line?);
    }
    let is_din = lines
        .iter()
        .map(|l| l.trim())
        .find(|l| !l.is_empty() && !l.starts_with('#'))
        .is_some_and(|record| matches!(record.as_bytes().first(), Some(b'0'..=b'9')));
    let joined = lines.join("\n");
    if is_din {
        crate::din::parse_din(joined.as_bytes())
    } else {
        parse_trace(joined.as_bytes())
    }
}

/// Writes references to a writer in the text format, one per line.
///
/// A `&mut` reference may be passed as the writer.
///
/// # Errors
///
/// Propagates any I/O error from the writer.
pub fn write_trace<W, I>(mut writer: W, refs: I) -> io::Result<()>
where
    W: Write,
    I: IntoIterator<Item = MemRef>,
{
    for r in refs {
        writeln!(writer, "{} {:x}", r.kind().mnemonic(), r.address())?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let refs = vec![
            MemRef::ifetch(0x1000),
            MemRef::read(0x2002),
            MemRef::write(0xfffe),
        ];
        let mut text = Vec::new();
        write_trace(&mut text, refs.iter().copied()).unwrap();
        assert_eq!(parse_trace(&text[..]).unwrap(), refs);
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let text = "# header\n\ni 400\n  \nr 80\n";
        let refs = parse_trace(text.as_bytes()).unwrap();
        assert_eq!(refs, vec![MemRef::ifetch(0x400), MemRef::read(0x80)]);
    }

    #[test]
    fn accepts_0x_prefix_and_case() {
        assert_eq!(parse_record("i 0x4FF"), Some(MemRef::ifetch(0x4ff)));
        assert_eq!(parse_record("w 0XFF"), Some(MemRef::write(0xff)));
    }

    #[test]
    fn rejects_bad_kind() {
        assert_eq!(parse_record("z 400"), None);
    }

    #[test]
    fn rejects_bad_address() {
        assert_eq!(parse_record("i zz"), None);
    }

    #[test]
    fn rejects_extra_tokens() {
        assert_eq!(parse_record("i 400 extra"), None);
    }

    #[test]
    fn auto_detects_both_formats() {
        let refs = vec![MemRef::ifetch(0x10), MemRef::write(0x20)];
        let mut text = Vec::new();
        write_trace(&mut text, refs.iter().copied()).unwrap();
        assert_eq!(parse_trace_auto(&text[..]).unwrap(), refs);

        let mut din = Vec::new();
        crate::din::write_din(&mut din, refs.iter().copied()).unwrap();
        assert_eq!(parse_trace_auto(&din[..]).unwrap(), refs);
    }

    #[test]
    fn auto_detect_skips_comment_headers() {
        let text = "# occache-gen ...\n2 400\n";
        assert_eq!(
            parse_trace_auto(text.as_bytes()).unwrap(),
            vec![MemRef::ifetch(0x400)]
        );
    }

    #[test]
    fn auto_detect_of_empty_input() {
        assert_eq!(parse_trace_auto("".as_bytes()).unwrap(), vec![]);
    }

    #[test]
    fn malformed_line_reports_position() {
        let text = "i 400\nbogus line\n";
        match parse_trace(text.as_bytes()) {
            Err(ParseTraceError::Malformed { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected malformed error, got {other:?}"),
        }
    }

    /// Expects `parse_trace` of `text` to fail at `line` with `kind`.
    fn expect_malformed(text: &str, line: usize, kind: MalformedKind) {
        match parse_trace(text.as_bytes()) {
            Err(ParseTraceError::Malformed {
                line: l, kind: k, ..
            }) => {
                assert_eq!((l, k), (line, kind), "for input {text:?}");
            }
            other => panic!("expected {kind:?} at line {line} for {text:?}, got {other:?}"),
        }
    }

    #[test]
    fn malformed_kinds_are_distinguished() {
        // Truncated record (mid-record EOF).
        expect_malformed("i 400\nr", 2, MalformedKind::MissingAddress);
        // Unknown access kind.
        expect_malformed("z 400\n", 1, MalformedKind::BadKind);
        // Multi-character kind token.
        expect_malformed("iw 400\n", 1, MalformedKind::BadKind);
        // Non-hex address.
        expect_malformed("i zz\n", 1, MalformedKind::BadAddress);
        // Extra fields.
        expect_malformed("i 400 4\n", 1, MalformedKind::TrailingGarbage);
    }

    #[test]
    fn oversized_addresses_are_rejected_not_wrapped() {
        // 17 significant hex digits cannot fit a u64.
        expect_malformed("i 10000000000000000\n", 1, MalformedKind::AddressTooWide);
        // Leading zeros are not significant: still a valid 64-bit address.
        let refs = parse_trace("i 000000000000000000ff\n".as_bytes()).unwrap();
        assert_eq!(refs, vec![MemRef::ifetch(0xff)]);
        // The full 64-bit space itself is legal.
        let refs = parse_trace("i ffffffffffffffff\n".as_bytes()).unwrap();
        assert_eq!(refs[0].address().value(), u64::MAX);
    }

    #[test]
    fn embedded_nul_is_rejected() {
        expect_malformed("i 4\x00400\n", 1, MalformedKind::EmbeddedNul);
        // Even inside a would-be comment: NUL marks binary input.
        expect_malformed("# hea\0der\ni 400\n", 1, MalformedKind::EmbeddedNul);
    }

    #[test]
    fn absurdly_long_lines_are_rejected() {
        let long = format!("i {}\n", "f".repeat(MAX_LINE_BYTES + 1));
        expect_malformed(&long, 1, MalformedKind::LineTooLong);
    }

    #[test]
    fn error_text_is_clamped_for_display() {
        let long = format!("z {}\n", "f".repeat(2000));
        match parse_trace(long.as_bytes()) {
            Err(ParseTraceError::Malformed { text, .. }) => assert!(text.len() <= 80),
            other => panic!("expected malformed, got {other:?}"),
        }
    }

    #[test]
    fn classify_reports_empty_address_token() {
        assert_eq!(classify_record("i 0x"), Err(MalformedKind::BadAddress));
    }
}
