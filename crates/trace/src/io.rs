//! Text trace format, in the style of the `dinero` trace format the cache
//! simulation community standardised on shortly after the paper.
//!
//! Each line is `<kind> <hex-address>`, where kind is `i` (instruction
//! fetch), `r` (data read) or `w` (data write). Blank lines and lines
//! beginning with `#` are ignored, so traces can carry provenance comments.
//!
//! ```
//! use occache_trace::io::{parse_trace, write_trace};
//! use occache_trace::MemRef;
//!
//! let refs = vec![MemRef::ifetch(0x400), MemRef::read(0x8000)];
//! let mut text = Vec::new();
//! write_trace(&mut text, refs.iter().copied())?;
//! let back = parse_trace(&text[..])?;
//! assert_eq!(back, refs);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::error::Error;
use std::fmt;
use std::io::{self, BufRead, BufReader, Read, Write};

use crate::record::{AccessKind, Address, MemRef};

/// Error parsing a text trace.
#[derive(Debug)]
pub enum ParseTraceError {
    /// The underlying reader failed.
    Io(io::Error),
    /// A line did not match `<kind> <hex-address>`.
    Malformed {
        /// 1-based line number of the offending line.
        line: usize,
        /// The offending line's contents.
        text: String,
    },
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseTraceError::Io(e) => write!(f, "trace read failed: {e}"),
            ParseTraceError::Malformed { line, text } => {
                write!(f, "malformed trace record at line {line}: {text:?}")
            }
        }
    }
}

impl Error for ParseTraceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ParseTraceError::Io(e) => Some(e),
            ParseTraceError::Malformed { .. } => None,
        }
    }
}

impl From<io::Error> for ParseTraceError {
    fn from(e: io::Error) -> Self {
        ParseTraceError::Io(e)
    }
}

/// Parses an entire text trace from a reader.
///
/// A `&mut` reference may be passed as the reader.
///
/// # Errors
///
/// Returns [`ParseTraceError::Io`] if reading fails and
/// [`ParseTraceError::Malformed`] on the first syntactically invalid line.
pub fn parse_trace<R: Read>(reader: R) -> Result<Vec<MemRef>, ParseTraceError> {
    let buf = BufReader::new(reader);
    let mut out = Vec::new();
    for (idx, line) in buf.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        out.push(
            parse_record(trimmed).ok_or_else(|| ParseTraceError::Malformed {
                line: idx + 1,
                text: line.clone(),
            })?,
        );
    }
    Ok(out)
}

/// Parses a single `<kind> <hex-address>` record.
pub fn parse_record(text: &str) -> Option<MemRef> {
    let mut parts = text.split_whitespace();
    let kind_token = parts.next()?;
    let addr_token = parts.next()?;
    if parts.next().is_some() || kind_token.chars().count() != 1 {
        return None;
    }
    let kind = AccessKind::from_mnemonic(kind_token.chars().next()?)?;
    let addr_token = addr_token
        .strip_prefix("0x")
        .or_else(|| addr_token.strip_prefix("0X"))
        .unwrap_or(addr_token);
    let value = u64::from_str_radix(addr_token, 16).ok()?;
    Some(MemRef::new(Address::new(value), kind))
}

/// Parses a trace in either supported format, auto-detected from the
/// first record: a `0|1|2` label selects the dinero [`din`](crate::din)
/// format, an `i|r|w` mnemonic selects the text format.
///
/// A `&mut` reference may be passed as the reader.
///
/// # Errors
///
/// As [`parse_trace`]; an empty input yields an empty trace.
pub fn parse_trace_auto<R: Read>(reader: R) -> Result<Vec<MemRef>, ParseTraceError> {
    let buf = BufReader::new(reader);
    let mut lines = Vec::new();
    for line in buf.lines() {
        lines.push(line?);
    }
    let is_din = lines
        .iter()
        .map(|l| l.trim())
        .find(|l| !l.is_empty() && !l.starts_with('#'))
        .is_some_and(|record| matches!(record.as_bytes().first(), Some(b'0'..=b'9')));
    let joined = lines.join("\n");
    if is_din {
        crate::din::parse_din(joined.as_bytes())
    } else {
        parse_trace(joined.as_bytes())
    }
}

/// Writes references to a writer in the text format, one per line.
///
/// A `&mut` reference may be passed as the writer.
///
/// # Errors
///
/// Propagates any I/O error from the writer.
pub fn write_trace<W, I>(mut writer: W, refs: I) -> io::Result<()>
where
    W: Write,
    I: IntoIterator<Item = MemRef>,
{
    for r in refs {
        writeln!(writer, "{} {:x}", r.kind().mnemonic(), r.address())?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let refs = vec![
            MemRef::ifetch(0x1000),
            MemRef::read(0x2002),
            MemRef::write(0xfffe),
        ];
        let mut text = Vec::new();
        write_trace(&mut text, refs.iter().copied()).unwrap();
        assert_eq!(parse_trace(&text[..]).unwrap(), refs);
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let text = "# header\n\ni 400\n  \nr 80\n";
        let refs = parse_trace(text.as_bytes()).unwrap();
        assert_eq!(refs, vec![MemRef::ifetch(0x400), MemRef::read(0x80)]);
    }

    #[test]
    fn accepts_0x_prefix_and_case() {
        assert_eq!(parse_record("i 0x4FF"), Some(MemRef::ifetch(0x4ff)));
        assert_eq!(parse_record("w 0XFF"), Some(MemRef::write(0xff)));
    }

    #[test]
    fn rejects_bad_kind() {
        assert_eq!(parse_record("z 400"), None);
    }

    #[test]
    fn rejects_bad_address() {
        assert_eq!(parse_record("i zz"), None);
    }

    #[test]
    fn rejects_extra_tokens() {
        assert_eq!(parse_record("i 400 extra"), None);
    }

    #[test]
    fn auto_detects_both_formats() {
        let refs = vec![MemRef::ifetch(0x10), MemRef::write(0x20)];
        let mut text = Vec::new();
        write_trace(&mut text, refs.iter().copied()).unwrap();
        assert_eq!(parse_trace_auto(&text[..]).unwrap(), refs);

        let mut din = Vec::new();
        crate::din::write_din(&mut din, refs.iter().copied()).unwrap();
        assert_eq!(parse_trace_auto(&din[..]).unwrap(), refs);
    }

    #[test]
    fn auto_detect_skips_comment_headers() {
        let text = "# occache-gen ...\n2 400\n";
        assert_eq!(
            parse_trace_auto(text.as_bytes()).unwrap(),
            vec![MemRef::ifetch(0x400)]
        );
    }

    #[test]
    fn auto_detect_of_empty_input() {
        assert_eq!(parse_trace_auto("".as_bytes()).unwrap(), vec![]);
    }

    #[test]
    fn malformed_line_reports_position() {
        let text = "i 400\nbogus line\n";
        match parse_trace(text.as_bytes()) {
            Err(ParseTraceError::Malformed { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected malformed error, got {other:?}"),
        }
    }
}
