//! Acceptance check for the sliced sweep: artifacts regenerated through
//! the one-pass engine are **byte-identical** to the direct-simulation
//! path (`OCCACHE_NO_MULTISIM=1`), reports and CSVs alike.
//!
//! This file holds exactly one test because it mutates process-global
//! environment variables; sibling tests in the same binary would race.

use std::fs;
use std::path::PathBuf;

use occache_experiments::runs::{run_figure, run_table7, Artifact, Workbench};

fn temp_results(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("occache-equiv-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create temp results dir");
    dir
}

fn build_artifacts(len: usize) -> Vec<Artifact> {
    let mut bench = Workbench::new(len);
    vec![run_table7(&mut bench), run_figure(&mut bench, 2)]
}

#[test]
fn artifacts_are_byte_identical_to_the_direct_path() {
    // Separate journal directories per phase, so the second run cannot
    // simply resume the first run's points instead of simulating.
    let direct_dir = temp_results("direct");
    let sliced_dir = temp_results("sliced");
    let len = 4_000;

    std::env::set_var("OCCACHE_RESULTS", &direct_dir);
    std::env::set_var("OCCACHE_NO_MULTISIM", "1");
    let direct = build_artifacts(len);

    std::env::set_var("OCCACHE_RESULTS", &sliced_dir);
    std::env::remove_var("OCCACHE_NO_MULTISIM");
    let sliced = build_artifacts(len);
    std::env::remove_var("OCCACHE_RESULTS");

    for (d, s) in direct.iter().zip(&sliced) {
        assert_eq!(d.name, s.name);
        assert_eq!(d.report, s.report, "{} report differs", d.name);
        assert_eq!(d.csv, s.csv, "{} CSVs differ", d.name);
        // Both phases actually simulated a non-trivial grid.
        assert!(!d.csv.is_empty());
        assert!(!d.report.contains("FAILED"), "{}", d.report);
    }

    fs::remove_dir_all(&direct_dir).expect("clean up direct results dir");
    fs::remove_dir_all(&sliced_dir).expect("clean up sliced results dir");
}
