//! Acceptance check for the sliced sweep: artifacts regenerated through
//! the one-pass engines are **byte-identical** to the direct-simulation
//! path (`OCCACHE_NO_MULTISIM=1`), reports and CSVs alike — first under
//! the stock LRU grids, then re-run down the FIFO axis via
//! `OCCACHE_REPLACEMENT=fifo` with only the FIFO engine disabled on the
//! reference side (`OCCACHE_NO_MULTISIM=fifo,random`).
//!
//! This file holds exactly one test because it mutates process-global
//! environment variables; sibling tests in the same binary would race.

use std::fs;
use std::path::PathBuf;

use occache_experiments::runs::{run_figure, run_table7, Artifact, Workbench};

fn temp_results(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("occache-equiv-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create temp results dir");
    dir
}

fn build_artifacts(len: usize) -> Vec<Artifact> {
    let mut bench = Workbench::new(len);
    vec![run_table7(&mut bench), run_figure(&mut bench, 2)]
}

#[test]
fn artifacts_are_byte_identical_to_the_direct_path() {
    // Separate journal directories per phase, so the second run cannot
    // simply resume the first run's points instead of simulating.
    let direct_dir = temp_results("direct");
    let sliced_dir = temp_results("sliced");
    let len = 4_000;

    std::env::remove_var("OCCACHE_REPLACEMENT");
    std::env::set_var("OCCACHE_RESULTS", &direct_dir);
    std::env::set_var("OCCACHE_NO_MULTISIM", "1");
    let direct = build_artifacts(len);

    std::env::set_var("OCCACHE_RESULTS", &sliced_dir);
    std::env::remove_var("OCCACHE_NO_MULTISIM");
    let sliced = build_artifacts(len);
    std::env::remove_var("OCCACHE_RESULTS");

    for (d, s) in direct.iter().zip(&sliced) {
        assert_eq!(d.name, s.name);
        assert_eq!(d.report, s.report, "{} report differs", d.name);
        assert_eq!(d.csv, s.csv, "{} CSVs differ", d.name);
        // Both phases actually simulated a non-trivial grid.
        assert!(!d.csv.is_empty());
        assert!(!d.report.contains("FAILED"), "{}", d.report);
    }

    fs::remove_dir_all(&direct_dir).expect("clean up direct results dir");
    fs::remove_dir_all(&sliced_dir).expect("clean up sliced results dir");

    // The same property down the FIFO policy axis: the replacement
    // override re-runs the identical grids under FIFO, where the
    // one-pass FIFO engine must reproduce the direct path byte for
    // byte. (Per-policy disabling keeps the LRU/Random engines live on
    // the direct run — only the FIFO engine is being compared away.)
    let fifo_direct_dir = temp_results("fifo-direct");
    let fifo_sliced_dir = temp_results("fifo-sliced");
    std::env::set_var("OCCACHE_REPLACEMENT", "fifo");
    std::env::set_var("OCCACHE_RESULTS", &fifo_direct_dir);
    std::env::set_var("OCCACHE_NO_MULTISIM", "fifo,random");
    let fifo_direct = build_artifacts(len);

    std::env::set_var("OCCACHE_RESULTS", &fifo_sliced_dir);
    std::env::remove_var("OCCACHE_NO_MULTISIM");
    let fifo_sliced = build_artifacts(len);
    std::env::remove_var("OCCACHE_RESULTS");
    std::env::remove_var("OCCACHE_REPLACEMENT");

    for (d, s) in fifo_direct.iter().zip(&fifo_sliced) {
        assert_eq!(d.name, s.name);
        assert_eq!(d.report, s.report, "FIFO {} report differs", d.name);
        assert_eq!(d.csv, s.csv, "FIFO {} CSVs differ", d.name);
        assert!(!d.csv.is_empty());
        assert!(!d.report.contains("FAILED"), "{}", d.report);
    }

    fs::remove_dir_all(&fifo_direct_dir).expect("clean up FIFO direct results dir");
    fs::remove_dir_all(&fifo_sliced_dir).expect("clean up FIFO sliced results dir");
}
