//! Slice-level parallelism must be invisible in the artifacts: Table 7
//! regenerated with `OCCACHE_SLICE_THREADS=1` and with
//! `OCCACHE_SLICE_THREADS=4` must write byte-identical CSVs and a
//! byte-identical `MANIFEST.json`. Worker threads race only on wall
//! clock — results are stitched back in planning order before anything
//! is rendered, so a thread-count change can never shift a committed
//! byte.
//!
//! One `#[test]` only: the run depends on process-global environment
//! (`OCCACHE_RESULTS`, `OCCACHE_JOBS`, `OCCACHE_SLICE_THREADS`), so
//! this file must not gain a second test that could run concurrently in
//! the same process.

use std::collections::BTreeMap;
use std::path::Path;

use occache_experiments::manifest::MANIFEST_FILE;
use occache_experiments::runs::{run_table7, Workbench};

/// References per trace: small enough for a debug-profile test run,
/// large enough that every Table 1 pair sees real misses.
const REFS: usize = 2_000;

/// Runs Table 7 into a fresh scratch results dir with the given slice
/// thread count and returns `file name -> bytes` for every emitted
/// file (CSVs plus `MANIFEST.json`).
fn emit_table7(threads: &str) -> BTreeMap<String, Vec<u8>> {
    let scratch =
        std::env::temp_dir().join(format!("occache-threads-{threads}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(&scratch).expect("create scratch results dir");
    std::env::set_var("OCCACHE_RESULTS", &scratch);
    std::env::set_var("OCCACHE_JOBS", "1");
    std::env::set_var("OCCACHE_SLICE_THREADS", threads);
    std::env::remove_var("OCCACHE_NO_MULTISIM");
    std::env::remove_var("OCCACHE_REPLACEMENT");
    std::env::remove_var("OCCACHE_REFS");
    std::env::remove_var("OCCACHE_WARMUP");
    std::env::remove_var("OCCACHE_POINT_TIMEOUT");
    std::env::remove_var("OCCACHE_POINT_RETRIES");
    std::env::remove_var("OCCACHE_FAULT_POINT");
    std::env::remove_var("OCCACHE_FRESH");
    // Manifest fingerprints fold over the in-process phase registry;
    // start each run from a clean one so the two manifests describe the
    // same phases.
    occache_experiments::run_report::reset();

    let mut bench = Workbench::new(REFS);
    let artifact = run_table7(&mut bench);
    artifact.emit().expect("emit table7 artifact");

    let mut files = BTreeMap::new();
    for entry in std::fs::read_dir(&scratch).expect("read scratch results dir") {
        let entry = entry.expect("read scratch dir entry");
        let path = entry.path();
        if !path.is_file() {
            continue;
        }
        let name = entry.file_name().to_string_lossy().into_owned();
        if name == MANIFEST_FILE || Path::new(&name).extension().is_some_and(|e| e == "csv") {
            files.insert(name, std::fs::read(&path).expect("read emitted file"));
        }
    }
    std::env::remove_var("OCCACHE_SLICE_THREADS");
    let _ = std::fs::remove_dir_all(&scratch);
    files
}

#[test]
fn slice_thread_count_never_changes_artifact_bytes() {
    let serial = emit_table7("1");
    let threaded = emit_table7("4");
    assert!(
        serial.contains_key(MANIFEST_FILE),
        "table7 emit must write {MANIFEST_FILE}"
    );
    assert!(
        serial.keys().any(|n| n.ends_with(".csv")),
        "table7 emit must write at least one CSV"
    );
    assert_eq!(
        serial.keys().collect::<Vec<_>>(),
        threaded.keys().collect::<Vec<_>>(),
        "thread count changed the set of emitted files"
    );
    for (name, bytes) in &serial {
        assert_eq!(
            bytes, &threaded[name],
            "{name} differs between OCCACHE_SLICE_THREADS=1 and =4"
        );
    }
}
