//! Golden regression over every journalled artifact: the report text,
//! every CSV payload, and the sealed checkpoint journal of Table 7 and
//! Figures 1–8 — regenerated at a small reference count with a serial
//! worker pool — must hash exactly to the values committed in
//! `golden_hashes.txt`.
//!
//! The committed hashes were produced by this same test (run with
//! `OCCACHE_GOLDEN_REGEN=1`), so any refactor of the execution path
//! that changes a single output byte fails here before it can corrupt
//! a resumable journal or silently shift an artifact.
//!
//! One `#[test]` only: the run depends on process-global environment
//! (`OCCACHE_RESULTS`, `OCCACHE_JOBS`), so this file must not gain a
//! second test that could run concurrently in the same process.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use occache_experiments::checkpoint::fnv1a;
use occache_experiments::runs::{journalled_artifacts, run_figure, run_table7, Workbench};

/// References per trace: small enough for a debug-profile test run,
/// large enough that every Table 1 pair sees real misses.
const GOLDEN_REFS: usize = 2_000;

fn golden_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden_hashes.txt")
}

/// `name -> fnv1a(contents)` for every hashed item of every artifact.
fn regenerate() -> BTreeMap<String, u64> {
    let scratch = std::env::temp_dir().join(format!("occache-golden-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(&scratch).expect("create scratch results dir");
    // A serial pool appends journal lines in planning order, so the
    // sealed journal bytes are deterministic; the scratch results dir
    // keeps the run away from any real `results/`.
    std::env::set_var("OCCACHE_RESULTS", &scratch);
    std::env::set_var("OCCACHE_JOBS", "1");
    std::env::remove_var("OCCACHE_NO_MULTISIM");
    std::env::remove_var("OCCACHE_REPLACEMENT");
    std::env::remove_var("OCCACHE_REFS");
    std::env::remove_var("OCCACHE_WARMUP");
    std::env::remove_var("OCCACHE_POINT_TIMEOUT");
    std::env::remove_var("OCCACHE_POINT_RETRIES");
    std::env::remove_var("OCCACHE_FAULT_POINT");
    std::env::remove_var("OCCACHE_FRESH");

    let mut bench = Workbench::new(GOLDEN_REFS);
    let mut hashes = BTreeMap::new();
    for &name in journalled_artifacts() {
        let artifact = match name {
            "table7" => run_table7(&mut bench),
            _ => {
                let figure: u8 = name
                    .strip_prefix("fig")
                    .and_then(|n| n.parse().ok())
                    .unwrap_or_else(|| panic!("unexpected journalled artifact {name:?}"));
                run_figure(&mut bench, figure)
            }
        };
        assert_eq!(artifact.name, name);
        hashes.insert(format!("{name}/report"), fnv1a(artifact.report.as_bytes()));
        for (file, contents) in &artifact.csv {
            hashes.insert(format!("{name}/{file}"), fnv1a(contents.as_bytes()));
        }
        let journal = scratch.join(".checkpoint").join(format!("{name}.jsonl"));
        let bytes = std::fs::read(&journal)
            .unwrap_or_else(|e| panic!("missing journal {}: {e}", journal.display()));
        hashes.insert(format!("{name}/journal"), fnv1a(&bytes));
    }
    let _ = std::fs::remove_dir_all(&scratch);
    hashes
}

fn render(hashes: &BTreeMap<String, u64>) -> String {
    let mut out = String::new();
    for (name, hash) in hashes {
        let _ = writeln!(out, "{name} {hash:016x}");
    }
    out
}

#[test]
fn journalled_artifacts_match_committed_golden_hashes() {
    let hashes = regenerate();
    let rendered = render(&hashes);
    if std::env::var_os("OCCACHE_GOLDEN_REGEN").is_some() {
        std::fs::write(golden_path(), &rendered).expect("write golden_hashes.txt");
        eprintln!("regenerated {}", golden_path().display());
        return;
    }
    let committed = std::fs::read_to_string(golden_path())
        .expect("golden_hashes.txt missing; regenerate with OCCACHE_GOLDEN_REGEN=1");
    assert_eq!(
        rendered, committed,
        "artifact bytes diverged from the committed goldens; if the change \
         is intentional, regenerate with OCCACHE_GOLDEN_REGEN=1"
    );
}
