//! End-to-end failure-model tests: kill-and-resume from the checkpoint
//! journal, a sweep surviving an injected panicking design point plus an
//! injected faulty trace reader with surviving results written
//! atomically, supervised timeout → retry → quarantine transitions on
//! real checkpointed sweeps, and a manifest/verify round trip that
//! catches a single flipped byte.

use std::fs;
use std::io::Read as _;
use std::path::PathBuf;
use std::time::Duration;

use occache_core::CacheConfig;
use occache_experiments::checkpoint::evaluate_checkpointed_in;
use occache_experiments::manifest::{self, ManifestEntry};
use occache_experiments::report::{points_to_csv, write_result_in};
use occache_experiments::supervisor::{evaluate_results_supervised, FaultPlan, SupervisorPolicy};
use occache_experiments::sweep::{
    batch_of, evaluate_point, materialize, standard_config, table1_pairs,
};
use occache_experiments::verify::{verify_dir, VerifyOptions};
use occache_experiments::{PointFault, Trace};
use occache_trace::fault::{FaultMode, FaultyReader};
use occache_trace::io::{parse_trace, write_trace, ParseTraceError};
use occache_workloads::{Architecture, WorkloadSpec};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("occache-recovery-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn grid() -> (Vec<CacheConfig>, Vec<Trace>) {
    let traces = materialize(
        &[WorkloadSpec::pdp11_ed(), WorkloadSpec::pdp11_opsys()],
        2_000,
    );
    let configs = table1_pairs(256, 2)
        .into_iter()
        .map(|(b, s)| standard_config(Architecture::Pdp11, 256, b, s))
        .collect();
    (configs, traces)
}

/// Run a sweep, "kill" it after K points (by only giving it the first K
/// configs), restart over the full grid, and check the merged result is
/// identical to a clean never-interrupted run.
#[test]
fn kill_and_resume_matches_clean_run() {
    let dir = temp_dir("kill-resume");
    let (configs, traces) = grid();
    let k = configs.len() / 2;
    assert!(k >= 3, "grid too small to be a meaningful test");

    // Phase 1: the "killed" run completes only the first K points. Dropping
    // all in-memory state afterwards is exactly what a process death does;
    // the journal on disk is the only survivor.
    let partial = evaluate_checkpointed_in(
        &dir,
        "grid",
        &configs[..k],
        &traces,
        0,
        false,
        batch_of(evaluate_point),
    )
    .unwrap();
    assert_eq!(partial.points.len(), k);
    drop(partial);

    // Phase 2: restart over the full grid. The first K points must come
    // from the journal (the panicking eval proves no re-simulation), the
    // rest are computed.
    let mut fresh_evals = 0usize;
    let fresh_counter = std::sync::atomic::AtomicUsize::new(0);
    let counting_eval = batch_of(|c: CacheConfig, t: &[Trace], w: usize| {
        fresh_counter.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        evaluate_point(c, t, w)
    });
    let resumed =
        evaluate_checkpointed_in(&dir, "grid", &configs, &traces, 0, false, counting_eval).unwrap();
    fresh_evals += fresh_counter.load(std::sync::atomic::Ordering::SeqCst);
    assert_eq!(resumed.resumed, k);
    assert_eq!(fresh_evals, configs.len() - k);
    assert!(resumed.is_complete());

    // The merged grid equals a clean run, point for point, bit for bit.
    let clean_dir = temp_dir("kill-resume-clean");
    let clean = evaluate_checkpointed_in(
        &clean_dir,
        "grid",
        &configs,
        &traces,
        0,
        false,
        batch_of(evaluate_point),
    )
    .unwrap();
    assert_eq!(resumed.points.len(), clean.points.len());
    for (r, c) in resumed.points.iter().zip(&clean.points) {
        assert_eq!(r.config, c.config);
        assert_eq!(r.miss_ratio, c.miss_ratio);
        assert_eq!(r.traffic_ratio, c.traffic_ratio);
        assert_eq!(r.nibble_traffic_ratio, c.nibble_traffic_ratio);
        assert_eq!(r.redundant_load_fraction, c.redundant_load_fraction);
    }
    fs::remove_dir_all(&dir).unwrap();
    fs::remove_dir_all(&clean_dir).unwrap();
}

/// The acceptance scenario: one design point panics and one trace file
/// dies mid-read. The sweep still completes, names the failed cell, the
/// surviving results land atomically, and a second invocation resumes
/// from the journal without re-simulating anything.
#[test]
fn faulty_sweep_completes_reports_and_resumes() {
    let dir = temp_dir("faulty");
    let (configs, traces) = grid();

    // --- Injected faulty trace: serialise one trace, then read it back
    // through a reader that fails after 64 bytes. The structured error is
    // the signal to drop that trace (with a note) rather than crash.
    let mut encoded = Vec::new();
    write_trace(&mut encoded, traces[0].iter()).unwrap();
    let faulty = FaultyReader::new(&encoded[..], FaultMode::ErrorAfter(64));
    let mut survivors = Vec::new();
    let mut trace_notes = Vec::new();
    match parse_trace(faulty) {
        Ok(refs) => survivors.push(Trace::new(traces[0].name.clone(), refs)),
        Err(e @ ParseTraceError::Io(_)) => {
            trace_notes.push(format!("dropped trace {}: {e}", traces[0].name));
        }
        Err(e) => panic!("expected an io error from the faulty reader, got {e:?}"),
    }
    survivors.push(traces[1].clone());
    assert_eq!(survivors.len(), 1, "the faulty trace must be dropped");
    assert_eq!(trace_notes.len(), 1);
    assert!(trace_notes[0].contains("injected fault"), "{trace_notes:?}");

    // --- Injected panicking design point, over the surviving trace set.
    let bad = configs[2];
    let faulty_eval = batch_of(|c: CacheConfig, t: &[Trace], w: usize| {
        if c == bad {
            panic!("injected point fault");
        }
        evaluate_point(c, t, w)
    });
    let outcome =
        evaluate_checkpointed_in(&dir, "faulty", &configs, &survivors, 0, false, faulty_eval)
            .unwrap();
    assert_eq!(outcome.points.len(), configs.len() - 1);
    assert_eq!(outcome.failures.len(), 1);

    // The failed cell is reported by name.
    let note = outcome.failure_note().unwrap();
    assert!(note.contains("FAILED"), "{note}");
    assert!(note.contains("injected point fault"), "{note}");
    assert!(
        note.contains(&format!("({},{})", bad.block_size(), bad.sub_block_size())),
        "failed cell not named: {note}"
    );

    // Surviving CSV written atomically (no temp debris, full content).
    let csv = points_to_csv("PDP-11", &outcome.points);
    let path = write_result_in(&dir, "faulty.csv", &csv).unwrap();
    let mut written = String::new();
    fs::File::open(&path)
        .unwrap()
        .read_to_string(&mut written)
        .unwrap();
    assert_eq!(written, csv);
    assert_eq!(written.lines().count(), outcome.points.len() + 1);
    let debris: Vec<_> = fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name())
        .filter(|n| n.to_string_lossy().contains(".tmp"))
        .collect();
    assert!(debris.is_empty(), "{debris:?}");

    // Second invocation: every surviving point resumes from the journal
    // (the always-panicking eval proves nothing is re-simulated), and the
    // previously failed cell is retried — this time successfully.
    let retry_eval = batch_of(|c: CacheConfig, t: &[Trace], w: usize| {
        assert_eq!(c, bad, "only the failed cell may re-run");
        evaluate_point(c, t, w)
    });
    let second =
        evaluate_checkpointed_in(&dir, "faulty", &configs, &survivors, 0, false, retry_eval)
            .unwrap();
    assert_eq!(second.resumed, configs.len() - 1);
    assert!(second.is_complete());
    fs::remove_dir_all(&dir).unwrap();
}

/// The supervised acceptance scenario end to end: a design point hung by
/// fault injection times out under the point deadline on two consecutive
/// checkpointed runs (each appending a failure tombstone), and the third
/// run quarantines the cell — skipping it without evaluation — while
/// every healthy sibling completes and resumes normally.
#[test]
fn hung_point_times_out_twice_then_quarantines() {
    let dir = temp_dir("hang-quarantine");
    let (configs, traces) = grid();
    let bad = configs[2];
    let policy = SupervisorPolicy {
        timeout: Some(Duration::from_millis(250)),
        retries: 1,
        backoff: Duration::from_millis(10),
        backoff_cap: Duration::from_millis(40),
        fault: FaultPlan::hang(
            bad.block_size(),
            bad.sub_block_size(),
            Duration::from_secs(30),
        ),
    };
    let supervised = |cs: &[CacheConfig], ts: &[Trace], w: usize| {
        evaluate_results_supervised(&policy, cs, ts, w).0
    };

    // Runs 1 and 2: the hung cell times out, everything else completes.
    for run in 1..=2 {
        let outcome =
            evaluate_checkpointed_in(&dir, "hang", &configs, &traces, 0, false, supervised)
                .unwrap();
        assert_eq!(outcome.points.len(), configs.len() - 1, "run {run}");
        assert_eq!(outcome.failures.len(), 1, "run {run}");
        assert_eq!(outcome.timed_out(), 1, "run {run}");
        let failure = &outcome.failures[0];
        assert_eq!(failure.config, bad);
        assert_eq!(failure.fault, PointFault::Timeout);
        assert!(
            failure.message.contains("OCCACHE_POINT_TIMEOUT"),
            "{failure}"
        );
        if run == 2 {
            // The healthy points resumed from the journal.
            assert_eq!(outcome.resumed, configs.len() - 1);
        }
    }

    // Run 3: two recorded failures quarantine the cell. The panicking
    // eval proves the quarantined point is never handed to the sweep.
    let must_not_run = |cs: &[CacheConfig], ts: &[Trace], w: usize| {
        assert!(
            !cs.contains(&bad),
            "quarantined cell must not be re-evaluated"
        );
        evaluate_results_supervised(&SupervisorPolicy::disabled(), cs, ts, w).0
    };
    let third =
        evaluate_checkpointed_in(&dir, "hang", &configs, &traces, 0, false, must_not_run).unwrap();
    assert_eq!(third.quarantined(), 1);
    let failure = &third.failures[0];
    assert_eq!(failure.config, bad);
    assert_eq!(failure.fault, PointFault::Quarantined);
    assert!(failure.message.contains("--fresh"), "{failure}");

    // --fresh lifts the quarantine: with the fault gone the cell finally
    // computes and the grid completes.
    let clean = |cs: &[CacheConfig], ts: &[Trace], w: usize| {
        evaluate_results_supervised(&SupervisorPolicy::disabled(), cs, ts, w).0
    };
    let fourth = evaluate_checkpointed_in(&dir, "hang", &configs, &traces, 0, true, clean).unwrap();
    assert!(fourth.is_complete(), "{:?}", fourth.failure_note());
    fs::remove_dir_all(&dir).unwrap();
}

/// A transient panic (fires once, succeeds on retry) is absorbed by the
/// retry budget: the checkpointed sweep completes on the first run, the
/// retry is counted, and no tombstone survives into the journal.
#[test]
fn transient_panic_is_retried_within_a_single_run() {
    let dir = temp_dir("transient");
    let (configs, traces) = grid();
    let bad = configs[1];
    let policy = SupervisorPolicy {
        timeout: None,
        retries: 1,
        backoff: Duration::from_millis(5),
        backoff_cap: Duration::from_millis(20),
        fault: FaultPlan::panic_once(bad.block_size(), bad.sub_block_size()),
    };
    let retries = std::sync::Mutex::new(0usize);
    let supervised = |cs: &[CacheConfig], ts: &[Trace], w: usize| {
        let (results, stats) = evaluate_results_supervised(&policy, cs, ts, w);
        *retries.lock().unwrap() += stats.retries;
        results
    };
    let outcome =
        evaluate_checkpointed_in(&dir, "transient", &configs, &traces, 0, false, supervised)
            .unwrap();
    assert!(outcome.is_complete(), "{:?}", outcome.failure_note());
    assert!(*retries.lock().unwrap() >= 1, "the retry must be counted");

    // The journal holds only clean points: a resume restores everything.
    let nothing_pending = |cs: &[CacheConfig], _: &[Trace], _: usize| {
        panic!("nothing should be pending, got {} configs", cs.len());
    };
    let resumed = evaluate_checkpointed_in(
        &dir,
        "transient",
        &configs,
        &traces,
        0,
        false,
        nothing_pending,
    )
    .unwrap();
    assert_eq!(resumed.resumed, configs.len());
    fs::remove_dir_all(&dir).unwrap();
}

/// Manifest + verify round trip on a real checkpointed sweep: a clean
/// directory passes, then a single flipped byte in the CSV fails the
/// pass, and a single flipped byte inside a journal record fails it too.
#[test]
fn verify_catches_a_single_flipped_byte_anywhere() {
    let dir = temp_dir("verify");
    let (configs, traces) = grid();
    let outcome = evaluate_checkpointed_in(
        &dir,
        "grid",
        &configs,
        &traces,
        0,
        false,
        batch_of(evaluate_point),
    )
    .unwrap();
    let csv = points_to_csv("PDP-11", &outcome.points);
    write_result_in(&dir, "grid.csv", &csv).unwrap();
    manifest::record(
        &dir,
        "grid",
        vec![ManifestEntry::of("grid.csv", &csv, "grid", 0, 0)],
    )
    .unwrap();
    let opts = VerifyOptions {
        sample: 2,
        refs: 2_000,
        resim: true,
    };

    let clean = verify_dir(&dir, &opts).unwrap();
    assert!(clean.is_ok(), "{}", clean.render());
    assert_eq!(clean.files_checked, 1);
    assert_eq!(clean.journals_checked, 1);

    // Flip one byte in the CSV.
    let mut bytes = fs::read(dir.join("grid.csv")).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    fs::write(dir.join("grid.csv"), &bytes).unwrap();
    let flipped = verify_dir(&dir, &opts).unwrap();
    assert!(!flipped.is_ok());
    assert_eq!(flipped.files_mismatched.len(), 1, "{}", flipped.render());
    // Restore the CSV for the journal corruption case.
    bytes[mid] ^= 0x01;
    fs::write(dir.join("grid.csv"), &bytes).unwrap();

    // Flip one byte inside a journal record's metric digits.
    let journal = dir.join(".checkpoint").join("grid.jsonl");
    let mut jbytes = fs::read(&journal).unwrap();
    let miss_at = jbytes
        .windows(7)
        .position(|w| w == b"\"miss\":")
        .expect("journal has a point record");
    let digit = (miss_at + 7..jbytes.len())
        .find(|&i| jbytes[i].is_ascii_digit())
        .unwrap();
    jbytes[digit] = if jbytes[digit] == b'9' { b'8' } else { b'9' };
    fs::write(&journal, &jbytes).unwrap();
    let corrupted = verify_dir(&dir, &opts).unwrap();
    assert!(!corrupted.is_ok());
    assert!(
        !corrupted.journal_issues.is_empty(),
        "{}",
        corrupted.render()
    );
    fs::remove_dir_all(&dir).unwrap();
}
