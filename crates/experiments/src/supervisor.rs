//! Run supervision for paper-scale sweeps — re-exported from
//! [`occache_runtime::executor`], where the watchdog, retry/backoff and
//! worker-pool machinery now lives (shared with `occache-serve`'s
//! scheduler). This module keeps the historical import path
//! (`occache_experiments::supervisor::*`) working for the batch bins and
//! downstream callers; it contains no logic of its own.

pub use occache_runtime::executor::{
    evaluate_results_supervised, evaluate_results_supervised_with, FaultKind, FaultPlan,
    SuperviseStats, SupervisorPolicy, DEFAULT_POINT_TIMEOUT,
};
