//! Resumable sweeps: an append-only journal of completed design points.
//!
//! Paper-scale sweeps (1 M references × dozens of configs × four
//! architectures) take long enough that a crash or interrupt should not
//! restart them from zero. Each completed design point is appended to
//! `results/.checkpoint/<artifact>.jsonl` as one JSON line keyed by a hash
//! of the cache configuration, the trace-set fingerprint and the warm-up
//! length. On restart, points whose key is already journalled are restored
//! instead of re-simulated; anything else (changed trace set, changed
//! `OCCACHE_REFS`, new configs) misses the key and is evaluated normally.
//!
//! Pass `--fresh` (or set `OCCACHE_FRESH=1`) to discard the journal and
//! recompute everything. Journal corruption is tolerated: unreadable lines
//! are skipped, so a line half-written at the moment of a crash costs one
//! design point, not the run.

use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::{self, BufRead, BufReader, Write as _};
use std::path::{Path, PathBuf};

use occache_core::CacheConfig;

use crate::report::results_dir;
use crate::sweep::{
    evaluate_results_sliced, DesignPoint, PointError, SweepOutcome, Trace,
};

/// A journalled measurement: the averaged ratios of one design point.
/// The config itself is not stored — the key identifies it, and the
/// caller's config list supplies the full value on restore.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Entry {
    miss: f64,
    traffic: f64,
    nibble: f64,
    redundant: f64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a hasher (no std `Hasher` indirection so the stream
/// fed in is explicit and stable across Rust versions).
#[derive(Debug, Clone, Copy)]
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(FNV_OFFSET)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    fn finish(self) -> u64 {
        self.0
    }
}

/// A stable fingerprint of a trace set: names, lengths and every
/// reference. Two sweeps resume from each other's journals only when they
/// saw byte-identical traces.
pub fn trace_fingerprint(traces: &[Trace]) -> u64 {
    let mut h = Fnv::new();
    for trace in traces {
        h.write(trace.name.as_bytes());
        h.write(&[0xff]);
        h.write(&(trace.refs.len() as u64).to_le_bytes());
        for r in trace.refs.iter() {
            h.write(&[occache_trace::din::din_label(r.kind())]);
            h.write(&r.address().value().to_le_bytes());
        }
    }
    h.finish()
}

/// The journal key of one design point: config (its full `Debug`
/// rendering, which covers every field) + trace fingerprint + warm-up.
pub fn point_key(config: &CacheConfig, fingerprint: u64, warmup: usize) -> u64 {
    let mut h = Fnv::new();
    h.write(format!("{config:?}").as_bytes());
    h.write(&fingerprint.to_le_bytes());
    h.write(&(warmup as u64).to_le_bytes());
    h.finish()
}

/// Whether the user asked to ignore existing checkpoints: `--fresh` on the
/// command line or `OCCACHE_FRESH` set to anything but `0`/empty.
pub fn fresh_requested() -> bool {
    if std::env::args().any(|a| a == "--fresh") {
        return true;
    }
    match std::env::var("OCCACHE_FRESH") {
        Ok(v) => !v.is_empty() && v != "0",
        Err(_) => false,
    }
}

/// The journal path for an artifact under `dir`.
fn journal_path(dir: &Path, artifact: &str) -> PathBuf {
    dir.join(".checkpoint").join(format!("{artifact}.jsonl"))
}

fn entry_line(key: u64, e: &Entry) -> String {
    // {:?} on f64 prints the shortest string that round-trips exactly, so
    // a restored point is bit-identical to the computed one.
    format!(
        "{{\"key\":\"{key:016x}\",\"miss\":{:?},\"traffic\":{:?},\"nibble\":{:?},\"redundant\":{:?}}}",
        e.miss, e.traffic, e.nibble, e.redundant
    )
}

/// Parses one journal line; `None` for anything unreadable (corrupt tail
/// after a crash, foreign garbage).
fn parse_entry_line(line: &str) -> Option<(u64, Entry)> {
    let inner = line.trim().strip_prefix('{')?.strip_suffix('}')?;
    let mut key = None;
    let mut miss = None;
    let mut traffic = None;
    let mut nibble = None;
    let mut redundant = None;
    // Values are a hex string and plain floats, neither of which can
    // contain a comma, so splitting on ',' is unambiguous.
    for field in inner.split(',') {
        let (name, value) = field.split_once(':')?;
        let name = name.trim().strip_prefix('"')?.strip_suffix('"')?;
        let value = value.trim();
        match name {
            "key" => {
                let hex = value.strip_prefix('"')?.strip_suffix('"')?;
                key = Some(u64::from_str_radix(hex, 16).ok()?);
            }
            "miss" => miss = Some(value.parse().ok()?),
            "traffic" => traffic = Some(value.parse().ok()?),
            "nibble" => nibble = Some(value.parse().ok()?),
            "redundant" => redundant = Some(value.parse().ok()?),
            _ => return None,
        }
    }
    Some((
        key?,
        Entry {
            miss: miss?,
            traffic: traffic?,
            nibble: nibble?,
            redundant: redundant?,
        },
    ))
}

/// Loads a journal, skipping unreadable lines. A missing file is an empty
/// journal.
fn load_journal(path: &Path) -> io::Result<HashMap<u64, Entry>> {
    let file = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(HashMap::new()),
        Err(e) => return Err(e),
    };
    let mut entries = HashMap::new();
    for line in BufReader::new(file).lines() {
        let line = line?;
        if let Some((key, entry)) = parse_entry_line(&line) {
            entries.insert(key, entry);
        }
    }
    Ok(entries)
}

fn restore_point(config: CacheConfig, e: &Entry) -> DesignPoint {
    DesignPoint {
        config,
        miss_ratio: e.miss,
        traffic_ratio: e.traffic,
        nibble_traffic_ratio: e.nibble,
        redundant_load_fraction: e.redundant,
        gross_size: config.gross_size(),
    }
}

/// Checkpointed, fault-isolated sweep with an explicit journal directory,
/// fresh flag and evaluation function — the fully injectable form used by
/// tests; production callers use [`evaluate_checkpointed`].
///
/// `eval` takes the whole pending batch at once (so the production path
/// can share trace passes across configs — see
/// [`evaluate_results_sliced`]) and must return exactly one result per
/// pending config, in order. Per-point evaluation functions adapt via
/// [`crate::sweep::batch_of`]. Journal keys stay per-point either way,
/// so resume semantics do not depend on how points were batched.
///
/// Journalled points are restored without re-simulation
/// ([`SweepOutcome::resumed`] counts them); the rest run through the
/// fault-isolated sweep, and each success is appended to the journal
/// before returning. Failed points are never journalled, so a later run
/// retries them.
///
/// # Errors
///
/// Propagates journal I/O failures (unreadable/unwritable checkpoint
/// directory). Simulation faults are *not* errors — they come back in
/// [`SweepOutcome::failures`].
pub fn evaluate_checkpointed_in<F>(
    dir: &Path,
    artifact: &str,
    configs: &[CacheConfig],
    traces: &[Trace],
    warmup: usize,
    fresh: bool,
    eval: F,
) -> io::Result<SweepOutcome>
where
    F: Fn(&[CacheConfig], &[Trace], usize) -> Vec<Result<DesignPoint, PointError>> + Sync,
{
    let path = journal_path(dir, artifact);
    if fresh {
        match fs::remove_file(&path) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
    }
    let journal = if fresh { HashMap::new() } else { load_journal(&path)? };
    let fingerprint = trace_fingerprint(traces);
    let keys: Vec<u64> = configs
        .iter()
        .map(|c| point_key(c, fingerprint, warmup))
        .collect();

    // Partition into restored and pending, remembering original indices.
    let mut slots: Vec<Option<Result<DesignPoint, crate::sweep::PointError>>> =
        vec![None; configs.len()];
    let mut pending_idx = Vec::new();
    let mut pending_cfg = Vec::new();
    let mut resumed = 0;
    for (i, (&config, &key)) in configs.iter().zip(&keys).enumerate() {
        if let Some(entry) = journal.get(&key) {
            slots[i] = Some(Ok(restore_point(config, entry)));
            resumed += 1;
        } else {
            pending_idx.push(i);
            pending_cfg.push(config);
        }
    }

    if !pending_cfg.is_empty() {
        let results = eval(&pending_cfg, traces, warmup);
        assert_eq!(
            results.len(),
            pending_cfg.len(),
            "batch eval must return one result per pending config"
        );
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        let mut out = OpenOptions::new().create(true).append(true).open(&path)?;
        for (&i, result) in pending_idx.iter().zip(results) {
            if let Ok(p) = &result {
                let entry = Entry {
                    miss: p.miss_ratio,
                    traffic: p.traffic_ratio,
                    nibble: p.nibble_traffic_ratio,
                    redundant: p.redundant_load_fraction,
                };
                writeln!(out, "{}", entry_line(keys[i], &entry))?;
            }
            slots[i] = Some(result);
        }
        out.sync_all()?;
    }

    let mut outcome = SweepOutcome {
        resumed,
        ..SweepOutcome::default()
    };
    for slot in slots {
        match slot.expect("every config restored or evaluated") {
            Ok(p) => outcome.points.push(p),
            Err(e) => outcome.failures.push(e),
        }
    }
    Ok(outcome)
}

/// Checkpointed sweep for an artifact under the standard results
/// directory, honouring `--fresh` / `OCCACHE_FRESH`.
///
/// Journal I/O trouble degrades gracefully: the sweep still runs (without
/// resumability) and the problem is reported on stderr, because losing
/// checkpointing must never lose the science.
pub fn evaluate_checkpointed(
    artifact: &str,
    configs: &[CacheConfig],
    traces: &[Trace],
    warmup: usize,
) -> SweepOutcome {
    match evaluate_checkpointed_in(
        &results_dir(),
        artifact,
        configs,
        traces,
        warmup,
        fresh_requested(),
        evaluate_results_sliced,
    ) {
        Ok(outcome) => {
            if outcome.resumed > 0 {
                eprintln!(
                    "{artifact}: resumed {} of {} design point(s) from checkpoint",
                    outcome.resumed,
                    configs.len()
                );
            }
            outcome
        }
        Err(e) => {
            eprintln!("{artifact}: checkpoint journal unavailable ({e}); running without resume");
            crate::sweep::evaluate_points_isolated(configs, traces, warmup)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::{batch_of, evaluate_point, materialize, standard_config, table1_pairs};
    use occache_workloads::{Architecture, WorkloadSpec};

    fn test_grid() -> (Vec<CacheConfig>, Vec<Trace>) {
        let traces = materialize(&[WorkloadSpec::pdp11_ed()], 1_000);
        let configs = table1_pairs(64, 2)
            .into_iter()
            .map(|(b, s)| standard_config(Architecture::Pdp11, 64, b, s))
            .collect();
        (configs, traces)
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "occache-ckpt-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn entry_lines_round_trip_exactly() {
        let e = Entry {
            miss: 0.052_123_456_789,
            traffic: 1.0 / 3.0,
            nibble: f64::MIN_POSITIVE,
            redundant: 0.0,
        };
        let line = entry_line(0xdead_beef, &e);
        let (key, back) = parse_entry_line(&line).unwrap();
        assert_eq!(key, 0xdead_beef);
        assert_eq!(back, e);
    }

    #[test]
    fn corrupt_lines_are_skipped() {
        assert_eq!(parse_entry_line(""), None);
        assert_eq!(parse_entry_line("{\"key\":\"zz\"}"), None);
        assert_eq!(parse_entry_line("{\"key\":\"1\",\"miss\":0.1"), None);
        assert_eq!(parse_entry_line("not json at all"), None);
    }

    #[test]
    fn fingerprint_distinguishes_traces_and_warmup_keys() {
        let a = materialize(&[WorkloadSpec::pdp11_ed()], 500);
        let b = materialize(&[WorkloadSpec::pdp11_ed()], 501);
        let c = materialize(&[WorkloadSpec::pdp11_opsys()], 500);
        let fa = trace_fingerprint(&a);
        assert_eq!(fa, trace_fingerprint(&a), "deterministic");
        assert_ne!(fa, trace_fingerprint(&b), "length changes the set");
        assert_ne!(fa, trace_fingerprint(&c), "workload changes the set");
        let config = standard_config(Architecture::Pdp11, 64, 8, 4);
        assert_ne!(
            point_key(&config, fa, 0),
            point_key(&config, fa, 100),
            "warm-up is part of the key"
        );
    }

    #[test]
    fn second_run_resumes_everything() {
        let dir = temp_dir("resume");
        let (configs, traces) = test_grid();
        let first = evaluate_checkpointed_in(
            &dir,
            "t",
            &configs,
            &traces,
            0,
            false,
            batch_of(evaluate_point),
        )
        .unwrap();
        assert_eq!(first.resumed, 0);
        assert!(first.is_complete());
        // Second run: everything comes from the journal; an eval fn that
        // panics proves nothing is re-simulated.
        let second = evaluate_checkpointed_in(
            &dir,
            "t",
            &configs,
            &traces,
            0,
            false,
            batch_of(|_, _, _| -> DesignPoint { panic!("should not re-simulate") }),
        )
        .unwrap();
        assert_eq!(second.resumed, configs.len());
        for (a, b) in first.points.iter().zip(&second.points) {
            assert_eq!(a.miss_ratio, b.miss_ratio);
            assert_eq!(a.traffic_ratio, b.traffic_ratio);
            assert_eq!(a.nibble_traffic_ratio, b.nibble_traffic_ratio);
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fresh_discards_the_journal() {
        let dir = temp_dir("fresh");
        let (configs, traces) = test_grid();
        evaluate_checkpointed_in(&dir, "t", &configs, &traces, 0, false, batch_of(evaluate_point))
            .unwrap();
        let again = evaluate_checkpointed_in(
            &dir,
            "t",
            &configs,
            &traces,
            0,
            true,
            batch_of(evaluate_point),
        )
        .unwrap();
        assert_eq!(again.resumed, 0, "--fresh must re-simulate");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_points_are_retried_on_resume() {
        let dir = temp_dir("retry");
        let (configs, traces) = test_grid();
        let bad = configs[3];
        let faulty = batch_of(|c: CacheConfig, t: &[Trace], w: usize| {
            if c == bad {
                panic!("injected fault");
            }
            evaluate_point(c, t, w)
        });
        let first =
            evaluate_checkpointed_in(&dir, "t", &configs, &traces, 0, false, faulty).unwrap();
        assert_eq!(first.failures.len(), 1);
        // Restart with a healthy eval: only the failed point re-runs.
        let second = evaluate_checkpointed_in(
            &dir,
            "t",
            &configs,
            &traces,
            0,
            false,
            batch_of(evaluate_point),
        )
        .unwrap();
        assert_eq!(second.resumed, configs.len() - 1);
        assert!(second.is_complete());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn changed_traces_invalidate_the_journal() {
        let dir = temp_dir("invalidate");
        let (configs, traces) = test_grid();
        evaluate_checkpointed_in(&dir, "t", &configs, &traces, 0, false, batch_of(evaluate_point))
            .unwrap();
        let longer = materialize(&[WorkloadSpec::pdp11_ed()], 2_000);
        let outcome = evaluate_checkpointed_in(
            &dir,
            "t",
            &configs,
            &longer,
            0,
            false,
            batch_of(evaluate_point),
        )
        .unwrap();
        assert_eq!(outcome.resumed, 0, "different traces must not resume");
        fs::remove_dir_all(&dir).unwrap();
    }
}
