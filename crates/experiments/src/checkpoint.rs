//! Resumable sweeps: an append-only, checksummed journal of completed
//! design points.
//!
//! Paper-scale sweeps (1 M references × dozens of configs × four
//! architectures) take long enough that a crash or interrupt should not
//! restart them from zero. Each completed design point is appended to
//! `results/.checkpoint/<artifact>.jsonl` as one JSON line keyed by a hash
//! of the cache configuration, the trace-set fingerprint and the warm-up
//! length. On restart, points whose key is already journalled are restored
//! instead of re-simulated; anything else (changed trace set, changed
//! `OCCACHE_REFS`, new configs) misses the key and is evaluated normally.
//!
//! The record *codec* — sealing, parsing, line classification, whole-file
//! scanning and the key derivation — lives in [`occache_runtime::journal`]
//! and [`occache_runtime::keys`], shared with `occache-serve`'s result
//! cache so a cache entry in the server means exactly what a journal line
//! means here. Those items are re-exported below under their historical
//! paths. This module owns the *policy* around the codec: quarantine
//! tallies, the advisory lock, atomic compaction, and the checkpointed
//! sweep entry points.
//!
//! Since journal format v2 every record carries a schema-version field
//! and an FNV-1a checksum over its payload, so corruption is *detected*
//! rather than silently mis-parsed: bad lines are counted into
//! [`SweepOutcome::journal`] and warned about once per journal with
//! their line numbers, a torn trailing record (crash mid-append) is
//! truncated away, and any damage triggers an atomic compaction that
//! rewrites the journal from its intact records. Failed points are
//! journalled as *tombstones* (`"fail":1`); a point that failed in
//! [`QUARANTINE_AFTER`] runs is quarantined — skipped with a
//! [`PointFault::Quarantined`](crate::sweep::PointFault::Quarantined)
//! failure instead of being retried forever. A `.checkpoint/LOCK`
//! advisory lockfile with stale-PID detection makes each results
//! directory single-writer, so two concurrent runs cannot interleave
//! appends.
//!
//! Pass `--fresh` (or set `OCCACHE_FRESH=1`) to discard the journal
//! (tombstones included) and recompute everything.

use std::collections::HashSet;
use std::fs::{self, OpenOptions};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::{Mutex, OnceLock};

use occache_core::CacheConfig;
use occache_runtime::journal::{point_body, seal, tombstone_body};
use occache_runtime::progress::ProgressWriter;

use crate::report::{results_dir, write_result_in};
use crate::run_report::PhaseReport;
use crate::supervisor::{evaluate_results_supervised_with, SuperviseStats, SupervisorPolicy};
use crate::sweep::{DesignPoint, PointError, PointFault, SweepOutcome, Trace};

pub use occache_runtime::config::fresh_requested;
pub use occache_runtime::journal::{
    journal_path, lock_path, parse_line, scan_journal, Entry, JournalScan, LineIssue, Record,
    JOURNAL_VERSION,
};
pub use occache_runtime::keys::{config_fingerprint, fnv1a, point_key, trace_fingerprint};

/// How many failed runs put a design point into quarantine: the point is
/// skipped (with a structured failure) instead of retried forever on
/// every resume. `--fresh` clears the tally.
pub const QUARANTINE_AFTER: u32 = 2;

/// Process exit code when another live run holds the checkpoint lock
/// (sysexits `EX_TEMPFAIL`: try again later).
pub const EXIT_LOCKED: i32 = 75;

/// Atomically rewrites a journal from a scan's intact records: canonical
/// sealed lines, points first (sorted by key), then one aggregated
/// tombstone per still-failing key. Tombstones for keys that later
/// succeeded are dropped — success clears the tally.
fn compact_journal(path: &Path, scan: &JournalScan) -> io::Result<()> {
    let dir = path.parent().unwrap_or_else(|| Path::new("."));
    let name = path
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "journal path has no name"))?;
    let mut content = String::new();
    let mut keys: Vec<u64> = scan.points.keys().copied().collect();
    keys.sort_unstable();
    for key in keys {
        let entry = scan.points[&key];
        content.push_str(&seal(&point_body(key, &entry)));
        content.push('\n');
    }
    let mut fail_keys: Vec<u64> = scan
        .fails
        .keys()
        .copied()
        .filter(|k| !scan.points.contains_key(k))
        .collect();
    fail_keys.sort_unstable();
    for key in fail_keys {
        content.push_str(&seal(&tombstone_body(key, scan.fails[&key])));
        content.push('\n');
    }
    write_result_in(dir, name, &content).map(|_| ())
}

// ---------------------------------------------------------------------------
// Advisory lock: .checkpoint/LOCK holds the writer's PID.
// ---------------------------------------------------------------------------

/// An acquired advisory lock on a results directory's checkpoint store.
/// Dropping it releases the lock (removes the file). The lock makes the
/// journal single-writer across processes: a second live process fails
/// fast with a diagnostic instead of interleaving appends.
#[derive(Debug)]
pub struct JournalLock {
    path: PathBuf,
}

/// Whether a PID refers to a live process. Uses `/proc` where it exists
/// (Linux); elsewhere every recorded PID is assumed live, so stale locks
/// need manual removal — the conservative failure mode.
fn pid_alive(pid: u32) -> bool {
    let proc_root = Path::new("/proc");
    if !proc_root.exists() {
        return true;
    }
    proc_root.join(pid.to_string()).exists()
}

impl JournalLock {
    /// Acquires the lock for `dir`, creating `.checkpoint/` on demand.
    ///
    /// A lockfile naming a dead PID is stale and silently replaced. One
    /// naming this process's own PID means another thread of this
    /// process holds it — we wait (bounded) for that thread to finish,
    /// because in-process callers are already serialised per artifact.
    /// One naming a live foreign PID (or unreadable content) fails with
    /// [`io::ErrorKind::WouldBlock`] and a diagnostic naming the holder.
    ///
    /// # Errors
    ///
    /// `WouldBlock` when another live run holds the lock; other I/O
    /// errors propagate from filesystem trouble.
    pub fn acquire(dir: &Path) -> io::Result<JournalLock> {
        let ckpt = dir.join(".checkpoint");
        fs::create_dir_all(&ckpt)?;
        let path = ckpt.join("LOCK");
        let own_pid = std::process::id();
        // Bounded own-PID wait: 25 ms polls for up to ~10 minutes.
        let mut own_waits: u32 = 0;
        loop {
            match OpenOptions::new().write(true).create_new(true).open(&path) {
                Ok(mut f) => {
                    f.write_all(own_pid.to_string().as_bytes())?;
                    f.sync_all()?;
                    return Ok(JournalLock { path });
                }
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                    let holder = fs::read_to_string(&path)
                        .ok()
                        .and_then(|s| s.trim().parse::<u32>().ok());
                    match holder {
                        Some(pid) if pid == own_pid => {
                            own_waits += 1;
                            if own_waits > 24_000 {
                                return Err(io::Error::new(
                                    io::ErrorKind::WouldBlock,
                                    format!(
                                        "checkpoint lock {} held by this process for over 10 \
                                         minutes; giving up",
                                        path.display()
                                    ),
                                ));
                            }
                            std::thread::sleep(std::time::Duration::from_millis(25));
                        }
                        Some(pid) if !pid_alive(pid) => {
                            // Stale: the writer died without releasing.
                            let _ = fs::remove_file(&path);
                        }
                        Some(pid) => {
                            return Err(io::Error::new(
                                io::ErrorKind::WouldBlock,
                                format!(
                                    "checkpoint lock {} is held by live process {pid}; \
                                     refusing to interleave journal writes",
                                    path.display()
                                ),
                            ));
                        }
                        None => {
                            return Err(io::Error::new(
                                io::ErrorKind::WouldBlock,
                                format!(
                                    "checkpoint lock {} exists with unreadable contents; \
                                     remove it manually if no other run is active",
                                    path.display()
                                ),
                            ));
                        }
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }
}

impl Drop for JournalLock {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.path);
    }
}

/// Warns about a damaged journal once per path per process, naming the
/// first few offending line numbers.
fn warn_once(path: &Path, scan: &JournalScan) {
    if scan.issues.is_empty() && scan.torn_tail_bytes == 0 {
        return;
    }
    static WARNED: OnceLock<Mutex<HashSet<PathBuf>>> = OnceLock::new();
    let warned = WARNED.get_or_init(|| Mutex::new(HashSet::new()));
    let mut warned = warned.lock().expect("journal warning registry lock");
    if !warned.insert(path.to_path_buf()) {
        return;
    }
    let mut detail = String::new();
    for (line_no, issue) in scan.issues.iter().take(8) {
        if !detail.is_empty() {
            detail.push_str(", ");
        }
        detail.push_str(&format!("line {line_no}: {issue}"));
    }
    if scan.issues.len() > 8 {
        detail.push_str(&format!(", … {} more", scan.issues.len() - 8));
    }
    if scan.torn_tail_bytes > 0 {
        if !detail.is_empty() {
            detail.push_str(", ");
        }
        detail.push_str(&format!("torn tail: {} byte(s)", scan.torn_tail_bytes));
    }
    eprintln!(
        "warning: journal {} had {} bad line(s) [{detail}]; damaged records were dropped and \
         the journal compacted",
        path.display(),
        scan.issues.len(),
    );
}

fn restore_point(config: CacheConfig, e: &Entry) -> DesignPoint {
    DesignPoint {
        config,
        miss_ratio: e.miss,
        traffic_ratio: e.traffic,
        nibble_traffic_ratio: e.nibble,
        redundant_load_fraction: e.redundant,
        gross_size: config.gross_size(),
    }
}

/// Checkpointed, fault-isolated sweep with an explicit journal directory,
/// fresh flag and evaluation function — the fully injectable form used by
/// tests; production callers use [`evaluate_checkpointed`].
///
/// `eval` takes the whole pending batch at once (so the production path
/// can share trace passes across configs — see
/// [`crate::sweep::evaluate_results_sliced`]) and must return exactly one
/// result per pending config, in order. Per-point evaluation functions
/// adapt via [`crate::sweep::batch_of`]. Journal keys stay per-point
/// either way, so resume semantics do not depend on how points were
/// batched.
///
/// Journalled points are restored without re-simulation
/// ([`SweepOutcome::resumed`] counts them); quarantined points (those
/// with [`QUARANTINE_AFTER`] or more journalled failures) are skipped
/// with a structured failure; the rest run through `eval`. Each success
/// with finite metrics is appended to the journal before returning; a
/// failure — or a non-finite "success", which is rejected here — appends
/// a failure tombstone so the quarantine tally survives restarts.
///
/// The whole call holds the directory's [`JournalLock`]; a second live
/// process gets [`io::ErrorKind::WouldBlock`]. Journal damage found on
/// load is counted into [`SweepOutcome::journal`], warned about once,
/// and repaired in place by atomic compaction.
///
/// # Errors
///
/// Propagates journal I/O failures (unreadable/unwritable checkpoint
/// directory, lock contention). Simulation faults are *not* errors —
/// they come back in [`SweepOutcome::failures`].
pub fn evaluate_checkpointed_in<F>(
    dir: &Path,
    artifact: &str,
    configs: &[CacheConfig],
    traces: &[Trace],
    warmup: usize,
    fresh: bool,
    eval: F,
) -> io::Result<SweepOutcome>
where
    F: Fn(&[CacheConfig], &[Trace], usize) -> Vec<Result<DesignPoint, PointError>> + Sync,
{
    // The batch form journals after the whole batch returns, in pending
    // order — the historical semantics the tests pin down. It is a thin
    // wrapper over the streamed form with a post-hoc sink.
    evaluate_checkpointed_in_streamed(
        dir,
        artifact,
        configs,
        traces,
        warmup,
        fresh,
        |cfgs, tr, w, sink: &JournalSink, _progress: &ProgressWriter| {
            let results = eval(cfgs, tr, w);
            for (i, r) in results.iter().enumerate() {
                sink(i, r);
            }
            results
        },
    )
}

/// The per-point completion sink a streamed checkpointed sweep hands to
/// its evaluation function: `(pending_index, result)`. Must be called
/// exactly once per pending config, from any thread; each call seals one
/// journal line and forwards it to the single writer thread.
pub type JournalSink<'a> = dyn Fn(usize, &Result<DesignPoint, PointError>) + Sync + 'a;

/// [`evaluate_checkpointed_in`] with *incremental* journaling: `eval`
/// receives a [`JournalSink`] and calls it as each pending point
/// completes, so a crash or interrupt mid-batch loses only in-flight
/// points, not the whole batch. All appends go through one writer
/// thread fed by a channel, keeping the journal single-writer no matter
/// how many sweep workers complete points concurrently (`OCCACHE_JOBS`).
///
/// Lines land in completion order; journal keys are per-point, so resume
/// semantics are identical to the batch form. Interrupted points
/// ([`PointFault::Interrupted`]) are *not* tombstoned — nothing was
/// evaluated, and a tombstone would push an innocent point toward
/// quarantine.
///
/// The phase also drives the live progress feed
/// (`[occache_runtime::progress]`, `results/.checkpoint/PROGRESS.json`):
/// an initial snapshot lands once resume has settled restored and
/// quarantined counts, every journal-sink completion feeds it, and the
/// feed is sealed — interrupt flag included — before the outcome
/// returns. `eval` receives the [`ProgressWriter`] so it can fold in
/// what only it observes (supervisor retry tallies).
///
/// # Errors
///
/// As [`evaluate_checkpointed_in`]; additionally any journal-append
/// failure observed by the writer thread is reported after evaluation.
pub fn evaluate_checkpointed_in_streamed<F>(
    dir: &Path,
    artifact: &str,
    configs: &[CacheConfig],
    traces: &[Trace],
    warmup: usize,
    fresh: bool,
    eval: F,
) -> io::Result<SweepOutcome>
where
    F: FnOnce(
        &[CacheConfig],
        &[Trace],
        usize,
        &JournalSink,
        &ProgressWriter,
    ) -> Vec<Result<DesignPoint, PointError>>,
{
    let path = journal_path(dir, artifact);
    let _lock = JournalLock::acquire(dir)?;
    if fresh {
        match fs::remove_file(&path) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
    }
    let scan = scan_journal(&path)?;
    warn_once(&path, &scan);
    if scan.needs_repair() {
        compact_journal(&path, &scan)?;
    }
    let fingerprint = trace_fingerprint(traces);
    let keys: Vec<u64> = configs
        .iter()
        .map(|c| point_key(c, fingerprint, warmup))
        .collect();

    // Partition into restored, quarantined and pending, remembering
    // original indices.
    let mut slots: Vec<Option<Result<DesignPoint, PointError>>> = vec![None; configs.len()];
    let mut pending_idx = Vec::new();
    let mut pending_cfg = Vec::new();
    let mut resumed = 0;
    let mut quarantined = 0;
    for (i, (&config, &key)) in configs.iter().zip(&keys).enumerate() {
        if let Some(entry) = scan.points.get(&key) {
            slots[i] = Some(Ok(restore_point(config, entry)));
            resumed += 1;
        } else if let Some(&fails) = scan.fails.get(&key).filter(|&&n| n >= QUARANTINE_AFTER) {
            slots[i] = Some(Err(PointError::quarantined(config, fails)));
            quarantined += 1;
        } else {
            pending_idx.push(i);
            pending_cfg.push(config);
        }
    }

    // The live progress feed starts once resume has settled what is
    // already done, and is sealed before this call returns — so a
    // dashboard sees `restored` jump at phase start, `computed` climb
    // during evaluation, and `sealed: true` exactly when the journal is
    // consistent with the outcome.
    let every = occache_runtime::config::try_progress_every().unwrap_or_else(|e| {
        eprintln!("warning: ignoring invalid progress settings: {e}");
        16
    });
    let progress = ProgressWriter::start(dir, artifact, configs.len(), resumed, quarantined, every);

    if !pending_cfg.is_empty() {
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        let out = OpenOptions::new().create(true).append(true).open(&path)?;
        // Single-writer journal: every completion, from any sweep worker,
        // funnels through this channel to one thread owning the file, so
        // sealed lines never interleave mid-record.
        let (tx, rx) = std::sync::mpsc::channel::<String>();
        let writer = std::thread::Builder::new()
            .name("occache-journal".to_string())
            .spawn(move || -> io::Result<()> {
                let mut out = out;
                for line in rx {
                    out.write_all(line.as_bytes())?;
                }
                out.sync_all()
            })
            .map_err(|e| {
                io::Error::new(e.kind(), format!("could not spawn the journal writer: {e}"))
            })?;
        let tx = Mutex::new(Some(tx));
        let pending_keys: Vec<u64> = pending_idx.iter().map(|&i| keys[i]).collect();
        let progress = &progress;
        let sink = |pi: usize, result: &Result<DesignPoint, PointError>| {
            let Some(&key) = pending_keys.get(pi) else {
                return; // out-of-range index from a buggy eval: ignore
            };
            let body = match result {
                Ok(p) => match Entry::of(p).non_finite_field() {
                    // Reject poisoned metrics at the journal gate: a
                    // NaN/inf must not round-trip into an artifact.
                    Some(_) => {
                        progress.failed(false);
                        tombstone_body(key, 1)
                    }
                    None => {
                        progress.completed();
                        point_body(key, &Entry::of(p))
                    }
                },
                // An interrupted point was never evaluated: no tombstone,
                // so the resumed run retries it without a quarantine mark.
                Err(e) if e.fault == PointFault::Interrupted => return,
                Err(e) => {
                    progress.failed(e.fault == PointFault::Timeout);
                    tombstone_body(key, 1)
                }
            };
            if let Some(tx) = tx.lock().expect("journal sender lock").as_ref() {
                let _ = tx.send(format!("{}\n", seal(&body)));
            }
        };
        let results = eval(&pending_cfg, traces, warmup, &sink, progress);
        // Close the channel and reap the writer; its I/O verdict is the
        // journal's.
        *tx.lock().expect("journal sender lock") = None;
        writer.join().unwrap_or_else(|payload| {
            Err(io::Error::other(format!(
                "journal writer thread panicked: {}",
                occache_runtime::eval::panic_message(payload)
            )))
        })?;
        assert_eq!(
            results.len(),
            pending_cfg.len(),
            "batch eval must return one result per pending config"
        );
        for (&i, result) in pending_idx.iter().zip(results) {
            let result = match result {
                Ok(p) => {
                    let entry = Entry::of(&p);
                    match entry.non_finite_field() {
                        Some(field) => Err(PointError::non_finite(p.config, field)),
                        None => Ok(p),
                    }
                }
                Err(e) => Err(e),
            };
            slots[i] = Some(result);
        }
    }

    progress.seal(occache_runtime::interrupt::requested());

    let mut outcome = SweepOutcome {
        resumed,
        journal: scan.health(),
        ..SweepOutcome::default()
    };
    for slot in slots {
        match slot.expect("every config restored, quarantined or evaluated") {
            Ok(p) => outcome.points.push(p),
            Err(e) => outcome.failures.push(e),
        }
    }
    Ok(outcome)
}

/// Per-process registry of journal paths already freshened, so a bin that
/// sweeps one artifact in several calls (e.g. `table7`, once per
/// architecture) discards the journal on the *first* call only instead of
/// wiping its own earlier appends.
fn fresh_effective(path: &Path) -> bool {
    if !fresh_requested() {
        return false;
    }
    static FRESHENED: OnceLock<Mutex<HashSet<PathBuf>>> = OnceLock::new();
    let freshened = FRESHENED.get_or_init(|| Mutex::new(HashSet::new()));
    freshened
        .lock()
        .expect("freshened journal registry lock")
        .insert(path.to_path_buf())
}

/// Checkpointed sweep for an artifact under the standard results
/// directory, honouring `--fresh` / `OCCACHE_FRESH` and the supervisor
/// environment (`OCCACHE_POINT_TIMEOUT`, `OCCACHE_POINT_RETRIES`,
/// `OCCACHE_FAULT_POINT`). Every evaluation runs under the supervisor:
/// per-point deadlines, bounded retries, quarantine on repeat offenders.
/// The phase is recorded into the in-process run report
/// ([`crate::run_report`]) for RUN_REPORT.json.
///
/// Journal I/O trouble degrades gracefully: the sweep still runs (without
/// resumability) and the problem is reported on stderr, because losing
/// checkpointing must never lose the science. The one exception is lock
/// contention — another live run writing the same results directory —
/// where continuing would interleave appends; the process prints a
/// diagnostic and exits with [`EXIT_LOCKED`].
pub fn evaluate_checkpointed(
    artifact: &str,
    configs: &[CacheConfig],
    traces: &[Trace],
    warmup: usize,
) -> SweepOutcome {
    let started = std::time::Instant::now();
    let policy = SupervisorPolicy::from_env_lenient();
    let stats = Mutex::new(SuperviseStats::default());
    let dir = results_dir();
    let fresh = fresh_effective(&journal_path(&dir, artifact));
    // Stream each point into the journal as the supervisor finishes it,
    // so a SIGINT mid-sweep still leaves everything completed so far
    // sealed on disk.
    let supervised = |cfgs: &[CacheConfig],
                      tr: &[Trace],
                      w: usize,
                      sink: &JournalSink,
                      progress: &ProgressWriter| {
        let (results, s) =
            evaluate_results_supervised_with(&policy, cfgs, tr, w, None, |i, r| sink(i, r));
        // The retry and evaluation-path tallies only exist in
        // supervisor stats; fold them into the progress feed so the
        // seal carries them.
        progress.add_retries(s.retries);
        progress.add_engine_points(s.engine_points, s.direct_points);
        stats.lock().expect("supervisor stats lock").merge(s);
        results
    };
    match evaluate_checkpointed_in_streamed(
        &dir, artifact, configs, traces, warmup, fresh, supervised,
    ) {
        Ok(mut outcome) => {
            let stats = *stats.lock().expect("supervisor stats lock");
            outcome.retries = stats.retries;
            if outcome.resumed > 0 {
                eprintln!(
                    "{artifact}: resumed {} of {} design point(s) from checkpoint",
                    outcome.resumed,
                    configs.len()
                );
            }
            crate::run_report::record_phase(PhaseReport {
                artifact: artifact.to_string(),
                computed: outcome.points.len().saturating_sub(outcome.resumed),
                restored: outcome.resumed,
                failed: outcome.failures.len(),
                timed_out: outcome.timed_out(),
                quarantined: outcome.quarantined(),
                non_finite: outcome.non_finite(),
                retries: stats.retries,
                abandoned_threads: stats.abandoned_threads,
                engine_points: stats.engine_points,
                direct_points: stats.direct_points,
                bad_journal_lines: outcome.journal.bad_lines,
                repaired_tail_bytes: outcome.journal.repaired_tail_bytes,
                wall_ms: started.elapsed().as_millis(),
                trace_fp: trace_fingerprint(traces),
                config_fp: config_fingerprint(configs),
            });
            // Phase boundary: flush the report accumulated so far as an
            // in-flight snapshot, so RUN_REPORT.json is readable mid-run
            // (marked `"in_progress": true` until the binary's final
            // sealed write). Failure to flush must not fail the science.
            if let Err(e) = crate::run_report::flush(&dir) {
                eprintln!(
                    "warning: could not flush {}: {e}",
                    crate::run_report::RUN_REPORT_FILE
                );
            }
            outcome
        }
        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
            eprintln!("{artifact}: {e}");
            eprintln!(
                "another run appears to hold the checkpoint lock for {}; \
                 wait for it to finish (or remove a stale LOCK) and retry",
                dir.display()
            );
            std::process::exit(EXIT_LOCKED);
        }
        Err(e) => {
            eprintln!("{artifact}: checkpoint journal unavailable ({e}); running without resume");
            let (results, _) =
                evaluate_results_supervised_with(&policy, configs, traces, warmup, None, |_, _| {});
            let mut outcome = SweepOutcome::default();
            for result in results {
                match result {
                    Ok(p) => outcome.points.push(p),
                    Err(err) => outcome.failures.push(err),
                }
            }
            outcome
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::{
        batch_of, evaluate_point, materialize, standard_config, table1_pairs, JournalHealth,
        PointFault,
    };
    use occache_workloads::{Architecture, WorkloadSpec};

    fn test_grid() -> (Vec<CacheConfig>, Vec<Trace>) {
        let traces = materialize(&[WorkloadSpec::pdp11_ed()], 1_000);
        let configs = table1_pairs(64, 2)
            .into_iter()
            .map(|(b, s)| standard_config(Architecture::Pdp11, 64, b, s))
            .collect();
        (configs, traces)
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("occache-ckpt-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn sealed_lines_round_trip_exactly() {
        let e = Entry {
            miss: 0.052_123_456_789,
            traffic: 1.0 / 3.0,
            nibble: f64::MIN_POSITIVE,
            redundant: 0.0,
        };
        let line = seal(&point_body(0xdead_beef, &e));
        match parse_line(&line).unwrap() {
            Record::Point(key, back) => {
                assert_eq!(key, 0xdead_beef);
                assert_eq!(back, e);
            }
            other => panic!("expected a point, got {other:?}"),
        }
        let tomb = seal(&tombstone_body(0xdead_beef, 3));
        assert_eq!(
            parse_line(&tomb).unwrap(),
            Record::Tombstone(0xdead_beef, 3)
        );
    }

    #[test]
    fn corrupt_lines_are_classified_not_skipped() {
        assert_eq!(parse_line(""), Err(LineIssue::Unparseable));
        assert_eq!(parse_line("not json at all"), Err(LineIssue::Unparseable));
        // A flipped payload byte breaks the checksum.
        let good = seal(&point_body(
            7,
            &Entry {
                miss: 0.5,
                traffic: 0.25,
                nibble: 0.1,
                redundant: 0.0,
            },
        ));
        let bad = good.replace("0.25", "0.35");
        assert_eq!(parse_line(&bad), Err(LineIssue::BadChecksum));
        // A flipped checksum byte likewise.
        let bad_sum = {
            let mut s = good.clone();
            let idx = s.rfind('"').unwrap() - 1;
            let old = s.as_bytes()[idx];
            let new = if old == b'0' { '1' } else { '0' };
            s.replace_range(idx..idx + 1, &new.to_string());
            s
        };
        assert_eq!(parse_line(&bad_sum), Err(LineIssue::BadChecksum));
        // Legacy v1 records are reported as stale versions, not garbage.
        let v1 = "{\"key\":\"00000000deadbeef\",\"miss\":0.1,\"traffic\":0.2,\"nibble\":0.3,\"redundant\":0.0}";
        assert_eq!(parse_line(v1), Err(LineIssue::BadVersion));
        // Every proper prefix of a sealed line is unparseable: truncation
        // can never masquerade as a valid record.
        for cut in 0..good.len() {
            assert!(
                parse_line(&good[..cut]).is_err(),
                "prefix of {cut} bytes parsed"
            );
        }
    }

    #[test]
    fn non_finite_metrics_are_rejected_by_the_parser() {
        let e = Entry {
            miss: f64::NAN,
            traffic: 0.2,
            nibble: 0.3,
            redundant: 0.0,
        };
        let line = seal(&point_body(1, &e));
        assert_eq!(parse_line(&line), Err(LineIssue::NonFinite));
        let inf = Entry {
            miss: 0.1,
            traffic: f64::INFINITY,
            nibble: 0.3,
            redundant: 0.0,
        };
        let line = seal(&point_body(1, &inf));
        assert_eq!(parse_line(&line), Err(LineIssue::NonFinite));
    }

    #[test]
    fn non_finite_results_become_point_errors_and_tombstones() {
        let dir = temp_dir("nonfinite");
        let (configs, traces) = test_grid();
        let poisoned = configs[1];
        let eval = batch_of(|c: CacheConfig, t: &[Trace], w: usize| {
            let mut p = evaluate_point(c, t, w);
            if c == poisoned {
                p.miss_ratio = f64::NAN;
            }
            p
        });
        let outcome =
            evaluate_checkpointed_in(&dir, "t", &configs, &traces, 0, false, eval).unwrap();
        assert_eq!(outcome.failures.len(), 1);
        assert_eq!(outcome.failures[0].fault, PointFault::NonFinite);
        assert!(outcome.failures[0].message.contains("miss_ratio"));
        // The journal holds a tombstone, not a poisoned point: a healthy
        // rerun re-simulates it.
        let second = evaluate_checkpointed_in(
            &dir,
            "t",
            &configs,
            &traces,
            0,
            false,
            batch_of(evaluate_point),
        )
        .unwrap();
        assert!(second.is_complete());
        assert_eq!(second.resumed, configs.len() - 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fingerprint_distinguishes_traces_and_warmup_keys() {
        let a = materialize(&[WorkloadSpec::pdp11_ed()], 500);
        let b = materialize(&[WorkloadSpec::pdp11_ed()], 501);
        let c = materialize(&[WorkloadSpec::pdp11_opsys()], 500);
        let fa = trace_fingerprint(&a);
        assert_eq!(fa, trace_fingerprint(&a), "deterministic");
        assert_ne!(fa, trace_fingerprint(&b), "length changes the set");
        assert_ne!(fa, trace_fingerprint(&c), "workload changes the set");
        let config = standard_config(Architecture::Pdp11, 64, 8, 4);
        assert_ne!(
            point_key(&config, fa, 0),
            point_key(&config, fa, 100),
            "warm-up is part of the key"
        );
        let grid: Vec<CacheConfig> = table1_pairs(64, 2)
            .into_iter()
            .map(|(b, s)| standard_config(Architecture::Pdp11, 64, b, s))
            .collect();
        assert_eq!(config_fingerprint(&grid), config_fingerprint(&grid));
        assert_ne!(
            config_fingerprint(&grid),
            config_fingerprint(&grid[1..]),
            "grid membership changes the fingerprint"
        );
    }

    #[test]
    fn second_run_resumes_everything() {
        let dir = temp_dir("resume");
        let (configs, traces) = test_grid();
        let first = evaluate_checkpointed_in(
            &dir,
            "t",
            &configs,
            &traces,
            0,
            false,
            batch_of(evaluate_point),
        )
        .unwrap();
        assert_eq!(first.resumed, 0);
        assert!(first.is_complete());
        // Second run: everything comes from the journal; an eval fn that
        // panics proves nothing is re-simulated.
        let second = evaluate_checkpointed_in(
            &dir,
            "t",
            &configs,
            &traces,
            0,
            false,
            batch_of(|_, _, _| -> DesignPoint { panic!("should not re-simulate") }),
        )
        .unwrap();
        assert_eq!(second.resumed, configs.len());
        assert_eq!(second.journal, JournalHealth::default());
        for (a, b) in first.points.iter().zip(&second.points) {
            assert_eq!(a.miss_ratio, b.miss_ratio);
            assert_eq!(a.traffic_ratio, b.traffic_ratio);
            assert_eq!(a.nibble_traffic_ratio, b.nibble_traffic_ratio);
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fresh_discards_the_journal() {
        let dir = temp_dir("fresh");
        let (configs, traces) = test_grid();
        evaluate_checkpointed_in(
            &dir,
            "t",
            &configs,
            &traces,
            0,
            false,
            batch_of(evaluate_point),
        )
        .unwrap();
        let again = evaluate_checkpointed_in(
            &dir,
            "t",
            &configs,
            &traces,
            0,
            true,
            batch_of(evaluate_point),
        )
        .unwrap();
        assert_eq!(again.resumed, 0, "--fresh must re-simulate");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_points_are_retried_then_quarantined() {
        let dir = temp_dir("quarantine");
        let (configs, traces) = test_grid();
        let bad = configs[3];
        let faulty = || {
            batch_of(move |c: CacheConfig, t: &[Trace], w: usize| {
                if c == bad {
                    panic!("injected fault");
                }
                evaluate_point(c, t, w)
            })
        };
        let first =
            evaluate_checkpointed_in(&dir, "t", &configs, &traces, 0, false, faulty()).unwrap();
        assert_eq!(first.failures.len(), 1);
        assert_eq!(first.failures[0].fault, PointFault::Panic);
        // Second failing run: the point is retried (1 < QUARANTINE_AFTER)
        // and fails again, reaching the quarantine threshold.
        let second =
            evaluate_checkpointed_in(&dir, "t", &configs, &traces, 0, false, faulty()).unwrap();
        assert_eq!(second.failures.len(), 1);
        assert_eq!(second.failures[0].fault, PointFault::Panic);
        assert_eq!(second.resumed, configs.len() - 1);
        // Third run: quarantined — a counting eval proves it never runs.
        let evals = std::sync::atomic::AtomicUsize::new(0);
        let counting = batch_of(|c: CacheConfig, t: &[Trace], w: usize| {
            evals.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            evaluate_point(c, t, w)
        });
        let third =
            evaluate_checkpointed_in(&dir, "t", &configs, &traces, 0, false, counting).unwrap();
        assert_eq!(evals.load(std::sync::atomic::Ordering::SeqCst), 0);
        assert_eq!(third.failures.len(), 1);
        assert_eq!(third.failures[0].fault, PointFault::Quarantined);
        assert!(
            third.failures[0].message.contains("--fresh"),
            "{}",
            third.failures[0]
        );
        // --fresh clears the tally and the point runs again.
        let fresh = evaluate_checkpointed_in(
            &dir,
            "t",
            &configs,
            &traces,
            0,
            true,
            batch_of(evaluate_point),
        )
        .unwrap();
        assert!(fresh.is_complete());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn changed_traces_invalidate_the_journal() {
        let dir = temp_dir("invalidate");
        let (configs, traces) = test_grid();
        evaluate_checkpointed_in(
            &dir,
            "t",
            &configs,
            &traces,
            0,
            false,
            batch_of(evaluate_point),
        )
        .unwrap();
        let longer = materialize(&[WorkloadSpec::pdp11_ed()], 2_000);
        let outcome = evaluate_checkpointed_in(
            &dir,
            "t",
            &configs,
            &longer,
            0,
            false,
            batch_of(evaluate_point),
        )
        .unwrap();
        assert_eq!(outcome.resumed, 0, "different traces must not resume");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_mid_file_line_is_counted_and_compacted_away() {
        let dir = temp_dir("compact");
        let (configs, traces) = test_grid();
        evaluate_checkpointed_in(
            &dir,
            "t",
            &configs,
            &traces,
            0,
            false,
            batch_of(evaluate_point),
        )
        .unwrap();
        let path = journal_path(&dir, "t");
        // Flip one byte in the middle of the second line.
        let mut bytes = fs::read(&path).unwrap();
        let first_nl = bytes.iter().position(|&b| b == b'\n').unwrap();
        let target = first_nl + 10;
        bytes[target] = bytes[target].wrapping_add(1);
        fs::write(&path, &bytes).unwrap();

        let outcome = evaluate_checkpointed_in(
            &dir,
            "t",
            &configs,
            &traces,
            0,
            false,
            batch_of(evaluate_point),
        )
        .unwrap();
        assert_eq!(outcome.journal.bad_lines, 1, "{:?}", outcome.journal);
        assert_eq!(outcome.resumed, configs.len() - 1);
        assert!(outcome.is_complete(), "damaged point re-simulates");
        // Compaction left a pristine journal: a strict scan is clean and
        // the next run resumes everything.
        let rescan = scan_journal(&path).unwrap();
        assert!(!rescan.needs_repair(), "{rescan:?}");
        assert_eq!(rescan.points.len(), configs.len());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tail_truncation_at_every_byte_recovers_the_intact_prefix() {
        let dir = temp_dir("truncate");
        let (configs, traces) = test_grid();
        let take = 4.min(configs.len());
        evaluate_checkpointed_in(
            &dir,
            "t",
            &configs[..take],
            &traces,
            0,
            false,
            batch_of(evaluate_point),
        )
        .unwrap();
        let path = journal_path(&dir, "t");
        let full = fs::read(&path).unwrap();
        let lines: Vec<&[u8]> = full.split_inclusive(|&b| b == b'\n').collect();
        assert_eq!(lines.len(), take);
        let prefix_len = full.len() - lines[take - 1].len();
        let last_len = lines[take - 1].len();

        // Property: for every truncation point inside the final record,
        // recovery restores exactly the intact prefix — no more, no less
        // — and repair leaves a cleanly rescannable journal. (`last_len`
        // counts the trailing newline, so `last_len - 1` would be the
        // complete record merely missing its newline — that non-lossy
        // case is asserted separately below.)
        for cut in 0..last_len - 1 {
            fs::write(&path, &full[..prefix_len + cut]).unwrap();
            let scan = scan_journal(&path).unwrap();
            assert_eq!(
                scan.points.len(),
                take - 1,
                "cut at byte {cut}: wrong prefix restored"
            );
            assert!(scan.issues.is_empty(), "cut at {cut}: {:?}", scan.issues);
            if cut == 0 {
                assert!(!scan.needs_repair(), "empty tail needs no repair");
            } else {
                assert_eq!(scan.torn_tail_bytes, cut, "cut at byte {cut}");
                compact_journal(&path, &scan).unwrap();
                let rescan = scan_journal(&path).unwrap();
                assert!(!rescan.needs_repair());
                assert_eq!(rescan.points.len(), take - 1);
            }
        }

        // The complete-record-missing-newline case keeps all records.
        fs::write(&path, &full[..full.len() - 1]).unwrap();
        let scan = scan_journal(&path).unwrap();
        assert_eq!(scan.points.len(), take);
        assert!(scan.missing_final_newline);
        assert_eq!(scan.torn_tail_bytes, 0);
        compact_journal(&path, &scan).unwrap();
        assert!(!scan_journal(&path).unwrap().needs_repair());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn lock_blocks_live_foreign_holders_and_clears_stale_ones() {
        let dir = temp_dir("lock");
        // Stale lock: a PID that cannot be alive (PIDs are bounded well
        // below u32::MAX on Linux).
        fs::create_dir_all(dir.join(".checkpoint")).unwrap();
        fs::write(lock_path(&dir), format!("{}", u32::MAX - 7)).unwrap();
        let lock = JournalLock::acquire(&dir).expect("stale lock must be replaced");
        drop(lock);
        assert!(!lock_path(&dir).exists(), "drop releases the lock");
        // Live foreign holder: PID 1 always exists on Linux.
        fs::write(lock_path(&dir), "1").unwrap();
        let err = JournalLock::acquire(&dir).expect_err("live holder must block");
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
        assert!(err.to_string().contains("LOCK"), "{err}");
        // Unreadable contents block too (conservative).
        fs::write(lock_path(&dir), "$garbage").unwrap();
        let err = JournalLock::acquire(&dir).expect_err("garbage must block");
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpointed_run_fails_fast_under_a_foreign_lock() {
        let dir = temp_dir("lock-contention");
        fs::create_dir_all(dir.join(".checkpoint")).unwrap();
        fs::write(lock_path(&dir), "1").unwrap();
        let (configs, traces) = test_grid();
        let err = evaluate_checkpointed_in(
            &dir,
            "t",
            &configs,
            &traces,
            0,
            false,
            batch_of(evaluate_point),
        )
        .expect_err("held lock must fail the run");
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
        fs::remove_dir_all(&dir).unwrap();
    }
}
