//! The artifact manifest: `results/MANIFEST.json`.
//!
//! Every emitted artifact records its output files here with an FNV-1a
//! content hash, the generator version, and the trace/config
//! fingerprints of the sweep that produced it. `occache-verify` (and
//! `occache sweep --verify`) later re-hashes every file against the
//! manifest, so a single flipped byte anywhere in a result is caught —
//! silent on-disk corruption can no longer masquerade as science.
//!
//! The format is line-oriented hand-rolled JSON like the checkpoint
//! journal: one entry object per line inside an `"entries"` array.
//! Merging is by file name (an artifact re-emit replaces its own
//! entries), and the write is atomic under the checkpoint lock so
//! concurrent emits cannot interleave.

use std::io;
use std::path::Path;

use crate::checkpoint::{fnv1a, JournalLock};

/// The manifest file name under the results directory.
pub const MANIFEST_FILE: &str = "MANIFEST.json";

/// One manifest line: a content-hashed output file and its provenance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestEntry {
    /// File name relative to the results directory.
    pub name: String,
    /// File size in bytes.
    pub bytes: u64,
    /// FNV-1a hash of the file contents.
    pub fnv: u64,
    /// The artifact that produced the file (e.g. `"table7"`).
    pub artifact: String,
    /// Generator version (the crate version that wrote the file).
    pub generator: String,
    /// Combined trace fingerprint of the sweep phases behind the
    /// artifact (zero for artifacts that run no checkpointed sweep).
    pub trace_fp: u64,
    /// Combined config-grid fingerprint of those phases.
    pub config_fp: u64,
}

impl ManifestEntry {
    /// Builds an entry for in-memory file contents about to be written.
    pub fn of(name: &str, contents: &str, artifact: &str, trace_fp: u64, config_fp: u64) -> Self {
        ManifestEntry {
            name: name.to_string(),
            bytes: contents.len() as u64,
            fnv: fnv1a(contents.as_bytes()),
            artifact: artifact.to_string(),
            generator: env!("CARGO_PKG_VERSION").to_string(),
            trace_fp,
            config_fp,
        }
    }

    fn line(&self) -> String {
        format!(
            "{{\"name\":\"{}\",\"bytes\":{},\"fnv\":\"{:016x}\",\"artifact\":\"{}\",\
             \"gen\":\"{}\",\"trace_fp\":\"{:016x}\",\"config_fp\":\"{:016x}\"}}",
            self.name,
            self.bytes,
            self.fnv,
            self.artifact,
            self.generator,
            self.trace_fp,
            self.config_fp,
        )
    }
}

/// Parses one manifest entry line (commas cannot appear inside any of
/// the values, so splitting on ',' is unambiguous — same contract as the
/// checkpoint journal).
fn parse_entry(line: &str) -> Option<ManifestEntry> {
    let inner = line
        .trim()
        .trim_end_matches(',')
        .strip_prefix('{')?
        .strip_suffix('}')?;
    let mut name = None;
    let mut bytes = None;
    let mut fnv = None;
    let mut artifact = None;
    let mut generator = None;
    let mut trace_fp = None;
    let mut config_fp = None;
    for field in inner.split(',') {
        let (key, value) = field.split_once(':')?;
        let key = key.trim().strip_prefix('"')?.strip_suffix('"')?;
        let value = value.trim();
        let unquote = |v: &str| -> Option<String> {
            Some(v.strip_prefix('"')?.strip_suffix('"')?.to_string())
        };
        let hex = |v: &str| -> Option<u64> {
            u64::from_str_radix(v.strip_prefix('"')?.strip_suffix('"')?, 16).ok()
        };
        match key {
            "name" => name = Some(unquote(value)?),
            "bytes" => bytes = Some(value.parse().ok()?),
            "fnv" => fnv = Some(hex(value)?),
            "artifact" => artifact = Some(unquote(value)?),
            "gen" => generator = Some(unquote(value)?),
            "trace_fp" => trace_fp = Some(hex(value)?),
            "config_fp" => config_fp = Some(hex(value)?),
            _ => return None,
        }
    }
    Some(ManifestEntry {
        name: name?,
        bytes: bytes?,
        fnv: fnv?,
        artifact: artifact?,
        generator: generator?,
        trace_fp: trace_fp?,
        config_fp: config_fp?,
    })
}

/// Renders a full manifest from entries (sorted by file name).
pub fn render(entries: &[ManifestEntry]) -> String {
    let mut out = String::from("{\n\"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        out.push_str(&e.line());
        if i + 1 < entries.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]\n}\n");
    out
}

/// Loads the manifest under `dir`, or an empty list when absent.
/// Unparseable lines (hand-edits, older formats) are dropped — the next
/// [`record`] rewrites the file in canonical form.
///
/// # Errors
///
/// Propagates filesystem errors other than the file not existing.
pub fn load(dir: &Path) -> io::Result<Vec<ManifestEntry>> {
    let text = match std::fs::read_to_string(dir.join(MANIFEST_FILE)) {
        Ok(t) => t,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    Ok(text.lines().filter_map(parse_entry).collect())
}

/// Merges `entries` into the manifest under `dir` and rewrites it
/// atomically, holding the directory's checkpoint lock so concurrent
/// emits cannot interleave. Existing entries for the same file *or* the
/// same artifact are replaced (a re-emit that drops a CSV also drops its
/// stale manifest line).
///
/// # Errors
///
/// Propagates lock contention (`WouldBlock`) and filesystem errors.
pub fn record(dir: &Path, artifact: &str, entries: Vec<ManifestEntry>) -> io::Result<()> {
    let _lock = JournalLock::acquire(dir)?;
    let mut merged: Vec<ManifestEntry> = load(dir)?
        .into_iter()
        .filter(|e| e.artifact != artifact && !entries.iter().any(|n| n.name == e.name))
        .collect();
    merged.extend(entries);
    merged.sort_by(|a, b| a.name.cmp(&b.name));
    crate::report::write_result_in(dir, MANIFEST_FILE, &render(&merged)).map(|_| ())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("occache-manifest-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn entries_round_trip_through_render_and_parse() {
        let e = ManifestEntry::of("table7_pdp_11.csv", "a,b\n1,2\n", "table7", 0xabc, 0xdef);
        let text = render(&[e.clone()]);
        let parsed: Vec<ManifestEntry> = text.lines().filter_map(parse_entry).collect();
        assert_eq!(parsed, vec![e]);
    }

    #[test]
    fn record_merges_by_artifact_and_name() {
        let dir = temp_dir("merge");
        let a1 = ManifestEntry::of("a.csv", "one", "arta", 1, 2);
        let b1 = ManifestEntry::of("b.csv", "two", "artb", 3, 4);
        record(&dir, "arta", vec![a1.clone()]).unwrap();
        record(&dir, "artb", vec![b1.clone()]).unwrap();
        assert_eq!(load(&dir).unwrap(), vec![a1, b1.clone()]);
        // Re-emitting arta replaces its entry without touching artb's.
        let a2 = ManifestEntry::of("a.csv", "one-changed", "arta", 1, 2);
        record(&dir, "arta", vec![a2.clone()]).unwrap();
        assert_eq!(load(&dir).unwrap(), vec![a2, b1]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_manifest_loads_empty() {
        let dir = temp_dir("missing");
        assert!(load(&dir).unwrap().is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }
}
