//! Extension studies: the directions §3.1 explicitly defers to "further
//! studies" (write-through vs copy-back, split instruction/data caches)
//! plus the full RISC II chip evaluation of §2.3 (remote program counter
//! and code compaction).

use std::fmt::Write as _;

use occache_core::{simulate, CacheConfig, Metrics, SplitCache, SubBlockCache, WritePolicy};
use occache_riscii::{compact_profile, ChipTiming, RiscIiCache};
use occache_trace::MemRef;
use occache_workloads::{riscii_instruction_workload, Architecture, ProgramGenerator};

use crate::runs::{Artifact, Workbench};

/// Write-policy study: total bus traffic — fills *plus* write traffic —
/// under write-through vs copy-back, across the four architectures.
///
/// The paper's headline ratios exclude writes by design; this experiment
/// is the §3.1 "write through vs copy back factors" follow-up. The traffic
/// here is measured as bytes over counted references × word, so the
/// fill-only column matches the paper's traffic ratio.
pub fn run_writes(bench: &mut Workbench) -> Artifact {
    let len = bench.len();
    let mut report = String::new();
    let _ = writeln!(
        report,
        "Write policies (extension; §3.1 further study): 1024-byte 16,8 cache, {len} refs/trace\n"
    );
    let _ = writeln!(
        report,
        "{:<16} {:>9} {:>11} {:>11} {:>11}",
        "architecture", "fill", "+write-thru", "+copy-back", "wb/wt"
    );
    let mut csv = String::from("arch,fill_traffic,write_through_total,copy_back_total,ratio\n");
    for arch in Architecture::ALL {
        let warmup = bench.warmup_for(arch);
        let word = arch.word_size();
        let traces = bench.arch_traces(arch);
        let mut fill = 0.0;
        let mut wt_total = 0.0;
        let mut cb_total = 0.0;
        for policy in [WritePolicy::WriteThrough, WritePolicy::CopyBack] {
            let config = CacheConfig::builder()
                .net_size(1024)
                .block_size(16)
                .sub_block_size(8)
                .word_size(word)
                .write_policy(policy)
                .build()
                .expect("valid geometry");
            for trace in traces {
                let m: Metrics = simulate(config, trace.iter(), warmup);
                let denom = (m.accesses() * word) as f64;
                match policy {
                    WritePolicy::WriteThrough => {
                        fill += m.traffic_ratio();
                        wt_total += (m.fetch_bytes() + m.write_through_bytes()) as f64 / denom;
                    }
                    WritePolicy::CopyBack => {
                        cb_total += (m.fetch_bytes() + m.write_back_bytes()) as f64 / denom;
                    }
                }
            }
        }
        let n = traces.len() as f64;
        fill /= n;
        wt_total /= n;
        cb_total /= n;
        let _ = writeln!(
            report,
            "{:<16} {:>9.4} {:>11.4} {:>11.4} {:>11.3}",
            arch.name(),
            fill,
            wt_total,
            cb_total,
            cb_total / wt_total
        );
        let _ = writeln!(
            csv,
            "{},{fill:.6},{wt_total:.6},{cb_total:.6},{:.6}",
            arch.name(),
            cb_total / wt_total
        );
    }
    let _ = writeln!(
        report,
        "\n(copy-back flushes only dirty sub-blocks on eviction, so its total\n\
         traffic undercuts write-through whenever writes re-hit dirty data)"
    );
    Artifact {
        name: "writes",
        report,
        csv: vec![("writes.csv".into(), csv)],
    }
}

/// Split vs unified study: a unified cache of net size `S` against an
/// I/D split of two `S/2` caches, at equal total data capacity.
pub fn run_split(bench: &mut Workbench) -> Artifact {
    let len = bench.len();
    let mut report = String::new();
    let _ = writeln!(
        report,
        "Split I/D vs unified (extension; §3.1 further study): 16,8 geometry, {len} refs/trace\n"
    );
    let _ = writeln!(
        report,
        "{:<16} {:>6} {:>11} {:>11} {:>9}",
        "architecture", "net", "unified", "split I/D", "winner"
    );
    let mut csv = String::from("arch,net,unified_miss,split_miss\n");
    for arch in Architecture::ALL {
        let word = arch.word_size();
        let traces = bench.arch_traces(arch);
        for net in [512u64, 1024] {
            let unified_config = CacheConfig::builder()
                .net_size(net)
                .block_size(16)
                .sub_block_size(8)
                .word_size(word)
                .build()
                .expect("valid geometry");
            let half_config = CacheConfig::builder()
                .net_size(net / 2)
                .block_size(16)
                .sub_block_size(8)
                .word_size(word)
                .build()
                .expect("valid geometry");
            let mut unified_miss = 0.0;
            let mut split_miss = 0.0;
            for trace in traces {
                unified_miss += simulate(unified_config, trace.iter(), 0).miss_ratio();
                let mut split = SplitCache::new(half_config, half_config);
                split.run(trace.iter());
                split_miss += split.miss_ratio();
            }
            let n = traces.len() as f64;
            unified_miss /= n;
            split_miss /= n;
            let winner = if unified_miss <= split_miss {
                "unified"
            } else {
                "split"
            };
            let _ = writeln!(
                report,
                "{:<16} {:>6} {:>11.4} {:>11.4} {:>9}",
                arch.name(),
                net,
                unified_miss,
                split_miss,
                winner
            );
            let _ = writeln!(
                csv,
                "{},{net},{unified_miss:.6},{split_miss:.6}",
                arch.name()
            );
        }
    }
    let _ = writeln!(
        report,
        "\n(a unified cache lets instructions and data share capacity\n\
         dynamically; the split halves eliminate I/D conflict misses —\n\
         which effect wins depends on the workload's I/D balance)"
    );
    Artifact {
        name: "split",
        report,
        csv: vec![("split.csv".into(), csv)],
    }
}

/// The full RISC II chip study (§2.3): size curve with the chip model,
/// remote-PC prediction accuracy and access-time reduction, and the
/// half-word code-compaction experiment.
pub fn run_risc2_chip(bench: &mut Workbench) -> Artifact {
    let len = bench.len();
    let mut report = String::new();
    let _ = writeln!(
        report,
        "RISC II instruction-cache chip (§2.3), {len} refs\n"
    );

    // --- Remote program counter + access time, on the paper chip.
    let spec = riscii_instruction_workload();
    let trace: Vec<MemRef> = spec.generator(0).take(len).collect();
    let mut chip = RiscIiCache::paper_chip().expect("paper geometry is valid");
    for r in &trace {
        chip.fetch(r.address());
    }
    let _ = writeln!(report, "paper chip (512 B, direct-mapped, 8 B blocks):");
    let _ = writeln!(
        report,
        "  miss ratio                    : {:.4}",
        chip.miss_ratio()
    );
    let _ = writeln!(
        report,
        "  remote-PC prediction accuracy : {:.1}%   (paper: 89.9%)",
        chip.prediction_accuracy() * 100.0
    );
    let _ = writeln!(
        report,
        "  hit access-time reduction     : {:.1}%   (paper: 42.2%)",
        chip.hit_time_reduction() * 100.0
    );
    let _ = writeln!(
        report,
        "  mean access time              : {:.0} ns (250 ns nominal hit)",
        chip.mean_access_time()
    );

    // --- Code compaction at the paper's operating point.
    let base_profile = spec.profile().clone();
    let compacted = compact_profile(&base_profile, 0.4);
    let config = CacheConfig::builder()
        .net_size(512)
        .block_size(8)
        .sub_block_size(8)
        .associativity(1)
        .word_size(4)
        .build()
        .expect("valid geometry");
    let standard_miss = {
        let mut cache = SubBlockCache::new(config);
        cache.run(trace.iter().copied());
        cache.metrics().miss_ratio()
    };
    let compacted_trace: Vec<MemRef> = ProgramGenerator::new(compacted, 0x52_01)
        .take(len)
        .collect();
    let compacted_miss = {
        let mut cache = SubBlockCache::new(config);
        cache.run(compacted_trace.iter().copied());
        cache.metrics().miss_ratio()
    };
    let improvement = 1.0 - compacted_miss / standard_miss;
    let _ = writeln!(
        report,
        "\ncode compaction (40% half-word, 20% smaller code):"
    );
    let _ = writeln!(report, "  standard code miss ratio  : {standard_miss:.4}");
    let _ = writeln!(report, "  compacted code miss ratio : {compacted_miss:.4}");
    let _ = writeln!(
        report,
        "  miss-ratio improvement    : {:.1}%   (paper: 27.0%)",
        improvement * 100.0
    );

    // --- Size curve with the chip model (matches the risc2 artifact).
    let _ = writeln!(report, "\nstore-size curve (miss ratio):");
    let mut csv = String::from("store_bytes,miss_ratio,prediction_accuracy\n");
    for size in [512u64, 1024, 2048, 4096] {
        let mut chip = RiscIiCache::with_store(size, ChipTiming::paper()).expect("valid geometry");
        for r in &trace {
            chip.fetch(r.address());
        }
        let _ = writeln!(
            report,
            "  {size:>5} B : miss {:.4}, prediction {:.1}%",
            chip.miss_ratio(),
            chip.prediction_accuracy() * 100.0
        );
        let _ = writeln!(
            csv,
            "{size},{:.6},{:.6}",
            chip.miss_ratio(),
            chip.prediction_accuracy()
        );
    }
    Artifact {
        name: "risc2_chip",
        report,
        csv: vec![("risc2_chip.csv".into(), csv)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_artifact_covers_architectures() {
        let mut bench = Workbench::new(10_000);
        let a = run_writes(&mut bench);
        for arch in Architecture::ALL {
            assert!(a.report.contains(arch.name()));
        }
        assert_eq!(a.csv[0].1.lines().count(), 5);
    }

    #[test]
    fn split_artifact_has_both_net_sizes() {
        let mut bench = Workbench::new(10_000);
        let a = run_split(&mut bench);
        assert!(a.report.contains("512"));
        assert!(a.report.contains("1024"));
        // 4 architectures x 2 sizes + header.
        assert_eq!(a.csv[0].1.lines().count(), 9);
    }

    #[test]
    fn risc2_chip_reports_all_three_claims() {
        let mut bench = Workbench::new(30_000);
        let a = run_risc2_chip(&mut bench);
        assert!(a.report.contains("prediction accuracy"));
        assert!(a.report.contains("access-time reduction"));
        assert!(a.report.contains("compaction"));
    }

    #[test]
    fn split_never_panics_on_tiny_traces() {
        let mut bench = Workbench::new(500);
        let _ = run_split(&mut bench);
    }
}
