//! One entry point per paper artifact (table or figure).
//!
//! Each `run_*` function produces an [`Artifact`]: a human-readable report
//! (with the paper's published values alongside, where available) plus CSV
//! files for downstream plotting. The experiment binaries are thin wrappers
//! that print the report and write the CSVs under `results/`.

use std::collections::HashMap;
use std::fmt::Write as _;

use occache_core::{simulate, BusModel, CacheConfig, FetchPolicy, Metrics, ReplacementPolicy};
use occache_workloads::{m85_mix, riscii_instruction_workload, Architecture, WorkloadSpec};

use crate::paper;
use crate::plot::{ScatterPlot, Series};
use crate::report::{points_to_csv, relative_error, table7_block};
use crate::sweep::{standard_config, table1_pairs, trace_len, DesignPoint, Trace};

/// A regenerated artifact: report text plus named CSV payloads.
#[derive(Debug, Clone)]
pub struct Artifact {
    /// Artifact name (e.g. `"table7"`).
    pub name: &'static str,
    /// Human-readable report, including paper-vs-measured columns.
    pub report: String,
    /// `(file_name, contents)` pairs for `results/`.
    pub csv: Vec<(String, String)>,
}

impl Artifact {
    /// Prints the report to stdout, writes the CSVs (atomically) under
    /// `results/`, logging each path written, and records every file
    /// into the content-hashed manifest (`MANIFEST.json`) so
    /// `occache-verify` can later detect corruption — the shared tail of
    /// every experiment binary.
    ///
    /// # Errors
    ///
    /// Returns the first write failure, naming the file, so binaries can
    /// exit nonzero without tearing down mid-artifact.
    pub fn emit(&self) -> std::io::Result<()> {
        println!("{}", self.report);
        let (trace_fp, config_fp) = artifact_fingerprints(self.name);
        let mut entries = Vec::new();
        for (file_name, contents) in &self.csv {
            let path = crate::report::write_result(file_name, contents).map_err(|e| {
                std::io::Error::new(e.kind(), format!("failed to write {file_name}: {e}"))
            })?;
            eprintln!("wrote {}", path.display());
            entries.push(crate::manifest::ManifestEntry::of(
                file_name, contents, self.name, trace_fp, config_fp,
            ));
        }
        crate::manifest::record(&crate::report::results_dir(), self.name, entries).map_err(|e| {
            std::io::Error::new(e.kind(), format!("failed to update the manifest: {e}"))
        })
    }
}

/// The combined trace/config fingerprints of the sweep phases recorded
/// for an artifact this run: the phase's own fingerprints when it swept
/// once, an FNV fold when it swept several times (`table7` runs once per
/// architecture), and zeros for artifacts that run no checkpointed
/// sweep.
fn artifact_fingerprints(artifact: &str) -> (u64, u64) {
    let phases = crate::run_report::phases();
    let mine: Vec<_> = phases.iter().filter(|p| p.artifact == artifact).collect();
    match mine.as_slice() {
        [] => (0, 0),
        [one] => (one.trace_fp, one.config_fp),
        many => {
            let fold = |pick: fn(&crate::run_report::PhaseReport) -> u64| {
                let mut bytes = Vec::with_capacity(many.len() * 8);
                for p in many {
                    bytes.extend_from_slice(&pick(p).to_le_bytes());
                }
                crate::checkpoint::fnv1a(&bytes)
            };
            (fold(|p| p.trace_fp), fold(|p| p.config_fp))
        }
    }
}

/// The shared `main` of the experiment binaries: validates the
/// supervisor environment (`OCCACHE_POINT_TIMEOUT`, `OCCACHE_POINT_RETRIES`,
/// `OCCACHE_FAULT_POINT`), builds a workbench, runs `build`, emits the
/// artifact, and writes the run report (`RUN_REPORT.json`). Failures
/// (malformed env vars, unwritable results) map to a nonzero exit code
/// with a message instead of a panic.
pub fn emit_main<F>(build: F) -> std::process::ExitCode
where
    F: FnOnce(&mut Workbench) -> Artifact,
{
    crate::interrupt::install();
    if let Err(e) = crate::supervisor::SupervisorPolicy::try_from_env() {
        eprintln!("error: {e}");
        return std::process::ExitCode::FAILURE;
    }
    if let Err(e) = crate::sweep::try_jobs() {
        eprintln!("error: {e}");
        return std::process::ExitCode::FAILURE;
    }
    if let Err(e) = crate::sweep::try_slice_threads() {
        eprintln!("error: {e}");
        return std::process::ExitCode::FAILURE;
    }
    if let Err(e) = crate::sweep::try_multisim_disabled() {
        eprintln!("error: {e}");
        return std::process::ExitCode::FAILURE;
    }
    if let Err(e) = crate::sweep::try_replacement_override() {
        eprintln!("error: {e}");
        return std::process::ExitCode::FAILURE;
    }
    let mut bench = match Workbench::try_from_env() {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: {e}");
            return std::process::ExitCode::FAILURE;
        }
    };
    match build(&mut bench).emit() {
        Ok(()) => match crate::run_report::write(&crate::report::results_dir()) {
            Ok(path) => {
                eprintln!("wrote {}", path.display());
                if crate::interrupt::requested() {
                    eprintln!(
                        "run interrupted; journal sealed and report marked — rerun to resume"
                    );
                    return std::process::ExitCode::from(crate::interrupt::EXIT_INTERRUPTED);
                }
                std::process::ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: failed to write the run report: {e}");
                std::process::ExitCode::FAILURE
            }
        },
        Err(e) => {
            eprintln!("error: {e}");
            std::process::ExitCode::FAILURE
        }
    }
}

/// Materialised trace sets, built lazily and shared across artifacts.
///
/// Generation is memoized per workload spec (by its name, which is unique
/// across all sets; the seed is always 0 and the length fixed per
/// workbench), so `--bin all` and any artifacts whose trace sets overlap
/// generate each trace exactly once. A recalled [`Trace`] is an `Arc`
/// clone, not a copy of the stream.
#[derive(Debug, Default)]
pub struct Workbench {
    store: HashMap<&'static str, Trace>,
    sets: HashMap<Architecture, Vec<Trace>>,
    load_forward: Option<Vec<Trace>>,
    m85: Option<Vec<Trace>>,
    riscii: Option<Vec<Trace>>,
    len: usize,
}

impl Workbench {
    /// Creates a workbench generating `len` references per trace.
    pub fn new(len: usize) -> Self {
        Workbench {
            len,
            ..Workbench::default()
        }
    }

    /// Creates a workbench with the length from `OCCACHE_REFS` (default:
    /// the paper's 1 million), tolerating a malformed value. Prefer
    /// [`Workbench::try_from_env`] in binaries.
    pub fn from_env() -> Self {
        Workbench::new(trace_len())
    }

    /// Creates a workbench from the environment, rejecting malformed
    /// `OCCACHE_REFS` values instead of silently running the default
    /// paper-size sweep.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending variable.
    pub fn try_from_env() -> Result<Self, String> {
        crate::sweep::try_trace_len().map(Workbench::new)
    }

    /// References per trace.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the workbench would generate empty traces.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Warm-up prefix for an architecture: the paper quotes warm-start
    /// ratios for the Z8000 runs (§4.2.2) and cold-start elsewhere.
    pub fn warmup_for(&self, arch: Architecture) -> usize {
        if arch == Architecture::Z8000 {
            self.len / 20
        } else {
            0
        }
    }

    /// Generates (or recalls) the canonical seed-0 trace of each spec,
    /// one generation per spec name for the workbench's lifetime.
    fn traces_from(&mut self, specs: &[WorkloadSpec]) -> Vec<Trace> {
        let len = self.len;
        specs
            .iter()
            .map(|spec| {
                self.store
                    .entry(spec.name())
                    .or_insert_with(|| Trace::new(spec.name(), spec.generator(0).take(len)))
                    .clone()
            })
            .collect()
    }

    /// The main trace set for an architecture (Tables 2–5).
    pub fn arch_traces(&mut self, arch: Architecture) -> &[Trace] {
        if !self.sets.contains_key(&arch) {
            let set = self.traces_from(&WorkloadSpec::set_for(arch));
            self.sets.insert(arch, set);
        }
        &self.sets[&arch]
    }

    /// The Z8000 compiler phases (CPP, C1, C2) used by the load-forward
    /// study.
    pub fn load_forward_traces(&mut self) -> &[Trace] {
        if self.load_forward.is_none() {
            self.load_forward = Some(self.traces_from(&WorkloadSpec::z8000_load_forward_set()));
        }
        self.load_forward.as_deref().expect("just populated")
    }

    /// The six-program System/360-class mix of Table 6.
    pub fn m85_traces(&mut self) -> &[Trace] {
        if self.m85.is_none() {
            self.m85 = Some(self.traces_from(&m85_mix()));
        }
        self.m85.as_deref().expect("just populated")
    }

    /// The RISC II instruction-only workload of §2.3.
    pub fn riscii_traces(&mut self) -> &[Trace] {
        if self.riscii.is_none() {
            self.riscii = Some(self.traces_from(&[riscii_instruction_workload()]));
        }
        self.riscii.as_deref().expect("just populated")
    }
}

// ----------------------------------------------------------------------
// Figures 1-8: the miss-ratio vs traffic-ratio design spaces
// ----------------------------------------------------------------------

/// Which bus model a figure's traffic axis uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TrafficAxis {
    Linear,
    Nibble,
}

/// Descriptions of Figures 1–8 (figure number, architecture, net sizes,
/// traffic axis).
const FIGURES: &[(u8, Architecture, [u64; 3], TrafficAxis)] = &[
    (1, Architecture::Pdp11, [32, 128, 512], TrafficAxis::Linear),
    (2, Architecture::Pdp11, [64, 256, 1024], TrafficAxis::Linear),
    (3, Architecture::Z8000, [32, 128, 512], TrafficAxis::Linear),
    (4, Architecture::Z8000, [64, 256, 1024], TrafficAxis::Linear),
    (5, Architecture::Vax11, [64, 256, 1024], TrafficAxis::Linear),
    (6, Architecture::S370, [64, 256, 1024], TrafficAxis::Linear),
    (7, Architecture::Pdp11, [32, 128, 512], TrafficAxis::Nibble),
    (8, Architecture::Pdp11, [64, 256, 1024], TrafficAxis::Nibble),
];

/// The paper's standard sweep grid for an architecture over a set of net
/// sizes: every Table 1 (block, sub-block) pair at each net, 4-way LRU
/// demand fetch. The order (nets outer, Table 1 pairs inner) is the
/// order every figure and Table 7 render in, and the order journal
/// verification reconstructs.
fn paper_grid(arch: Architecture, nets: &[u64]) -> Vec<CacheConfig> {
    nets.iter()
        .flat_map(|&net| {
            table1_pairs(net, arch.word_size())
                .into_iter()
                .map(move |(b, s)| standard_config(arch, net, b, s))
        })
        .collect()
}

/// One homogeneous slice of a journalled artifact's sweep: the configs
/// evaluated against one trace set with one warm-up. Verification
/// re-derives journal keys from these.
#[derive(Debug, Clone)]
pub struct GridGroup {
    /// The config grid of this slice, in sweep order.
    pub configs: Vec<CacheConfig>,
    /// The materialised trace set the slice ran over.
    pub traces: Vec<Trace>,
    /// Warm-up prefix length.
    pub warmup: usize,
}

/// The artifacts that keep checkpoint journals (grid sweeps): Table 7
/// and Figures 1–8.
pub fn journalled_artifacts() -> &'static [&'static str] {
    &[
        "table7", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
    ]
}

/// Reconstructs the sweep grid behind a journalled artifact so a
/// verifier can re-derive journal keys and re-simulate sampled points.
/// `table7` yields one group per architecture (each with its own trace
/// set and warm-up); each figure yields a single group. Returns `None`
/// for names that keep no journal.
pub fn journalled_grid(bench: &mut Workbench, artifact: &str) -> Option<Vec<GridGroup>> {
    if artifact == "table7" {
        let groups = Architecture::ALL
            .into_iter()
            .map(|arch| GridGroup {
                configs: paper_grid(arch, &[64, 256, 1024]),
                warmup: bench.warmup_for(arch),
                traces: bench.arch_traces(arch).to_vec(),
            })
            .collect();
        return Some(groups);
    }
    let figure: u8 = artifact.strip_prefix("fig")?.parse().ok()?;
    let &(_, arch, nets, _) = FIGURES.iter().find(|&&(n, ..)| n == figure)?;
    Some(vec![GridGroup {
        configs: paper_grid(arch, &nets),
        warmup: bench.warmup_for(arch),
        traces: bench.arch_traces(arch).to_vec(),
    }])
}

/// Regenerates one of Figures 1–8.
///
/// # Panics
///
/// Panics if `figure` is not in `1..=8` (Figure 9 is the load-forward
/// figure; see [`run_fig9`]).
pub fn run_figure(bench: &mut Workbench, figure: u8) -> Artifact {
    let &(_, arch, nets, axis) = FIGURES
        .iter()
        .find(|&&(n, ..)| n == figure)
        .unwrap_or_else(|| panic!("figure {figure} is not one of Figures 1-8"));
    let warmup = bench.warmup_for(arch);
    let len = bench.len();
    let traces = bench.arch_traces(arch);

    let mut report = String::new();
    let axis_name = match axis {
        TrafficAxis::Linear => "traffic ratio",
        TrafficAxis::Nibble => "scaled traffic ratio (nibble-mode, cost 1 + (w-1)/3)",
    };
    let _ = writeln!(
        report,
        "Figure {figure}: {arch} miss ratio vs {axis_name}\n\
         nets {nets:?}, 4-way LRU demand, {len} refs/trace\n\
         (solid lines connect constant block size; dashed connect constant sub-block size)\n",
    );
    let mut csv = String::from("net,block,sub,gross,miss_ratio,traffic_axis_value\n");
    let mut plot = ScatterPlot::new(64, 24, "miss ratio", "traffic");
    // One checkpointed sweep spanning all three nets: the sweep planner
    // shares trace passes across nets (each (block, sub) geometry recurs
    // at every net), and journal keys are per-point, so journals written
    // by older per-net sweeps still resume.
    let all_configs = paper_grid(arch, &nets);
    let outcome = crate::checkpoint::evaluate_checkpointed(
        &format!("fig{figure}"),
        &all_configs,
        traces,
        warmup,
    );
    let failures = outcome.failures;
    for net in nets {
        let points: Vec<&DesignPoint> = outcome
            .points
            .iter()
            .filter(|p| p.config.net_size() == net)
            .collect();
        let _ = writeln!(report, "net {net} bytes:");
        let mut last_block = 0;
        for p in &points {
            let c = p.config;
            let traffic = match axis {
                TrafficAxis::Linear => p.traffic_ratio,
                TrafficAxis::Nibble => p.nibble_traffic_ratio,
            };
            if c.block_size() != last_block {
                let _ = writeln!(report, "  b{}:", c.block_size());
                last_block = c.block_size();
            }
            let _ = writeln!(
                report,
                "    s{:<3} miss {:.4}  traffic {:.4}  (gross {} B)",
                c.sub_block_size(),
                p.miss_ratio,
                traffic,
                p.gross_size,
            );
            let _ = writeln!(
                csv,
                "{net},{},{},{},{:.6},{:.6}",
                c.block_size(),
                c.sub_block_size(),
                p.gross_size,
                p.miss_ratio,
                traffic,
            );
        }
        let _ = writeln!(report);

        // One constant-block line per block size, as the figures draw them.
        let mut by_block: Vec<(u64, Vec<(f64, f64)>)> = Vec::new();
        for p in &points {
            let block = p.config.block_size();
            let traffic = match axis {
                TrafficAxis::Linear => p.traffic_ratio,
                TrafficAxis::Nibble => p.nibble_traffic_ratio,
            };
            match by_block.iter_mut().find(|(b, _)| *b == block) {
                Some((_, line)) => line.push((p.miss_ratio, traffic)),
                None => by_block.push((block, vec![(p.miss_ratio, traffic)])),
            }
        }
        for (block, line) in by_block {
            plot.add_series(Series {
                marker: block_marker(block),
                label: format!("net {net}, block {block}"),
                points: line,
                connect: true,
            });
        }
    }
    let _ = writeln!(report, "{}", plot.render());
    if let Some(note) = crate::sweep::failure_note(&failures) {
        let _ = writeln!(report, "{note}");
    }
    let name: &'static str = match figure {
        1 => "fig1",
        2 => "fig2",
        3 => "fig3",
        4 => "fig4",
        5 => "fig5",
        6 => "fig6",
        7 => "fig7",
        _ => "fig8",
    };
    Artifact {
        name,
        report,
        csv: vec![(format!("{name}.csv"), csv)],
    }
}

// ----------------------------------------------------------------------
// Table 6: the 360/85 sector cache vs set-associative mapping
// ----------------------------------------------------------------------

/// Marker character for a constant-block-size line in the figures.
fn block_marker(block: u64) -> char {
    match block {
        2 => '2',
        4 => '4',
        8 => '8',
        16 => 'x',
        32 => 'o',
        _ => '*',
    }
}

/// Regenerates Table 6: the 16 KB IBM 360/85 sector organisation against
/// 4/8/16-way set-associative caches with 64-byte blocks, on the
/// six-program System/360-class mix; also the §4.1 unreferenced-sub-block
/// measurement.
pub fn run_table6(bench: &mut Workbench) -> Artifact {
    let len = bench.len();
    let traces = bench.m85_traces();
    const NET: u64 = 16 * 1024;

    let sector = CacheConfig::builder()
        .net_size(NET)
        .block_size(1024)
        .sub_block_size(64)
        .associativity(16)
        .word_size(4)
        .build()
        .expect("360/85 geometry is valid");

    let mut report = String::new();
    let _ = writeln!(
        report,
        "Table 6: IBM System/360 Model 85 sector cache vs set-associative, \
         16 KB net, 64-byte transfers, {len} refs/trace\n"
    );
    let _ = writeln!(
        report,
        "{:<28} {:>9} {:>9} {:>9} {:>9}",
        "organisation", "miss", "rel.85", "p.miss", "p.rel"
    );

    let mut csv = String::from("organisation,miss_ratio,relative_to_sector,paper_miss\n");
    let mut sector_miss = 0.0;
    let mut unref = 0.0;
    for trace in traces {
        let m: Metrics = simulate(sector, trace.iter(), 0);
        sector_miss += m.miss_ratio();
        unref += m.unreferenced_sub_block_fraction();
    }
    sector_miss /= traces.len() as f64;
    unref /= traces.len() as f64;
    let _ = writeln!(
        report,
        "{:<28} {:>9.4} {:>9.3} {:>9.4} {:>9.3}",
        "360/85 sector (16x1024,64)",
        sector_miss,
        1.0,
        paper::table6::SECTOR_360_85,
        1.0
    );
    let _ = writeln!(
        csv,
        "360/85,{sector_miss:.6},1.0,{}",
        paper::table6::SECTOR_360_85
    );

    for (ways, paper_miss) in [
        (4u64, paper::table6::SET_ASSOC_4WAY),
        (8, paper::table6::SET_ASSOC_8WAY),
        (16, paper::table6::SET_ASSOC_16WAY),
    ] {
        let config = CacheConfig::builder()
            .net_size(NET)
            .block_size(64)
            .sub_block_size(64)
            .associativity(ways)
            .word_size(4)
            .build()
            .expect("set-associative geometry is valid");
        let mut miss = 0.0;
        for trace in traces {
            miss += simulate(config, trace.iter(), 0).miss_ratio();
        }
        miss /= traces.len() as f64;
        let _ = writeln!(
            report,
            "{:<28} {:>9.4} {:>9.3} {:>9.4} {:>9.3}",
            format!("{ways}-way set-assoc (64,64)"),
            miss,
            miss / sector_miss,
            paper_miss,
            paper_miss / paper::table6::SECTOR_360_85,
        );
        let _ = writeln!(
            csv,
            "{ways}-way,{miss:.6},{:.6},{paper_miss}",
            miss / sector_miss
        );
    }

    let _ = writeln!(
        report,
        "\nSub-blocks never referenced while their sector was resident: \
         measured {:.1}% (paper: {:.0}%)",
        unref * 100.0,
        paper::table6::UNREFERENCED_SUB_FRACTION * 100.0,
    );
    Artifact {
        name: "table6",
        report,
        csv: vec![("table6.csv".into(), csv)],
    }
}

// ----------------------------------------------------------------------
// Table 7: the full design-space grid
// ----------------------------------------------------------------------

/// Regenerates Table 7: miss / traffic / nibble-scaled traffic and gross
/// size for nets {64, 256, 1024} across the Table 1 grid, for all four
/// architectures, with the paper's legible cells alongside.
pub fn run_table7(bench: &mut Workbench) -> Artifact {
    let mut report = String::new();
    let len = bench.len();
    let _ = writeln!(
        report,
        "Table 7: nets 64/256/1024, 4-way LRU demand, {len} refs/trace\n"
    );
    let mut csv_all = Vec::new();
    for arch in Architecture::ALL {
        let warmup = bench.warmup_for(arch);
        let traces = bench.arch_traces(arch);
        // All three nets in one checkpointed sweep, so the planner can
        // share trace passes across nets; journal keys stay per-point and
        // the concatenation preserves the per-net point order the render
        // expects.
        let configs = paper_grid(arch, &[64, 256, 1024]);
        let outcome = crate::checkpoint::evaluate_checkpointed("table7", &configs, traces, warmup);
        let points = outcome.points;
        let failures = outcome.failures;
        report.push_str(&table7_block(arch.name(), &points, paper::table7(arch)));
        if let Some(note) = crate::sweep::failure_note(&failures) {
            report.push_str(&note);
        }
        report.push('\n');
        csv_all.push((
            format!(
                "table7_{}.csv",
                arch.name().to_lowercase().replace([' ', '/'], "_")
            ),
            points_to_csv(arch.name(), &points),
        ));
    }
    Artifact {
        name: "table7",
        report,
        csv: csv_all,
    }
}

// ----------------------------------------------------------------------
// Table 8 / Figure 9: load-forward
// ----------------------------------------------------------------------

/// Regenerates Table 8 (and the data of Figure 9): load-forward on the
/// Z8000 compiler traces at 64- and 256-byte caches.
pub fn run_table8(bench: &mut Workbench) -> Artifact {
    let len = bench.len();
    let warmup = bench.warmup_for(Architecture::Z8000);
    let traces = bench.load_forward_traces();
    let nibble = BusModel::paper_nibble();

    let mut report = String::new();
    let _ = writeln!(
        report,
        "Table 8: load-forward on Z8000 traces CPP, C1, C2 ({len} refs/trace)\n"
    );
    let _ = writeln!(
        report,
        "{:>5} {:>9} | {:>8} {:>8} {:>8} {:>7} | {:>8} {:>8}",
        "net", "blk,sub", "miss", "traffic", "nibble", "redund", "p.miss", "p.traf"
    );
    let mut csv = String::from(
        "net,block,sub,load_forward,gross,miss_ratio,traffic_ratio,nibble_traffic,redundant_fraction\n",
    );

    for &row in paper::TABLE8 {
        let mut builder = CacheConfig::builder();
        builder
            .net_size(row.net)
            .block_size(row.block)
            .sub_block_size(row.sub)
            .word_size(2);
        if row.load_forward {
            builder.fetch(FetchPolicy::LOAD_FORWARD);
        }
        let config = builder.build().expect("Table 8 geometry is valid");
        let mut miss = 0.0;
        let mut traffic = 0.0;
        let mut scaled = 0.0;
        let mut redundant = 0.0;
        for trace in traces {
            let m = simulate(config, trace.iter(), warmup);
            miss += m.miss_ratio();
            traffic += m.traffic_ratio();
            scaled += m.scaled_traffic_ratio(nibble);
            if m.sub_loads() > 0 {
                redundant += m.redundant_sub_loads() as f64 / m.sub_loads() as f64;
            }
        }
        let n = traces.len() as f64;
        miss /= n;
        traffic /= n;
        scaled /= n;
        redundant /= n;
        let label = if row.load_forward {
            format!("{},{},LF", row.block, row.sub)
        } else {
            format!("{},{}", row.block, row.sub)
        };
        let _ = writeln!(
            report,
            "{:>5} {:>9} | {:>8.4} {:>8.4} {:>8.4} {:>6.1}% | {:>8.3} {:>8.3}",
            row.net,
            label,
            miss,
            traffic,
            scaled,
            redundant * 100.0,
            row.miss,
            row.traffic
        );
        let _ = writeln!(
            csv,
            "{},{},{},{},{},{miss:.6},{traffic:.6},{scaled:.6},{redundant:.6}",
            row.net,
            row.block,
            row.sub,
            row.load_forward,
            config.gross_size(),
        );
    }
    let _ = writeln!(
        report,
        "\n(LF rows use the paper's redundant-load scheme; 'redund' is the\n\
         fraction of sub-block loads that re-fetched resident data — the\n\
         paper found it small enough to not justify the optimized scheme.)"
    );
    Artifact {
        name: "table8",
        report,
        csv: vec![("table8.csv".into(), csv)],
    }
}

/// Regenerates Figure 9 (identical data to Table 8, organised as the
/// miss-vs-traffic figure).
pub fn run_fig9(bench: &mut Workbench) -> Artifact {
    let mut artifact = run_table8(bench);
    artifact.name = "fig9";
    artifact.report = artifact
        .report
        .replace("Table 8:", "Figure 9 (same data as Table 8):");
    if let Some((name, _)) = artifact.csv.first_mut() {
        *name = "fig9.csv".into();
    }
    artifact
}

// ----------------------------------------------------------------------
// §2.3: the RISC II instruction-cache size curve
// ----------------------------------------------------------------------

/// Regenerates the §2.3 RISC II instruction-cache curve: direct-mapped,
/// 8-byte blocks, instruction fetches only, 512–4096 bytes.
pub fn run_risc2(bench: &mut Workbench) -> Artifact {
    let len = bench.len();
    let traces = bench.riscii_traces();
    let mut report = String::new();
    let _ = writeln!(
        report,
        "RISC II instruction cache (§2.3): direct-mapped, 8-byte blocks, \
         instruction-only workload ({len} refs)\n"
    );
    let _ = writeln!(
        report,
        "{:>6} {:>9} {:>9} {:>7}",
        "net", "miss", "p.miss", "relerr"
    );
    let mut csv = String::from("net,miss_ratio,paper_miss\n");
    for &(net, paper_miss) in paper::RISCII_CURVE {
        let config = CacheConfig::builder()
            .net_size(net)
            .block_size(8)
            .sub_block_size(8)
            .associativity(1)
            .word_size(4)
            .build()
            .expect("RISC II geometry is valid");
        let mut miss = 0.0;
        for trace in traces {
            miss += simulate(config, trace.iter(), 0).miss_ratio();
        }
        miss /= traces.len() as f64;
        let _ = writeln!(
            report,
            "{:>6} {:>9.4} {:>9.4} {:>6.0}%",
            net,
            miss,
            paper_miss,
            relative_error(miss, paper_miss) * 100.0
        );
        let _ = writeln!(csv, "{net},{miss:.6},{paper_miss}");
    }
    let _ = writeln!(
        report,
        "\n(Paper: doubling the cache size reduced the miss ratio by ~20%.)"
    );
    Artifact {
        name: "risc2",
        report,
        csv: vec![("risc2.csv".into(), csv)],
    }
}

// ----------------------------------------------------------------------
// Ablations: the design choices the paper holds fixed
// ----------------------------------------------------------------------

/// Ablation experiments over the parameters the paper fixed, checking the
/// claims it cites for fixing them: associativity (4-way ≈ fully
/// associative, little gain past 4), replacement (LRU ≈ FIFO ≈ RANDOM),
/// Strecker's PDP-11 direct-mapped size curve, the optimized vs redundant
/// load-forward variant, and warm vs cold start.
pub fn run_ablations(bench: &mut Workbench) -> Artifact {
    let mut report = String::new();
    let len = bench.len();
    let _ = writeln!(report, "Ablations ({len} refs/trace)\n");
    let mut csv = String::from("experiment,arch,variant,miss_ratio,traffic_ratio\n");

    // --- Associativity (paper §3.1, citing Smith [15] and Strecker [4]).
    let _ = writeln!(report, "Associativity (1024-byte cache, 16,8):");
    for arch in [Architecture::Pdp11, Architecture::Vax11] {
        let warmup = bench.warmup_for(arch);
        let traces = bench.arch_traces(arch);
        let mut row = format!("  {:<16}", arch.name());
        for ways in [1u64, 2, 4, 8] {
            let config = CacheConfig::builder()
                .net_size(1024)
                .block_size(16)
                .sub_block_size(8)
                .associativity(ways)
                .word_size(arch.word_size())
                .build()
                .expect("valid geometry");
            let mut miss = 0.0;
            for t in traces {
                miss += simulate(config, t.iter(), warmup).miss_ratio();
            }
            miss /= traces.len() as f64;
            let _ = write!(row, " {ways}-way {miss:.4} ");
            let _ = writeln!(csv, "associativity,{},{ways}-way,{miss:.6},", arch.name());
        }
        let _ = writeln!(report, "{row}");
    }
    let _ = writeln!(
        report,
        "  (expected: 1 -> 2 -> 4 improves, little change beyond 4-way)\n"
    );

    // --- Replacement policy (Strecker: LRU ≈ FIFO ≈ RANDOM).
    let _ = writeln!(report, "Replacement policy (1024-byte cache, 16,8, 4-way):");
    for arch in [Architecture::Pdp11, Architecture::S370] {
        let warmup = bench.warmup_for(arch);
        let traces = bench.arch_traces(arch);
        let mut row = format!("  {:<16}", arch.name());
        for policy in [
            ReplacementPolicy::Lru,
            ReplacementPolicy::Fifo,
            ReplacementPolicy::Random,
        ] {
            let config = CacheConfig::builder()
                .net_size(1024)
                .block_size(16)
                .sub_block_size(8)
                .replacement(policy)
                .word_size(arch.word_size())
                .build()
                .expect("valid geometry");
            let mut miss = 0.0;
            for t in traces {
                miss += simulate(config, t.iter(), warmup).miss_ratio();
            }
            miss /= traces.len() as f64;
            let _ = write!(row, " {policy} {miss:.4} ");
            let _ = writeln!(csv, "replacement,{},{policy},{miss:.6},", arch.name());
        }
        let _ = writeln!(report, "{row}");
    }
    let _ = writeln!(report, "  (expected: all three comparable)\n");

    // --- Strecker's PDP-11 curve (§1.1): direct-mapped, 4-byte blocks.
    let _ = writeln!(
        report,
        "Strecker PDP-11 curve (direct-mapped, 4-byte blocks):"
    );
    let _ = writeln!(report, "  {:>6} {:>9} {:>9}", "net", "miss", "Strecker");
    {
        let traces = bench.arch_traces(Architecture::Pdp11);
        for &(net, paper_miss) in paper::STRECKER_CURVE {
            let config = CacheConfig::builder()
                .net_size(net)
                .block_size(4)
                .sub_block_size(4)
                .associativity(1)
                .word_size(2)
                .build()
                .expect("valid geometry");
            let mut miss = 0.0;
            for t in traces {
                miss += simulate(config, t.iter(), 0).miss_ratio();
            }
            miss /= traces.len() as f64;
            let _ = writeln!(report, "  {:>6} {:>9.4} {:>9.2}", net, miss, paper_miss);
            let _ = writeln!(csv, "strecker,PDP-11,{net},{miss:.6},");
        }
    }
    let _ = writeln!(report);

    // --- Load-forward: redundant vs optimized (remember-valid) variant.
    let _ = writeln!(
        report,
        "Load-forward variants (Z8000 CPP/C1/C2, 256-byte cache, 16,2):"
    );
    {
        let warmup = bench.warmup_for(Architecture::Z8000);
        let traces = bench.load_forward_traces();
        for (label, fetch) in [
            ("redundant (paper)", FetchPolicy::LOAD_FORWARD),
            (
                "optimized",
                FetchPolicy::LoadForward {
                    remember_valid: true,
                },
            ),
        ] {
            let config = CacheConfig::builder()
                .net_size(256)
                .block_size(16)
                .sub_block_size(2)
                .word_size(2)
                .fetch(fetch)
                .build()
                .expect("valid geometry");
            let mut miss = 0.0;
            let mut traffic = 0.0;
            for t in traces {
                let m = simulate(config, t.iter(), warmup);
                miss += m.miss_ratio();
                traffic += m.traffic_ratio();
            }
            let n = traces.len() as f64;
            let _ = writeln!(
                report,
                "  {:<20} miss {:.4}  traffic {:.4}",
                label,
                miss / n,
                traffic / n
            );
            let _ = writeln!(
                csv,
                "load_forward_variant,Z8000,{label},{:.6},{:.6}",
                miss / n,
                traffic / n
            );
        }
        let _ = writeln!(
            report,
            "  (identical miss ratios; the optimized variant only trims traffic)\n"
        );
    }

    // --- Warm vs cold start (§4.2.2).
    let _ = writeln!(
        report,
        "Warm vs cold start (Z8000 set, 1024-byte cache, 16,8):"
    );
    {
        let len = bench.len();
        let traces = bench.arch_traces(Architecture::Z8000);
        let config = CacheConfig::builder()
            .net_size(1024)
            .block_size(16)
            .sub_block_size(8)
            .word_size(2)
            .build()
            .expect("valid geometry");
        for (label, warmup) in [("cold", 0usize), ("warm (5%)", len / 20)] {
            let mut miss = 0.0;
            for t in traces {
                miss += simulate(config, t.iter(), warmup).miss_ratio();
            }
            miss /= traces.len() as f64;
            let _ = writeln!(report, "  {label:<12} miss {miss:.4}");
            let _ = writeln!(csv, "warm_start,Z8000,{label},{miss:.6},");
        }
        let _ = writeln!(
            report,
            "  (warm-start ratios are slightly optimistic, as the paper notes)"
        );
    }

    Artifact {
        name: "ablations",
        report,
        csv: vec![("ablations.csv".into(), csv)],
    }
}

// ----------------------------------------------------------------------
// Headline summary (abstract anchors)
// ----------------------------------------------------------------------

/// Regenerates the abstract's headline numbers: miss/traffic ratios of the
/// 1024-byte 4-way 8-byte-block cache for all four architectures.
pub fn run_headline(bench: &mut Workbench) -> Artifact {
    let mut report = String::new();
    let _ = writeln!(
        report,
        "Abstract headline: 1024-byte net, 4-way, 8-byte blocks (8,8)\n"
    );
    let _ = writeln!(
        report,
        "{:<16} {:>8} {:>8} | {:>8} {:>8}",
        "architecture", "miss", "traffic", "p.miss", "p.traf"
    );
    let mut csv = String::from("arch,miss_ratio,traffic_ratio,paper_miss,paper_traffic\n");
    for arch in Architecture::ALL {
        let warmup = bench.warmup_for(arch);
        let traces = bench.arch_traces(arch);
        let config = standard_config(arch, 1024, 8, 8);
        let mut miss = 0.0;
        let mut traffic = 0.0;
        for t in traces {
            let m = simulate(config, t.iter(), warmup);
            miss += m.miss_ratio();
            traffic += m.traffic_ratio();
        }
        let n = traces.len() as f64;
        miss /= n;
        traffic /= n;
        let reference = paper::table7_row(arch, 1024, 8, 8).expect("anchor row present");
        let _ = writeln!(
            report,
            "{:<16} {:>8.4} {:>8.4} | {:>8.4} {:>8.4}",
            arch.name(),
            miss,
            traffic,
            reference.miss,
            reference.traffic
        );
        let _ = writeln!(
            csv,
            "{},{miss:.6},{traffic:.6},{},{}",
            arch.name(),
            reference.miss,
            reference.traffic
        );
    }
    Artifact {
        name: "headline",
        report,
        csv: vec![("headline.csv".into(), csv)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_bench() -> Workbench {
        Workbench::new(20_000)
    }

    #[test]
    fn workbench_caches_trace_sets() {
        let mut b = small_bench();
        let first = b.arch_traces(Architecture::Pdp11).len();
        let second = b.arch_traces(Architecture::Pdp11).len();
        assert_eq!(first, second);
        assert_eq!(first, 6);
    }

    #[test]
    fn workbench_memoizes_trace_generation_per_spec() {
        let mut b = small_bench();
        let first = b.traces_from(&WorkloadSpec::z8000_load_forward_set());
        // A second request for the same specs — as another artifact in a
        // `--bin all` run would make — hands back the very same buffers
        // instead of regenerating them.
        let second = b.traces_from(&WorkloadSpec::z8000_load_forward_set());
        for (a, c) in first.iter().zip(&second) {
            assert!(a.shares_backing(c), "{} was generated twice", a.name);
        }
    }

    #[test]
    fn warmup_only_for_z8000() {
        let b = small_bench();
        assert_eq!(b.warmup_for(Architecture::Pdp11), 0);
        assert!(b.warmup_for(Architecture::Z8000) > 0);
    }

    #[test]
    fn figure_artifact_is_well_formed() {
        let mut b = small_bench();
        let a = run_figure(&mut b, 1);
        assert_eq!(a.name, "fig1");
        assert!(a.report.contains("Figure 1"));
        assert!(a.report.contains("net 32 bytes"));
        let csv = &a.csv[0].1;
        assert!(csv.lines().count() > 10, "{csv}");
    }

    #[test]
    #[should_panic(expected = "not one of Figures 1-8")]
    fn figure_9_is_separate() {
        let mut b = small_bench();
        let _ = run_figure(&mut b, 9);
    }

    #[test]
    fn table8_rows_cover_paper() {
        let mut b = small_bench();
        let a = run_table8(&mut b);
        // One CSV data line per Table 8 row.
        assert_eq!(a.csv[0].1.lines().count(), paper::TABLE8.len() + 1);
        assert!(a.report.contains("16,2,LF"));
    }

    #[test]
    fn headline_covers_all_architectures() {
        let mut b = small_bench();
        let a = run_headline(&mut b);
        for arch in Architecture::ALL {
            assert!(a.report.contains(arch.name()), "{}", arch.name());
        }
    }
}
