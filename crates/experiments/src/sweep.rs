//! Design-space sweeps: materialise traces once, evaluate many cache
//! configurations against them, average ratios across traces as the paper
//! does ("Multiple-trace miss and traffic ratios are the unweighted average
//! of the miss and traffic ratios of individual runs", §3.3).
//!
//! Sweeps do not simulate every point independently: a planner groups the
//! grid into one-pass-compatible slices (same block size, LRU, demand
//! fetch) and runs each slice through
//! [`occache_core::multisim`], which yields every cache size's metrics
//! from a single trace pass — bit-identical to [`simulate`]. Points the
//! engine cannot express (FIFO/Random, prefetch, copy-back) fall back to
//! the direct simulator, and `OCCACHE_NO_MULTISIM=1` forces the direct
//! path everywhere (used by equivalence tests and timing comparisons).

use std::panic::{self, AssertUnwindSafe};
use std::sync::Arc;
use std::thread;

use occache_core::{
    engine_supports, simulate, simulate_many, BusModel, CacheConfig, FetchPolicy, Metrics,
    MAX_MULTISIM_CONFIGS,
};
use occache_trace::{MemRef, PackedTrace};
use occache_workloads::{Architecture, WorkloadSpec};

/// A fully materialised trace, reusable across configurations.
///
/// References live in a shared [`PackedTrace`] (9 bytes per reference
/// instead of 16), so cloning a `Trace` — as the memoizing workbench and
/// the sweep workers do — bumps a reference count rather than copying a
/// million-entry stream.
#[derive(Debug, Clone)]
pub struct Trace {
    /// Trace name (as in the paper's workload tables).
    pub name: String,
    /// The reference stream, shared by reference across workers.
    pub refs: Arc<PackedTrace>,
}

impl Trace {
    /// Packs a reference stream under a name.
    pub fn new(name: impl Into<String>, refs: impl IntoIterator<Item = MemRef>) -> Self {
        Trace {
            name: name.into(),
            refs: Arc::new(refs.into_iter().collect()),
        }
    }
}

/// Generates `len` references for each spec (seed 0, the canonical trace).
pub fn materialize(specs: &[WorkloadSpec], len: usize) -> Vec<Trace> {
    specs
        .iter()
        .map(|spec| Trace::new(spec.name(), spec.generator(0).take(len)))
        .collect()
}

/// Averaged results for one cache design point over a trace set.
#[derive(Debug, Clone, Copy)]
pub struct DesignPoint {
    /// The configuration evaluated.
    pub config: CacheConfig,
    /// Unweighted mean miss ratio across traces.
    pub miss_ratio: f64,
    /// Unweighted mean traffic ratio across traces.
    pub traffic_ratio: f64,
    /// Unweighted mean nibble-mode scaled traffic ratio (§4.3).
    pub nibble_traffic_ratio: f64,
    /// Mean fraction of redundant sub-block loads (load-forward only).
    pub redundant_load_fraction: f64,
    /// Gross cache size in bytes.
    pub gross_size: u64,
}

/// Evaluates one configuration against every trace, averaging the ratios.
///
/// `warmup` references at the head of each trace prime the cache without
/// being counted (the paper's warm-start discipline; pass 0 for cold).
pub fn evaluate_point(config: CacheConfig, traces: &[Trace], warmup: usize) -> DesignPoint {
    let nibble = BusModel::paper_nibble();
    let mut miss = 0.0;
    let mut traffic = 0.0;
    let mut scaled = 0.0;
    let mut redundant = 0.0;
    for trace in traces {
        let metrics: Metrics = simulate(config, trace.refs.iter(), warmup);
        miss += metrics.miss_ratio();
        traffic += metrics.traffic_ratio();
        scaled += metrics.scaled_traffic_ratio(nibble);
        if metrics.sub_loads() > 0 {
            redundant += metrics.redundant_sub_loads() as f64 / metrics.sub_loads() as f64;
        }
    }
    let n = traces.len().max(1) as f64;
    DesignPoint {
        config,
        miss_ratio: miss / n,
        traffic_ratio: traffic / n,
        nibble_traffic_ratio: scaled / n,
        redundant_load_fraction: redundant / n,
        gross_size: config.gross_size(),
    }
}

/// Evaluates a one-pass-compatible slice of configurations with a single
/// engine pass per trace, averaging exactly as [`evaluate_point`] does.
///
/// The accumulation order per configuration is identical to the per-point
/// path (outer loop over traces, then the division by the trace count), so
/// the resulting floats are bit-identical, not merely close.
pub fn evaluate_slice(
    configs: &[CacheConfig],
    traces: &[Trace],
    warmup: usize,
) -> Vec<DesignPoint> {
    let nibble = BusModel::paper_nibble();
    let mut miss = vec![0.0; configs.len()];
    let mut traffic = vec![0.0; configs.len()];
    let mut scaled = vec![0.0; configs.len()];
    let mut redundant = vec![0.0; configs.len()];
    for trace in traces {
        let all = simulate_many(configs, trace.refs.iter(), warmup)
            .expect("sweep planner grouped an engine-incompatible slice");
        for (i, metrics) in all.iter().enumerate() {
            miss[i] += metrics.miss_ratio();
            traffic[i] += metrics.traffic_ratio();
            scaled[i] += metrics.scaled_traffic_ratio(nibble);
            if metrics.sub_loads() > 0 {
                redundant[i] += metrics.redundant_sub_loads() as f64 / metrics.sub_loads() as f64;
            }
        }
    }
    let n = traces.len().max(1) as f64;
    configs
        .iter()
        .enumerate()
        .map(|(i, &config)| DesignPoint {
            config,
            miss_ratio: miss[i] / n,
            traffic_ratio: traffic[i] / n,
            nibble_traffic_ratio: scaled[i] / n,
            redundant_load_fraction: redundant[i] / n,
            gross_size: config.gross_size(),
        })
        .collect()
}

/// One schedulable unit of a sliced sweep: a group of config indices that
/// share an engine pass, or a single config that needs the direct
/// simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SweepUnit {
    /// Indices into the config grid, one-pass-compatible with each other.
    Engine(Vec<usize>),
    /// Index of a config the engine cannot express.
    Direct(usize),
}

/// Groups a config grid into one-pass-compatible slices.
///
/// Engine-eligible configs (see [`engine_supports`]) sharing a block
/// size share a slice — sub-block size, word size and associativity may
/// differ, the engine tracks those per size — chunked at
/// [`MAX_MULTISIM_CONFIGS`]; everything else becomes a direct unit.
/// Deterministic for a given grid, and every input index appears in
/// exactly one unit.
pub fn plan_units(configs: &[CacheConfig]) -> Vec<SweepUnit> {
    let mut units = Vec::new();
    let mut groups: Vec<(u64, Vec<usize>)> = Vec::new();
    for (i, config) in configs.iter().enumerate() {
        if engine_supports(config) {
            let key = config.block_size();
            match groups.iter_mut().find(|(k, _)| *k == key) {
                Some((_, members)) => members.push(i),
                None => groups.push((key, vec![i])),
            }
        } else {
            units.push(SweepUnit::Direct(i));
        }
    }
    for (_, members) in groups {
        for chunk in members.chunks(MAX_MULTISIM_CONFIGS) {
            units.push(SweepUnit::Engine(chunk.to_vec()));
        }
    }
    units
}

/// Whether `OCCACHE_NO_MULTISIM` forces the direct simulator for every
/// point (equivalence tests and honest before/after timing set it).
pub fn multisim_disabled() -> bool {
    std::env::var("OCCACHE_NO_MULTISIM").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Fault-isolated parallel sweep that shares trace passes across
/// one-pass-compatible slices, returning one result per config in input
/// order.
///
/// The grid is planned into [`SweepUnit`]s and the units drained from a
/// shared queue by the supervised worker pool (see
/// [`crate::supervisor::evaluate_results_supervised`], of which this is
/// the no-deadline, no-retry special case). A panic inside an engine
/// slice does not fail its sibling configs: each member is retried alone
/// on the direct simulator, so fault isolation stays per-point exactly
/// as in [`evaluate_results_with`].
pub fn evaluate_results_sliced(
    configs: &[CacheConfig],
    traces: &[Trace],
    warmup: usize,
) -> Vec<Result<DesignPoint, PointError>> {
    let policy = crate::supervisor::SupervisorPolicy::disabled();
    crate::supervisor::evaluate_results_supervised(&policy, configs, traces, warmup).0
}

/// Adapts a per-point evaluation function to the batch shape the
/// checkpointed sweeps consume, keeping per-point fault isolation.
/// Production sweeps pass [`evaluate_results_sliced`] instead; tests use
/// this to inject point-level faults into batch APIs.
pub fn batch_of<F>(
    eval: F,
) -> impl Fn(&[CacheConfig], &[Trace], usize) -> Vec<Result<DesignPoint, PointError>> + Sync
where
    F: Fn(CacheConfig, &[Trace], usize) -> DesignPoint + Sync,
{
    move |configs: &[CacheConfig], traces: &[Trace], warmup: usize| {
        evaluate_results_with(configs, traces, warmup, &eval)
    }
}

/// Why a design point failed to produce a result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PointFault {
    /// The evaluation panicked (simulator bug or injected fault).
    Panic,
    /// The evaluation exceeded the supervisor's wall-clock deadline.
    Timeout,
    /// The evaluation produced a non-finite metric (NaN or infinity),
    /// which must never reach a journal or an artifact.
    NonFinite,
    /// The point failed in enough earlier runs that the journal
    /// quarantined it; it is skipped instead of retried forever.
    Quarantined,
    /// A sweep worker thread died outside per-point isolation.
    WorkerLoss,
    /// The run was interrupted (SIGINT/SIGTERM) before this point was
    /// claimed by a worker; the point was never evaluated and is *not*
    /// tombstoned, so a resumed run picks it up cleanly.
    Interrupted,
}

impl std::fmt::Display for PointFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            PointFault::Panic => "panic",
            PointFault::Timeout => "timeout",
            PointFault::NonFinite => "non-finite",
            PointFault::Quarantined => "quarantined",
            PointFault::WorkerLoss => "worker-loss",
            PointFault::Interrupted => "interrupted",
        })
    }
}

/// A design point whose evaluation failed (panic, deadline overrun,
/// poisoned metrics, or a journal quarantine). The sweep records the
/// failure and carries on with the remaining points.
#[derive(Debug, Clone)]
pub struct PointError {
    /// The configuration that failed.
    pub config: CacheConfig,
    /// The failure class (drives retry/quarantine policy and reporting).
    pub fault: PointFault,
    /// Human-readable detail (panic payload, deadline, field name, ...).
    pub message: String,
}

impl PointError {
    /// A panicking evaluation, with the rendered payload.
    pub fn panicked(config: CacheConfig, message: impl Into<String>) -> Self {
        PointError {
            config,
            fault: PointFault::Panic,
            message: message.into(),
        }
    }

    /// An evaluation abandoned at its wall-clock deadline.
    pub fn timed_out(config: CacheConfig, deadline: std::time::Duration) -> Self {
        PointError {
            config,
            fault: PointFault::Timeout,
            message: format!(
                "exceeded the {:.1}s point deadline (OCCACHE_POINT_TIMEOUT); evaluation abandoned",
                deadline.as_secs_f64()
            ),
        }
    }

    /// An evaluation that produced a non-finite metric.
    pub fn non_finite(config: CacheConfig, field: &str) -> Self {
        PointError {
            config,
            fault: PointFault::NonFinite,
            message: format!("{field} is not finite; the point was rejected, not journalled"),
        }
    }

    /// A point skipped because the journal quarantined it.
    pub fn quarantined(config: CacheConfig, failures: u32) -> Self {
        PointError {
            config,
            fault: PointFault::Quarantined,
            message: format!(
                "quarantined after {failures} failed run(s); pass --fresh to retry it"
            ),
        }
    }

    /// A worker thread dying outside per-point isolation.
    pub fn worker_loss(config: CacheConfig, message: impl Into<String>) -> Self {
        PointError {
            config,
            fault: PointFault::WorkerLoss,
            message: message.into(),
        }
    }

    /// A point left unevaluated because the run was interrupted.
    pub fn interrupted(config: CacheConfig) -> Self {
        PointError {
            config,
            fault: PointFault::Interrupted,
            message: "run interrupted (SIGINT/SIGTERM) before this point was evaluated; \
                      rerun to resume"
                .into(),
        }
    }
}

impl std::fmt::Display for PointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: [{}] {}", self.config, self.fault, self.message)
    }
}

/// Journal health observed while loading a checkpoint (all zero for
/// non-resumable sweeps and pristine journals).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JournalHealth {
    /// Corrupt journal lines encountered (bad checksum, unknown schema
    /// version, unparseable, non-finite payload) — counted, warned about,
    /// and dropped by compaction, never silently skipped.
    pub bad_lines: usize,
    /// Bytes of torn trailing record truncated away by tail repair.
    pub repaired_tail_bytes: usize,
}

/// The outcome of a fault-isolated (and possibly resumed) sweep.
#[derive(Debug, Clone, Default)]
pub struct SweepOutcome {
    /// Successfully evaluated points, in the order of the input configs.
    pub points: Vec<DesignPoint>,
    /// Points whose evaluation failed, with the failing config named.
    pub failures: Vec<PointError>,
    /// How many points were restored from a checkpoint journal rather than
    /// re-simulated (always 0 for non-resumable sweeps).
    pub resumed: usize,
    /// Retried attempts the supervisor made after transient failures.
    pub retries: usize,
    /// Checkpoint-journal health observed while resuming.
    pub journal: JournalHealth,
}

impl SweepOutcome {
    /// True when every input config produced a point.
    pub fn is_complete(&self) -> bool {
        self.failures.is_empty()
    }

    /// How many failures were deadline overruns.
    pub fn timed_out(&self) -> usize {
        self.fault_count(PointFault::Timeout)
    }

    /// How many points the journal quarantined.
    pub fn quarantined(&self) -> usize {
        self.fault_count(PointFault::Quarantined)
    }

    /// How many points produced non-finite metrics.
    pub fn non_finite(&self) -> usize {
        self.fault_count(PointFault::NonFinite)
    }

    fn fault_count(&self, fault: PointFault) -> usize {
        self.failures.iter().filter(|f| f.fault == fault).count()
    }

    /// A short report block naming each failed cell, or `None` when the
    /// sweep is complete. Artifact reports append this so partial results
    /// are never mistaken for full grids.
    pub fn failure_note(&self) -> Option<String> {
        failure_note(&self.failures)
    }
}

/// Renders a failed-cells block for a report, or `None` when `failures`
/// is empty. See [`SweepOutcome::failure_note`].
pub fn failure_note(failures: &[PointError]) -> Option<String> {
    if failures.is_empty() {
        return None;
    }
    let mut note = format!(
        "WARNING: {} design point(s) FAILED and are missing above:\n",
        failures.len()
    );
    for f in failures {
        use std::fmt::Write as _;
        let _ = writeln!(note, "  FAILED {f}");
    }
    Some(note)
}

/// Renders a panic payload as text (panics carry `&str` or `String`
/// payloads in practice; anything else is reported opaquely).
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panicked with a non-string payload".to_string()
    }
}

/// Evaluates one configuration with panic containment: a panic inside
/// `eval` becomes an `Err(PointError)` instead of unwinding the sweep.
fn evaluate_contained<F>(
    config: CacheConfig,
    traces: &[Trace],
    warmup: usize,
    eval: &F,
) -> Result<DesignPoint, PointError>
where
    F: Fn(CacheConfig, &[Trace], usize) -> DesignPoint,
{
    panic::catch_unwind(AssertUnwindSafe(|| eval(config, traces, warmup)))
        .map_err(|payload| PointError::panicked(config, panic_message(payload)))
}

/// Fault-isolated parallel sweep returning one result per config, in
/// input order. The building block under [`evaluate_points_isolated_with`]
/// and the checkpointed sweeps, which need the per-index mapping.
pub fn evaluate_results_with<F>(
    configs: &[CacheConfig],
    traces: &[Trace],
    warmup: usize,
    eval: F,
) -> Vec<Result<DesignPoint, PointError>>
where
    F: Fn(CacheConfig, &[Trace], usize) -> DesignPoint + Sync,
{
    let workers = pool_workers(configs.len());
    let chunk = configs.len().div_ceil(workers.max(1)).max(1);
    let mut slots: Vec<Option<Result<DesignPoint, PointError>>> = vec![None; configs.len()];
    let eval = &eval;
    thread::scope(|scope| {
        let mut handles = Vec::new();
        for (i, block) in configs.chunks(chunk).enumerate() {
            handles.push((
                i * chunk,
                block,
                scope.spawn(move || {
                    block
                        .iter()
                        .map(|&c| evaluate_contained(c, traces, warmup, eval))
                        .collect::<Vec<_>>()
                }),
            ));
        }
        for (start, block, h) in handles {
            match h.join() {
                Ok(results) => {
                    for (j, r) in results.into_iter().enumerate() {
                        slots[start + j] = Some(r);
                    }
                }
                // With per-point containment a worker should never die, but
                // if one does, name every config it was carrying rather
                // than poisoning the whole sweep.
                Err(payload) => {
                    let message = format!(
                        "sweep worker thread died outside point isolation: {}",
                        panic_message(payload)
                    );
                    for (j, &c) in block.iter().enumerate() {
                        slots[start + j] = Some(Err(PointError::worker_loss(c, message.clone())));
                    }
                }
            }
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("every chunk filled its slots"))
        .collect()
}

/// Fault-isolated parallel sweep with a custom evaluation function.
///
/// Each point runs under `catch_unwind`: a panicking point is reported in
/// [`SweepOutcome::failures`] (named by its config) and the rest of the
/// grid still completes. `eval` is a parameter so tests can inject faults;
/// production callers use [`evaluate_points_isolated`].
pub fn evaluate_points_isolated_with<F>(
    configs: &[CacheConfig],
    traces: &[Trace],
    warmup: usize,
    eval: F,
) -> SweepOutcome
where
    F: Fn(CacheConfig, &[Trace], usize) -> DesignPoint + Sync,
{
    let mut outcome = SweepOutcome::default();
    for result in evaluate_results_with(configs, traces, warmup, eval) {
        match result {
            Ok(p) => outcome.points.push(p),
            Err(e) => outcome.failures.push(e),
        }
    }
    outcome
}

/// Fault-isolated parallel sweep using the one-pass engine where the grid
/// allows it and [`evaluate_point`] elsewhere (see
/// [`evaluate_results_sliced`]).
pub fn evaluate_points_isolated(
    configs: &[CacheConfig],
    traces: &[Trace],
    warmup: usize,
) -> SweepOutcome {
    let mut outcome = SweepOutcome::default();
    for result in evaluate_results_sliced(configs, traces, warmup) {
        match result {
            Ok(p) => outcome.points.push(p),
            Err(e) => outcome.failures.push(e),
        }
    }
    outcome
}

/// Evaluates many configurations, spreading work across threads.
///
/// # Panics
///
/// Panics if any point's evaluation panics, naming the failing
/// configuration. Use [`evaluate_points_isolated`] to get partial results
/// instead.
pub fn evaluate_points(
    configs: &[CacheConfig],
    traces: &[Trace],
    warmup: usize,
) -> Vec<DesignPoint> {
    let outcome = evaluate_points_isolated(configs, traces, warmup);
    if let Some(first) = outcome.failures.first() {
        panic!(
            "sweep failed at {} of {} design point(s); first failure: {first}",
            outcome.failures.len(),
            configs.len()
        );
    }
    outcome.points
}

/// The `(block, sub-block)` pairs of the paper's Table 1 grid applicable to
/// a given net size and word size: blocks 2–64 bytes capped at `net/4`
/// (at least four blocks, matching Table 7's printed rows), sub-blocks
/// 2–32 bytes with `word <= sub <= block`.
pub fn table1_pairs(net: u64, word: u64) -> Vec<(u64, u64)> {
    let mut pairs = Vec::new();
    let max_block = (net / 4).min(64);
    let mut block = max_block;
    while block >= 2.max(word) {
        let mut sub = block.min(32);
        while sub >= word.max(2) {
            pairs.push((block, sub));
            sub /= 2;
        }
        block /= 2;
    }
    pairs
}

/// Builds the paper's standard configuration (4-way, LRU, demand) for an
/// architecture and geometry.
///
/// # Panics
///
/// Panics if the geometry is invalid for the Table 1 grid (callers pass
/// pairs from [`table1_pairs`], which are always valid).
pub fn standard_config(arch: Architecture, net: u64, block: u64, sub: u64) -> CacheConfig {
    CacheConfig::builder()
        .net_size(net)
        .block_size(block)
        .sub_block_size(sub)
        .word_size(arch.word_size())
        .build()
        .expect("Table 1 geometry is valid")
}

/// Like [`standard_config`] but with the load-forward fetch policy.
pub fn load_forward_config(arch: Architecture, net: u64, block: u64, sub: u64) -> CacheConfig {
    CacheConfig::builder()
        .net_size(net)
        .block_size(block)
        .sub_block_size(sub)
        .word_size(arch.word_size())
        .fetch(FetchPolicy::LOAD_FORWARD)
        .build()
        .expect("Table 1 geometry is valid")
}

/// Parses a non-negative-integer env var strictly: absent → `default`,
/// present but unparsable → an error naming the variable (a typo in
/// `OCCACHE_REFS` must not silently run the paper-size sweep).
fn env_usize(var: &str, default: usize) -> Result<usize, String> {
    match std::env::var(var) {
        Ok(v) => v
            .trim()
            .parse()
            .map_err(|_| format!("{var}={v:?} is not a non-negative integer")),
        Err(std::env::VarError::NotPresent) => Ok(default),
        Err(std::env::VarError::NotUnicode(_)) => Err(format!("{var} is not valid UTF-8")),
    }
}

/// Number of references per trace: `OCCACHE_REFS` env var, defaulting to
/// the paper's 1 million.
///
/// # Errors
///
/// Returns a message naming the variable when it is set but malformed.
pub fn try_trace_len() -> Result<usize, String> {
    env_usize("OCCACHE_REFS", occache_workloads::PAPER_TRACE_LEN)
}

/// Number of references per trace, tolerating a malformed `OCCACHE_REFS`
/// (falls back to the paper's 1 million). Prefer [`try_trace_len`] in
/// binaries so typos fail fast.
pub fn trace_len() -> usize {
    try_trace_len().unwrap_or(occache_workloads::PAPER_TRACE_LEN)
}

/// Warm-up references per run: `OCCACHE_WARMUP` env var, defaulting to 0.
///
/// # Errors
///
/// Returns a message naming the variable when it is set but malformed.
pub fn try_warmup_len() -> Result<usize, String> {
    env_usize("OCCACHE_WARMUP", 0)
}

/// Warm-up references per run, tolerating a malformed `OCCACHE_WARMUP`
/// (falls back to 0). Prefer [`try_warmup_len`] in binaries.
pub fn warmup_len() -> usize {
    try_warmup_len().unwrap_or(0)
}

/// Worker-thread override for the sweep pools: `OCCACHE_JOBS` env var.
/// `Ok(None)` (unset or `0`) means "use the hardware parallelism" —
/// today's behaviour; `OCCACHE_JOBS=1` forces a serial pool, which
/// preserves byte-identical artifact and journal-append order.
///
/// # Errors
///
/// Returns a message naming the variable when it is set but malformed.
pub fn try_jobs() -> Result<Option<usize>, String> {
    env_usize("OCCACHE_JOBS", 0).map(|n| if n == 0 { None } else { Some(n) })
}

/// The worker count a sweep pool should use for `units` schedulable
/// units: the `OCCACHE_JOBS` override when set (malformed values fall
/// back silently — bins validate via [`try_jobs`] at startup), otherwise
/// the hardware parallelism, never more workers than units and never
/// zero.
pub fn pool_workers(units: usize) -> usize {
    let hardware = thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    try_jobs()
        .unwrap_or(None)
        .unwrap_or(hardware)
        .min(units.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_pairs_match_table7_row_sets() {
        // Net 64, 16-bit word: the nine printed Table 7 rows plus (16,16),
        // which is in Table 1's legal space though the paper omits the row.
        let pairs = table1_pairs(64, 2);
        assert_eq!(
            pairs,
            vec![
                (16, 16),
                (16, 8),
                (16, 4),
                (16, 2),
                (8, 8),
                (8, 4),
                (8, 2),
                (4, 4),
                (4, 2),
                (2, 2),
            ]
        );
    }

    #[test]
    fn table1_pairs_include_block_equal_sub() {
        let pairs = table1_pairs(256, 2);
        assert!(pairs.contains(&(32, 32)));
        assert!(pairs.contains(&(64, 32)), "block 64 is legal at 256 bytes");
        assert!(pairs.contains(&(2, 2)));
        assert_eq!(pairs.len(), 20, "{pairs:?}");
    }

    #[test]
    fn table1_pairs_respect_word_size() {
        let pairs = table1_pairs(1024, 4);
        assert!(pairs.iter().all(|&(_, s)| s >= 4));
        assert!(!pairs.contains(&(4, 2)));
        assert!(pairs.contains(&(4, 4)));
    }

    #[test]
    fn table1_pairs_cap_sub_at_32() {
        let pairs = table1_pairs(1024, 2);
        assert!(pairs.contains(&(64, 32)));
        assert!(!pairs.contains(&(64, 64)));
    }

    #[test]
    fn evaluate_point_averages_traces() {
        let specs = vec![WorkloadSpec::pdp11_ed(), WorkloadSpec::pdp11_opsys()];
        let traces = materialize(&specs, 5_000);
        let config = standard_config(Architecture::Pdp11, 256, 8, 4);
        let point = evaluate_point(config, &traces, 0);
        assert!(point.miss_ratio > 0.0 && point.miss_ratio < 1.0);
        // Demand identity: averaged traffic = averaged miss × sub/word.
        assert!((point.traffic_ratio - point.miss_ratio * 2.0).abs() < 1e-12);
    }

    #[test]
    fn isolated_sweep_survives_a_panicking_point() {
        let traces = materialize(&[WorkloadSpec::pdp11_ed()], 1_000);
        let configs: Vec<_> = table1_pairs(64, 2)
            .into_iter()
            .map(|(b, s)| standard_config(Architecture::Pdp11, 64, b, s))
            .collect();
        // Inject a panic for exactly one cell of the grid.
        let outcome = evaluate_points_isolated_with(&configs, &traces, 0, |c, t, w| {
            if c.block_size() == 8 && c.sub_block_size() == 4 {
                panic!("injected fault for testing");
            }
            evaluate_point(c, t, w)
        });
        assert_eq!(outcome.points.len(), configs.len() - 1);
        assert_eq!(outcome.failures.len(), 1);
        assert!(!outcome.is_complete());
        let failure = &outcome.failures[0];
        assert_eq!(failure.config.block_size(), 8);
        assert!(failure.message.contains("injected fault"), "{failure}");
        // The failure note names the cell for the artifact report.
        let note = outcome.failure_note().unwrap();
        assert!(note.contains("FAILED"), "{note}");
        assert!(note.contains("(8,4)"), "note should name the config: {note}");
    }

    #[test]
    fn isolated_sweep_preserves_config_order() {
        let traces = materialize(&[WorkloadSpec::pdp11_ed()], 1_000);
        let configs: Vec<_> = table1_pairs(64, 2)
            .into_iter()
            .map(|(b, s)| standard_config(Architecture::Pdp11, 64, b, s))
            .collect();
        let outcome = evaluate_points_isolated(&configs, &traces, 0);
        assert!(outcome.is_complete());
        assert_eq!(outcome.resumed, 0);
        for (cfg, p) in configs.iter().zip(&outcome.points) {
            assert_eq!(*cfg, p.config);
        }
    }

    #[test]
    fn point_error_display_names_the_config() {
        let config = standard_config(Architecture::Pdp11, 64, 8, 4);
        let e = PointError::panicked(config, "injected");
        let text = e.to_string();
        assert!(text.contains("(8,4)"), "{text}");
        assert!(text.contains("injected"), "{text}");
    }

    #[test]
    fn env_parsing_is_strict_on_malformed_values() {
        // Uses the pure helper directly on a variable we control to avoid
        // races with other tests reading OCCACHE_REFS.
        std::env::set_var("OCCACHE_TEST_ENV_USIZE", "12abc");
        assert!(env_usize("OCCACHE_TEST_ENV_USIZE", 5).is_err());
        std::env::set_var("OCCACHE_TEST_ENV_USIZE", " 42 ");
        assert_eq!(env_usize("OCCACHE_TEST_ENV_USIZE", 5), Ok(42));
        std::env::remove_var("OCCACHE_TEST_ENV_USIZE");
        assert_eq!(env_usize("OCCACHE_TEST_ENV_USIZE", 5), Ok(5));
    }

    #[test]
    fn parallel_matches_serial() {
        let traces = materialize(&[WorkloadSpec::pdp11_ed()], 3_000);
        let configs: Vec<_> = table1_pairs(64, 2)
            .into_iter()
            .map(|(b, s)| standard_config(Architecture::Pdp11, 64, b, s))
            .collect();
        let parallel = evaluate_points(&configs, &traces, 0);
        for (cfg, p) in configs.iter().zip(&parallel) {
            let serial = evaluate_point(*cfg, &traces, 0);
            assert_eq!(serial.miss_ratio, p.miss_ratio);
        }
    }

    /// A Table-7-style grid plus configs the engine cannot express (FIFO,
    /// prefetch, copy-back): exercises both planner paths.
    fn mixed_grid() -> Vec<CacheConfig> {
        let mut configs = Vec::new();
        for net in [64u64, 256] {
            for (b, s) in table1_pairs(net, 2) {
                configs.push(standard_config(Architecture::Pdp11, net, b, s));
            }
        }
        let fallback = |builder: &mut occache_core::CacheConfigBuilder| {
            builder
                .net_size(256)
                .block_size(16)
                .sub_block_size(8)
                .word_size(2)
                .build()
                .expect("valid geometry")
        };
        configs.push(fallback(
            CacheConfig::builder().replacement(occache_core::ReplacementPolicy::Fifo),
        ));
        configs.push(fallback(
            CacheConfig::builder().fetch(FetchPolicy::PrefetchNext { tagged: true }),
        ));
        configs.push(fallback(
            CacheConfig::builder().write_policy(occache_core::WritePolicy::CopyBack),
        ));
        configs
    }

    #[test]
    fn planner_covers_every_index_exactly_once() {
        let configs = mixed_grid();
        let units = plan_units(&configs);
        let mut seen = vec![0usize; configs.len()];
        for unit in &units {
            match unit {
                SweepUnit::Direct(i) => seen[*i] += 1,
                SweepUnit::Engine(members) => {
                    assert!(members.len() <= MAX_MULTISIM_CONFIGS);
                    let b = configs[members[0]].block_size();
                    for &i in members {
                        assert!(engine_supports(&configs[i]));
                        assert_eq!(configs[i].block_size(), b);
                        seen[i] += 1;
                    }
                }
            }
        }
        assert!(seen.iter().all(|&n| n == 1), "{seen:?}");
        // The three policy fallbacks are the only direct units.
        let direct = units
            .iter()
            .filter(|u| matches!(u, SweepUnit::Direct(_)))
            .count();
        assert_eq!(direct, 3);
        // Sharing must actually happen: fewer engine passes than engine
        // points (each geometry common to both nets shares one pass).
        let engine_units = units.len() - direct;
        assert!(engine_units < configs.len() - direct, "{units:?}");
        assert!(
            units
                .iter()
                .any(|u| matches!(u, SweepUnit::Engine(m) if m.len() > 1)),
            "{units:?}"
        );
    }

    #[test]
    fn sliced_sweep_is_bit_identical_to_direct_evaluation() {
        let traces = materialize(
            &[WorkloadSpec::pdp11_ed(), WorkloadSpec::pdp11_trace()],
            3_000,
        );
        let configs = mixed_grid();
        let sliced = evaluate_results_sliced(&configs, &traces, 200);
        for (cfg, r) in configs.iter().zip(&sliced) {
            let p = r.as_ref().expect("no faults injected");
            let direct = evaluate_point(*cfg, &traces, 200);
            assert_eq!(p.miss_ratio, direct.miss_ratio, "{cfg}");
            assert_eq!(p.traffic_ratio, direct.traffic_ratio, "{cfg}");
            assert_eq!(p.nibble_traffic_ratio, direct.nibble_traffic_ratio, "{cfg}");
            assert_eq!(
                p.redundant_load_fraction, direct.redundant_load_fraction,
                "{cfg}"
            );
            assert_eq!(p.gross_size, direct.gross_size, "{cfg}");
        }
    }
}
