//! Design-space sweeps at the workload layer: trace materialisation, the
//! paper's Table 1 grid helpers, and the `OCCACHE_REFS`/`OCCACHE_WARMUP`
//! knobs with their paper defaults.
//!
//! The evaluation machinery itself — [`Trace`], [`DesignPoint`], the
//! direct and one-pass engine paths, the slice planner, fault types and
//! the supervised worker pool — lives in `occache-runtime` (shared with
//! the serving layer) and is re-exported here so existing callers keep
//! their import paths. This module adds only what needs the workload
//! crate: turning [`WorkloadSpec`]s into traces and building the paper's
//! standard configurations.

use occache_core::{CacheConfig, FetchPolicy};
use occache_workloads::{Architecture, WorkloadSpec};

pub use occache_runtime::config::{
    multisim_disabled, replacement_override, try_jobs, try_multisim_disabled,
    try_replacement_override, try_slice_threads, DisabledEngines,
};
pub use occache_runtime::eval::{
    evaluate_point, evaluate_results_with, evaluate_slice, plan_units, plan_units_disabling,
    pool_workers, slice_workers, DesignPoint, PointError, PointFault, SweepUnit, Trace,
};
pub use occache_runtime::executor::{
    batch_of, evaluate_points, evaluate_points_isolated, evaluate_points_isolated_with,
    evaluate_results_sliced, failure_note, SweepOutcome,
};
pub use occache_runtime::journal::JournalHealth;

/// Generates `len` references for each spec (seed 0, the canonical trace).
pub fn materialize(specs: &[WorkloadSpec], len: usize) -> Vec<Trace> {
    specs
        .iter()
        .map(|spec| Trace::new(spec.name(), spec.generator(0).take(len)))
        .collect()
}

/// Streamed counterparts of [`materialize`]: each trace regenerates its
/// reference stream on every iteration instead of holding a packed copy,
/// so evaluation is generation-fused — references flow from the workload
/// generator straight into the simulators. Because [`WorkloadSpec`]
/// generators are deterministic per seed, a streamed trace replays
/// exactly the stream its materialized twin packs, and fingerprints,
/// journal keys and metrics come out identical.
pub fn stream_traces(specs: &[WorkloadSpec], len: usize) -> Vec<Trace> {
    specs
        .iter()
        .map(|spec| {
            let spec = spec.clone();
            Trace::streamed(spec.name(), len, move || spec.generator(0))
        })
        .collect()
}

/// The `(block, sub-block)` pairs of the paper's Table 1 grid applicable to
/// a given net size and word size: blocks 2–64 bytes capped at `net/4`
/// (at least four blocks, matching Table 7's printed rows), sub-blocks
/// 2–32 bytes with `word <= sub <= block`.
pub fn table1_pairs(net: u64, word: u64) -> Vec<(u64, u64)> {
    let mut pairs = Vec::new();
    let max_block = (net / 4).min(64);
    let mut block = max_block;
    while block >= 2.max(word) {
        let mut sub = block.min(32);
        while sub >= word.max(2) {
            pairs.push((block, sub));
            sub /= 2;
        }
        block /= 2;
    }
    pairs
}

/// Builds the paper's standard configuration (4-way, LRU, demand) for an
/// architecture and geometry. `OCCACHE_REPLACEMENT=fifo|random|lru`
/// overrides the replacement policy grid-wide, which is how a stock
/// Table-7 sweep is re-run down a different policy axis — point keys,
/// journals and artifacts all see the overridden config, so runs under
/// different policies never collide.
///
/// # Panics
///
/// Panics if the geometry is invalid for the Table 1 grid (callers pass
/// pairs from [`table1_pairs`], which are always valid).
pub fn standard_config(arch: Architecture, net: u64, block: u64, sub: u64) -> CacheConfig {
    let mut builder = CacheConfig::builder();
    builder
        .net_size(net)
        .block_size(block)
        .sub_block_size(sub)
        .word_size(arch.word_size());
    if let Some(policy) = replacement_override() {
        builder.replacement(policy);
    }
    builder.build().expect("Table 1 geometry is valid")
}

/// Like [`standard_config`] but with the load-forward fetch policy.
pub fn load_forward_config(arch: Architecture, net: u64, block: u64, sub: u64) -> CacheConfig {
    CacheConfig::builder()
        .net_size(net)
        .block_size(block)
        .sub_block_size(sub)
        .word_size(arch.word_size())
        .fetch(FetchPolicy::LOAD_FORWARD)
        .build()
        .expect("Table 1 geometry is valid")
}

/// Number of references per trace: `OCCACHE_REFS` env var, defaulting to
/// the paper's 1 million.
///
/// # Errors
///
/// Returns a message naming the variable when it is set but malformed.
pub fn try_trace_len() -> Result<usize, String> {
    occache_runtime::config::env_usize("OCCACHE_REFS", occache_workloads::PAPER_TRACE_LEN)
}

/// Number of references per trace, tolerating a malformed `OCCACHE_REFS`
/// (falls back to the paper's 1 million). Prefer [`try_trace_len`] in
/// binaries so typos fail fast.
pub fn trace_len() -> usize {
    try_trace_len().unwrap_or(occache_workloads::PAPER_TRACE_LEN)
}

/// Warm-up references per run: `OCCACHE_WARMUP` env var, defaulting to 0.
///
/// # Errors
///
/// Returns a message naming the variable when it is set but malformed.
pub fn try_warmup_len() -> Result<usize, String> {
    occache_runtime::config::env_usize("OCCACHE_WARMUP", 0)
}

/// Warm-up references per run, tolerating a malformed `OCCACHE_WARMUP`
/// (falls back to 0). Prefer [`try_warmup_len`] in binaries.
pub fn warmup_len() -> usize {
    try_warmup_len().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use occache_core::{engine_supports, MAX_MULTISIM_CONFIGS};

    #[test]
    fn table1_pairs_match_table7_row_sets() {
        // Net 64, 16-bit word: the nine printed Table 7 rows plus (16,16),
        // which is in Table 1's legal space though the paper omits the row.
        let pairs = table1_pairs(64, 2);
        assert_eq!(
            pairs,
            vec![
                (16, 16),
                (16, 8),
                (16, 4),
                (16, 2),
                (8, 8),
                (8, 4),
                (8, 2),
                (4, 4),
                (4, 2),
                (2, 2),
            ]
        );
    }

    #[test]
    fn table1_pairs_include_block_equal_sub() {
        let pairs = table1_pairs(256, 2);
        assert!(pairs.contains(&(32, 32)));
        assert!(pairs.contains(&(64, 32)), "block 64 is legal at 256 bytes");
        assert!(pairs.contains(&(2, 2)));
        assert_eq!(pairs.len(), 20, "{pairs:?}");
    }

    #[test]
    fn table1_pairs_respect_word_size() {
        let pairs = table1_pairs(1024, 4);
        assert!(pairs.iter().all(|&(_, s)| s >= 4));
        assert!(!pairs.contains(&(4, 2)));
        assert!(pairs.contains(&(4, 4)));
    }

    #[test]
    fn table1_pairs_cap_sub_at_32() {
        let pairs = table1_pairs(1024, 2);
        assert!(pairs.contains(&(64, 32)));
        assert!(!pairs.contains(&(64, 64)));
    }

    #[test]
    fn evaluate_point_averages_traces() {
        let specs = vec![WorkloadSpec::pdp11_ed(), WorkloadSpec::pdp11_opsys()];
        let traces = materialize(&specs, 5_000);
        let config = standard_config(Architecture::Pdp11, 256, 8, 4);
        let point = evaluate_point(config, &traces, 0);
        assert!(point.miss_ratio > 0.0 && point.miss_ratio < 1.0);
        // Demand identity: averaged traffic = averaged miss × sub/word.
        assert!((point.traffic_ratio - point.miss_ratio * 2.0).abs() < 1e-12);
    }

    #[test]
    fn isolated_sweep_survives_a_panicking_point() {
        let traces = materialize(&[WorkloadSpec::pdp11_ed()], 1_000);
        let configs: Vec<_> = table1_pairs(64, 2)
            .into_iter()
            .map(|(b, s)| standard_config(Architecture::Pdp11, 64, b, s))
            .collect();
        // Inject a panic for exactly one cell of the grid.
        let outcome = evaluate_points_isolated_with(&configs, &traces, 0, |c, t, w| {
            if c.block_size() == 8 && c.sub_block_size() == 4 {
                panic!("injected fault for testing");
            }
            evaluate_point(c, t, w)
        });
        assert_eq!(outcome.points.len(), configs.len() - 1);
        assert_eq!(outcome.failures.len(), 1);
        assert!(!outcome.is_complete());
        let failure = &outcome.failures[0];
        assert_eq!(failure.config.block_size(), 8);
        assert!(failure.message.contains("injected fault"), "{failure}");
        // The failure note names the cell for the artifact report.
        let note = outcome.failure_note().unwrap();
        assert!(note.contains("FAILED"), "{note}");
        assert!(
            note.contains("(8,4)"),
            "note should name the config: {note}"
        );
    }

    #[test]
    fn isolated_sweep_preserves_config_order() {
        let traces = materialize(&[WorkloadSpec::pdp11_ed()], 1_000);
        let configs: Vec<_> = table1_pairs(64, 2)
            .into_iter()
            .map(|(b, s)| standard_config(Architecture::Pdp11, 64, b, s))
            .collect();
        let outcome = evaluate_points_isolated(&configs, &traces, 0);
        assert!(outcome.is_complete());
        assert_eq!(outcome.resumed, 0);
        for (cfg, p) in configs.iter().zip(&outcome.points) {
            assert_eq!(*cfg, p.config);
        }
    }

    #[test]
    fn point_error_display_names_the_config() {
        let config = standard_config(Architecture::Pdp11, 64, 8, 4);
        let e = PointError::panicked(config, "injected");
        let text = e.to_string();
        assert!(text.contains("(8,4)"), "{text}");
        assert!(text.contains("injected"), "{text}");
    }

    #[test]
    fn parallel_matches_serial() {
        let traces = materialize(&[WorkloadSpec::pdp11_ed()], 3_000);
        let configs: Vec<_> = table1_pairs(64, 2)
            .into_iter()
            .map(|(b, s)| standard_config(Architecture::Pdp11, 64, b, s))
            .collect();
        let parallel = evaluate_points(&configs, &traces, 0);
        for (cfg, p) in configs.iter().zip(&parallel) {
            let serial = evaluate_point(*cfg, &traces, 0);
            assert_eq!(serial.miss_ratio, p.miss_ratio);
        }
    }

    /// A Table-7-style grid plus a FIFO config (engine-eligible, but on
    /// its own policy's slice) and configs no engine can express
    /// (prefetch, copy-back): exercises every planner path.
    fn mixed_grid() -> Vec<CacheConfig> {
        let mut configs = Vec::new();
        for net in [64u64, 256] {
            for (b, s) in table1_pairs(net, 2) {
                configs.push(standard_config(Architecture::Pdp11, net, b, s));
            }
        }
        let fallback = |builder: &mut occache_core::CacheConfigBuilder| {
            builder
                .net_size(256)
                .block_size(16)
                .sub_block_size(8)
                .word_size(2)
                .build()
                .expect("valid geometry")
        };
        configs.push(fallback(
            CacheConfig::builder().replacement(occache_core::ReplacementPolicy::Fifo),
        ));
        configs.push(fallback(
            CacheConfig::builder().fetch(FetchPolicy::PrefetchNext { tagged: true }),
        ));
        configs.push(fallback(
            CacheConfig::builder().write_policy(occache_core::WritePolicy::CopyBack),
        ));
        configs
    }

    #[test]
    fn planner_covers_every_index_exactly_once() {
        use occache_core::EngineKind;
        let configs = mixed_grid();
        let units = plan_units(&configs);
        let mut seen = vec![0usize; configs.len()];
        for unit in &units {
            match unit {
                SweepUnit::Direct(i) => seen[*i] += 1,
                SweepUnit::Engine { kind, members } => {
                    assert!(members.len() <= MAX_MULTISIM_CONFIGS);
                    for &i in members {
                        assert!(engine_supports(&configs[i]));
                        assert_eq!(EngineKind::for_config(&configs[i]), Some(*kind));
                        seen[i] += 1;
                    }
                }
            }
        }
        assert!(seen.iter().all(|&n| n == 1), "{seen:?}");
        // Only prefetch and copy-back still need the direct simulator;
        // the FIFO config rides its own policy's engine slice.
        let direct = units
            .iter()
            .filter(|u| matches!(u, SweepUnit::Direct(_)))
            .count();
        assert_eq!(direct, 2);
        assert!(
            units
                .iter()
                .any(|u| matches!(u, SweepUnit::Engine { kind, members }
                    if *kind == EngineKind::Fifo && members.len() == 1)),
            "{units:?}"
        );
        // Sharing must actually happen: fewer engine passes than engine
        // points (each geometry common to both nets shares one pass).
        let engine_units = units.len() - direct;
        assert!(engine_units < configs.len() - direct, "{units:?}");
        assert!(
            units
                .iter()
                .any(|u| matches!(u, SweepUnit::Engine { members, .. } if members.len() > 1)),
            "{units:?}"
        );
    }

    #[test]
    fn planner_honours_per_engine_disabling() {
        let configs = mixed_grid();
        let disabled = DisabledEngines {
            fifo: true,
            ..DisabledEngines::NONE
        };
        let units = plan_units_disabling(&configs, disabled);
        // The FIFO config joins prefetch and copy-back on the direct
        // path; the LRU grid still rides its engine.
        let direct = units
            .iter()
            .filter(|u| matches!(u, SweepUnit::Direct(_)))
            .count();
        assert_eq!(direct, 3);
        assert!(units
            .iter()
            .all(|u| !matches!(u, SweepUnit::Engine { kind, .. }
                if *kind == occache_core::EngineKind::Fifo)));
        let all_direct = plan_units_disabling(&configs, DisabledEngines::ALL);
        assert_eq!(all_direct.len(), configs.len());
        assert!(all_direct.iter().all(|u| matches!(u, SweepUnit::Direct(_))));
    }

    #[test]
    fn sliced_sweep_is_bit_identical_to_direct_evaluation() {
        let traces = materialize(
            &[WorkloadSpec::pdp11_ed(), WorkloadSpec::pdp11_trace()],
            3_000,
        );
        let configs = mixed_grid();
        let sliced = evaluate_results_sliced(&configs, &traces, 200);
        for (cfg, r) in configs.iter().zip(&sliced) {
            let p = r.as_ref().expect("no faults injected");
            let direct = evaluate_point(*cfg, &traces, 200);
            assert_eq!(p.miss_ratio, direct.miss_ratio, "{cfg}");
            assert_eq!(p.traffic_ratio, direct.traffic_ratio, "{cfg}");
            assert_eq!(p.nibble_traffic_ratio, direct.nibble_traffic_ratio, "{cfg}");
            assert_eq!(
                p.redundant_load_fraction, direct.redundant_load_fraction,
                "{cfg}"
            );
            assert_eq!(p.gross_size, direct.gross_size, "{cfg}");
        }
    }
}
