//! Design-space sweeps: materialise traces once, evaluate many cache
//! configurations against them, average ratios across traces as the paper
//! does ("Multiple-trace miss and traffic ratios are the unweighted average
//! of the miss and traffic ratios of individual runs", §3.3).

use std::thread;

use occache_core::{simulate, BusModel, CacheConfig, FetchPolicy, Metrics};
use occache_trace::MemRef;
use occache_workloads::{Architecture, WorkloadSpec};

/// A fully materialised trace, reusable across configurations.
#[derive(Debug, Clone)]
pub struct Trace {
    /// Trace name (as in the paper's workload tables).
    pub name: String,
    /// The reference stream.
    pub refs: Vec<MemRef>,
}

/// Generates `len` references for each spec (seed 0, the canonical trace).
pub fn materialize(specs: &[WorkloadSpec], len: usize) -> Vec<Trace> {
    specs
        .iter()
        .map(|spec| Trace {
            name: spec.name().to_string(),
            refs: spec.generator(0).take(len).collect(),
        })
        .collect()
}

/// Averaged results for one cache design point over a trace set.
#[derive(Debug, Clone, Copy)]
pub struct DesignPoint {
    /// The configuration evaluated.
    pub config: CacheConfig,
    /// Unweighted mean miss ratio across traces.
    pub miss_ratio: f64,
    /// Unweighted mean traffic ratio across traces.
    pub traffic_ratio: f64,
    /// Unweighted mean nibble-mode scaled traffic ratio (§4.3).
    pub nibble_traffic_ratio: f64,
    /// Mean fraction of redundant sub-block loads (load-forward only).
    pub redundant_load_fraction: f64,
    /// Gross cache size in bytes.
    pub gross_size: u64,
}

/// Evaluates one configuration against every trace, averaging the ratios.
///
/// `warmup` references at the head of each trace prime the cache without
/// being counted (the paper's warm-start discipline; pass 0 for cold).
pub fn evaluate_point(config: CacheConfig, traces: &[Trace], warmup: usize) -> DesignPoint {
    let nibble = BusModel::paper_nibble();
    let mut miss = 0.0;
    let mut traffic = 0.0;
    let mut scaled = 0.0;
    let mut redundant = 0.0;
    for trace in traces {
        let metrics: Metrics = simulate(config, trace.refs.iter().copied(), warmup);
        miss += metrics.miss_ratio();
        traffic += metrics.traffic_ratio();
        scaled += metrics.scaled_traffic_ratio(nibble);
        if metrics.sub_loads() > 0 {
            redundant += metrics.redundant_sub_loads() as f64 / metrics.sub_loads() as f64;
        }
    }
    let n = traces.len().max(1) as f64;
    DesignPoint {
        config,
        miss_ratio: miss / n,
        traffic_ratio: traffic / n,
        nibble_traffic_ratio: scaled / n,
        redundant_load_fraction: redundant / n,
        gross_size: config.gross_size(),
    }
}

/// Evaluates many configurations, spreading work across threads.
pub fn evaluate_points(
    configs: &[CacheConfig],
    traces: &[Trace],
    warmup: usize,
) -> Vec<DesignPoint> {
    let workers = thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(configs.len().max(1));
    let chunk = configs.len().div_ceil(workers.max(1));
    let mut out: Vec<Option<DesignPoint>> = vec![None; configs.len()];
    thread::scope(|scope| {
        let mut handles = Vec::new();
        for (i, block) in configs.chunks(chunk.max(1)).enumerate() {
            handles.push((
                i * chunk.max(1),
                scope.spawn(move || {
                    block
                        .iter()
                        .map(|&c| evaluate_point(c, traces, warmup))
                        .collect::<Vec<_>>()
                }),
            ));
        }
        for (start, h) in handles {
            for (j, point) in h
                .join()
                .expect("sweep worker panicked")
                .into_iter()
                .enumerate()
            {
                out[start + j] = Some(point);
            }
        }
    });
    out.into_iter()
        .map(|p| p.expect("all points filled"))
        .collect()
}

/// The `(block, sub-block)` pairs of the paper's Table 1 grid applicable to
/// a given net size and word size: blocks 2–64 bytes capped at `net/4`
/// (at least four blocks, matching Table 7's printed rows), sub-blocks
/// 2–32 bytes with `word <= sub <= block`.
pub fn table1_pairs(net: u64, word: u64) -> Vec<(u64, u64)> {
    let mut pairs = Vec::new();
    let max_block = (net / 4).min(64);
    let mut block = max_block;
    while block >= 2.max(word) {
        let mut sub = block.min(32);
        while sub >= word.max(2) {
            pairs.push((block, sub));
            sub /= 2;
        }
        block /= 2;
    }
    pairs
}

/// Builds the paper's standard configuration (4-way, LRU, demand) for an
/// architecture and geometry.
///
/// # Panics
///
/// Panics if the geometry is invalid for the Table 1 grid (callers pass
/// pairs from [`table1_pairs`], which are always valid).
pub fn standard_config(arch: Architecture, net: u64, block: u64, sub: u64) -> CacheConfig {
    CacheConfig::builder()
        .net_size(net)
        .block_size(block)
        .sub_block_size(sub)
        .word_size(arch.word_size())
        .build()
        .expect("Table 1 geometry is valid")
}

/// Like [`standard_config`] but with the load-forward fetch policy.
pub fn load_forward_config(arch: Architecture, net: u64, block: u64, sub: u64) -> CacheConfig {
    CacheConfig::builder()
        .net_size(net)
        .block_size(block)
        .sub_block_size(sub)
        .word_size(arch.word_size())
        .fetch(FetchPolicy::LOAD_FORWARD)
        .build()
        .expect("Table 1 geometry is valid")
}

/// Number of references per trace: `OCCACHE_REFS` env var, defaulting to
/// the paper's 1 million.
pub fn trace_len() -> usize {
    std::env::var("OCCACHE_REFS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(occache_workloads::PAPER_TRACE_LEN)
}

/// Warm-up references per run: `OCCACHE_WARMUP` env var, defaulting to 0.
pub fn warmup_len() -> usize {
    std::env::var("OCCACHE_WARMUP")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_pairs_match_table7_row_sets() {
        // Net 64, 16-bit word: the nine printed Table 7 rows plus (16,16),
        // which is in Table 1's legal space though the paper omits the row.
        let pairs = table1_pairs(64, 2);
        assert_eq!(
            pairs,
            vec![
                (16, 16),
                (16, 8),
                (16, 4),
                (16, 2),
                (8, 8),
                (8, 4),
                (8, 2),
                (4, 4),
                (4, 2),
                (2, 2),
            ]
        );
    }

    #[test]
    fn table1_pairs_include_block_equal_sub() {
        let pairs = table1_pairs(256, 2);
        assert!(pairs.contains(&(32, 32)));
        assert!(pairs.contains(&(64, 32)), "block 64 is legal at 256 bytes");
        assert!(pairs.contains(&(2, 2)));
        assert_eq!(pairs.len(), 20, "{pairs:?}");
    }

    #[test]
    fn table1_pairs_respect_word_size() {
        let pairs = table1_pairs(1024, 4);
        assert!(pairs.iter().all(|&(_, s)| s >= 4));
        assert!(!pairs.contains(&(4, 2)));
        assert!(pairs.contains(&(4, 4)));
    }

    #[test]
    fn table1_pairs_cap_sub_at_32() {
        let pairs = table1_pairs(1024, 2);
        assert!(pairs.contains(&(64, 32)));
        assert!(!pairs.contains(&(64, 64)));
    }

    #[test]
    fn evaluate_point_averages_traces() {
        let specs = vec![WorkloadSpec::pdp11_ed(), WorkloadSpec::pdp11_opsys()];
        let traces = materialize(&specs, 5_000);
        let config = standard_config(Architecture::Pdp11, 256, 8, 4);
        let point = evaluate_point(config, &traces, 0);
        assert!(point.miss_ratio > 0.0 && point.miss_ratio < 1.0);
        // Demand identity: averaged traffic = averaged miss × sub/word.
        assert!((point.traffic_ratio - point.miss_ratio * 2.0).abs() < 1e-12);
    }

    #[test]
    fn parallel_matches_serial() {
        let traces = materialize(&[WorkloadSpec::pdp11_ed()], 3_000);
        let configs: Vec<_> = table1_pairs(64, 2)
            .into_iter()
            .map(|(b, s)| standard_config(Architecture::Pdp11, 64, b, s))
            .collect();
        let parallel = evaluate_points(&configs, &traces, 0);
        for (cfg, p) in configs.iter().zip(&parallel) {
            let serial = evaluate_point(*cfg, &traces, 0);
            assert_eq!(serial.miss_ratio, p.miss_ratio);
        }
    }
}
