//! The paper's published numbers, embedded for paper-vs-measured reports.
//!
//! Sources: Table 6 (360/85 comparison), Table 7 (the full design-space
//! grid), Table 8 (load-forward), and prose anchors (§2.3 RISC II curve,
//! §1.1 Strecker's PDP-11/70 curve, abstract headline ratios). A few
//! Table 7 cells are illegible in the surviving scan; those rows are
//! omitted rather than guessed.

use occache_workloads::Architecture;

/// One Table 7 row for one architecture: miss, traffic and nibble-scaled
/// traffic ratios at a given geometry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table7Row {
    /// Net cache size in bytes.
    pub net: u64,
    /// Block size in bytes.
    pub block: u64,
    /// Sub-block size in bytes.
    pub sub: u64,
    /// Published miss ratio.
    pub miss: f64,
    /// Published traffic ratio.
    pub traffic: f64,
    /// Published nibble-mode scaled traffic ratio.
    pub nibble: f64,
}

const fn row(net: u64, block: u64, sub: u64, miss: f64, traffic: f64, nibble: f64) -> Table7Row {
    Table7Row {
        net,
        block,
        sub,
        miss,
        traffic,
        nibble,
    }
}

/// PDP-11 column of Table 7 (legible rows).
pub const TABLE7_PDP11: &[Table7Row] = &[
    row(64, 16, 8, 0.399, 1.596, 0.798),
    row(64, 16, 4, 0.557, 1.114, 0.743),
    row(64, 8, 8, 0.339, 1.356, 0.678),
    row(64, 8, 4, 0.479, 0.958, 0.639),
    row(64, 8, 2, 0.739, 0.739, 0.739),
    row(64, 4, 4, 0.425, 0.850, 0.567),
    row(64, 4, 2, 0.666, 0.666, 0.666),
    row(64, 2, 2, 0.620, 0.620, 0.620),
    row(256, 32, 32, 0.146, 2.336, 0.876),
    row(256, 32, 16, 0.191, 1.528, 0.637),
    row(256, 32, 8, 0.291, 1.164, 0.582),
    row(256, 32, 4, 0.418, 0.836, 0.557),
    row(256, 32, 2, 0.599, 0.599, 0.599),
    row(256, 16, 16, 0.144, 1.152, 0.480),
    row(256, 16, 8, 0.204, 0.816, 0.408),
    row(256, 16, 4, 0.302, 0.604, 0.403),
    row(256, 16, 2, 0.478, 0.478, 0.478),
    row(256, 8, 8, 0.168, 0.672, 0.336),
    row(256, 8, 4, 0.254, 0.508, 0.339),
    row(256, 8, 2, 0.407, 0.407, 0.407),
    row(256, 4, 4, 0.218, 0.436, 0.291),
    row(256, 4, 2, 0.351, 0.351, 0.351),
    row(256, 2, 2, 0.297, 0.297, 0.297),
    row(1024, 64, 16, 0.081, 0.646, 0.269),
    row(1024, 64, 8, 0.118, 0.472, 0.236),
    row(1024, 64, 4, 0.178, 0.356, 0.237),
    row(1024, 64, 2, 0.190, 0.190, 0.190),
    row(1024, 32, 32, 0.033, 0.533, 0.200),
    row(1024, 32, 8, 0.075, 0.298, 0.149),
    row(1024, 16, 16, 0.033, 0.265, 0.110),
    row(1024, 16, 8, 0.052, 0.206, 0.103),
    row(1024, 16, 4, 0.081, 0.162, 0.108),
    row(1024, 8, 8, 0.039, 0.156, 0.078),
    row(1024, 8, 4, 0.061, 0.122, 0.081),
    row(1024, 4, 4, 0.048, 0.096, 0.064),
    row(1024, 4, 2, 0.081, 0.081, 0.081),
    row(1024, 2, 2, 0.072, 0.072, 0.072),
];

/// Z8000 column of Table 7 (legible rows; warm-start ratios).
pub const TABLE7_Z8000: &[Table7Row] = &[
    row(64, 16, 8, 0.330, 1.320, 0.660),
    row(64, 16, 4, 0.508, 1.016, 0.677),
    row(64, 16, 2, 0.857, 0.857, 0.857),
    row(64, 8, 8, 0.298, 1.192, 0.596),
    row(64, 8, 4, 0.461, 0.922, 0.615),
    row(64, 8, 2, 0.762, 0.762, 0.762),
    row(64, 4, 4, 0.432, 0.864, 0.576),
    row(64, 4, 2, 0.671, 0.671, 0.671),
    row(64, 2, 2, 0.583, 0.583, 0.583),
    row(256, 32, 32, 0.079, 1.264, 0.474),
    row(256, 32, 16, 0.107, 0.856, 0.357),
    row(256, 32, 8, 0.156, 0.624, 0.312),
    row(256, 32, 4, 0.245, 0.490, 0.327),
    row(256, 32, 2, 0.421, 0.421, 0.421),
    row(256, 16, 16, 0.082, 0.656, 0.273),
    row(256, 16, 8, 0.124, 0.496, 0.248),
    row(256, 16, 4, 0.203, 0.406, 0.271),
    row(256, 16, 2, 0.355, 0.355, 0.355),
    row(256, 8, 8, 0.108, 0.432, 0.216),
    row(256, 8, 4, 0.175, 0.350, 0.233),
    row(256, 8, 2, 0.312, 0.312, 0.312),
    row(256, 4, 4, 0.157, 0.314, 0.209),
    row(256, 4, 2, 0.287, 0.287, 0.287),
    row(256, 2, 2, 0.273, 0.273, 0.273),
    row(1024, 64, 16, 0.041, 0.328, 0.137),
    row(1024, 64, 8, 0.063, 0.252, 0.126),
    row(1024, 64, 4, 0.104, 0.208, 0.139),
    row(1024, 32, 32, 0.013, 0.208, 0.078),
    row(1024, 32, 8, 0.039, 0.156, 0.078),
    row(1024, 32, 4, 0.065, 0.130, 0.087),
    row(1024, 32, 2, 0.097, 0.097, 0.097),
    // Scan shows 0.017 for the miss ratio, but the traffic (0.104) and
    // nibble (0.043) cells both imply 0.013; 0.017 is an OCR error.
    row(1024, 16, 16, 0.013, 0.104, 0.043),
    row(1024, 16, 8, 0.023, 0.092, 0.046),
    row(1024, 16, 4, 0.039, 0.078, 0.052),
    row(1024, 16, 2, 0.072, 0.072, 0.072),
    row(1024, 8, 8, 0.015, 0.060, 0.030),
    row(1024, 8, 4, 0.030, 0.060, 0.040),
    row(1024, 8, 2, 0.055, 0.055, 0.055),
    row(1024, 4, 4, 0.022, 0.045, 0.029),
    row(1024, 2, 2, 0.037, 0.037, 0.037),
];

/// VAX-11 column of Table 7 (legible rows).
pub const TABLE7_VAX11: &[Table7Row] = &[
    row(64, 16, 8, 0.4249, 0.8498, 0.5665),
    row(64, 16, 4, 0.6483, 0.6483, 0.6483),
    row(64, 8, 8, 0.3892, 0.7784, 0.5189),
    row(64, 8, 4, 0.6072, 0.6072, 0.6072),
    row(64, 4, 4, 0.5652, 0.5652, 0.5652),
    row(256, 32, 32, 0.1528, 1.2224, 0.5093),
    row(256, 32, 16, 0.2061, 0.8244, 0.4122),
    row(256, 32, 8, 0.3003, 0.6006, 0.4004),
    row(256, 32, 4, 0.4759, 0.4759, 0.4759),
    row(256, 16, 16, 0.1739, 0.6956, 0.3478),
    row(256, 16, 8, 0.2614, 0.5228, 0.3485),
    row(256, 16, 4, 0.4207, 0.4207, 0.4207),
    row(256, 8, 8, 0.2367, 0.4734, 0.3156),
    row(256, 8, 4, 0.3596, 0.3596, 0.3596),
    row(256, 4, 4, 0.3553, 0.3553, 0.3553),
    row(1024, 64, 16, 0.1088, 0.4352, 0.2176),
    row(1024, 64, 8, 0.1704, 0.3408, 0.2272),
    row(1024, 64, 4, 0.2825, 0.2825, 0.2825),
    row(1024, 32, 32, 0.0588, 0.4704, 0.1960),
    row(1024, 32, 16, 0.0863, 0.3452, 0.1726),
    row(1024, 32, 8, 0.1360, 0.2720, 0.1813),
    row(1024, 32, 4, 0.2267, 0.2267, 0.2267),
    row(1024, 16, 16, 0.0675, 0.2700, 0.1350),
    row(1024, 16, 8, 0.1058, 0.2116, 0.1411),
    row(1024, 16, 4, 0.1748, 0.1748, 0.1748),
    row(1024, 8, 8, 0.0804, 0.1608, 0.1072),
    row(1024, 8, 4, 0.1332, 0.1332, 0.1332),
    row(1024, 4, 4, 0.1044, 0.1044, 0.1044),
];

/// IBM System/370 column of Table 7 (legible rows).
pub const TABLE7_S370: &[Table7Row] = &[
    row(64, 16, 8, 0.5794, 1.1588, 0.7725),
    row(64, 16, 4, 0.8726, 0.8726, 0.8726),
    row(64, 8, 8, 0.5475, 1.0950, 0.7300),
    row(64, 8, 4, 0.8375, 0.8375, 0.8375),
    row(64, 4, 4, 0.8180, 0.8180, 0.8180),
    row(256, 32, 32, 0.2377, 1.9016, 0.7923),
    row(256, 32, 16, 0.3234, 1.2936, 0.6468),
    row(256, 32, 8, 0.4691, 0.9382, 0.6255),
    row(256, 32, 4, 0.7331, 0.7331, 0.7331),
    row(256, 16, 16, 0.2722, 1.0888, 0.5444),
    row(256, 16, 8, 0.4006, 0.8012, 0.5341),
    row(256, 16, 4, 0.6300, 0.6300, 0.6300),
    row(256, 8, 8, 0.3645, 0.7290, 0.4860),
    row(256, 8, 4, 0.5794, 0.5794, 0.5794),
    row(256, 4, 4, 0.5438, 0.5438, 0.5438),
    row(1024, 64, 16, 0.2042, 0.8168, 0.4084),
    row(1024, 64, 8, 0.3092, 0.6184, 0.4123),
    row(1024, 64, 4, 0.4970, 0.4970, 0.4970),
    row(1024, 32, 32, 0.1266, 1.0128, 0.4220),
    row(1024, 32, 16, 0.1859, 0.7436, 0.3718),
    row(1024, 32, 8, 0.2855, 0.5710, 0.3807),
    row(1024, 32, 4, 0.4645, 0.4645, 0.4645),
    row(1024, 16, 16, 0.1700, 0.6800, 0.3400),
    row(1024, 16, 8, 0.2632, 0.5264, 0.3509),
    row(1024, 16, 4, 0.4308, 0.4308, 0.4308),
    row(1024, 8, 8, 0.2443, 0.4886, 0.3257),
    row(1024, 8, 4, 0.4017, 0.4017, 0.4017),
    row(1024, 4, 4, 0.3742, 0.3742, 0.3742),
];

/// The Table 7 column for an architecture.
pub fn table7(arch: Architecture) -> &'static [Table7Row] {
    match arch {
        Architecture::Pdp11 => TABLE7_PDP11,
        Architecture::Z8000 => TABLE7_Z8000,
        Architecture::Vax11 => TABLE7_VAX11,
        Architecture::S370 => TABLE7_S370,
    }
}

/// Looks up a Table 7 cell.
pub fn table7_row(arch: Architecture, net: u64, block: u64, sub: u64) -> Option<Table7Row> {
    table7(arch)
        .iter()
        .copied()
        .find(|r| r.net == net && r.block == block && r.sub == sub)
}

/// Table 6: miss ratios at 16 KB with 64-byte transfers on the
/// System/360-class six-program mix.
pub mod table6 {
    /// 360/85 sector organisation (16 × 1024-byte sectors, fully
    /// associative, 64-byte sub-blocks).
    pub const SECTOR_360_85: f64 = 0.0258;
    /// 4-way set-associative, 64-byte blocks, LRU.
    pub const SET_ASSOC_4WAY: f64 = 0.0088;
    /// 8-way set-associative (0.314 × the 360/85 ratio).
    pub const SET_ASSOC_8WAY: f64 = 0.0081;
    /// 16-way set-associative.
    pub const SET_ASSOC_16WAY: f64 = 0.0076;
    /// §4.1: fraction of sub-blocks never referenced while their sector is
    /// resident (11.52 of 16).
    pub const UNREFERENCED_SUB_FRACTION: f64 = 0.72;
}

/// One Table 8 (load-forward) row: Z8000 traces CPP, C1, C2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table8Row {
    /// Net cache size in bytes.
    pub net: u64,
    /// Block size in bytes.
    pub block: u64,
    /// Sub-block size in bytes.
    pub sub: u64,
    /// Whether load-forward is enabled.
    pub load_forward: bool,
    /// Published miss ratio.
    pub miss: f64,
    /// Published traffic ratio.
    pub traffic: f64,
}

const fn lf_row(net: u64, block: u64, sub: u64, lf: bool, miss: f64, traffic: f64) -> Table8Row {
    Table8Row {
        net,
        block,
        sub,
        load_forward: lf,
        miss,
        traffic,
    }
}

/// Table 8: load-forward results on Z8000 traces CPP, C1 and C2.
pub const TABLE8: &[Table8Row] = &[
    lf_row(64, 8, 8, false, 0.257, 1.028),
    lf_row(64, 8, 2, true, 0.263, 0.865),
    lf_row(64, 8, 2, false, 0.678, 0.678),
    lf_row(64, 2, 2, false, 0.612, 0.612),
    lf_row(256, 16, 16, false, 0.120, 0.960),
    lf_row(256, 16, 2, true, 0.128, 0.772),
    lf_row(256, 16, 2, false, 0.489, 0.489),
    lf_row(256, 8, 8, false, 0.164, 0.656),
    lf_row(256, 8, 2, true, 0.169, 0.567),
    lf_row(256, 8, 2, false, 0.454, 0.454),
    lf_row(256, 2, 2, false, 0.402, 0.402),
];

/// §2.3: RISC II instruction-cache miss ratios (direct-mapped, 8-byte
/// blocks) by net size.
pub const RISCII_CURVE: &[(u64, f64)] =
    &[(512, 0.148), (1024, 0.125), (2048, 0.098), (4096, 0.078)];

/// §1.1: Strecker's PDP-11 curve — direct-mapped, 4-byte blocks, miss
/// ratio by net size.
pub const STRECKER_CURVE: &[(u64, f64)] = &[(256, 0.15), (512, 0.10), (1024, 0.05), (2048, 0.02)];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demand_rows_satisfy_traffic_identity() {
        // For every architecture, traffic = miss × sub/word within the
        // published rounding (the identity we also prove for the simulator).
        for arch in Architecture::ALL {
            let word = arch.word_size() as f64;
            for r in table7(arch) {
                let expected = r.miss * r.sub as f64 / word;
                let tolerance = 0.006 + 0.01 * expected;
                assert!(
                    (r.traffic - expected).abs() < tolerance,
                    "{arch} {}/{},{}: traffic {} vs {expected}",
                    r.net,
                    r.block,
                    r.sub,
                    r.traffic,
                );
            }
        }
    }

    #[test]
    fn nibble_rows_match_scale_factor() {
        use occache_core::BusModel;
        let bus = BusModel::paper_nibble();
        for arch in Architecture::ALL {
            let word = arch.word_size();
            for r in table7(arch) {
                let w = r.sub / word;
                let expected = r.traffic * bus.scale_factor(w);
                assert!(
                    (r.nibble - expected).abs() < 0.012 + 0.02 * expected,
                    "{arch} {}/{},{}: nibble {} vs {expected}",
                    r.net,
                    r.block,
                    r.sub,
                    r.nibble,
                );
            }
        }
    }

    #[test]
    fn architecture_miss_ordering_holds_at_1024_8_8() {
        let z = table7_row(Architecture::Z8000, 1024, 8, 8).unwrap().miss;
        let p = table7_row(Architecture::Pdp11, 1024, 8, 8).unwrap().miss;
        let v = table7_row(Architecture::Vax11, 1024, 8, 8).unwrap().miss;
        let s = table7_row(Architecture::S370, 1024, 8, 8).unwrap().miss;
        assert!(z < p && p < v && v < s);
    }

    #[test]
    fn table6_relative_ratios() {
        assert!((table6::SET_ASSOC_4WAY / table6::SECTOR_360_85 - 0.341).abs() < 0.01);
        assert!((table6::SET_ASSOC_16WAY / table6::SECTOR_360_85 - 0.294).abs() < 0.01);
    }

    #[test]
    fn table8_load_forward_tradeoff() {
        // LF vs same sub-block without LF: much lower miss, higher traffic;
        // LF vs full-block fetch: slightly higher miss, lower traffic.
        let full = TABLE8
            .iter()
            .find(|r| r.net == 256 && r.block == 16 && !r.load_forward && r.sub == 16)
            .unwrap();
        let lf = TABLE8
            .iter()
            .find(|r| r.net == 256 && r.block == 16 && r.load_forward)
            .unwrap();
        let plain = TABLE8
            .iter()
            .find(|r| r.net == 256 && r.block == 16 && !r.load_forward && r.sub == 2)
            .unwrap();
        assert!(lf.miss < plain.miss / 2.0);
        assert!(lf.traffic > plain.traffic);
        assert!(lf.miss > full.miss);
        assert!(lf.traffic < full.traffic);
    }

    #[test]
    fn lookup_finds_rows() {
        assert!(table7_row(Architecture::Pdp11, 1024, 16, 8).is_some());
        assert!(table7_row(Architecture::Pdp11, 1024, 128, 8).is_none());
    }
}
