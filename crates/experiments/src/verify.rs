//! End-to-end result verification: the engine behind `occache-verify`
//! and `occache sweep --verify`.
//!
//! A verification pass over a results directory checks three layers:
//!
//! 1. **Manifest** — every file named in `MANIFEST.json` exists and its
//!    FNV-1a content hash and size match; a single flipped byte fails.
//! 2. **Journals** — every checkpoint journal under `.checkpoint/` is
//!    scanned strictly: any bad line, torn tail or missing final newline
//!    is a failure (a *run* repairs such damage; a *verifier* reports
//!    it).
//! 3. **Re-simulation** — a deterministic sample of journalled points is
//!    recomputed through the *direct* simulator
//!    ([`crate::sweep::evaluate_point`]) and compared bit-exactly
//!    against the journal, catching both on-disk corruption and any
//!    multisim/direct divergence in the wild.
//!
//! Re-simulation needs the same `OCCACHE_REFS` (and trace set) as the
//! original run: points whose key is absent from the journal are not
//! comparable, and a fully non-overlapping journal produces a note
//! suggesting the mismatch rather than a silent pass.

use std::io;
use std::path::Path;

use crate::checkpoint::{scan_journal, trace_fingerprint, JournalLock};
use crate::manifest::{self, MANIFEST_FILE};
use crate::runs::{journalled_grid, Workbench};
use crate::sweep::{evaluate_point, trace_len};

/// Tuning for a verification pass.
#[derive(Debug, Clone)]
pub struct VerifyOptions {
    /// How many journalled points to re-simulate per journal.
    pub sample: usize,
    /// References per trace for re-simulation (must match the run's
    /// `OCCACHE_REFS` for journal keys to line up).
    pub refs: usize,
    /// Whether to re-simulate at all (hash/scan checks always run).
    pub resim: bool,
}

impl VerifyOptions {
    /// Defaults: 4 points per journal, `OCCACHE_REFS` (or the paper's
    /// 1 M), re-simulation on.
    pub fn from_env() -> Self {
        VerifyOptions {
            sample: 4,
            refs: trace_len(),
            resim: true,
        }
    }
}

/// What a verification pass found. Failures are listed individually so
/// the operator sees *which* file or record is damaged.
#[derive(Debug, Clone, Default)]
pub struct VerifyReport {
    /// Manifest entries whose file hashed clean.
    pub files_checked: usize,
    /// Files named by the manifest but absent (includes the manifest
    /// itself when the directory has none).
    pub files_missing: Vec<String>,
    /// Files whose size or content hash disagrees with the manifest.
    pub files_mismatched: Vec<String>,
    /// Checkpoint journals scanned.
    pub journals_checked: usize,
    /// Journal damage, one line per issue (file, line number, class).
    pub journal_issues: Vec<String>,
    /// Journalled points re-simulated and compared bit-exactly.
    pub resim_checked: usize,
    /// Re-simulated points that disagree with the journal.
    pub resim_mismatched: Vec<String>,
    /// Non-failing observations (skipped journals, key mismatches).
    pub notes: Vec<String>,
}

impl VerifyReport {
    /// True when nothing failed (notes alone do not fail a pass).
    pub fn is_ok(&self) -> bool {
        self.files_missing.is_empty()
            && self.files_mismatched.is_empty()
            && self.journal_issues.is_empty()
            && self.resim_mismatched.is_empty()
    }

    /// Human-readable summary, one section per layer.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "verify: {} file(s) hashed clean, {} journal(s) scanned, {} point(s) re-simulated\n",
            self.files_checked, self.journals_checked, self.resim_checked
        ));
        let mut section = |title: &str, items: &[String]| {
            if !items.is_empty() {
                out.push_str(&format!("{title} ({}):\n", items.len()));
                for item in items {
                    out.push_str(&format!("  {item}\n"));
                }
            }
        };
        section("MISSING files", &self.files_missing);
        section("MISMATCHED files", &self.files_mismatched);
        section("JOURNAL damage", &self.journal_issues);
        section("RESIM divergence", &self.resim_mismatched);
        section("notes", &self.notes);
        out.push_str(if self.is_ok() {
            "verify: OK\n"
        } else {
            "verify: FAILED\n"
        });
        out
    }
}

/// Verifies a results directory: manifest hashes, strict journal scans,
/// and (optionally) sampled bit-exact re-simulation. Holds the
/// directory's checkpoint lock while reading, so a concurrent run cannot
/// mutate the journals mid-verify.
///
/// # Errors
///
/// Propagates filesystem errors and lock contention
/// ([`io::ErrorKind::WouldBlock`] when a live run holds the lock).
/// Verification *failures* are not errors — they come back in the
/// report.
pub fn verify_dir(dir: &Path, opts: &VerifyOptions) -> io::Result<VerifyReport> {
    let mut report = VerifyReport::default();
    let ckpt = dir.join(".checkpoint");
    let _lock = if ckpt.exists() {
        Some(JournalLock::acquire(dir)?)
    } else {
        None
    };

    // Layer 1: manifest hashes.
    if dir.join(MANIFEST_FILE).exists() {
        for entry in manifest::load(dir)? {
            match std::fs::read(dir.join(&entry.name)) {
                Ok(bytes) => {
                    if bytes.len() as u64 != entry.bytes
                        || crate::checkpoint::fnv1a(&bytes) != entry.fnv
                    {
                        report.files_mismatched.push(format!(
                            "{} (manifest says {} byte(s), fnv {:016x})",
                            entry.name, entry.bytes, entry.fnv
                        ));
                    } else {
                        report.files_checked += 1;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::NotFound => {
                    report.files_missing.push(entry.name.clone());
                }
                Err(e) => return Err(e),
            }
        }
    } else {
        report.files_missing.push(MANIFEST_FILE.to_string());
    }

    // Layer 2: strict journal scans.
    let mut journals: Vec<(String, std::path::PathBuf)> = Vec::new();
    if ckpt.exists() {
        for dirent in std::fs::read_dir(&ckpt)? {
            let dirent = dirent?;
            let path = dirent.path();
            let name = dirent.file_name().to_string_lossy().into_owned();
            if let Some(stem) = name.strip_suffix(".jsonl") {
                journals.push((stem.to_string(), path));
            }
        }
    }
    journals.sort();
    let mut bench = Workbench::new(opts.refs);
    for (artifact, path) in &journals {
        let scan = scan_journal(path)?;
        report.journals_checked += 1;
        for (line_no, issue) in &scan.issues {
            report
                .journal_issues
                .push(format!("{artifact}.jsonl line {line_no}: {issue}"));
        }
        if scan.torn_tail_bytes > 0 {
            report.journal_issues.push(format!(
                "{artifact}.jsonl: torn tail of {} byte(s)",
                scan.torn_tail_bytes
            ));
        }
        if scan.missing_final_newline {
            report
                .journal_issues
                .push(format!("{artifact}.jsonl: missing final newline"));
        }

        // Layer 3: sampled bit-exact re-simulation via the direct path.
        if !opts.resim || scan.points.is_empty() {
            continue;
        }
        let Some(groups) = journalled_grid(&mut bench, artifact) else {
            report.notes.push(format!(
                "{artifact}.jsonl: no grid reconstruction for this artifact; re-simulation skipped"
            ));
            continue;
        };
        // Candidates: journalled points this grid can reproduce, with
        // the group (trace set, warm-up) that owns each.
        let mut candidates = Vec::new();
        for (gi, group) in groups.iter().enumerate() {
            let fp = trace_fingerprint(&group.traces);
            for &config in &group.configs {
                let key = crate::checkpoint::point_key(&config, fp, group.warmup);
                if let Some(&entry) = scan.points.get(&key) {
                    candidates.push((key, config, gi, entry));
                }
            }
        }
        if candidates.is_empty() {
            report.notes.push(format!(
                "{artifact}.jsonl: no journalled point matches the reconstructed grid \
                 (was the run made with a different OCCACHE_REFS than {}?)",
                opts.refs
            ));
            continue;
        }
        candidates.sort_by_key(|&(key, ..)| key);
        let take = opts.sample.max(1).min(candidates.len());
        for k in 0..take {
            // Evenly spaced over the key-sorted candidates, so the
            // sample is deterministic for a given journal and grid.
            let idx = k * candidates.len() / take;
            let (_, config, gi, entry) = candidates[idx];
            let group = &groups[gi];
            let point = evaluate_point(config, &group.traces, group.warmup);
            let same = point.miss_ratio.to_bits() == entry.miss.to_bits()
                && point.traffic_ratio.to_bits() == entry.traffic.to_bits()
                && point.nibble_traffic_ratio.to_bits() == entry.nibble.to_bits()
                && point.redundant_load_fraction.to_bits() == entry.redundant.to_bits();
            report.resim_checked += 1;
            if !same {
                report.resim_mismatched.push(format!(
                    "{artifact}.jsonl {config}: journal ({:?}, {:?}, {:?}, {:?}) vs direct \
                     ({:?}, {:?}, {:?}, {:?})",
                    entry.miss,
                    entry.traffic,
                    entry.nibble,
                    entry.redundant,
                    point.miss_ratio,
                    point.traffic_ratio,
                    point.nibble_traffic_ratio,
                    point.redundant_load_fraction,
                ));
            }
        }
    }
    Ok(report)
}
