//! Report formatting: paper-style text tables and CSV output.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

use crate::paper::Table7Row;
use crate::sweep::DesignPoint;

/// Formats a sweep as a Table 7-style block for one architecture:
/// gross size, geometry, measured ratios, and the paper's values where a
/// legible row exists.
pub fn table7_block(arch_name: &str, points: &[DesignPoint], reference: &[Table7Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{arch_name}");
    let _ = writeln!(
        out,
        "{:>6} {:>7} | {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8}",
        "gross", "blk,sub", "miss", "traffic", "nibble", "p.miss", "p.traf", "p.nib"
    );
    for p in points {
        let c = p.config;
        let reference_row = reference.iter().find(|r| {
            r.net == c.net_size() && r.block == c.block_size() && r.sub == c.sub_block_size()
        });
        let paper_cols = match reference_row {
            Some(r) => format!("{:>8.4} {:>8.4} {:>8.4}", r.miss, r.traffic, r.nibble),
            None => format!("{:>8} {:>8} {:>8}", "-", "-", "-"),
        };
        let _ = writeln!(
            out,
            "{:>6} {:>7} | {:>8.4} {:>8.4} {:>8.4} | {}",
            p.gross_size,
            format!("{},{}", c.block_size(), c.sub_block_size()),
            p.miss_ratio,
            p.traffic_ratio,
            p.nibble_traffic_ratio,
            paper_cols,
        );
    }
    out
}

/// Serialises design points to CSV (one row per point).
pub fn points_to_csv(arch_name: &str, points: &[DesignPoint]) -> String {
    let mut out =
        String::from("arch,net,block,sub,gross,miss_ratio,traffic_ratio,nibble_traffic_ratio\n");
    for p in points {
        let c = p.config;
        let _ = writeln!(
            out,
            "{arch_name},{},{},{},{},{:.6},{:.6},{:.6}",
            c.net_size(),
            c.block_size(),
            c.sub_block_size(),
            p.gross_size,
            p.miss_ratio,
            p.traffic_ratio,
            p.nibble_traffic_ratio,
        );
    }
    out
}

/// Writes `content` under the workspace `results/` directory (created on
/// demand), returning the path written.
///
/// The write is atomic: content goes to a temporary file in the same
/// directory, is fsynced, and is renamed over the target. A crash mid-run
/// therefore leaves either the old artifact or the new one — never a
/// truncated CSV that looks complete.
///
/// # Errors
///
/// Propagates filesystem errors from directory creation or the write.
pub fn write_result(file_name: &str, content: &str) -> io::Result<std::path::PathBuf> {
    write_result_in(&results_dir(), file_name, content)
}

/// [`write_result`] with an explicit directory (used by tests and anything
/// that must not depend on `$OCCACHE_RESULTS`).
///
/// # Errors
///
/// Propagates filesystem errors from directory creation or the write.
pub fn write_result_in(
    dir: &Path,
    file_name: &str,
    content: &str,
) -> io::Result<std::path::PathBuf> {
    fs::create_dir_all(dir)?;
    let path = dir.join(file_name);
    // Same-directory temp name keeps the rename on one filesystem (rename
    // across mount points is not atomic — or possible — on any platform).
    let tmp = dir.join(format!(".{file_name}.tmp-{}", std::process::id()));
    let result = (|| {
        let mut f = fs::File::create(&tmp)?;
        io::Write::write_all(&mut f, content.as_bytes())?;
        f.sync_all()?;
        fs::rename(&tmp, &path)
    })();
    if result.is_err() {
        // Best-effort cleanup; the original error is what matters.
        let _ = fs::remove_file(&tmp);
    }
    result.map(|()| path)
}

/// The output directory: `$OCCACHE_RESULTS` or `results/` in the current
/// working directory. Delegates to [`occache_runtime::config::results_dir`],
/// the single reader of `OCCACHE_RESULTS`.
pub use occache_runtime::config::results_dir;

/// Relative error `|measured - reference| / reference`, tolerant of a zero
/// reference (returns the absolute error then).
pub fn relative_error(measured: f64, reference: f64) -> f64 {
    if reference.abs() < 1e-12 {
        (measured - reference).abs()
    } else {
        (measured - reference).abs() / reference.abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper::TABLE7_PDP11;
    use crate::sweep::{evaluate_point, materialize, standard_config};
    use occache_workloads::{Architecture, WorkloadSpec};

    fn sample_points() -> Vec<DesignPoint> {
        let traces = materialize(&[WorkloadSpec::pdp11_ed()], 2_000);
        vec![
            evaluate_point(
                standard_config(Architecture::Pdp11, 1024, 16, 8),
                &traces,
                0,
            ),
            evaluate_point(
                standard_config(Architecture::Pdp11, 1024, 16, 16),
                &traces,
                0,
            ),
        ]
    }

    #[test]
    fn table_block_includes_reference_values() {
        let text = table7_block("PDP-11", &sample_points(), TABLE7_PDP11);
        assert!(text.contains("PDP-11"));
        assert!(text.contains("16,8"));
        assert!(text.contains("0.0520"), "paper miss for 1024/16,8:\n{text}");
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = points_to_csv("PDP-11", &sample_points());
        let lines: Vec<_> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("arch,net,block,sub"));
        assert!(lines[1].starts_with("PDP-11,1024,16,8,1264,"));
    }

    #[test]
    fn relative_error_behaviour() {
        assert!((relative_error(0.11, 0.10) - 0.1).abs() < 1e-9);
        assert_eq!(relative_error(0.05, 0.0), 0.05);
    }

    #[test]
    fn atomic_write_replaces_and_leaves_no_temp() {
        let dir = std::env::temp_dir().join(format!("occache-report-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let path = write_result_in(&dir, "out.csv", "a,b\n1,2\n").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "a,b\n1,2\n");
        // Overwrite: new content fully replaces old, no temp file remains.
        write_result_in(&dir, "out.csv", "new\n").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "new\n");
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .filter(|n| n.to_string_lossy().contains("tmp"))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        fs::remove_dir_all(&dir).unwrap();
    }
}
