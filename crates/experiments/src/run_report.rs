//! The per-run supervision report: `results/RUN_REPORT.json`.
//!
//! Every checkpointed sweep phase records what actually happened —
//! points computed vs restored, failures by class (timed out,
//! quarantined, non-finite), supervisor retries, journal damage found,
//! and wall-clock — into an in-process registry; binaries write the
//! accumulated report once at exit via [`write`]. The report is the
//! operator's first stop after an unattended paper-scale run: a clean
//! run shows zeros in every failure column, and anything else names the
//! phase to investigate (see the EXPERIMENTS.md runbook).
//!
//! The format is the same hand-rolled line-oriented JSON as the
//! checkpoint journal: one `"phases"` array with one object per line,
//! plus a `"totals"` object — trivially greppable in CI.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, OnceLock};

use occache_runtime::instrument::Registry;

use crate::report::write_result_in;

/// The report file name under the results directory.
pub const RUN_REPORT_FILE: &str = "RUN_REPORT.json";

/// The Prometheus text-exposition sidecar written next to the report:
/// the same totals as machine-checkable samples, so CI gates read one
/// number with `occache-top --parse-metrics results/RUN_METRICS.prom
/// --get <name>` instead of grepping JSON. The per-evaluation-path
/// counters (`occache_run_points_engine_*_total`,
/// `occache_run_points_direct_total`) are the load-bearing ones: the
/// Table-7 grids must show zero direct-simulator fallbacks.
pub const RUN_METRICS_FILE: &str = "RUN_METRICS.prom";

/// What one checkpointed sweep phase (one `evaluate_checkpointed` call)
/// did. One artifact can contribute several phases — `table7` runs once
/// per architecture — and the report keeps them separate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseReport {
    /// The artifact (journal) name, e.g. `"table7"`.
    pub artifact: String,
    /// Points simulated in this run.
    pub computed: usize,
    /// Points restored from the checkpoint journal.
    pub restored: usize,
    /// Points that failed (all classes, including the ones below).
    pub failed: usize,
    /// Failures that were deadline overruns.
    pub timed_out: usize,
    /// Points skipped because the journal quarantined them.
    pub quarantined: usize,
    /// Points rejected for non-finite metrics.
    pub non_finite: usize,
    /// Supervisor retry attempts after transient failures.
    pub retries: usize,
    /// Watchdog threads abandoned at their deadline.
    pub abandoned_threads: usize,
    /// Computed points per one-pass slice engine, indexed by
    /// [`occache_core::EngineKind::index`] (LRU, FIFO, Random).
    pub engine_points: [usize; 3],
    /// Computed points that fell back to the direct per-config
    /// simulator (unsupported geometry/feature or containment re-run).
    pub direct_points: usize,
    /// Corrupt journal lines found (and compacted away) on load.
    pub bad_journal_lines: usize,
    /// Bytes of torn journal tail repaired on load.
    pub repaired_tail_bytes: usize,
    /// Wall-clock for the phase, milliseconds.
    pub wall_ms: u128,
    /// Fingerprint of the trace set the phase ran over.
    pub trace_fp: u64,
    /// Fingerprint of the config grid the phase ran over.
    pub config_fp: u64,
}

fn registry() -> &'static Mutex<Vec<PhaseReport>> {
    static PHASES: OnceLock<Mutex<Vec<PhaseReport>>> = OnceLock::new();
    PHASES.get_or_init(|| Mutex::new(Vec::new()))
}

/// Records a completed phase into the in-process registry.
pub fn record_phase(phase: PhaseReport) {
    registry()
        .lock()
        .expect("run report registry lock")
        .push(phase);
}

/// A snapshot of every phase recorded so far, in recording order.
pub fn phases() -> Vec<PhaseReport> {
    registry().lock().expect("run report registry lock").clone()
}

/// Clears the registry (tests; binaries never need it).
pub fn reset() {
    registry().lock().expect("run report registry lock").clear();
}

/// Renders the report: one JSON object per phase line plus a totals
/// object, so `grep '"timed_out": [1-9]'` works without a JSON parser.
/// `interrupted` marks a run stopped by SIGINT/SIGTERM before every
/// phase finished — the journal is still sealed, so a rerun resumes.
pub fn render(phases: &[PhaseReport], interrupted: bool) -> String {
    let mut out = format!("{{\n\"interrupted\": {interrupted},\n\"phases\": [\n");
    for (i, p) in phases.iter().enumerate() {
        let comma = if i + 1 < phases.len() { "," } else { "" };
        out.push_str(&format!(
            "{{\"artifact\":\"{}\",\"computed\":{},\"restored\":{},\"failed\":{},\
             \"timed_out\":{},\"quarantined\":{},\"non_finite\":{},\"retries\":{},\
             \"abandoned_threads\":{},\"engine_lru\":{},\"engine_fifo\":{},\
             \"engine_random\":{},\"direct\":{},\"bad_journal_lines\":{},\
             \"repaired_tail_bytes\":{},\"wall_ms\":{},\"trace_fp\":\"{:016x}\",\
             \"config_fp\":\"{:016x}\"}}{comma}\n",
            p.artifact,
            p.computed,
            p.restored,
            p.failed,
            p.timed_out,
            p.quarantined,
            p.non_finite,
            p.retries,
            p.abandoned_threads,
            p.engine_points[0],
            p.engine_points[1],
            p.engine_points[2],
            p.direct_points,
            p.bad_journal_lines,
            p.repaired_tail_bytes,
            p.wall_ms,
            p.trace_fp,
            p.config_fp,
        ));
    }
    out.push_str("],\n");
    // The totals object renders through the shared instrumentation
    // registry (the same sink machinery behind the server's /metrics),
    // which pins the uniform `"name": value` spacing CI greps for.
    let total = |f: fn(&PhaseReport) -> usize| phases.iter().map(f).sum::<usize>() as u128;
    let mut totals = Registry::new();
    totals
        .bare("phases", phases.len() as u128)
        .bare("computed", total(|p| p.computed))
        .bare("restored", total(|p| p.restored))
        .bare("failed", total(|p| p.failed))
        .bare("timed_out", total(|p| p.timed_out))
        .bare("quarantined", total(|p| p.quarantined))
        .bare("non_finite", total(|p| p.non_finite))
        .bare("retries", total(|p| p.retries))
        .bare("abandoned_threads", total(|p| p.abandoned_threads))
        .bare("engine_lru", total(|p| p.engine_points[0]))
        .bare("engine_fifo", total(|p| p.engine_points[1]))
        .bare("engine_random", total(|p| p.engine_points[2]))
        .bare("direct", total(|p| p.direct_points))
        .bare("bad_journal_lines", total(|p| p.bad_journal_lines))
        .bare("repaired_tail_bytes", total(|p| p.repaired_tail_bytes))
        .bare("wall_ms", phases.iter().map(|p| p.wall_ms).sum::<u128>());
    out.push_str(&format!("\"totals\": {}\n}}\n", totals.render_json()));
    out
}

/// Renders the in-flight variant of the report: byte-identical to
/// [`render`] except for one extra `"in_progress": true` line after the
/// opening brace. The final [`write`] drops the marker again, so a
/// completed run's report bytes are unchanged by mid-run flushing.
pub fn render_in_progress(phases: &[PhaseReport], interrupted: bool) -> String {
    let sealed = render(phases, interrupted);
    debug_assert!(sealed.starts_with("{\n"));
    format!("{{\n\"in_progress\": true,\n{}", &sealed[2..])
}

/// Renders the metrics sidecar ([`RUN_METRICS_FILE`]): run totals as
/// strict Prometheus text exposition. Every sample is a counter over
/// the whole run so far, so gates compare exact integers.
pub fn render_metrics(phases: &[PhaseReport]) -> String {
    let total = |f: fn(&PhaseReport) -> usize| phases.iter().map(f).sum::<usize>() as u64;
    let mut reg = Registry::new();
    reg.counter(
        "occache_run_points_computed_total",
        "Design points simulated in this run (all evaluation paths)",
        total(|p| p.computed),
    )
    .counter(
        "occache_run_points_restored_total",
        "Design points restored from the checkpoint journal",
        total(|p| p.restored),
    )
    .counter(
        "occache_run_points_failed_total",
        "Design points that failed, all classes",
        total(|p| p.failed),
    )
    .counter(
        "occache_run_points_engine_lru_total",
        "Points computed by the one-pass LRU slice engine",
        total(|p| p.engine_points[0]),
    )
    .counter(
        "occache_run_points_engine_fifo_total",
        "Points computed by the one-pass FIFO slice engine",
        total(|p| p.engine_points[1]),
    )
    .counter(
        "occache_run_points_engine_random_total",
        "Points computed by the one-pass seeded-Random slice engine",
        total(|p| p.engine_points[2]),
    )
    .counter(
        "occache_run_points_direct_total",
        "Points that fell back to the direct per-config simulator",
        total(|p| p.direct_points),
    );
    reg.render_prometheus()
}

/// Flushes the phases accumulated so far as an in-flight snapshot
/// (atomic replace, marked `"in_progress": true`), plus the metrics
/// sidecar. Called at phase boundaries so an operator — or
/// `occache-top` — reads supervision totals mid-run instead of waiting
/// for process exit; the final [`write`] replaces it with the sealed
/// bytes.
///
/// # Errors
///
/// Propagates filesystem errors from the atomic writes.
pub fn flush(dir: &Path) -> io::Result<PathBuf> {
    let snapshot = phases();
    write_result_in(dir, RUN_METRICS_FILE, &render_metrics(&snapshot))?;
    write_result_in(
        dir,
        RUN_REPORT_FILE,
        &render_in_progress(&snapshot, crate::interrupt::requested()),
    )
}

/// Writes the accumulated report to `dir/RUN_REPORT.json` and the
/// metrics sidecar to `dir/RUN_METRICS.prom` (both atomically),
/// returning the report path. An empty registry still writes a report —
/// all zeros is exactly what a clean no-op run should say.
///
/// # Errors
///
/// Propagates filesystem errors from the atomic writes.
pub fn write(dir: &Path) -> io::Result<PathBuf> {
    let snapshot = phases();
    write_result_in(dir, RUN_METRICS_FILE, &render_metrics(&snapshot))?;
    write_result_in(
        dir,
        RUN_REPORT_FILE,
        &render(&snapshot, crate::interrupt::requested()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(artifact: &str, timed_out: usize) -> PhaseReport {
        PhaseReport {
            artifact: artifact.to_string(),
            computed: 10,
            restored: 5,
            failed: timed_out,
            timed_out,
            quarantined: 0,
            non_finite: 0,
            retries: 1,
            abandoned_threads: timed_out,
            engine_points: [7, 2, 1],
            direct_points: timed_out,
            bad_journal_lines: 0,
            repaired_tail_bytes: 0,
            wall_ms: 42,
            trace_fp: 0xabc,
            config_fp: 0xdef,
        }
    }

    #[test]
    fn render_includes_phases_and_greppable_totals() {
        let text = render(&[sample("table7", 0), sample("fig2", 1)], false);
        assert!(text.contains("\"artifact\":\"table7\""));
        assert!(text.contains("\"artifact\":\"fig2\""));
        assert!(text.contains("\"timed_out\": 1"), "{text}");
        assert!(text.contains("\"computed\": 20"), "{text}");
        assert!(text.contains("\"engine_lru\":7"), "{text}");
        assert!(text.contains("\"engine_lru\": 14"), "{text}");
        assert!(text.contains("\"engine_fifo\": 4"), "{text}");
        assert!(text.contains("\"engine_random\": 2"), "{text}");
        assert!(text.contains("\"direct\": 1"), "{text}");
        assert!(text.contains("\"trace_fp\":\"0000000000000abc\""));
        assert!(text.contains("\"interrupted\": false"), "{text}");
    }

    #[test]
    fn metrics_sidecar_exposes_engine_split_as_strict_exposition() {
        let text = render_metrics(&[sample("table7", 0), sample("fig2", 1)]);
        // The sidecar must round-trip through the same strict parser
        // occache-top --parse-metrics uses for the CI gate.
        let exposition =
            occache_runtime::instrument::Exposition::parse(&text).expect("strict parse");
        let get = |name: &str| exposition.value(name).expect(name);
        assert_eq!(get("occache_run_points_computed_total"), 20.0);
        assert_eq!(get("occache_run_points_engine_lru_total"), 14.0);
        assert_eq!(get("occache_run_points_engine_fifo_total"), 4.0);
        assert_eq!(get("occache_run_points_engine_random_total"), 2.0);
        assert_eq!(get("occache_run_points_direct_total"), 1.0);
    }

    #[test]
    fn empty_report_renders_zero_totals() {
        let text = render(&[], false);
        assert!(text.contains("\"phases\": 0"), "{text}");
        assert!(text.contains("\"timed_out\": 0"), "{text}");
    }

    #[test]
    fn interrupted_run_is_marked() {
        let text = render(&[sample("table7", 0)], true);
        assert!(text.contains("\"interrupted\": true"), "{text}");
    }

    #[test]
    fn in_progress_variant_only_adds_the_marker_line() {
        let phases = [sample("table7", 0), sample("fig2", 1)];
        let sealed = render(&phases, false);
        let partial = render_in_progress(&phases, false);
        assert!(
            partial.starts_with("{\n\"in_progress\": true,\n"),
            "{partial}"
        );
        assert_eq!(
            &partial["{\n\"in_progress\": true,\n".len()..],
            &sealed[2..]
        );
        assert!(!sealed.contains("in_progress"), "{sealed}");
    }
}
