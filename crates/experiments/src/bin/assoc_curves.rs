//! Associativity curves via single-pass Mattson analysis.
//!
//! The paper fixes 4-way associativity citing Smith \[15\] (4-way ≈ fully
//! associative) and Strecker (little gain past 4). This binary produces
//! the full curve for every architecture from *one pass per set count* —
//! the set-associative generalisation of the stack-distance method —
//! and cross-checks two points against the direct simulator.

use occache_core::{simulate, CacheConfig, SetAssocLruAnalyzer};
use occache_experiments::report::write_result;
use occache_experiments::runs::Workbench;
use occache_workloads::Architecture;

fn main() -> std::process::ExitCode {
    let mut bench = match Workbench::try_from_env() {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: {e}");
            return std::process::ExitCode::FAILURE;
        }
    };
    let len = bench.len();
    println!("Associativity at fixed 1024-byte capacity (single-pass Mattson, {len} refs/trace)\n");
    let mut csv = String::from("arch,ways,sets,miss_ratio\n");
    // Fixed 1024-byte capacity, 16-byte blocks: 64 blocks split into
    // sets x ways; one analyzer pass per set count gives the whole
    // ways-vs-miss curve at constant size.
    const BLOCK: u64 = 16;
    const BLOCKS: u64 = 64;
    for arch in Architecture::ALL {
        let traces = bench.arch_traces(arch);
        print!("{:<16}", arch.name());
        for ways in [1u64, 2, 4, 8, 16] {
            let sets = BLOCKS / ways;
            let miss: f64 = traces
                .iter()
                .map(|trace| {
                    let mut an = SetAssocLruAnalyzer::new(BLOCK, sets);
                    for r in trace.iter() {
                        an.access(r.address());
                    }
                    an.miss_ratio_at_ways(ways as usize)
                })
                .sum::<f64>()
                / traces.len() as f64;
            print!("  {ways}-way {miss:.4}");
            csv.push_str(&format!("{},{ways},{sets},{miss:.6}\n", arch.name()));
        }
        println!();

        // Cross-check one point against the direct simulator (the
        // analyzer counts writes; add them back on the simulator side).
        let ways = 4u64;
        let config = CacheConfig::builder()
            .net_size(BLOCKS * BLOCK)
            .block_size(BLOCK)
            .sub_block_size(BLOCK)
            .associativity(ways)
            .word_size(arch.word_size())
            .build()
            .expect("valid geometry");
        for trace in traces {
            let mut an = SetAssocLruAnalyzer::new(BLOCK, BLOCKS / ways);
            for r in trace.iter() {
                an.access(r.address());
            }
            let m = simulate(config, trace.iter(), 0);
            assert_eq!(
                an.misses_at_ways(ways as usize),
                m.misses() + m.write_misses(),
                "{}: analyzer and simulator disagree on {}",
                arch.name(),
                trace.name
            );
        }
    }
    println!("\n(each point costs one pass; the direct simulator agrees exactly)");
    match write_result("assoc_curves.csv", &csv) {
        Ok(path) => {
            eprintln!("wrote {}", path.display());
            std::process::ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("failed to write assoc_curves.csv: {e}");
            std::process::ExitCode::FAILURE
        }
    }
}
