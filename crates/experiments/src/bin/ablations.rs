//! Ablations over the parameters the paper held fixed (associativity,
//! replacement, Strecker's curve, load-forward variants, warm start).

use occache_experiments::runs::{emit_main, run_ablations};

fn main() -> std::process::ExitCode {
    emit_main(run_ablations)
}
