//! Ablations over the parameters the paper held fixed (associativity,
//! replacement, Strecker's curve, load-forward variants, warm start).

use occache_experiments::runs::{run_ablations, Workbench};

fn main() {
    run_ablations(&mut Workbench::from_env()).emit();
}
