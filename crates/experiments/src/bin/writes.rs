//! Extension study; see `occache_experiments::extensions::run_writes`.

use occache_experiments::extensions::run_writes;
use occache_experiments::runs::emit_main;

fn main() -> std::process::ExitCode {
    emit_main(run_writes)
}
