//! Extension study; see `occache_experiments::extensions::run_writes`.

use occache_experiments::extensions::run_writes;
use occache_experiments::runs::Workbench;

fn main() {
    run_writes(&mut Workbench::from_env()).emit();
}
