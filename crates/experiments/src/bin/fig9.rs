//! Regenerates Figure 9 (load-forward) of the paper.

use occache_experiments::runs::{run_fig9, Workbench};

fn main() {
    run_fig9(&mut Workbench::from_env()).emit();
}
