//! Regenerates Figure 9 (load-forward) of the paper.

use occache_experiments::runs::{emit_main, run_fig9};

fn main() -> std::process::ExitCode {
    emit_main(run_fig9)
}
