//! Regenerates Table 7: the full design-space grid, all architectures.

use occache_experiments::runs::{emit_main, run_table7};

fn main() -> std::process::ExitCode {
    emit_main(run_table7)
}
