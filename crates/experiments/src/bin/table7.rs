//! Regenerates Table 7: the full design-space grid, all architectures.

use occache_experiments::runs::{run_table7, Workbench};

fn main() {
    run_table7(&mut Workbench::from_env()).emit();
}
