//! Prefetch study (extension; §2.2's "smart cache" direction).
//!
//! §2.2 proposes caches whose "special-purpose logic can examine reference
//! patterns to prefetch instruction codes and operands", warning (after
//! Smith [11]) that "effective prefetching reduces latency at a cost of
//! increased memory traffic and at a risk of memory pollution". This
//! binary quantifies all three quantities for demand fetch, sequential
//! prefetch-on-miss, tagged prefetch, and load-forward, at the 1024-byte
//! 16,4 design point.

use occache_core::{simulate, FetchPolicy};
use occache_experiments::report::write_result;
use occache_experiments::runs::Workbench;
use occache_workloads::Architecture;

fn main() -> std::process::ExitCode {
    let mut bench = match Workbench::try_from_env() {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: {e}");
            return std::process::ExitCode::FAILURE;
        }
    };
    let len = bench.len();
    println!(
        "Prefetch policies (extension; §2.2 smart cache): 1024-byte cache,\n\
         16-byte blocks, 4-byte sub-blocks, {len} refs/trace\n"
    );
    let policies: [(&str, FetchPolicy); 4] = [
        ("demand", FetchPolicy::Demand),
        (
            "prefetch-on-miss",
            FetchPolicy::PrefetchNext { tagged: false },
        ),
        (
            "tagged-prefetch",
            FetchPolicy::PrefetchNext { tagged: true },
        ),
        ("load-forward", FetchPolicy::LOAD_FORWARD),
    ];
    let mut csv = String::from("arch,policy,miss_ratio,traffic_ratio,pollution\n");
    println!(
        "{:<16} {:<18} {:>8} {:>9} {:>10}",
        "architecture", "policy", "miss", "traffic", "pollution"
    );
    for arch in Architecture::ALL {
        let word = arch.word_size();
        if word > 4 {
            continue;
        }
        let warmup = bench.warmup_for(arch);
        let traces = bench.arch_traces(arch);
        for (name, fetch) in policies {
            let config = occache_core::CacheConfig::builder()
                .net_size(1024)
                .block_size(16)
                .sub_block_size(4)
                .word_size(word)
                .fetch(fetch)
                .build()
                .expect("valid geometry");
            let mut miss = 0.0;
            let mut traffic = 0.0;
            let mut pollution = 0.0;
            for t in traces {
                let m = simulate(config, t.iter(), warmup);
                miss += m.miss_ratio();
                traffic += m.traffic_ratio();
                pollution += m.prefetch_pollution();
            }
            let n = traces.len() as f64;
            println!(
                "{:<16} {:<18} {:>8.4} {:>9.4} {:>9.1}%",
                arch.name(),
                name,
                miss / n,
                traffic / n,
                pollution / n * 100.0
            );
            csv.push_str(&format!(
                "{},{name},{:.6},{:.6},{:.6}\n",
                arch.name(),
                miss / n,
                traffic / n,
                pollution / n
            ));
        }
        println!();
    }
    println!(
        "(prefetching buys misses with traffic; pollution is the fraction of\n\
         prefetched sub-blocks evicted unused — Smith's risk, measured)"
    );
    match write_result("prefetch.csv", &csv) {
        Ok(path) => {
            eprintln!("wrote {}", path.display());
            std::process::ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("failed to write prefetch.csv: {e}");
            std::process::ExitCode::FAILURE
        }
    }
}
