//! Characterisation study; see `occache_experiments::characterize::run_bus_contention`.

use occache_experiments::characterize::run_bus_contention;
use occache_experiments::runs::Workbench;

fn main() {
    run_bus_contention(&mut Workbench::from_env()).emit();
}
