//! Characterisation study; see `occache_experiments::characterize::run_bus_contention`.

use occache_experiments::characterize::run_bus_contention;
use occache_experiments::runs::emit_main;

fn main() -> std::process::ExitCode {
    emit_main(run_bus_contention)
}
