//! Extension study; see `occache_experiments::extensions::run_split`.

use occache_experiments::extensions::run_split;
use occache_experiments::runs::Workbench;

fn main() {
    run_split(&mut Workbench::from_env()).emit();
}
