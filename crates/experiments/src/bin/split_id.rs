//! Extension study; see `occache_experiments::extensions::run_split`.

use occache_experiments::extensions::run_split;
use occache_experiments::runs::emit_main;

fn main() -> std::process::ExitCode {
    emit_main(run_split)
}
