//! Regenerates the §2.3 RISC II instruction-cache size curve.

use occache_experiments::runs::{run_risc2, Workbench};

fn main() {
    run_risc2(&mut Workbench::from_env()).emit();
}
