//! Regenerates the §2.3 RISC II instruction-cache size curve.

use occache_experiments::runs::{emit_main, run_risc2};

fn main() -> std::process::ExitCode {
    emit_main(run_risc2)
}
