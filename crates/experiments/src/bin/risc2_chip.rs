//! Extension study; see `occache_experiments::extensions::run_risc2_chip`.

use occache_experiments::extensions::run_risc2_chip;
use occache_experiments::runs::emit_main;

fn main() -> std::process::ExitCode {
    emit_main(run_risc2_chip)
}
