//! Extension study; see `occache_experiments::extensions::run_risc2_chip`.

use occache_experiments::extensions::run_risc2_chip;
use occache_experiments::runs::Workbench;

fn main() {
    run_risc2_chip(&mut Workbench::from_env()).emit();
}
