//! Calibration harness: prints measured vs paper miss ratios at the anchor
//! configurations for all four architectures, plus the relative error, so
//! profile parameters can be tuned. Not one of the paper's artifacts.
//!
//! Usage: `OCCACHE_REFS=300000 cargo run --release -p occache-experiments --bin calibrate`

use occache_experiments::paper::table7_row;
use occache_experiments::report::relative_error;
use occache_experiments::sweep::{evaluate_points, materialize, standard_config, try_trace_len};
use occache_workloads::{Architecture, WorkloadSpec};

fn main() -> std::process::ExitCode {
    let len = match try_trace_len() {
        Ok(len) => len,
        Err(e) => {
            eprintln!("error: {e}");
            return std::process::ExitCode::FAILURE;
        }
    };
    println!("calibration with {len} refs/trace\n");
    // Anchor geometries: (net, block, sub) sampled across the design space.
    let anchors: &[(u64, u64, u64)] = &[
        (64, 8, 8),
        (64, 4, 4),
        (64, 16, 8),
        (256, 8, 8),
        (256, 16, 16),
        (256, 32, 32),
        (1024, 4, 4),
        (1024, 8, 8),
        (1024, 16, 16),
        (1024, 16, 8),
        (1024, 32, 32),
        (1024, 64, 8),
    ];
    for arch in Architecture::ALL {
        let word = arch.word_size();
        let specs = WorkloadSpec::set_for(arch);
        let traces = materialize(&specs, len);
        let configs: Vec<_> = anchors
            .iter()
            .filter(|&&(_, _, sub)| sub >= word)
            .map(|&(net, block, sub)| standard_config(arch, net, block, sub))
            .collect();
        let warmup = if arch == Architecture::Z8000 {
            len / 20
        } else {
            0
        };
        let points = evaluate_points(&configs, &traces, warmup);
        println!("{arch}  ({} traces)", traces.len());
        println!(
            "{:>5} {:>7} | {:>8} {:>8} {:>7}",
            "net", "blk,sub", "miss", "paper", "relerr"
        );
        for p in points {
            let c = p.config;
            let reference = table7_row(arch, c.net_size(), c.block_size(), c.sub_block_size());
            match reference {
                Some(r) => println!(
                    "{:>5} {:>7} | {:>8.4} {:>8.4} {:>6.0}%",
                    c.net_size(),
                    format!("{},{}", c.block_size(), c.sub_block_size()),
                    p.miss_ratio,
                    r.miss,
                    relative_error(p.miss_ratio, r.miss) * 100.0,
                ),
                None => println!(
                    "{:>5} {:>7} | {:>8.4} {:>8} {:>7}",
                    c.net_size(),
                    format!("{},{}", c.block_size(), c.sub_block_size()),
                    p.miss_ratio,
                    "-",
                    "-",
                ),
            }
        }
        println!();
    }
    std::process::ExitCode::SUCCESS
}
