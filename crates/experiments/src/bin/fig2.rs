//! Regenerates Figure 2 of the paper. See `occache_experiments::runs`.

use occache_experiments::runs::{run_figure, Workbench};

fn main() {
    run_figure(&mut Workbench::from_env(), 2).emit();
}
