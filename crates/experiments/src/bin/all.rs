//! Regenerates every table and figure in one run, sharing materialised
//! traces across artifacts. Writes all CSVs under `results/`.
//!
//! Grid sweeps (Table 7, Figures 1–8) checkpoint completed design points
//! under `results/.checkpoint/`; an interrupted run resumes where it left
//! off. Pass `--fresh` to recompute everything.

use std::process::ExitCode;

use occache_experiments::buffers::run_buffers;
use occache_experiments::characterize::{run_bus_contention, run_workload_stats};
use occache_experiments::extensions::{run_risc2_chip, run_split, run_writes};
use occache_experiments::runs::{
    run_ablations, run_fig9, run_figure, run_headline, run_risc2, run_table6, run_table7,
    run_table8, Workbench,
};

fn run_all(bench: &mut Workbench) -> std::io::Result<()> {
    type Runner = fn(&mut Workbench) -> occache_experiments::runs::Artifact;
    let runners: &[Runner] = &[
        run_headline,
        run_table6,
        run_table7,
        run_table8,
        |b| run_figure(b, 1),
        |b| run_figure(b, 2),
        |b| run_figure(b, 3),
        |b| run_figure(b, 4),
        |b| run_figure(b, 5),
        |b| run_figure(b, 6),
        |b| run_figure(b, 7),
        |b| run_figure(b, 8),
        run_fig9,
        run_risc2,
        run_risc2_chip,
        run_ablations,
        run_writes,
        run_split,
        run_workload_stats,
        run_bus_contention,
        run_buffers,
    ];
    for run in runners {
        // Stop starting new artifacts once an interrupt arrives: what is
        // already journalled is sealed, and a resume picks up from here.
        if occache_experiments::interrupt::requested() {
            break;
        }
        run(bench).emit()?;
    }
    Ok(())
}

fn main() -> ExitCode {
    occache_experiments::interrupt::install();
    if let Err(e) = occache_experiments::supervisor::SupervisorPolicy::try_from_env() {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = occache_experiments::sweep::try_jobs() {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = occache_experiments::sweep::try_slice_threads() {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = occache_experiments::sweep::try_multisim_disabled() {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = occache_experiments::sweep::try_replacement_override() {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }
    let mut bench = match Workbench::try_from_env() {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("regenerating all artifacts at {} refs/trace", bench.len());
    match run_all(&mut bench).and_then(|()| {
        occache_experiments::run_report::write(&occache_experiments::report::results_dir())
    }) {
        Ok(path) => {
            eprintln!("wrote {}", path.display());
            if occache_experiments::interrupt::requested() {
                eprintln!("run interrupted; journal sealed and report marked — rerun to resume");
                return ExitCode::from(occache_experiments::interrupt::EXIT_INTERRUPTED);
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
