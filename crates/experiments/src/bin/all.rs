//! Regenerates every table and figure in one run, sharing materialised
//! traces across artifacts. Writes all CSVs under `results/`.
//!
//! Grid sweeps (Table 7, Figures 1–8) checkpoint completed design points
//! under `results/.checkpoint/`; an interrupted run resumes where it left
//! off. Pass `--fresh` to recompute everything.

use std::process::ExitCode;

use occache_experiments::buffers::run_buffers;
use occache_experiments::characterize::{run_bus_contention, run_workload_stats};
use occache_experiments::extensions::{run_risc2_chip, run_split, run_writes};
use occache_experiments::runs::{
    run_ablations, run_fig9, run_figure, run_headline, run_risc2, run_table6, run_table7,
    run_table8, Workbench,
};

fn run_all(bench: &mut Workbench) -> std::io::Result<()> {
    run_headline(bench).emit()?;
    run_table6(bench).emit()?;
    run_table7(bench).emit()?;
    run_table8(bench).emit()?;
    for figure in 1..=8 {
        run_figure(bench, figure).emit()?;
    }
    run_fig9(bench).emit()?;
    run_risc2(bench).emit()?;
    run_risc2_chip(bench).emit()?;
    run_ablations(bench).emit()?;
    run_writes(bench).emit()?;
    run_split(bench).emit()?;
    run_workload_stats(bench).emit()?;
    run_bus_contention(bench).emit()?;
    run_buffers(bench).emit()
}

fn main() -> ExitCode {
    if let Err(e) = occache_experiments::supervisor::SupervisorPolicy::try_from_env() {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }
    let mut bench = match Workbench::try_from_env() {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("regenerating all artifacts at {} refs/trace", bench.len());
    match run_all(&mut bench).and_then(|()| {
        occache_experiments::run_report::write(&occache_experiments::report::results_dir())
    }) {
        Ok(path) => {
            eprintln!("wrote {}", path.display());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
