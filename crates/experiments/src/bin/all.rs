//! Regenerates every table and figure in one run, sharing materialised
//! traces across artifacts. Writes all CSVs under `results/`.

use occache_experiments::buffers::run_buffers;
use occache_experiments::characterize::{run_bus_contention, run_workload_stats};
use occache_experiments::extensions::{run_risc2_chip, run_split, run_writes};
use occache_experiments::runs::{
    run_ablations, run_fig9, run_figure, run_headline, run_risc2, run_table6, run_table7,
    run_table8, Workbench,
};

fn main() {
    let mut bench = Workbench::from_env();
    eprintln!("regenerating all artifacts at {} refs/trace", bench.len());
    run_headline(&mut bench).emit();
    run_table6(&mut bench).emit();
    run_table7(&mut bench).emit();
    run_table8(&mut bench).emit();
    for figure in 1..=8 {
        run_figure(&mut bench, figure).emit();
    }
    run_fig9(&mut bench).emit();
    run_risc2(&mut bench).emit();
    run_risc2_chip(&mut bench).emit();
    run_ablations(&mut bench).emit();
    run_writes(&mut bench).emit();
    run_split(&mut bench).emit();
    run_workload_stats(&mut bench).emit();
    run_bus_contention(&mut bench).emit();
    run_buffers(&mut bench).emit();
}
