//! Regenerates Figure 7 of the paper. See `occache_experiments::runs`.

use occache_experiments::runs::{emit_main, run_figure};

fn main() -> std::process::ExitCode {
    emit_main(|bench| run_figure(bench, 7))
}
