//! Task-switching study: quantifying the bias §3.3 concedes.
//!
//! The paper ran each trace "without context switches" and argued the
//! omission "will bias our estimated performance upward, although the
//! small sizes of the caches studied make this effect minor". This
//! binary interleaves four PDP-11 programs round-robin at several quanta
//! and measures the miss-ratio inflation per cache size — showing the
//! claim is right for on-chip sizes and where it stops being right.

use occache_core::{simulate, CacheConfig};
use occache_experiments::report::write_result;
use occache_experiments::sweep::try_trace_len;
use occache_trace::{MemRef, TraceSource};
use occache_workloads::{Multiprogram, WorkloadSpec};

fn main() -> std::process::ExitCode {
    let len = match try_trace_len() {
        Ok(len) => len,
        Err(e) => {
            eprintln!("error: {e}");
            return std::process::ExitCode::FAILURE;
        }
    };
    println!(
        "Task switching (the §3.3 omission, quantified): four PDP-11 programs,\n\
         round-robin, 16,8 geometry where it fits, {len} total refs per run\n"
    );
    let specs = [
        WorkloadSpec::pdp11_ed(),
        WorkloadSpec::pdp11_opsys(),
        WorkloadSpec::pdp11_plot(),
        WorkloadSpec::pdp11_simp(),
    ];

    // Baseline: the paper's discipline — each program alone, averaged.
    let solo_traces: Vec<Vec<MemRef>> = specs
        .iter()
        .map(|s| s.generator(0).collect_refs(len / specs.len()))
        .collect();

    let quanta = [5_000usize, 20_000, 100_000];
    let mut csv = String::from("net,quantum,miss_ratio,solo_miss_ratio,inflation\n");
    println!(
        "{:>6} {:>10} | {:>10} {:>10} {:>10} {:>10}",
        "net", "solo", "q=5k", "q=20k", "q=100k", "worst infl."
    );
    for net in [64u64, 256, 1024, 4096, 16_384] {
        let block = 16.min(net / 4);
        let sub = 8.min(block);
        let config = CacheConfig::builder()
            .net_size(net)
            .block_size(block)
            .sub_block_size(sub)
            .word_size(2)
            .build()
            .expect("valid geometry");

        let solo: f64 = solo_traces
            .iter()
            .map(|t| simulate(config, t.iter().copied(), 0).miss_ratio())
            .sum::<f64>()
            / specs.len() as f64;

        let mut row = format!("{net:>6} {solo:>10.4} |");
        let mut worst: f64 = 0.0;
        for &quantum in &quanta {
            let mut mp = Multiprogram::from_specs(&specs, quantum);
            let refs = mp.collect_refs(len);
            let miss = simulate(config, refs.iter().copied(), 0).miss_ratio();
            let inflation = miss / solo - 1.0;
            worst = worst.max(inflation);
            row.push_str(&format!(" {miss:>10.4}"));
            csv.push_str(&format!(
                "{net},{quantum},{miss:.6},{solo:.6},{inflation:.4}\n"
            ));
        }
        println!("{row} {:>9.1}%", worst * 100.0);
    }
    println!(
        "\n(the paper's claim holds: at on-chip sizes the inflation is small\n\
         because each quantum rebuilds a tiny working set quickly; at\n\
         mainframe sizes — 16 KB — frequent switching costs real misses)"
    );
    match write_result("task_switch.csv", &csv) {
        Ok(path) => {
            eprintln!("wrote {}", path.display());
            std::process::ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("failed to write task_switch.csv: {e}");
            std::process::ExitCode::FAILURE
        }
    }
}
