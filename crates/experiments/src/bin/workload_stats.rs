//! Characterisation study; see `occache_experiments::characterize::run_workload_stats`.

use occache_experiments::characterize::run_workload_stats;
use occache_experiments::runs::Workbench;

fn main() {
    run_workload_stats(&mut Workbench::from_env()).emit();
}
