//! Characterisation study; see `occache_experiments::characterize::run_workload_stats`.

use occache_experiments::characterize::run_workload_stats;
use occache_experiments::runs::emit_main;

fn main() -> std::process::ExitCode {
    emit_main(run_workload_stats)
}
