//! Regenerates the abstract's headline miss/traffic ratios.

use occache_experiments::runs::{run_headline, Workbench};

fn main() {
    run_headline(&mut Workbench::from_env()).emit();
}
