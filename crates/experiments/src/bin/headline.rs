//! Regenerates the abstract's headline miss/traffic ratios.

use occache_experiments::runs::{emit_main, run_headline};

fn main() -> std::process::ExitCode {
    emit_main(run_headline)
}
