//! Regenerates Table 6: the 360/85 sector cache comparison.

use occache_experiments::runs::{emit_main, run_table6};

fn main() -> std::process::ExitCode {
    emit_main(run_table6)
}
