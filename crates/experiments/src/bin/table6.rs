//! Regenerates Table 6: the 360/85 sector cache comparison.

use occache_experiments::runs::{run_table6, Workbench};

fn main() {
    run_table6(&mut Workbench::from_env()).emit();
}
