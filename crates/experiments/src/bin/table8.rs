//! Regenerates Table 8: load-forward on the Z8000 compiler traces.

use occache_experiments::runs::{emit_main, run_table8};

fn main() -> std::process::ExitCode {
    emit_main(run_table8)
}
