//! Regenerates Table 8: load-forward on the Z8000 compiler traces.

use occache_experiments::runs::{run_table8, Workbench};

fn main() {
    run_table8(&mut Workbench::from_env()).emit();
}
