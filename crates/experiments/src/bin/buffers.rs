//! §2.2 study; see `occache_experiments::buffers::run_buffers`.

use occache_experiments::buffers::run_buffers;
use occache_experiments::runs::emit_main;

fn main() -> std::process::ExitCode {
    emit_main(run_buffers)
}
