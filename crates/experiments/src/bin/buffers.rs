//! §2.2 study; see `occache_experiments::buffers::run_buffers`.

use occache_experiments::buffers::run_buffers;
use occache_experiments::runs::Workbench;

fn main() {
    run_buffers(&mut Workbench::from_env()).emit();
}
