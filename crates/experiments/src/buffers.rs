//! The §2.2 study: instruction buffers vs minimum caches.
//!
//! §2.2 positions the "minimum cache" as "a cross between an instruction
//! buffer and a cache" and argues a few hundred bytes of cache beat plain
//! buffers because caches cut *traffic*, not just latency. This artifact
//! quantifies that on the instruction streams of each architecture:
//! a VAX-11/780-style 8-byte buffer, a CRAY-1-style set of four
//! loop-capturing buffers, and the paper's 64-byte minimum cache.

use std::fmt::Write as _;

use occache_core::{InstructionBuffer, SubBlockCache};
use occache_trace::AccessKind;
use occache_workloads::Architecture;

use crate::runs::{Artifact, Workbench};
use crate::sweep::standard_config;

/// Runs the instruction-delivery comparison.
pub fn run_buffers(bench: &mut Workbench) -> Artifact {
    let len = bench.len();
    let mut report = String::new();
    let _ = writeln!(
        report,
        "Instruction delivery (§2.2): buffers vs a minimum cache, \
         instruction fetches only, {len} refs/trace\n"
    );
    let _ = writeln!(
        report,
        "{:<16} {:>22} {:>22} {:>22}",
        "", "VAX-780 buffer (8B)", "CRAY-style 4x128B", "minimum cache 64B"
    );
    let _ = writeln!(
        report,
        "{:<16} {:>10} {:>11} {:>10} {:>11} {:>10} {:>11}",
        "architecture", "stall", "traffic", "stall", "traffic", "miss", "traffic"
    );
    let mut csv = String::from("arch,design,stall_or_miss_ratio,traffic_ratio\n");
    for arch in Architecture::ALL {
        let word = arch.word_size();
        let traces = bench.arch_traces(arch);

        let mut vax_stall = 0.0;
        let mut vax_traffic = 0.0;
        let mut cray_stall = 0.0;
        let mut cray_traffic = 0.0;
        let mut cache_miss = 0.0;
        let mut cache_traffic = 0.0;
        for trace in traces {
            let mut vax = InstructionBuffer::vax780();
            let mut cray = InstructionBuffer::cray_style(16, 8);
            let mut cache = SubBlockCache::new(standard_config(arch, 64, 2 * word, word));
            for r in trace.iter() {
                if r.kind() != AccessKind::InstrFetch {
                    continue;
                }
                vax.fetch(r.address());
                cray.fetch(r.address());
                cache.access(r.address(), r.kind());
            }
            vax_stall += vax.stall_ratio();
            vax_traffic += vax.traffic_ratio(word);
            cray_stall += cray.stall_ratio();
            cray_traffic += cray.traffic_ratio(word);
            cache_miss += cache.metrics().miss_ratio();
            cache_traffic += cache.metrics().traffic_ratio();
        }
        let n = traces.len() as f64;
        let _ = writeln!(
            report,
            "{:<16} {:>10.4} {:>11.4} {:>10.4} {:>11.4} {:>10.4} {:>11.4}",
            arch.name(),
            vax_stall / n,
            vax_traffic / n,
            cray_stall / n,
            cray_traffic / n,
            cache_miss / n,
            cache_traffic / n,
        );
        for (design, stall, traffic) in [
            ("vax780_buffer", vax_stall / n, vax_traffic / n),
            ("cray_buffers", cray_stall / n, cray_traffic / n),
            ("minimum_cache", cache_miss / n, cache_traffic / n),
        ] {
            let _ = writeln!(csv, "{},{design},{stall:.6},{traffic:.6}", arch.name());
        }
    }
    let _ = writeln!(
        report,
        "\n(§2.2's claim in numbers: the non-recognising buffer leaves the\n\
         instruction traffic ratio near 1.0 no matter how well it hides\n\
         latency; loop-capturing buffers and caches cut both)"
    );
    Artifact {
        name: "buffers",
        report,
        csv: vec![("buffers.csv".into(), csv)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_artifact_shows_the_section_2_2_claim() {
        let mut bench = Workbench::new(30_000);
        let a = run_buffers(&mut bench);
        // The VAX-style buffer's traffic ratio stays near 1 on at least
        // one architecture line while the CRAY buffers cut it.
        let csv = &a.csv[0].1;
        let vax: Vec<f64> = csv
            .lines()
            .filter(|l| l.contains("vax780"))
            .map(|l| l.rsplit(',').next().unwrap().parse().unwrap())
            .collect();
        let cray: Vec<f64> = csv
            .lines()
            .filter(|l| l.contains("cray"))
            .map(|l| l.rsplit(',').next().unwrap().parse().unwrap())
            .collect();
        assert_eq!(vax.len(), 4);
        for (v, c) in vax.iter().zip(&cray) {
            assert!(*v > 0.9, "VAX buffer moves every byte: {v}");
            assert!(c < v, "CRAY buffers cut traffic: {c} vs {v}");
        }
    }
}
