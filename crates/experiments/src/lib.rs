#![warn(missing_docs)]

//! # occache-experiments — regenerating the paper's tables and figures
//!
//! Harness code shared by the experiment binaries (one per table/figure of
//! Hill & Smith, ISCA 1984 — see `DESIGN.md` §5 for the index):
//!
//! The execution machinery itself — supervised worker pools, the slice
//! planner, watchdog/retry, the journal codec, instrumentation and
//! `OCCACHE_*` env parsing — lives in `occache-runtime` (DESIGN.md §9),
//! shared with `occache-serve`. This crate re-exports it under the
//! historical paths and adds the batch-side policy and rendering:
//!
//! * [`sweep`] — trace materialisation and the Table 1 parameter grid
//!   (plus re-exports of the runtime evaluation/executor API:
//!   fault-isolated multi-threaded sweeps),
//! * [`checkpoint`] — resumable sweeps over the runtime's journal codec:
//!   advisory locking, atomic compaction, tombstone quarantine, and the
//!   checkpointed entry points (`--fresh` / `OCCACHE_FRESH=1` discards
//!   journals),
//! * [`supervisor`] — re-export of the runtime supervisor: per-point
//!   wall-clock deadlines, bounded retries, and fault injection for
//!   unattended paper-scale runs,
//! * [`manifest`] / [`run_report`] / [`verify`] — end-to-end result
//!   integrity: content-hashed artifact manifest, per-run supervision
//!   report, and the `occache-verify` checks (manifest + journal scan +
//!   sampled re-simulation),
//! * [`paper`] — the paper's published numbers (Tables 6–8, prose anchors)
//!   for paper-vs-measured comparison,
//! * [`report`] — paper-style text tables, CSV output, atomic writes.
//!
//! Run `cargo run --release -p occache-experiments --bin all` to regenerate
//! everything into `results/`. Individual binaries (`table7`, `fig1`, …)
//! regenerate one artifact each. `OCCACHE_REFS` shortens traces for quick
//! runs (default: the paper's 1 million references).

pub mod buffers;
pub mod characterize;
pub mod checkpoint;
pub mod extensions;
pub mod interrupt;
pub mod manifest;
pub mod paper;
pub mod plot;
pub mod report;
pub mod run_report;
pub mod runs;
pub mod supervisor;
pub mod sweep;
pub mod verify;

pub use sweep::{
    evaluate_point, evaluate_points, evaluate_points_isolated, load_forward_config, materialize,
    standard_config, table1_pairs, DesignPoint, PointError, PointFault, SweepOutcome, Trace,
};
