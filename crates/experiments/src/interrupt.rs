//! Cooperative SIGINT/SIGTERM handling — re-exported from
//! [`occache_runtime::interrupt`], which owns the signal handler so the
//! batch bins and the serving layer's accept loop observe the same flag.
//! This module keeps the historical import path working; it contains no
//! logic of its own.

pub use occache_runtime::interrupt::{
    clear, install, requested, trigger, EXIT_INTERRUPTED, SIGINT, SIGTERM,
};
