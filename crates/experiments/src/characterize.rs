//! Workload characterisation and the shared-bus sizing study.
//!
//! `run_workload_stats` documents the synthetic trace models — the §3.3
//! argument for trace-driven simulation is that workloads carry "complex
//! embedded correlations"; this artifact shows ours do, and that they
//! differ across architectures the way §4.2.5 describes.
//!
//! `run_bus_contention` turns traffic ratios into the paper's motivating
//! system-level question: how many microprocessors can share one memory
//! bus, with and without an on-chip cache?

use std::fmt::Write as _;

use occache_core::{simulate, SharedBus};
use occache_trace::{TraceStats, WorkingSetCurve};
use occache_workloads::{Architecture, WorkloadSpec};

use crate::runs::{Artifact, Workbench};
use crate::sweep::standard_config;

/// Per-trace characterisation: reference mix, footprint, sequential-run
/// structure and the Denning working-set curve.
pub fn run_workload_stats(bench: &mut Workbench) -> Artifact {
    let len = bench.len();
    let mut report = String::new();
    let _ = writeln!(report, "Workload characterisation ({len} refs/trace)\n");
    let _ = writeln!(
        report,
        "{:<10} {:<8} {:>7} {:>7} {:>9} {:>6} | {:>8} {:>8} {:>8}",
        "trace", "arch", "ifetch%", "write%", "footprint", "run", "ws(1k)", "ws(10k)", "ws(100k)"
    );
    let mut csv = String::from(
        "trace,arch,ifetch_fraction,write_fraction,footprint_bytes,mean_run,\
         ws_1k_blocks,ws_10k_blocks,ws_100k_blocks\n",
    );
    for arch in Architecture::ALL {
        for spec in WorkloadSpec::set_for(arch) {
            let word = arch.word_size();
            let mut stats = TraceStats::new(word);
            let mut ws = WorkingSetCurve::new(16);
            for r in spec.generator(0).take(len) {
                stats.observe(r);
                ws.observe(r);
            }
            let write_frac = stats.writes() as f64 / stats.total().max(1) as f64;
            let curve = ws.curve(&[1_000, 10_000, 100_000]);
            let _ = writeln!(
                report,
                "{:<10} {:<8} {:>6.1}% {:>6.1}% {:>8}B {:>6.1} | {:>8.0} {:>8.0} {:>8.0}",
                spec.name(),
                arch.name().split(' ').next_back().unwrap_or(""),
                stats.ifetch_fraction() * 100.0,
                write_frac * 100.0,
                stats.footprint_bytes(),
                stats.mean_ifetch_run(),
                curve[0].1,
                curve[1].1,
                curve[2].1,
            );
            let _ = writeln!(
                csv,
                "{},{},{:.4},{:.4},{},{:.2},{:.1},{:.1},{:.1}",
                spec.name(),
                arch.name(),
                stats.ifetch_fraction(),
                write_frac,
                stats.footprint_bytes(),
                stats.mean_ifetch_run(),
                curve[0].1,
                curve[1].1,
                curve[2].1,
            );
        }
        let _ = writeln!(report);
    }
    let _ = writeln!(
        report,
        "(working-set sizes in 16-byte blocks; §4.2.5 expects footprints to\n\
         grow from the compact Z8000 utilities to the hundreds-of-kilobyte\n\
         System/370 jobs)"
    );
    Artifact {
        name: "workload_stats",
        report,
        csv: vec![("workload_stats.csv".into(), csv)],
    }
}

/// Shared-bus sizing: processors per bus at 70% utilisation, by cache
/// design, per architecture.
pub fn run_bus_contention(bench: &mut Workbench) -> Artifact {
    let len = bench.len();
    // One cacheless processor consumes 40% of the bus — a mid-1980s
    // multiprocessor backplane assumption; the comparison across designs
    // is what matters.
    let bus = SharedBus::new(0.4);
    const TARGET: f64 = 0.7;

    let mut report = String::new();
    let _ = writeln!(
        report,
        "Shared-bus sizing (extension; the paper's §1 motivation): \
         processors per bus at {:.0}% target utilisation, cacheless demand 0.4, {len} refs/trace\n",
        TARGET * 100.0
    );
    let _ = writeln!(
        report,
        "{:<16} {:>10} {:>12} {:>12} {:>12}",
        "architecture", "no cache", "64B (4,2)", "1024B (16,16)", "1024B (16,2)"
    );
    let mut csv = String::from("arch,design,traffic_ratio,max_processors\n");
    for arch in Architecture::ALL {
        let word = arch.word_size();
        let warmup = bench.warmup_for(arch);
        let traces = bench.arch_traces(arch);
        let mut row = format!(
            "{:<16} {:>10}",
            arch.name(),
            bus.max_processors(1.0, TARGET)
        );
        let _ = writeln!(
            csv,
            "{},no cache,1.0,{}",
            arch.name(),
            bus.max_processors(1.0, TARGET)
        );
        for (label, net, block, sub) in [
            ("64B (4,2)", 64u64, 2 * word, word),
            ("1024B (16,16)", 1024, 16, 16),
            ("1024B (16,2)", 1024, 16, word.max(2)),
        ] {
            let config = standard_config(arch, net, block, sub);
            let mut traffic = 0.0;
            for t in traces {
                traffic += simulate(config, t.iter(), warmup).traffic_ratio();
            }
            traffic /= traces.len() as f64;
            let processors = bus.max_processors(traffic, TARGET);
            let _ = write!(row, " {processors:>12}");
            let _ = writeln!(csv, "{},{label},{traffic:.4},{processors}", arch.name());
        }
        let _ = writeln!(report, "{row}");
    }
    let _ = writeln!(
        report,
        "\n(small sub-blocks trade misses for bus headroom: exactly the\n\
         operating-point choice §4.2.1 describes for bus-limited systems)"
    );
    Artifact {
        name: "bus_contention",
        report,
        csv: vec![("bus_contention.csv".into(), csv)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_stats_covers_all_named_traces() {
        let mut bench = Workbench::new(8_000);
        let a = run_workload_stats(&mut bench);
        for name in ["OPSYS", "GREP", "spice", "FGO1"] {
            assert!(a.report.contains(name), "{name}");
        }
        // Header + 6+5+6+4 traces.
        assert_eq!(a.csv[0].1.lines().count(), 22);
    }

    #[test]
    fn bus_contention_shows_caches_helping() {
        let mut bench = Workbench::new(20_000);
        let a = run_bus_contention(&mut bench);
        assert!(a.report.contains("PDP-11"));
        // Every row of the CSV has a processor count.
        for line in a.csv[0].1.lines().skip(1) {
            let count: u32 = line.rsplit(',').next().unwrap().parse().unwrap();
            let _ = count;
        }
    }
}
