//! Terminal scatter/line plots, used to render Figures 1–9 the way the
//! paper draws them: miss ratio on one axis, traffic ratio on the other,
//! lines connecting caches of constant block size.

use std::fmt::Write as _;

/// One plotted series: a marker character and points in data space,
/// optionally connected with line segments.
#[derive(Debug, Clone)]
pub struct Series {
    /// Marker drawn at each point (and, lowercased fallback `·` for line
    /// segments between them).
    pub marker: char,
    /// Legend label.
    pub label: String,
    /// `(x, y)` data points.
    pub points: Vec<(f64, f64)>,
    /// Whether to connect consecutive points.
    pub connect: bool,
}

/// A character-grid scatter plot with linear axes.
#[derive(Debug, Clone)]
pub struct ScatterPlot {
    width: usize,
    height: usize,
    x_label: String,
    y_label: String,
    series: Vec<Series>,
}

impl ScatterPlot {
    /// Creates a plot surface of `width`×`height` character cells.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is smaller than 8 cells.
    pub fn new(width: usize, height: usize, x_label: &str, y_label: &str) -> Self {
        assert!(width >= 8 && height >= 8, "plot too small to be legible");
        ScatterPlot {
            width,
            height,
            x_label: x_label.to_string(),
            y_label: y_label.to_string(),
            series: Vec::new(),
        }
    }

    /// Adds a series.
    pub fn add_series(&mut self, series: Series) -> &mut Self {
        self.series.push(series);
        self
    }

    fn data_bounds(&self) -> ((f64, f64), (f64, f64)) {
        let mut x = (f64::INFINITY, f64::NEG_INFINITY);
        let mut y = (f64::INFINITY, f64::NEG_INFINITY);
        for s in &self.series {
            for &(px, py) in &s.points {
                x.0 = x.0.min(px);
                x.1 = x.1.max(px);
                y.0 = y.0.min(py);
                y.1 = y.1.max(py);
            }
        }
        if !x.0.is_finite() {
            return ((0.0, 1.0), (0.0, 1.0));
        }
        // Give degenerate ranges some width and pad to the origin-ish.
        let pad = |lo: f64, hi: f64| {
            let lo = lo.min(0.0);
            if hi - lo < 1e-9 {
                (lo, lo + 1.0)
            } else {
                (lo, hi)
            }
        };
        (pad(x.0, x.1), pad(y.0, y.1))
    }

    /// Renders the plot to text.
    pub fn render(&self) -> String {
        let ((x_lo, x_hi), (y_lo, y_hi)) = self.data_bounds();
        let mut grid = vec![vec![' '; self.width]; self.height];
        let to_cell = |x: f64, y: f64| {
            let cx = ((x - x_lo) / (x_hi - x_lo) * (self.width - 1) as f64).round() as usize;
            let cy = ((y - y_lo) / (y_hi - y_lo) * (self.height - 1) as f64).round() as usize;
            // Row 0 is the top of the rendered plot.
            (
                cx.min(self.width - 1),
                self.height - 1 - cy.min(self.height - 1),
            )
        };

        for s in &self.series {
            if s.connect {
                for pair in s.points.windows(2) {
                    let (x0, y0) = to_cell(pair[0].0, pair[0].1);
                    let (x1, y1) = to_cell(pair[1].0, pair[1].1);
                    for (cx, cy) in line_cells(x0, y0, x1, y1) {
                        if grid[cy][cx] == ' ' {
                            grid[cy][cx] = '.';
                        }
                    }
                }
            }
            for &(px, py) in &s.points {
                let (cx, cy) = to_cell(px, py);
                grid[cy][cx] = s.marker;
            }
        }

        let mut out = String::new();
        let _ = writeln!(out, "{:>8.3} +{}", y_hi, "-".repeat(self.width));
        for (row_index, row) in grid.iter().enumerate() {
            let label = if row_index == self.height / 2 {
                format!("{:>8}", self.y_label)
            } else {
                " ".repeat(8)
            };
            let _ = writeln!(out, "{label} |{}", row.iter().collect::<String>());
        }
        let _ = writeln!(out, "{:>8.3} +{}", y_lo, "-".repeat(self.width));
        let _ = writeln!(
            out,
            "{:>9}{:<w$}{:.3}  ({})",
            format!("{x_lo:.3} "),
            "",
            x_hi,
            self.x_label,
            w = self.width.saturating_sub(12)
        );
        for s in &self.series {
            let _ = writeln!(out, "{:>10} {}", s.marker, s.label);
        }
        out
    }
}

/// Integer cells along a straight segment (Bresenham).
fn line_cells(x0: usize, y0: usize, x1: usize, y1: usize) -> Vec<(usize, usize)> {
    let (mut x, mut y) = (x0 as i64, y0 as i64);
    let (x1, y1) = (x1 as i64, y1 as i64);
    let dx = (x1 - x).abs();
    let dy = -(y1 - y).abs();
    let sx = if x < x1 { 1 } else { -1 };
    let sy = if y < y1 { 1 } else { -1 };
    let mut err = dx + dy;
    let mut cells = Vec::new();
    loop {
        cells.push((x as usize, y as usize));
        if x == x1 && y == y1 {
            break;
        }
        let e2 = 2 * err;
        if e2 >= dy {
            err += dy;
            x += sx;
        }
        if e2 <= dx {
            err += dx;
            y += sy;
        }
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_series(points: Vec<(f64, f64)>, connect: bool) -> ScatterPlot {
        let mut plot = ScatterPlot::new(20, 10, "x", "y");
        plot.add_series(Series {
            marker: 'o',
            label: "test".into(),
            points,
            connect,
        });
        plot
    }

    #[test]
    fn corners_land_on_corners() {
        let plot = one_series(vec![(0.0, 0.0), (1.0, 1.0)], false);
        let text = plot.render();
        let rows: Vec<&str> = text.lines().collect();
        // First grid row (index 1 after the top border) holds the max-y point
        // at the right edge; the last grid row holds the min at the left.
        assert!(rows[1].ends_with('o'), "{text}");
        assert_eq!(rows[10].chars().nth(10), Some('o'), "{text}");
    }

    #[test]
    fn connected_series_draw_segments() {
        let connected = one_series(vec![(0.0, 0.0), (1.0, 1.0)], true).render();
        let loose = one_series(vec![(0.0, 0.0), (1.0, 1.0)], false).render();
        let dots = |s: &str| s.matches('.').count();
        assert!(dots(&connected) > dots(&loose), "{connected}");
    }

    #[test]
    fn legend_and_labels_present() {
        let text = one_series(vec![(0.2, 0.4)], false).render();
        assert!(text.contains("test"));
        assert!(text.contains("(x)"));
        assert!(text.contains('y'));
    }

    #[test]
    fn empty_plot_renders_without_panic() {
        let plot = ScatterPlot::new(20, 10, "x", "y");
        let text = plot.render();
        assert!(text.contains('+'));
    }

    #[test]
    fn degenerate_range_is_widened() {
        // All points identical: must not divide by zero.
        let text = one_series(vec![(0.5, 0.5), (0.5, 0.5)], true).render();
        assert!(text.contains('o'));
    }

    #[test]
    fn line_cells_cover_endpoints() {
        let cells = line_cells(0, 0, 5, 3);
        assert_eq!(cells.first(), Some(&(0, 0)));
        assert_eq!(cells.last(), Some(&(5, 3)));
        assert!(cells.len() >= 6);
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn rejects_tiny_surfaces() {
        let _ = ScatterPlot::new(4, 4, "x", "y");
    }
}
