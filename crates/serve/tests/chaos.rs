//! Deterministic chaos tests: with socket and scheduler fault injection
//! active (the in-process form of `OCCACHE_SERVE_FAULT`), every request
//! must eventually yield a correct, bit-identical result or an
//! attributed structured error — never a hang past its deadline, never
//! silent corruption.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use occache_runtime::executor::SupervisorPolicy;
use occache_serve::fault::ServeFault;
use occache_serve::json::{ErrorBody, Json};
use occache_serve::service::{Server, ServiceConfig};

const METRICS: [&str; 4] = [
    "miss_ratio",
    "traffic_ratio",
    "nibble_traffic_ratio",
    "redundant_load_fraction",
];

/// One-shot request that tolerates chaos: a torn or dropped response is
/// an `Err`, never a panic and never a partial success.
fn try_http(
    addr: &std::net::SocketAddr,
    method: &str,
    path: &str,
    body: &str,
    timeout: Duration,
) -> Result<(u16, String), String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    stream
        .set_read_timeout(Some(timeout))
        .map_err(|e| format!("timeout: {e}"))?;
    let wire = format!(
        "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream
        .write_all(wire.as_bytes())
        .map_err(|e| format!("send: {e}"))?;
    let mut response = Vec::new();
    stream
        .read_to_end(&mut response)
        .map_err(|e| format!("receive: {e}"))?;
    let text = String::from_utf8(response).map_err(|_| "non-UTF-8 response".to_string())?;
    let status: u16 = text
        .split_whitespace()
        .nth(1)
        .and_then(|code| code.parse().ok())
        .ok_or_else(|| format!("torn response {text:?}"))?;
    let (head, body) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| format!("response without header terminator {text:?}"))?;
    let expected: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| format!("response without content-length {text:?}"))?;
    if body.len() != expected {
        return Err(format!(
            "torn body: {} of {expected} bytes in {text:?}",
            body.len()
        ));
    }
    Ok((status, body.to_string()))
}

/// The chaos contract, client side: retry transport faults and
/// retryable structured errors on fresh connections; any terminal
/// non-200 must be an attributed [`ErrorBody`].
fn request_to_completion(
    addr: &std::net::SocketAddr,
    method: &str,
    path: &str,
    body: &str,
) -> String {
    let mut last = String::new();
    for _ in 0..12 {
        match try_http(addr, method, path, body, Duration::from_secs(2)) {
            Ok((200, text)) => return text,
            Ok((status, text)) => {
                let parsed = ErrorBody::parse(&text)
                    .unwrap_or_else(|e| panic!("unattributed {status} body {text:?}: {e}"));
                assert!(
                    parsed.retryable,
                    "terminal error under chaos must be retryable here: {text}"
                );
                last = text;
            }
            Err(why) => last = why,
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    panic!("request never completed under chaos; last outcome: {last}");
}

fn point_bits(text: &str) -> Vec<u64> {
    let doc = Json::parse(text).unwrap_or_else(|e| panic!("unparseable {text:?}: {e}"));
    METRICS
        .iter()
        .map(|f| {
            doc.get(f)
                .and_then(Json::as_f64)
                .unwrap_or_else(|| panic!("missing {f} in {text}"))
                .to_bits()
        })
        .collect()
}

fn bodies() -> Vec<String> {
    [(16, 8), (32, 16), (8, 4)]
        .iter()
        .map(|(block, sub)| {
            format!(
                "{{\"model\":\"pdp11\",\"refs\":1000,\
                 \"config\":{{\"net\":256,\"block\":{block},\"sub\":{sub}}}}}"
            )
        })
        .collect()
}

#[test]
fn torn_writes_and_dropped_connections_never_corrupt_results() {
    let fault = Arc::new(ServeFault::parse("torn-write:3,drop-conn:4").expect("fault spec"));
    let mut config = ServiceConfig::for_tests();
    config.fault = Some(Arc::clone(&fault));
    let chaotic = Server::start(&config).expect("start chaotic");
    let clean = Server::start(&ServiceConfig::for_tests()).expect("start clean");

    for body in bodies() {
        // Three passes per point through the chaotic server: every pass
        // must complete and agree bit-for-bit.
        let reference = point_bits(&request_to_completion(
            &chaotic.addr(),
            "POST",
            "/v1/simulate",
            &body,
        ));
        for _ in 0..2 {
            let repeat = point_bits(&request_to_completion(
                &chaotic.addr(),
                "POST",
                "/v1/simulate",
                &body,
            ));
            assert_eq!(repeat, reference, "repeat diverged under chaos");
        }
        // And agree with a fault-free server: chaos may slow requests
        // down, never change answers.
        let truth = point_bits(&request_to_completion(
            &clean.addr(),
            "POST",
            "/v1/simulate",
            &body,
        ));
        assert_eq!(reference, truth, "chaotic result diverged from clean");
    }

    let injected = fault.injected();
    let fired = |kind: &str| {
        injected
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, n)| *n)
            .unwrap_or(0)
    };
    assert!(
        fired("torn_write") >= 1,
        "torn-write never fired: {injected:?}"
    );
    assert!(
        fired("drop_conn") >= 1,
        "drop-conn never fired: {injected:?}"
    );

    // The injections are visible on /metrics (scraped through the same
    // chaotic socket, so retry that too).
    let metrics = request_to_completion(&chaotic.addr(), "GET", "/metrics", "");
    assert!(
        metrics.contains("occache_fault_torn_write_injected_total"),
        "{metrics}"
    );
    assert!(
        metrics.contains("occache_fault_drop_conn_injected_total"),
        "{metrics}"
    );

    chaotic.stop().expect("clean shutdown");
    clean.stop().expect("clean shutdown");
}

#[test]
fn stalled_reads_time_out_the_client_but_answers_stay_correct() {
    // Every 2nd connection stalls for 1 s before the response; the
    // client reads with a 300 ms timeout, so stalled attempts fail fast
    // and the deterministic retry (next event, odd, unstalled) succeeds.
    let fault = Arc::new(ServeFault::parse("stall-read:2:1").expect("fault spec"));
    let mut config = ServiceConfig::for_tests();
    config.fault = Some(Arc::clone(&fault));
    let server = Server::start(&config).expect("start");

    let body = &bodies()[0];
    let mut results = Vec::new();
    for _ in 0..4 {
        let mut outcome = None;
        for _ in 0..4 {
            match try_http(
                &server.addr(),
                "POST",
                "/v1/simulate",
                body,
                Duration::from_millis(300),
            ) {
                Ok((200, text)) => {
                    outcome = Some(text);
                    break;
                }
                Ok((status, text)) => panic!("unexpected status {status}: {text}"),
                Err(_) => continue, // stalled attempt — retry
            }
        }
        results.push(point_bits(
            &outcome.expect("request never completed despite retries"),
        ));
    }
    assert!(
        results.windows(2).all(|w| w[0] == w[1]),
        "stall chaos changed answers: {results:?}"
    );
    let injected = fault.injected();
    let stalls = injected
        .iter()
        .find(|(k, _)| *k == "stall_read")
        .map(|(_, n)| *n)
        .unwrap_or(0);
    assert!(stalls >= 1, "stall-read never fired: {injected:?}");
    server.stop().expect("clean shutdown");
}

#[test]
fn worker_panic_chaos_is_absorbed_by_the_supervisor_retry_budget() {
    // Every 2nd evaluation panics; one supervisor retry re-runs the
    // point (advancing the evaluation counter past the faulted slot),
    // so every request still answers 200 with correct metrics.
    let fault = Arc::new(ServeFault::parse("panic-worker:2").expect("fault spec"));
    let mut policy = SupervisorPolicy::disabled();
    policy.retries = 1;
    let mut config = ServiceConfig::for_tests();
    config.fault = Some(Arc::clone(&fault));
    config.policy = policy;
    let server = Server::start(&config).expect("start");
    let clean = Server::start(&ServiceConfig::for_tests()).expect("start clean");

    for body in bodies() {
        let chaotic = point_bits(&request_to_completion(
            &server.addr(),
            "POST",
            "/v1/simulate",
            &body,
        ));
        let truth = point_bits(&request_to_completion(
            &clean.addr(),
            "POST",
            "/v1/simulate",
            &body,
        ));
        assert_eq!(chaotic, truth, "panic chaos changed an answer");
    }
    server.stop().expect("clean shutdown");
    clean.stop().expect("clean shutdown");
}
