//! End-to-end tests over real sockets: a served design point must be
//! bit-identical to direct evaluation, the second identical request must
//! come from the cache, sweeps must preserve request order, and the
//! server must shut down cleanly.

use std::io::{Read, Write};
use std::net::TcpStream;

use occache_core::CacheConfig;
use occache_experiments::sweep::{evaluate_point, materialize};
use occache_serve::json::Json;
use occache_serve::service::{Server, ServiceConfig};
use occache_workloads::WorkloadSpec;

/// One-shot request: fresh connection, `Connection: close`, read to EOF.
fn http(addr: &std::net::SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let wire = format!(
        "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(wire.as_bytes()).expect("send");
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("receive");
    let text = String::from_utf8(response).expect("utf-8 response");
    let status: u16 = text
        .split_whitespace()
        .nth(1)
        .and_then(|code| code.parse().ok())
        .unwrap_or_else(|| panic!("bad status line in {text:?}"));
    let body = text
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn json(body: &str) -> Json {
    Json::parse(body).unwrap_or_else(|e| panic!("unparseable response {body:?}: {e}"))
}

fn metric_bits(doc: &Json, field: &str) -> u64 {
    doc.get(field)
        .and_then(Json::as_f64)
        .unwrap_or_else(|| panic!("missing {field}"))
        .to_bits()
}

const METRICS: [&str; 4] = [
    "miss_ratio",
    "traffic_ratio",
    "nibble_traffic_ratio",
    "redundant_load_fraction",
];

#[test]
fn repeated_point_is_cached_and_bit_identical_to_direct_evaluation() {
    let server = Server::start(&ServiceConfig::for_tests()).expect("start");
    let addr = server.addr();
    let body = r#"{"model":"pdp11","refs":2000,"config":{"net":256,"block":16,"sub":8}}"#;

    let (status, first) = http(&addr, "POST", "/v1/simulate", body);
    assert_eq!(status, 200, "{first}");
    let first = json(&first);
    assert_eq!(first.get("cached").and_then(Json::as_bool), Some(false));

    let (status, second) = http(&addr, "POST", "/v1/simulate", body);
    assert_eq!(status, 200, "{second}");
    let second = json(&second);
    assert_eq!(
        second.get("cached").and_then(Json::as_bool),
        Some(true),
        "second identical request must be served from the cache"
    );

    // Bit-identical to the first response and to direct evaluation.
    let config = CacheConfig::builder()
        .net_size(256)
        .block_size(16)
        .sub_block_size(8)
        .associativity(4)
        .word_size(2)
        .build()
        .expect("valid config");
    let traces = materialize(
        &WorkloadSpec::set_by_name("pdp11").expect("pdp11 set"),
        2_000,
    );
    let direct = evaluate_point(config, &traces, 0);
    let direct_bits = [
        direct.miss_ratio.to_bits(),
        direct.traffic_ratio.to_bits(),
        direct.nibble_traffic_ratio.to_bits(),
        direct.redundant_load_fraction.to_bits(),
    ];
    for (field, want) in METRICS.iter().zip(direct_bits) {
        assert_eq!(metric_bits(&first, field), want, "{field} vs direct");
        assert_eq!(
            metric_bits(&second, field),
            want,
            "{field} cached vs direct"
        );
    }
    assert_eq!(
        second.get("gross_size").and_then(Json::as_u64),
        Some(direct.gross_size)
    );

    assert_eq!(server.service().cache().hits(), 1);
    server.stop().expect("clean shutdown");
}

#[test]
fn sweep_preserves_request_order_and_is_fully_cached_on_repeat() {
    let server = Server::start(&ServiceConfig::for_tests()).expect("start");
    let addr = server.addr();
    let body = r#"{"model":"pdp11","refs":1500,"points":[
        {"net":256,"block":32,"sub":16},
        {"net":256,"block":8,"sub":4},
        {"net":128,"block":16,"sub":8}
    ]}"#;

    let (status, first) = http(&addr, "POST", "/v1/sweep", body);
    assert_eq!(status, 200, "{first}");
    let first = json(&first);
    assert_eq!(first.get("total").and_then(Json::as_u64), Some(3));
    assert_eq!(first.get("computed").and_then(Json::as_u64), Some(3));
    assert_eq!(first.get("cached").and_then(Json::as_u64), Some(0));
    let points = first
        .get("points")
        .and_then(Json::as_array)
        .expect("points");
    let blocks: Vec<u64> = points
        .iter()
        .map(|p| {
            p.get("config")
                .and_then(|c| c.get("block"))
                .and_then(Json::as_u64)
                .expect("block")
        })
        .collect();
    assert_eq!(
        blocks,
        [32, 8, 16],
        "points must come back in request order"
    );

    let (status, again) = http(&addr, "POST", "/v1/sweep", body);
    assert_eq!(status, 200, "{again}");
    let again = json(&again);
    assert_eq!(again.get("cached").and_then(Json::as_u64), Some(3));
    assert_eq!(again.get("computed").and_then(Json::as_u64), Some(0));
    let repeat = again
        .get("points")
        .and_then(Json::as_array)
        .expect("points");
    for (a, b) in points.iter().zip(repeat) {
        for field in METRICS {
            assert_eq!(metric_bits(a, field), metric_bits(b, field), "{field}");
        }
    }
    server.stop().expect("clean shutdown");
}

#[test]
fn routing_and_input_validation() {
    let server = Server::start(&ServiceConfig::for_tests()).expect("start");
    let addr = server.addr();

    assert_eq!(http(&addr, "GET", "/nope", "").0, 404);
    assert_eq!(http(&addr, "GET", "/v1/simulate", "").0, 405);
    assert_eq!(http(&addr, "POST", "/v1/simulate", "not json").0, 400);
    let (status, body) = http(
        &addr,
        "POST",
        "/v1/simulate",
        r#"{"model":"enigma","config":{"net":64,"block":8,"sub":4}}"#,
    );
    assert_eq!(status, 400);
    assert!(body.contains("unknown model"), "{body}");
    let (status, body) = http(
        &addr,
        "POST",
        "/v1/simulate",
        r#"{"model":"pdp11","config":{"net":63,"block":8,"sub":4}}"#,
    );
    assert_eq!(status, 400, "{body}");

    let (status, stat) = http(&addr, "GET", "/v1/status", "");
    assert_eq!(status, 200);
    let stat = json(&stat);
    assert_eq!(stat.get("workers").and_then(Json::as_u64), Some(2));

    let (status, metrics) = http(&addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    for family in [
        "occache_requests_total",
        "occache_queue_depth",
        "occache_cache_hits_total",
        "occache_request_seconds{quantile=\"0.99\"}",
        "occache_worker_busy_seconds{worker=\"0\"}",
    ] {
        assert!(metrics.contains(family), "missing {family} in:\n{metrics}");
    }
    server.stop().expect("clean shutdown");
}
