//! End-to-end tests over real sockets: a served design point must be
//! bit-identical to direct evaluation, the second identical request must
//! come from the cache, sweeps must preserve request order, the server
//! must shut down cleanly, and the hardening layers — connection
//! deadlines, oversized-body rejection, the per-point circuit breaker,
//! and write-behind crash recovery — must behave as DESIGN.md §10
//! specifies.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use occache_core::CacheConfig;
use occache_experiments::sweep::{evaluate_point, materialize};
use occache_serve::fault::ServeFault;
use occache_serve::json::{ErrorBody, Json};
use occache_serve::service::{Server, ServiceConfig};
use occache_workloads::WorkloadSpec;

/// One-shot request: fresh connection, `Connection: close`, read to EOF.
fn http(addr: &std::net::SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let wire = format!(
        "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(wire.as_bytes()).expect("send");
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("receive");
    let text = String::from_utf8(response).expect("utf-8 response");
    let status: u16 = text
        .split_whitespace()
        .nth(1)
        .and_then(|code| code.parse().ok())
        .unwrap_or_else(|| panic!("bad status line in {text:?}"));
    let body = text
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn json(body: &str) -> Json {
    Json::parse(body).unwrap_or_else(|e| panic!("unparseable response {body:?}: {e}"))
}

fn metric_bits(doc: &Json, field: &str) -> u64 {
    doc.get(field)
        .and_then(Json::as_f64)
        .unwrap_or_else(|| panic!("missing {field}"))
        .to_bits()
}

const METRICS: [&str; 4] = [
    "miss_ratio",
    "traffic_ratio",
    "nibble_traffic_ratio",
    "redundant_load_fraction",
];

#[test]
fn repeated_point_is_cached_and_bit_identical_to_direct_evaluation() {
    let server = Server::start(&ServiceConfig::for_tests()).expect("start");
    let addr = server.addr();
    let body = r#"{"model":"pdp11","refs":2000,"config":{"net":256,"block":16,"sub":8}}"#;

    let (status, first) = http(&addr, "POST", "/v1/simulate", body);
    assert_eq!(status, 200, "{first}");
    let first = json(&first);
    assert_eq!(first.get("cached").and_then(Json::as_bool), Some(false));

    let (status, second) = http(&addr, "POST", "/v1/simulate", body);
    assert_eq!(status, 200, "{second}");
    let second = json(&second);
    assert_eq!(
        second.get("cached").and_then(Json::as_bool),
        Some(true),
        "second identical request must be served from the cache"
    );

    // Bit-identical to the first response and to direct evaluation.
    let config = CacheConfig::builder()
        .net_size(256)
        .block_size(16)
        .sub_block_size(8)
        .associativity(4)
        .word_size(2)
        .build()
        .expect("valid config");
    let traces = materialize(
        &WorkloadSpec::set_by_name("pdp11").expect("pdp11 set"),
        2_000,
    );
    let direct = evaluate_point(config, &traces, 0);
    let direct_bits = [
        direct.miss_ratio.to_bits(),
        direct.traffic_ratio.to_bits(),
        direct.nibble_traffic_ratio.to_bits(),
        direct.redundant_load_fraction.to_bits(),
    ];
    for (field, want) in METRICS.iter().zip(direct_bits) {
        assert_eq!(metric_bits(&first, field), want, "{field} vs direct");
        assert_eq!(
            metric_bits(&second, field),
            want,
            "{field} cached vs direct"
        );
    }
    assert_eq!(
        second.get("gross_size").and_then(Json::as_u64),
        Some(direct.gross_size)
    );

    assert_eq!(server.service().cache().hits(), 1);
    server.stop().expect("clean shutdown");
}

#[test]
fn sweep_preserves_request_order_and_is_fully_cached_on_repeat() {
    let server = Server::start(&ServiceConfig::for_tests()).expect("start");
    let addr = server.addr();
    let body = r#"{"model":"pdp11","refs":1500,"points":[
        {"net":256,"block":32,"sub":16},
        {"net":256,"block":8,"sub":4},
        {"net":128,"block":16,"sub":8}
    ]}"#;

    let (status, first) = http(&addr, "POST", "/v1/sweep", body);
    assert_eq!(status, 200, "{first}");
    let first = json(&first);
    assert_eq!(first.get("total").and_then(Json::as_u64), Some(3));
    assert_eq!(first.get("computed").and_then(Json::as_u64), Some(3));
    assert_eq!(first.get("cached").and_then(Json::as_u64), Some(0));
    let points = first
        .get("points")
        .and_then(Json::as_array)
        .expect("points");
    let blocks: Vec<u64> = points
        .iter()
        .map(|p| {
            p.get("config")
                .and_then(|c| c.get("block"))
                .and_then(Json::as_u64)
                .expect("block")
        })
        .collect();
    assert_eq!(
        blocks,
        [32, 8, 16],
        "points must come back in request order"
    );

    let (status, again) = http(&addr, "POST", "/v1/sweep", body);
    assert_eq!(status, 200, "{again}");
    let again = json(&again);
    assert_eq!(again.get("cached").and_then(Json::as_u64), Some(3));
    assert_eq!(again.get("computed").and_then(Json::as_u64), Some(0));
    let repeat = again
        .get("points")
        .and_then(Json::as_array)
        .expect("points");
    for (a, b) in points.iter().zip(repeat) {
        for field in METRICS {
            assert_eq!(metric_bits(a, field), metric_bits(b, field), "{field}");
        }
    }
    server.stop().expect("clean shutdown");
}

#[test]
fn routing_and_input_validation() {
    let server = Server::start(&ServiceConfig::for_tests()).expect("start");
    let addr = server.addr();

    assert_eq!(http(&addr, "GET", "/nope", "").0, 404);
    assert_eq!(http(&addr, "GET", "/v1/simulate", "").0, 405);
    assert_eq!(http(&addr, "POST", "/v1/simulate", "not json").0, 400);
    let (status, body) = http(
        &addr,
        "POST",
        "/v1/simulate",
        r#"{"model":"enigma","config":{"net":64,"block":8,"sub":4}}"#,
    );
    assert_eq!(status, 400);
    assert!(body.contains("unknown model"), "{body}");
    let (status, body) = http(
        &addr,
        "POST",
        "/v1/simulate",
        r#"{"model":"pdp11","config":{"net":63,"block":8,"sub":4}}"#,
    );
    assert_eq!(status, 400, "{body}");

    let (status, stat) = http(&addr, "GET", "/v1/status", "");
    assert_eq!(status, 200);
    let stat = json(&stat);
    assert_eq!(stat.get("workers").and_then(Json::as_u64), Some(2));
    // The operational summary occache-top reads: integer uptime, replay
    // count and peer summary are always present (a single node without a
    // journal reports zeros).
    assert!(
        stat.get("uptime_s").and_then(Json::as_u64).is_some(),
        "{stat:?}"
    );
    assert_eq!(stat.get("journal_replayed").and_then(Json::as_u64), Some(0));
    assert_eq!(stat.get("peers").and_then(Json::as_u64), Some(0));
    assert_eq!(stat.get("peers_up").and_then(Json::as_u64), Some(0));

    let (status, metrics) = http(&addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    for family in [
        "occache_requests_total",
        "occache_queue_depth",
        "occache_cache_hits_total",
        "occache_request_seconds{quantile=\"0.99\"}",
        "occache_worker_busy_seconds{worker=\"0\"}",
    ] {
        assert!(metrics.contains(family), "missing {family} in:\n{metrics}");
    }
    server.stop().expect("clean shutdown");
}

/// Polls `/v1/ready` until it answers 200 or the deadline passes.
fn wait_ready(addr: &std::net::SocketAddr) {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        if http(addr, "GET", "/v1/ready", "").0 == 200 {
            return;
        }
        assert!(Instant::now() < deadline, "server never became ready");
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn health_is_liveness_and_ready_tracks_warmup_and_drain() {
    let server = Server::start(&ServiceConfig::for_tests()).expect("start");
    let addr = server.addr();

    // Liveness answers from the very first accept.
    let (status, body) = http(&addr, "GET", "/v1/health", "");
    assert_eq!(status, 200, "{body}");
    wait_ready(&addr);

    // Draining: readiness flips to an attributed 503, liveness stays up.
    server.service().begin_drain();
    let (status, body) = http(&addr, "GET", "/v1/ready", "");
    assert_eq!(status, 503, "{body}");
    let parsed = ErrorBody::parse(&body).expect("structured ready error");
    assert_eq!(parsed.code, "draining");
    assert!(!parsed.retryable);
    assert_eq!(http(&addr, "GET", "/v1/health", "").0, 200);
    server.stop().expect("clean shutdown");
}

#[test]
fn mid_request_deadline_answers_408_and_idle_connections_close_silently() {
    let mut config = ServiceConfig::for_tests();
    config.conn_timeout = Some(Duration::from_millis(200));
    let server = Server::start(&config).expect("start");
    let addr = server.addr();

    // A slow-loris half request: the server must answer 408 within the
    // deadline and close, never park the thread.
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("read timeout");
    stream
        .write_all(b"POST /v1/simulate HTTP/1.1\r\nContent-")
        .expect("partial head");
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("server reply");
    let text = String::from_utf8(response).expect("utf-8");
    assert!(text.starts_with("HTTP/1.1 408"), "{text}");
    let body = text.split_once("\r\n\r\n").map(|(_, b)| b).unwrap_or("");
    let parsed = ErrorBody::parse(body).expect("structured 408 body");
    assert_eq!(parsed.code, "request-timeout");
    assert!(parsed.retryable, "a fresh, faster attempt can succeed");

    // An idle connection (no bytes at all) is closed without a response.
    let mut idle = TcpStream::connect(addr).expect("connect idle");
    idle.set_read_timeout(Some(Duration::from_secs(5)))
        .expect("read timeout");
    let mut nothing = Vec::new();
    idle.read_to_end(&mut nothing).expect("silent close");
    assert!(nothing.is_empty(), "{nothing:?}");
    server.stop().expect("clean shutdown");
}

#[test]
fn oversized_requests_are_refused_with_413() {
    let server = Server::start(&ServiceConfig::for_tests()).expect("start");
    let addr = server.addr();

    // A body budget violation is detected from the head alone — the
    // server refuses before reading 5 MB.
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(b"POST /v1/simulate HTTP/1.1\r\nContent-Length: 5000000\r\n\r\n")
        .expect("send oversized head");
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("server reply");
    let text = String::from_utf8(response).expect("utf-8");
    assert!(text.starts_with("HTTP/1.1 413"), "{text}");
    let body = text.split_once("\r\n\r\n").map(|(_, b)| b).unwrap_or("");
    let parsed = ErrorBody::parse(body).expect("structured 413 body");
    assert_eq!(parsed.code, "payload-too-large");
    assert!(!parsed.retryable);
    server.stop().expect("clean shutdown");
}

#[test]
fn circuit_breaker_quarantines_a_repeatedly_failing_point() {
    let mut config = ServiceConfig::for_tests();
    // Every evaluation panics and the supervisor has no retry budget, so
    // each request records one breaker failure for its key.
    config.fault = Some(Arc::new(
        ServeFault::parse("panic-worker:1").expect("fault spec"),
    ));
    config.breaker_threshold = 2;
    let server = Server::start(&config).expect("start");
    let addr = server.addr();
    let body = r#"{"model":"pdp11","refs":1000,"config":{"net":256,"block":16,"sub":8}}"#;

    // Two failing attempts, each an attributed eval-panic with the key.
    let mut key = None;
    for _ in 0..2 {
        let (status, text) = http(&addr, "POST", "/v1/simulate", body);
        assert_eq!(status, 500, "{text}");
        let parsed = ErrorBody::parse(&text).expect("structured eval failure");
        assert_eq!(parsed.code, "eval-panic");
        assert!(parsed.retryable, "a panicked evaluation is retryable");
        assert!(parsed.point_key.is_some(), "failure must carry its key");
        key = parsed.point_key;
    }

    // The third attempt is refused without touching a worker.
    let (status, text) = http(&addr, "POST", "/v1/simulate", body);
    assert_eq!(status, 503, "{text}");
    let parsed = ErrorBody::parse(&text).expect("structured quarantine");
    assert_eq!(parsed.code, "quarantined");
    assert!(!parsed.retryable);
    assert_eq!(parsed.point_key, key, "quarantine names the same key");

    // A sweep containing the quarantined point reports it as a failure
    // with fault attribution instead of evaluating it.
    let sweep = r#"{"model":"pdp11","refs":1000,"points":[{"net":256,"block":16,"sub":8}]}"#;
    let (status, text) = http(&addr, "POST", "/v1/sweep", sweep);
    assert_eq!(status, 200, "{text}");
    let doc = json(&text);
    let failures = doc
        .get("failures")
        .and_then(Json::as_array)
        .expect("failures");
    assert_eq!(failures.len(), 1);
    assert_eq!(
        failures[0].get("fault").and_then(Json::as_str),
        Some("quarantined")
    );

    let (_, metrics) = http(&addr, "GET", "/metrics", "");
    assert!(
        metrics.contains("occache_quarantined_total 2"),
        "simulate + sweep refusals:\n{metrics}"
    );
    server.stop().expect("clean shutdown");
}

#[test]
fn restart_serves_journaled_points_bit_identically() {
    let dir = std::env::temp_dir().join(format!("occache-serve-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("journal dir");
    let mut config = ServiceConfig::for_tests();
    config.journal_dir = Some(dir.to_string_lossy().into_owned());
    let body = r#"{"model":"pdp11","refs":1000,"config":{"net":128,"block":16,"sub":8}}"#;

    let first_run = {
        let server = Server::start(&config).expect("start");
        let (status, text) = http(&server.addr(), "POST", "/v1/simulate", body);
        assert_eq!(status, 200, "{text}");
        server.stop().expect("clean shutdown");
        text
    };

    // A new process (new Server, same journal dir) must answer the same
    // point from disk: cached, never recomputed, bit-identical.
    let server = Server::start(&config).expect("restart");
    let (status, text) = http(&server.addr(), "POST", "/v1/simulate", body);
    assert_eq!(status, 200, "{text}");
    let a = json(&first_run);
    let b = json(&text);
    assert_eq!(
        b.get("cached").and_then(Json::as_bool),
        Some(true),
        "recovered point must come from the journal-warmed cache: {text}"
    );
    for field in METRICS {
        assert_eq!(
            metric_bits(&a, field),
            metric_bits(&b, field),
            "{field} across restart"
        );
    }
    assert_eq!(
        a.get("key").and_then(Json::as_str),
        b.get("key").and_then(Json::as_str)
    );
    assert_eq!(server.service().cache().hits(), 1);
    // The restarted node owns up to the replay in its status summary.
    let (status, stat) = http(&server.addr(), "GET", "/v1/status", "");
    assert_eq!(status, 200);
    assert_eq!(
        json(&stat).get("journal_replayed").and_then(Json::as_u64),
        Some(1),
        "{stat}"
    );
    server.stop().expect("clean shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}
