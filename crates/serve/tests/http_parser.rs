//! Property tests for the HTTP request parser: arbitrary bytes must
//! never panic, torn reads must never yield a premature head, valid
//! requests must survive any chunking, and the documented rejections
//! (oversized heads, bad content-length) must fire.

use occache_serve::http::{
    parse_head, Connection, ParseError, ParseOutcome, ReadOutcome, MAX_HEAD_BYTES,
};
use proptest::prelude::*;

/// A stream that serves a fixed byte script in chunks of at most
/// `chunk` bytes per read, discarding writes — a deterministic stand-in
/// for a socket delivering torn reads.
struct ChunkStream {
    data: Vec<u8>,
    pos: usize,
    chunk: usize,
}

impl std::io::Read for ChunkStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = (self.data.len() - self.pos).min(self.chunk).min(buf.len());
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

impl std::io::Write for ChunkStream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

const PATH_CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789/_-.";

fn path_from(indices: &[u8]) -> String {
    let mut path = String::from("/");
    for &i in indices {
        path.push(PATH_CHARS[i as usize % PATH_CHARS.len()] as char);
    }
    path
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary byte salad must parse to *some* verdict, never panic.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(0u8..=255, 192), len in 0usize..=192) {
        let _ = parse_head(&bytes[..len]);
    }

    /// A prefix of a valid request head is Incomplete, never Ready with
    /// wrong framing — so torn reads can only delay a request, not
    /// corrupt it.
    #[test]
    fn torn_reads_never_yield_a_premature_head(
        indices in proptest::collection::vec(0u8..=255, 12),
        body_len in 0usize..=64,
    ) {
        let path = path_from(&indices);
        let wire = format!(
            "POST {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {body_len}\r\n\r\n"
        );
        let wire = wire.as_bytes();
        for cut in 0..wire.len() {
            prop_assert_eq!(
                parse_head(&wire[..cut]),
                Ok(ParseOutcome::Incomplete),
                "cut at {} of {}", cut, wire.len()
            );
        }
        match parse_head(wire) {
            Ok(ParseOutcome::Ready { head, head_len }) => {
                prop_assert_eq!(head.method.as_str(), "POST");
                prop_assert_eq!(head.target, path);
                prop_assert_eq!(head.content_length, body_len);
                prop_assert_eq!(head_len, wire.len());
            }
            other => prop_assert!(false, "expected Ready, got {:?}", other),
        }
    }

    /// The same request delivered in any chunk size reads back complete
    /// and byte-identical through the connection layer.
    #[test]
    fn any_chunking_round_trips(
        indices in proptest::collection::vec(0u8..=255, 8),
        body in proptest::collection::vec(0u8..=255, 33),
        chunk in 1usize..=48,
    ) {
        let path = path_from(&indices);
        let mut wire = format!(
            "POST {path} HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            body.len()
        )
        .into_bytes();
        wire.extend_from_slice(&body);
        let mut conn = Connection::new(ChunkStream { data: wire, pos: 0, chunk });
        match conn.read_request().expect("chunked read") {
            ReadOutcome::Complete(request) => {
                prop_assert_eq!(request.head.target, path);
                prop_assert_eq!(request.body, body);
            }
            other => prop_assert!(false, "expected Complete, got {:?}", other),
        }
    }

    /// An unterminated head is rejected as soon as it passes the cap —
    /// no matter what filler it carries.
    #[test]
    fn oversized_heads_are_rejected(filler in 0u8..=255, extra in 1usize..=512) {
        let mut wire = b"GET / HTTP/1.1\r\nX-Pad: ".to_vec();
        let filler = if filler == b'\n' { b'a' } else { filler };
        wire.resize(MAX_HEAD_BYTES + extra, filler);
        prop_assert_eq!(parse_head(&wire), Err(ParseError::TooLarge));
    }

    /// A content-length with any non-digit byte is a clean rejection.
    #[test]
    fn bad_content_length_is_rejected(
        digits in proptest::collection::vec(0u8..=9, 4),
        junk_at in 0usize..=4,
        junk in 0u8..=25,
    ) {
        let mut value: String = digits.iter().map(|d| (b'0' + d) as char).collect();
        value.insert(junk_at.min(value.len()), (b'a' + junk) as char);
        let wire = format!("POST / HTTP/1.1\r\nContent-Length: {value}\r\n\r\n");
        prop_assert!(
            matches!(parse_head(wire.as_bytes()), Err(ParseError::Bad(_))),
            "{:?} accepted", value
        );
    }
}
