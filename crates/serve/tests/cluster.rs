//! Three-node cluster tests: a `kill -9` of one node mid-load must
//! leave zero unattributed client errors, and the surviving cluster's
//! results must stay bit-identical to a single-node run of the same
//! points (DESIGN.md §12).
//!
//! Two nodes run in-process; the third runs as a real child process —
//! this same test binary re-executed with `OCCACHE_CLUSTER_HELPER` set,
//! filtered to the [`helper_node`] test — so SIGKILL takes out a whole
//! OS process with its sockets mid-conversation, not a politely drained
//! thread.

use std::collections::BTreeSet;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use occache_core::CacheConfig;
use occache_serve::json::{ErrorBody, Json};
use occache_serve::peer::http_call;
use occache_serve::router::{ranked, route_key, RouterConfig, RouterServer};
use occache_serve::service::{Server, ServiceConfig};

const MODEL: &str = "pdp11";
const REFS: usize = 2_000;
const CALL_TIMEOUT: Duration = Duration::from_secs(10);

/// Reserves `n` distinct loopback ports by binding ephemeral listeners,
/// then releasing them all at once.
fn free_ports(n: usize) -> Vec<u16> {
    let listeners: Vec<std::net::TcpListener> = (0..n)
        .map(|_| std::net::TcpListener::bind("127.0.0.1:0").expect("bind ephemeral"))
        .collect();
    listeners
        .iter()
        .map(|l| l.local_addr().expect("local addr").port())
        .collect()
}

/// The cycled design points: the Table 1 grid at a few net sizes.
fn keyspace() -> Vec<CacheConfig> {
    let mut points = Vec::new();
    for net in [256u64, 512, 1024] {
        for (block, sub) in occache_experiments::sweep::table1_pairs(net, 2) {
            let config = CacheConfig::builder()
                .net_size(net)
                .block_size(block)
                .sub_block_size(sub)
                .word_size(2)
                .build()
                .expect("grid point");
            points.push(config);
        }
    }
    points
}

fn body_for(config: &CacheConfig) -> String {
    format!(
        "{{\"model\":\"{MODEL}\",\"refs\":{REFS},\
         \"config\":{{\"net\":{},\"block\":{},\"sub\":{},\"assoc\":{},\"word\":{}}}}}",
        config.net_size(),
        config.block_size(),
        config.sub_block_size(),
        config.associativity(),
        config.word_size(),
    )
}

/// The bit-pattern digest line for one 200 response.
fn digest_line(body: &str) -> String {
    let doc = Json::parse(body).unwrap_or_else(|e| panic!("unparseable 200 body {body:?}: {e}"));
    let bits = |field: &str| {
        doc.get(field)
            .and_then(Json::as_f64)
            .unwrap_or_else(|| panic!("missing {field} in {body}"))
            .to_bits()
    };
    format!(
        "{} {:016x} {:016x} {:016x} {:016x}",
        doc.get("key").and_then(Json::as_str).expect("key"),
        bits("miss_ratio"),
        bits("traffic_ratio"),
        bits("nibble_traffic_ratio"),
        bits("redundant_load_fraction"),
    )
}

/// One client request under the chaos contract: walk the rendezvous
/// ranking, retrying transport failures on the next survivor. Panics on
/// any unattributed non-200; returns the digest line of the eventual
/// 200.
fn resilient_simulate(config: &CacheConfig, peers: &[String]) -> String {
    let key = route_key(MODEL, REFS, 0, config);
    let body = body_for(config);
    let mut last = String::new();
    for round in 0..10 {
        for addr in ranked(key, peers) {
            match http_call(addr, "POST", "/v1/simulate", body.as_bytes(), CALL_TIMEOUT) {
                Ok((200, reply)) => {
                    let reply = String::from_utf8(reply).expect("utf-8 body");
                    return digest_line(&reply);
                }
                Ok((status, reply)) => {
                    // Every non-200 must carry a structured, attributed
                    // error body — "zero unattributed client errors".
                    let reply = String::from_utf8_lossy(&reply).into_owned();
                    let parsed = ErrorBody::parse(&reply).unwrap_or_else(|why| {
                        panic!("unattributed {status} from {addr}: {reply:?} ({why})")
                    });
                    last = format!("{addr}: {status} {}", parsed.code);
                }
                Err(why) => {
                    // Transport failure — the killed node. Fail over.
                    last = why;
                }
            }
        }
        std::thread::sleep(Duration::from_millis(50 * (round + 1)));
    }
    panic!("no peer answered 200 for {config:?}; last: {last}");
}

/// Waits until `/v1/health` answers 200 at `addr`.
fn await_healthy(addr: &str) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Ok((200, _)) = http_call(addr, "GET", "/v1/health", b"", Duration::from_secs(1)) {
            return;
        }
        assert!(Instant::now() < deadline, "{addr} never became healthy");
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// Builds the in-process node config for one cluster member.
fn node_config(addr: &str, peers: &[String], journal: &std::path::Path) -> ServiceConfig {
    let mut config = ServiceConfig::for_tests();
    config.addr = addr.to_string();
    config.workers = 1;
    config.peers = Some(peers.to_vec());
    config.self_addr = Some(addr.to_string());
    config.journal_dir = Some(journal.to_string_lossy().into_owned());
    config
}

/// Spawns the third node as a child OS process: this test binary,
/// re-run filtered to [`helper_node`] with the cluster environment set.
fn spawn_helper(addr: &str, peers: &str, journal: &std::path::Path) -> Child {
    Command::new(std::env::current_exe().expect("current exe"))
        .args(["helper_node", "--exact", "--nocapture", "--ignored"])
        .env("OCCACHE_CLUSTER_HELPER", "1")
        .env("OCCACHE_SERVE_ADDR", addr)
        .env("OCCACHE_PEERS", peers)
        .env("OCCACHE_SELF", addr)
        .env("OCCACHE_SERVE_WORKERS", "1")
        .env("OCCACHE_SERVE_JOURNAL", journal)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn helper node")
}

/// Not a test of its own: the body of the child process [`spawn_helper`]
/// launches. Serves until killed. `#[ignore]` keeps normal test runs
/// from executing it; the parent passes `--ignored` explicitly.
#[test]
#[ignore = "child-process body for the kill -9 test, not a standalone test"]
fn helper_node() {
    if std::env::var("OCCACHE_CLUSTER_HELPER").is_err() {
        return;
    }
    let config = ServiceConfig::try_from_env().expect("helper config from env");
    let server = Server::start(&config).expect("helper bind");
    // Serve until SIGKILL; the parent owns this process's lifetime.
    loop {
        assert!(!server.finished(), "helper accept loop died");
        std::thread::sleep(Duration::from_millis(100));
    }
}

#[test]
fn kill_nine_mid_load_leaves_no_unattributed_errors() {
    let temp = std::env::temp_dir().join(format!("occache_cluster_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&temp);
    std::fs::create_dir_all(&temp).expect("temp dir");

    let ports = free_ports(3);
    let addrs: Vec<String> = ports.iter().map(|p| format!("127.0.0.1:{p}")).collect();
    let peers_env = addrs.join(",");

    // Nodes A and B in-process, node C as a real child process.
    let node_a = Server::start(&node_config(&addrs[0], &addrs, &temp.join("ja"))).expect("node a");
    let node_b = Server::start(&node_config(&addrs[1], &addrs, &temp.join("jb"))).expect("node b");
    let mut node_c = spawn_helper(&addrs[2], &peers_env, &temp.join("jc"));
    for addr in &addrs {
        await_healthy(addr);
    }

    // Drive the keyspace three times: one full round against the
    // healthy cluster, then kill -9 node C and keep going — the second
    // and third rounds overlap the breaker's detection window and the
    // re-hashed steady state.
    let points = keyspace();
    assert!(points.len() >= 20, "keyspace too small to be interesting");
    let mut cluster_digest = BTreeSet::new();
    for round in 0..3 {
        if round == 1 {
            node_c.kill().expect("SIGKILL node c");
            node_c.wait().expect("reap node c");
        }
        for config in &points {
            cluster_digest.insert(resilient_simulate(config, &addrs));
        }
    }
    assert_eq!(
        cluster_digest.len(),
        points.len(),
        "each design point must digest identically in every round, dead node or not"
    );

    // The same points on a fresh single-node server must be
    // bit-identical — sharding and failover change *where* a point is
    // computed, never *what*.
    let mut single_config = ServiceConfig::for_tests();
    single_config.workers = 1;
    let single = Server::start(&single_config).expect("single node");
    let single_addr = [single.addr().to_string()];
    let single_digest: BTreeSet<String> = points
        .iter()
        .map(|config| resilient_simulate(config, &single_addr))
        .collect();
    assert_eq!(
        cluster_digest, single_digest,
        "cluster results must be bit-identical to a single-node run"
    );

    single.stop().expect("single stop");
    node_a.stop().expect("node a stop");
    node_b.stop().expect("node b stop");
    let _ = std::fs::remove_dir_all(&temp);
}

#[test]
fn restarted_node_rejoins_with_cache_replayed() {
    let temp = std::env::temp_dir().join(format!("occache_rejoin_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&temp);
    std::fs::create_dir_all(&temp).expect("temp dir");

    let ports = free_ports(2);
    let addrs: Vec<String> = ports.iter().map(|p| format!("127.0.0.1:{p}")).collect();
    let node_a = Server::start(&node_config(&addrs[0], &addrs, &temp.join("ja"))).expect("node a");
    let node_b = Server::start(&node_config(&addrs[1], &addrs, &temp.join("jb"))).expect("node b");
    for addr in &addrs {
        await_healthy(addr);
    }

    // Warm every point in, noting which node B owns.
    let points = keyspace();
    let mut owned_by_b = 0usize;
    for config in &points {
        resilient_simulate(config, &addrs);
        if occache_serve::router::owner(route_key(MODEL, REFS, 0, config), &addrs) == addrs[1] {
            owned_by_b += 1;
        }
    }
    assert!(owned_by_b > 0, "rendezvous should give node B some keys");

    // Stop node B (the write-behind journal survives on disk) and
    // restart it on the same address with the same journal.
    node_b.stop().expect("node b stop");
    let node_b = Server::start(&node_config(&addrs[1], &addrs, &temp.join("jb"))).expect("rejoin");
    await_healthy(&addrs[1]);

    // The rejoined node must answer its keys from the replayed journal:
    // cached, computing nothing new.
    let (_, status) = http_call(&addrs[1], "GET", "/v1/status", b"", CALL_TIMEOUT)
        .map(|(s, b)| (s, String::from_utf8_lossy(&b).into_owned()))
        .expect("status");
    let doc = Json::parse(&status).expect("status json");
    let replayed = doc
        .get("cache_entries")
        .and_then(Json::as_u64)
        .expect("cache_entries");
    assert!(
        replayed >= owned_by_b as u64,
        "rejoined node replayed {replayed} entries, owns {owned_by_b}"
    );
    // The replay count itself is a first-class status field, and the
    // clustered node reports its peer summary.
    assert_eq!(
        doc.get("journal_replayed").and_then(Json::as_u64),
        Some(replayed),
        "{status}"
    );
    assert_eq!(
        doc.get("peers").and_then(Json::as_u64),
        Some(addrs.len() as u64),
        "{status}"
    );

    for config in &points {
        resilient_simulate(config, &addrs);
    }
    let (_, metrics) = http_call(&addrs[1], "GET", "/metrics", b"", CALL_TIMEOUT)
        .map(|(s, b)| (s, String::from_utf8_lossy(&b).into_owned()))
        .expect("metrics");
    let computed_after_rejoin = metrics
        .lines()
        .find(|l| l.starts_with("occache_points_computed_total "))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|n| n.parse::<u64>().ok())
        .expect("computed counter");
    assert_eq!(
        computed_after_rejoin, 0,
        "a rejoined node must serve its keys from the replayed journal, not recompute"
    );

    node_a.stop().expect("node a stop");
    node_b.stop().expect("node b stop");
    let _ = std::fs::remove_dir_all(&temp);
}

#[test]
fn router_status_reports_uptime_and_peer_summary() {
    let ports = free_ports(1);
    let addr = format!("127.0.0.1:{}", ports[0]);
    let temp = std::env::temp_dir().join(format!("occache-route-status-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&temp);
    let peers = vec![addr.clone()];
    let node = Server::start(&node_config(&addr, &peers, &temp.join("j"))).expect("node");
    await_healthy(&addr);
    let router = RouterServer::start(&RouterConfig::for_tests(peers)).expect("router");
    let raddr = router.addr().to_string();

    let (status, body) = http_call(&raddr, "GET", "/v1/status", b"", CALL_TIMEOUT)
        .map(|(s, b)| (s, String::from_utf8_lossy(&b).into_owned()))
        .expect("router status");
    assert_eq!(status, 200, "{body}");
    let doc = Json::parse(&body).expect("status json");
    assert_eq!(
        doc.get("service").and_then(Json::as_str),
        Some("occache-route"),
        "{body}"
    );
    // The same operational summary shape as occache-serve: integer
    // uptime, a (vacuous) replay count, and the peer roster.
    assert!(
        doc.get("uptime_s").and_then(Json::as_u64).is_some(),
        "{body}"
    );
    assert_eq!(doc.get("journal_replayed").and_then(Json::as_u64), Some(0));
    assert_eq!(doc.get("peers").and_then(Json::as_u64), Some(1), "{body}");

    router.stop().expect("router stop");
    node.stop().expect("node stop");
    let _ = std::fs::remove_dir_all(&temp);
}
