//! Minimal hand-rolled JSON: enough for the service's request/response
//! bodies, with zero dependencies.
//!
//! The parser is a recursive-descent reader over UTF-8 text with a depth
//! limit; numbers are `f64` (every numeric field the service speaks fits
//! losslessly). The writer side of the service does *not* go through
//! [`Json`] — responses are formatted directly so `f64` metrics can use
//! the `{:?}` shortest-round-trip rendering the checkpoint journal also
//! relies on. [`escape`] is shared by both directions.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Nesting depth beyond which the parser refuses input (stack safety on
/// hostile bodies).
const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (as `f64`).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Keys are unique (last wins), order not preserved.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parses a complete JSON document; trailing non-whitespace is an
    /// error.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message naming the byte offset.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }

    /// Member lookup on an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an exact non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The numeric payload as an exact `usize`.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|n| usize::try_from(n).ok())
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Escapes a string for embedding in a JSON document (without the
/// surrounding quotes).
pub fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// The one structured error shape both sides of the wire speak:
/// the server renders it for every non-200 response and the loadgen
/// client parses it to decide whether a failure is retryable or final.
/// `error` carries the human-readable message; `code` is the stable
/// machine-readable class; `point_key` attributes the failure to a
/// design point when one is involved; `attempt` is which try produced
/// it (the server always says 1, the client stamps its own retry
/// count when reporting); `retryable` is the server's verdict on
/// whether the same request can succeed later.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErrorBody {
    /// Stable machine-readable error class (e.g. `queue-full`,
    /// `request-timeout`, `quarantined`, `eval-panic`).
    pub code: String,
    /// Human-readable detail.
    pub message: String,
    /// The content-addressed point key the failure is attributed to,
    /// when the request got far enough to have one.
    pub point_key: Option<u64>,
    /// Which attempt produced this error (1-based).
    pub attempt: u32,
    /// Whether retrying the identical request can succeed.
    pub retryable: bool,
}

impl ErrorBody {
    /// A fresh error body (attempt 1, no point key).
    pub fn new(code: &str, message: &str, retryable: bool) -> ErrorBody {
        ErrorBody {
            code: code.to_string(),
            message: message.to_string(),
            point_key: None,
            attempt: 1,
            retryable,
        }
    }

    /// Attributes the error to a design point.
    #[must_use]
    pub fn with_key(mut self, key: u64) -> ErrorBody {
        self.point_key = Some(key);
        self
    }

    /// Renders the JSON wire form. The key renders as the same
    /// zero-padded hex string point responses use.
    pub fn render(&self) -> String {
        let key = match self.point_key {
            Some(k) => format!("\"{k:016x}\""),
            None => "null".to_string(),
        };
        format!(
            "{{\"error\":\"{}\",\"code\":\"{}\",\"point_key\":{key},\
             \"attempt\":{},\"retryable\":{}}}",
            escape(&self.message),
            escape(&self.code),
            self.attempt,
            self.retryable,
        )
    }

    /// Parses a wire error body. Tolerates a missing `code` (legacy
    /// `{"error": ...}` bodies read as code `error`, not retryable) but
    /// refuses documents without an `error` message — an unattributed
    /// failure must surface as such, never be guessed into shape.
    ///
    /// # Errors
    ///
    /// A human-readable message when `text` is not JSON or carries no
    /// `error` field.
    pub fn parse(text: &str) -> Result<ErrorBody, String> {
        let doc = Json::parse(text)?;
        let message = doc
            .get("error")
            .and_then(Json::as_str)
            .ok_or("no \"error\" field")?
            .to_string();
        let code = doc
            .get("code")
            .and_then(Json::as_str)
            .unwrap_or("error")
            .to_string();
        let point_key = doc
            .get("point_key")
            .and_then(Json::as_str)
            .and_then(|hex| u64::from_str_radix(hex, 16).ok());
        let attempt = doc
            .get("attempt")
            .and_then(Json::as_u64)
            .map_or(1, |n| n.min(u64::from(u32::MAX)) as u32);
        let retryable = doc
            .get("retryable")
            .and_then(Json::as_bool)
            .unwrap_or(false);
        Ok(ErrorBody {
            code,
            message,
            point_key,
            attempt,
            retryable,
        })
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    if depth > MAX_DEPTH {
        return Err(format!("nesting deeper than {MAX_DEPTH}"));
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(bytes, pos, depth),
        Some(b'[') => parse_array(bytes, pos, depth),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: Json,
) -> Result<Json, String> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(format!("expected `{literal}` at byte {pos}", pos = *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| "non-UTF8 number")?;
    let n: f64 = text
        .parse()
        .map_err(|_| format!("bad number `{text}` at byte {start}"))?;
    if !n.is_finite() {
        return Err(format!("non-finite number `{text}` at byte {start}"));
    }
    Ok(Json::Num(n))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    *pos += 1; // opening quote
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let code = parse_hex4(bytes, *pos + 1)?;
                        *pos += 4;
                        // Surrogate pairs: a high surrogate must be
                        // followed by an escaped low surrogate.
                        let c = if (0xd800..0xdc00).contains(&code) {
                            if bytes.get(*pos + 1) != Some(&b'\\')
                                || bytes.get(*pos + 2) != Some(&b'u')
                            {
                                return Err("lone high surrogate".into());
                            }
                            let low = parse_hex4(bytes, *pos + 3)?;
                            *pos += 6;
                            if !(0xdc00..0xe000).contains(&low) {
                                return Err("bad low surrogate".into());
                            }
                            let combined = 0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00);
                            char::from_u32(combined).ok_or("bad surrogate pair")?
                        } else {
                            char::from_u32(code).ok_or("bad \\u escape")?
                        };
                        out.push(c);
                    }
                    _ => return Err("bad escape".into()),
                }
                *pos += 1;
            }
            Some(&b) if b < 0x20 => return Err("control byte in string".into()),
            Some(_) => {
                // Consume one UTF-8 scalar (input is &str, so boundaries
                // are valid).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|_| "non-UTF8")?;
                let c = rest.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_hex4(bytes: &[u8], at: usize) -> Result<u32, String> {
    let chunk = bytes.get(at..at + 4).ok_or("truncated \\u escape")?;
    let text = std::str::from_utf8(chunk).map_err(|_| "non-UTF8 \\u escape")?;
    u32::from_str_radix(text, 16).map_err(|_| format!("bad \\u escape `{text}`"))
}

fn parse_array(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    *pos += 1; // [
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos, depth + 1)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected , or ] at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    *pos += 1; // {
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected : at byte {pos}", pos = *pos));
        }
        *pos += 1;
        let value = parse_value(bytes, pos, depth + 1)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(format!("expected , or }} at byte {pos}", pos = *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = r#"{"model":"pdp11","refs":20000,"config":{"net":1024,"block":16,"sub":8},"tags":["a","b"],"warm":true,"none":null}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.get("model").and_then(Json::as_str), Some("pdp11"));
        assert_eq!(v.get("refs").and_then(Json::as_usize), Some(20000));
        assert_eq!(
            v.get("config")
                .and_then(|c| c.get("net"))
                .and_then(Json::as_u64),
            Some(1024)
        );
        assert_eq!(
            v.get("tags").and_then(Json::as_array).map(<[Json]>::len),
            Some(2)
        );
        assert_eq!(v.get("warm").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("none"), Some(&Json::Null));
    }

    #[test]
    fn floats_round_trip_through_debug_format() {
        // The service renders f64 with {:?}; the parser must read those
        // renderings back to the identical bits.
        for x in [0.123456789012345_f64, 1.0 / 3.0, 6e-9, 1e300] {
            let text = format!("{x:?}");
            let parsed = Json::parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(parsed.to_bits(), x.to_bits(), "{text}");
        }
    }

    #[test]
    fn error_body_round_trips_both_directions() {
        let body = ErrorBody::new("queue-full", "queue full; retry shortly", true).with_key(0xabc);
        let wire = body.render();
        // Server side: the render is a valid JSON document with the
        // documented shape.
        let doc = Json::parse(&wire).unwrap();
        assert_eq!(doc.get("code").and_then(Json::as_str), Some("queue-full"));
        assert_eq!(
            doc.get("point_key").and_then(Json::as_str),
            Some("0000000000000abc")
        );
        assert_eq!(doc.get("retryable").and_then(Json::as_bool), Some(true));
        // Client side: the parse reads the identical value back.
        assert_eq!(ErrorBody::parse(&wire), Ok(body));

        // Legacy bodies still attribute, conservatively non-retryable.
        let legacy = ErrorBody::parse(r#"{"error":"queue full"}"#).unwrap();
        assert_eq!(legacy.code, "error");
        assert!(!legacy.retryable);
        assert_eq!(legacy.point_key, None);
        // An unattributed document is an error, not a guess.
        assert!(ErrorBody::parse(r#"{"status":"bad"}"#).is_err());
        assert!(ErrorBody::parse("not json").is_err());
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,2",
            "{\"a\":}",
            "{\"a\" 1}",
            "nul",
            "1 2",
            "\"\\u12\"",
            "\"\\ud800\"",
            "{\"a\":1}}",
            "NaN",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} parsed");
        }
    }

    #[test]
    fn deep_nesting_is_rejected_not_overflowed() {
        let deep = "[".repeat(100_000) + &"]".repeat(100_000);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn escape_round_trips() {
        let hairy = "a\"b\\c\nd\te\u{1}f";
        let doc = format!("\"{}\"", escape(hairy));
        assert_eq!(Json::parse(&doc).unwrap().as_str(), Some(hairy));
    }
}
