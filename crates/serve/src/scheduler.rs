//! The shared worker-pool scheduler — re-exported from
//! [`occache_runtime::queue`], where the bounded queue, fixed thread
//! pool and batch coalescing now live (shared with the batch harness's
//! supervised executor). This module keeps the historical import path
//! (`occache_serve::scheduler::*`) for the HTTP layer and downstream
//! callers; it contains no logic of its own.
//!
//! Submitters enqueue [`Job`]s and receive results over each job's own
//! channel; when the queue is full, [`Scheduler::submit`] refuses with
//! [`SubmitError::Busy`] so the HTTP layer can turn that into a 429 with
//! `Retry-After`. Workers coalesce compatible jobs (same trace set by
//! identity, same warm-up) into one grid so the multisim engine shares
//! trace passes, and every point runs under the supervisor policy.

pub use occache_runtime::queue::{Job, JobResult, Priority, Scheduler, SubmitError, TraceSet};
