//! The `occache-route` binary: the thin cluster front door. Binds,
//! routes requests to the shard list, drains on SIGINT/SIGTERM.

use std::process::ExitCode;
use std::time::Duration;

use occache_runtime::interrupt;
use occache_serve::router::{RouterConfig, RouterServer};

fn main() -> ExitCode {
    interrupt::install();
    let config = match RouterConfig::try_from_env() {
        Ok(c) => c,
        Err(why) => {
            eprintln!("occache-route: {why}");
            return ExitCode::from(2);
        }
    };
    let server = match RouterServer::start(&config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("occache-route: could not bind {}: {e}", config.addr);
            return ExitCode::from(1);
        }
    };
    println!("occache-route listening on {}", server.addr());
    println!(
        "peers={} peer_timeout={}s retries={} chaos={}",
        config.peers.join(","),
        config.policy.timeout.as_secs_f64(),
        config.policy.retries,
        if config.fault.is_some() { "on" } else { "off" },
    );
    while !interrupt::requested() && !server.finished() {
        std::thread::sleep(Duration::from_millis(50));
    }
    eprintln!("occache-route: draining in-flight work");
    match server.stop() {
        Ok(()) => {
            eprintln!("occache-route: shut down cleanly");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("occache-route: accept loop failed: {e}");
            ExitCode::from(1)
        }
    }
}
