//! The `occache-serve` binary: bind, serve, drain on SIGINT/SIGTERM.

use std::process::ExitCode;
use std::time::Duration;

use occache_runtime::interrupt;
use occache_serve::service::{Server, ServiceConfig};

fn main() -> ExitCode {
    interrupt::install();
    let config = match ServiceConfig::try_from_env() {
        Ok(c) => c,
        Err(why) => {
            eprintln!("occache-serve: {why}");
            return ExitCode::from(2);
        }
    };
    let server = match Server::start(&config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("occache-serve: could not bind {}: {e}", config.addr);
            return ExitCode::from(1);
        }
    };
    println!("occache-serve listening on {}", server.addr());
    println!(
        "workers={} queue={} batch={} cache={}",
        config.workers, config.queue_capacity, config.max_batch, config.cache_capacity
    );
    println!(
        "conn_timeout={} journal={} breaker={} chaos={}",
        config
            .conn_timeout
            .map_or("off".to_string(), |t| format!("{}s", t.as_secs_f64())),
        config.journal_dir.as_deref().unwrap_or("off"),
        config.breaker_threshold,
        if config.fault.is_some() { "on" } else { "off" },
    );
    while !interrupt::requested() && !server.finished() {
        std::thread::sleep(Duration::from_millis(50));
    }
    eprintln!("occache-serve: draining in-flight work");
    match server.stop() {
        Ok(()) => {
            eprintln!("occache-serve: shut down cleanly");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("occache-serve: accept loop failed: {e}");
            ExitCode::from(1)
        }
    }
}
