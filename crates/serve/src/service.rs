//! The HTTP service: routing, request handling, the trace-set store,
//! and the accept loop with graceful shutdown.
//!
//! Endpoints:
//!
//! * `POST /v1/simulate` — one design point against a named workload
//!   model; served from the result cache when the content-addressed key
//!   matches, otherwise scheduled on the worker pool.
//! * `POST /v1/sweep` — a grid of points in one request; cache-checked
//!   per point, the misses submitted back-to-back so a worker coalesces
//!   them into multisim engine slices.
//! * `GET /v1/status` — one JSON object for humans and health checks.
//! * `GET /v1/health` — liveness: 200 whenever the process can answer.
//! * `GET /v1/ready` — readiness: 503 until the warm start finishes and
//!   again once draining begins.
//! * `GET /metrics` — Prometheus-style text exposition.
//!
//! Failure model (DESIGN.md §10): every connection runs under a
//! wall-clock deadline (`OCCACHE_SERVE_CONN_TIMEOUT`) so a slow-loris
//! client gets a 408 and a close, never a parked thread; admission
//! control sheds bulk (grid) work at half the queue capacity and
//! interactive points only when it is full, with a queue-depth-derived
//! `Retry-After`; a per-point circuit breaker ([`crate::breaker`])
//! quarantines keys that keep failing; computed points stream to a
//! write-behind journal ([`crate::persist`]) so a crashed-and-restarted
//! server answers them from disk bit-identically; and every error is a
//! structured [`ErrorBody`] with fault attribution.
//!
//! Shutdown: the accept loop watches both [`Server::stop`] and the
//! process-wide SIGINT/SIGTERM flag (`occache_runtime::interrupt`),
//! stops accepting, waits for in-flight connections to finish, then
//! drains and joins the scheduler.

use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, RecvTimeoutError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use occache_core::CacheConfig;
use occache_experiments::sweep::materialize;
use occache_runtime::config::{env_timeout, env_usize_opt};
use occache_runtime::eval::{DesignPoint, PointError, PointFault};
use occache_runtime::executor::SupervisorPolicy;
use occache_runtime::fmt::fmt_f64_exact;
use occache_runtime::journal::Entry;
use occache_runtime::keys::{point_key, trace_fingerprint};
use occache_workloads::WorkloadSpec;

use crate::breaker::{Breaker, DEFAULT_THRESHOLD};
use crate::cache::ResultCache;
use crate::fault::ServeFault;
use crate::http::{Connection, ParseError, ReadOutcome, Request};
use crate::json::{escape, ErrorBody, Json};
use crate::metrics::{Counters, Gauges, PeerStats};
use crate::peer::{PeerPolicy, PeerSet};
use crate::persist::WriteBehind;
use crate::router::{ranked, render_peer_request, route_key};
use crate::scheduler::{Job, Priority, Scheduler, SubmitError, TraceSet};

/// How long a connection may sit idle (or mid-read) before the server
/// gives up on it.
const READ_TIMEOUT: Duration = Duration::from_secs(5);

/// How long a request handler waits for the scheduler to answer before
/// returning 503. Generous: the supervisor's own per-point deadline
/// fires first when one is configured.
const REPLY_TIMEOUT: Duration = Duration::from_secs(300);

/// Accept-loop poll interval (shutdown-flag latency bound).
const ACCEPT_POLL: Duration = Duration::from_millis(25);

/// How long shutdown waits for in-flight connections to finish.
const DRAIN_DEADLINE: Duration = Duration::from_secs(10);

/// Service tuning, normally read from the environment.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Bind address (`OCCACHE_SERVE_ADDR`, default `127.0.0.1:7807`;
    /// port 0 picks an ephemeral port).
    pub addr: String,
    /// Scheduler worker threads (`OCCACHE_SERVE_WORKERS`, falling back
    /// to `OCCACHE_JOBS`, then hardware parallelism).
    pub workers: usize,
    /// Bounded queue capacity (`OCCACHE_SERVE_QUEUE`, default 256).
    pub queue_capacity: usize,
    /// Max design points coalesced per evaluation
    /// (`OCCACHE_SERVE_BATCH`, default 64).
    pub max_batch: usize,
    /// Result-cache capacity in entries (`OCCACHE_SERVE_CACHE`, default
    /// 65536).
    pub cache_capacity: usize,
    /// Default references per trace when a request omits `refs`
    /// (`OCCACHE_REFS`, default the paper's 1 million).
    pub default_refs: usize,
    /// Results directory whose `.checkpoint/` journals warm-start the
    /// cache (`OCCACHE_SERVE_WARM`; unset ⇒ no warm start).
    pub warm_start: Option<String>,
    /// Supervisor policy for evaluations (deadline, retries).
    pub policy: SupervisorPolicy,
    /// Per-connection wall-clock deadline
    /// (`OCCACHE_SERVE_CONN_TIMEOUT`, default 5 s; `0`/`off` disables).
    pub conn_timeout: Option<Duration>,
    /// Directory for the write-behind result journal
    /// (`OCCACHE_SERVE_JOURNAL`; unset ⇒ no journalling, no crash
    /// recovery). The journal lands at `<dir>/.checkpoint/serve.jsonl`
    /// and also warm-starts the cache on restart.
    pub journal_dir: Option<String>,
    /// Consecutive failures per point key before the circuit breaker
    /// quarantines it (`OCCACHE_SERVE_BREAKER`, default 2; 0 disables).
    pub breaker_threshold: u32,
    /// Deterministic chaos injection (`OCCACHE_SERVE_FAULT`; unset ⇒
    /// none).
    pub fault: Option<Arc<ServeFault>>,
    /// The cluster's static peer list (`OCCACHE_PEERS`; unset ⇒
    /// single-node, no fill, no probes).
    pub peers: Option<Vec<String>>,
    /// This node's own entry in `peers` (`OCCACHE_SELF`; required when
    /// `peers` is set).
    pub self_addr: Option<String>,
    /// Deadline/retry/breaker policy for outbound peer calls
    /// (`OCCACHE_PEER_TIMEOUT`, `OCCACHE_PEER_RETRIES`).
    pub peer_policy: PeerPolicy,
}

impl ServiceConfig {
    /// Reads the configuration from the environment.
    ///
    /// # Errors
    ///
    /// Returns a message naming the malformed variable.
    pub fn try_from_env() -> Result<ServiceConfig, String> {
        let peers = occache_runtime::config::try_peers()?;
        let workers = match env_usize_opt("OCCACHE_SERVE_WORKERS")? {
            Some(n) if n > 0 => n,
            Some(_) | None => occache_runtime::config::try_jobs()?.unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(4)
            }),
        };
        Ok(ServiceConfig {
            addr: std::env::var("OCCACHE_SERVE_ADDR")
                .unwrap_or_else(|_| "127.0.0.1:7807".to_string()),
            workers,
            queue_capacity: env_usize_opt("OCCACHE_SERVE_QUEUE")?.unwrap_or(256).max(1),
            max_batch: env_usize_opt("OCCACHE_SERVE_BATCH")?.unwrap_or(64).max(1),
            cache_capacity: env_usize_opt("OCCACHE_SERVE_CACHE")?
                .unwrap_or(65_536)
                .max(1),
            default_refs: occache_experiments::sweep::try_trace_len()?,
            warm_start: std::env::var("OCCACHE_SERVE_WARM")
                .ok()
                .filter(|s| !s.is_empty()),
            policy: SupervisorPolicy::try_from_env()?,
            conn_timeout: env_timeout("OCCACHE_SERVE_CONN_TIMEOUT", Some(READ_TIMEOUT))?,
            journal_dir: std::env::var("OCCACHE_SERVE_JOURNAL")
                .ok()
                .filter(|s| !s.is_empty()),
            breaker_threshold: env_usize_opt("OCCACHE_SERVE_BREAKER")?
                .map_or(DEFAULT_THRESHOLD, |n| n.min(u32::MAX as usize) as u32),
            fault: ServeFault::try_from_env()?.map(Arc::new),
            self_addr: match &peers {
                Some(list) => Some(occache_runtime::config::try_self_addr(list)?),
                None => None,
            },
            peers,
            peer_policy: PeerPolicy::try_from_env()?,
        })
    }

    /// A small configuration for tests: ephemeral port, tiny defaults,
    /// no deadline, no warm start.
    pub fn for_tests() -> ServiceConfig {
        ServiceConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_capacity: 64,
            max_batch: 64,
            cache_capacity: 1024,
            default_refs: 2_000,
            warm_start: None,
            policy: SupervisorPolicy::disabled(),
            conn_timeout: Some(Duration::from_secs(5)),
            journal_dir: None,
            breaker_threshold: DEFAULT_THRESHOLD,
            fault: None,
            peers: None,
            self_addr: None,
            peer_policy: PeerPolicy::for_tests(),
        }
    }
}

/// The shared service state behind every connection thread.
#[derive(Debug)]
pub struct Service {
    scheduler: Scheduler,
    cache: ResultCache,
    counters: Counters,
    traces: Mutex<HashMap<(String, usize), Arc<TraceSet>>>,
    default_refs: usize,
    started: Instant,
    breaker: Breaker,
    persist: Option<WriteBehind>,
    peers: Option<Arc<PeerSet>>,
    fault: Option<Arc<ServeFault>>,
    conn_timeout: Option<Duration>,
    warm_dir: Option<String>,
    ready: AtomicBool,
    draining: AtomicBool,
    journal_replayed: usize,
}

impl Service {
    /// Builds the service: starts the worker pool, opens the
    /// write-behind journal (recovering previously computed points into
    /// the cache), and remembers the warm-start directory for
    /// [`Service::warm_load`].
    pub fn new(config: &ServiceConfig) -> Service {
        let mut policy = config.policy.clone();
        if let Some(plan) = config.fault.as_ref().and_then(|f| f.worker_fault()) {
            policy.fault = plan;
        }
        let mut persist = None;
        let mut journal_replayed = 0;
        let cache = ResultCache::new(config.cache_capacity);
        if let Some(dir) = &config.journal_dir {
            match WriteBehind::open(std::path::Path::new(dir)) {
                Ok((wb, recovered)) => {
                    let n = recovered.len();
                    journal_replayed = n;
                    for (key, entry) in recovered {
                        cache.insert(key, entry);
                    }
                    if n > 0 {
                        eprintln!("crash recovery: {n} point(s) restored from {dir} journal");
                    }
                    persist = Some(wb);
                }
                Err(e) => {
                    eprintln!("write-behind journal in {dir} unavailable ({e}); serving without");
                }
            }
        }
        Service {
            scheduler: Scheduler::new(
                config.workers,
                config.queue_capacity,
                config.max_batch,
                policy,
            ),
            cache,
            counters: Counters::default(),
            traces: Mutex::new(HashMap::new()),
            default_refs: config.default_refs,
            started: Instant::now(),
            breaker: Breaker::new(config.breaker_threshold),
            persist,
            peers: config.peers.clone().map(|peers| {
                PeerSet::start(
                    peers,
                    config.self_addr.clone(),
                    config.peer_policy.clone(),
                    config.fault.clone(),
                )
            }),
            fault: config.fault.clone(),
            conn_timeout: config.conn_timeout,
            warm_dir: config.warm_start.clone(),
            ready: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            journal_replayed,
        }
    }

    /// Runs the (possibly slow) warm start from checkpoint journals and
    /// flips the readiness flag. [`Server::start`] calls this on a
    /// background thread so `/v1/health` answers while the cache warms.
    pub fn warm_load(&self) {
        if let Some(dir) = &self.warm_dir {
            match self.cache.warm_start(std::path::Path::new(dir)) {
                Ok(n) => eprintln!("warm start: loaded {n} point(s) from {dir}/.checkpoint"),
                Err(e) => eprintln!("warm start from {dir} failed ({e}); starting cold"),
            }
        }
        self.ready.store(true, Ordering::SeqCst);
    }

    /// Whether the service would answer `/v1/ready` with 200.
    pub fn ready(&self) -> bool {
        self.ready.load(Ordering::SeqCst)
            && !self.draining.load(Ordering::SeqCst)
            && !occache_runtime::interrupt::requested()
    }

    /// Marks the service as draining: `/v1/ready` flips to 503 so a
    /// load balancer stops routing here while in-flight work finishes.
    pub fn begin_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
    }

    /// The result cache (integration tests inspect it).
    pub fn cache(&self) -> &ResultCache {
        &self.cache
    }

    /// The peer set, when this node runs in a cluster (tests inspect
    /// breaker state).
    pub fn peer_set(&self) -> Option<&Arc<PeerSet>> {
        self.peers.as_ref()
    }

    /// Materialises (or recalls) the named model at `refs` references
    /// per trace. Generation happens under the store lock: concurrent
    /// first requests for the same set wait instead of duplicating the
    /// work.
    fn trace_set(&self, model: &str, refs: usize) -> Result<Arc<TraceSet>, String> {
        let specs = WorkloadSpec::set_by_name(model).ok_or_else(|| {
            format!(
                "unknown model {model:?} (sets: {}; any Table 2-5 trace name also works)",
                WorkloadSpec::set_names().join(", ")
            )
        })?;
        let key = (model.to_ascii_lowercase(), refs);
        let mut store = self.traces.lock().expect("trace store lock");
        if let Some(set) = store.get(&key) {
            return Ok(Arc::clone(set));
        }
        let traces = materialize(&specs, refs);
        let fingerprint = trace_fingerprint(&traces);
        let set = Arc::new(TraceSet {
            traces,
            fingerprint,
        });
        store.insert(key, Arc::clone(&set));
        Ok(set)
    }

    /// Handles one parsed request, returning `(status, content_type,
    /// extra headers, body)`.
    fn handle(
        &self,
        request: &Request,
    ) -> (u16, &'static str, Vec<(&'static str, String)>, String) {
        self.counters.requests.bump();
        let path = request
            .head
            .target
            .split('?')
            .next()
            .unwrap_or(&request.head.target);
        let method = request.head.method.as_str();
        let started = Instant::now();
        let (status, body) = match (method, path) {
            ("POST", "/v1/simulate") => {
                self.counters.simulate.bump();
                let out = self.simulate(&request.body);
                self.counters.latency.record(started.elapsed());
                out
            }
            ("POST", "/v1/sweep") => {
                self.counters.sweep.bump();
                let out = self.sweep(&request.body);
                self.counters.latency.record(started.elapsed());
                out
            }
            ("GET", "/v1/status") => {
                self.counters.scrapes.bump();
                (200, self.status_json())
            }
            ("GET", "/v1/health") => {
                // Liveness: answering at all is the signal.
                (200, "{\"status\":\"ok\"}".to_string())
            }
            ("GET", "/v1/ready") => {
                if self.ready() {
                    (200, "{\"ready\":true}".to_string())
                } else if self.draining.load(Ordering::SeqCst)
                    || occache_runtime::interrupt::requested()
                {
                    (503, err("draining", "service is draining", false))
                } else {
                    (503, err("warm-starting", "warm start in progress", true))
                }
            }
            ("GET", "/metrics") => {
                self.counters.scrapes.bump();
                let faults = self.fault.as_ref().map(|f| f.injected());
                let peer_stats = self.peers.as_ref().map(|p| PeerStats {
                    states: p.state_gauge(),
                    down_total: p.down_total(),
                    probe_failures: p.probe_failures(),
                    calls: p.calls_made(),
                });
                let text = crate::metrics::render(
                    &self.counters,
                    self.gauges(),
                    &self.scheduler.worker_busy(),
                    faults.as_ref().map_or(&[], |f| &f[..]),
                    peer_stats.as_ref(),
                );
                return (200, "text/plain; version=0.0.4", Vec::new(), text);
            }
            (
                _,
                "/v1/simulate" | "/v1/sweep" | "/v1/status" | "/v1/health" | "/v1/ready"
                | "/metrics",
            ) => (405, err("method-not-allowed", "method not allowed", false)),
            _ => (404, err("not-found", "no such endpoint", false)),
        };
        match status {
            400..=499 => self.counters.client_errors.bump(),
            500..=599 => self.counters.server_errors.bump(),
            _ => {}
        }
        let mut headers = Vec::new();
        if status == 429 {
            self.counters.rejected.bump();
            headers.push((
                "Retry-After",
                self.scheduler.suggested_retry_after().to_string(),
            ));
        }
        (status, "application/json", headers, body)
    }

    fn gauges(&self) -> Gauges {
        Gauges {
            queue_depth: self.scheduler.queue_depth(),
            workers: self.scheduler.workers(),
            workers_busy: self.scheduler.busy_workers(),
            cache_entries: self.cache.len(),
            cache_hits: self.cache.hits(),
            cache_misses: self.cache.misses(),
            uptime_seconds: self.started.elapsed().as_secs_f64(),
            ready: self.ready(),
            draining: self.draining.load(Ordering::SeqCst),
            retry_after: self.scheduler.suggested_retry_after(),
        }
    }

    fn status_json(&self) -> String {
        let g = self.gauges();
        // Peer summary: how many cluster peers this node knows and how
        // many its breakers currently consider routable. A single node
        // reports 0/0.
        let (peers, peers_up) = match &self.peers {
            Some(set) => {
                let addrs = set.addrs();
                let up = addrs.iter().filter(|a| set.available(a)).count();
                (addrs.len(), up)
            }
            None => (0, 0),
        };
        format!(
            "{{\"service\":\"occache-serve\",\"queue_depth\":{},\"workers\":{},\
             \"workers_busy\":{},\"cache_entries\":{},\"cache_hits\":{},\
             \"cache_misses\":{},\"uptime_seconds\":{:?},\"uptime_s\":{},\"ready\":{},\
             \"draining\":{},\"retry_after\":{},\"quarantined\":{},\
             \"journal_replayed\":{},\"peers\":{},\"peers_up\":{}}}",
            g.queue_depth,
            g.workers,
            g.workers_busy,
            g.cache_entries,
            g.cache_hits,
            g.cache_misses,
            g.uptime_seconds,
            self.started.elapsed().as_secs(),
            g.ready,
            g.draining,
            g.retry_after,
            self.breaker.tripped(),
            self.journal_replayed,
            peers,
            peers_up,
        )
    }

    /// Records a computed point everywhere it belongs: the cache, the
    /// write-behind journal, the counters.
    fn commit_point(&self, key: u64, entry: Entry) {
        self.cache.insert(key, entry);
        self.counters.points_computed.bump();
        if let Some(persist) = &self.persist {
            persist.record(key, entry);
            self.counters.journal_appends.bump();
        }
        self.breaker.record_success(key);
    }

    /// Warm-cache fill: asks each remote owner for this request's
    /// missing points before computing anything locally. Points that
    /// come back are committed as fills; points whose owner is down,
    /// self, or whose fill call failed stay missing and fall through to
    /// the local scheduler (counted as steals when a remote owner should
    /// have had them). Returns how many points were filled.
    fn peer_fill(
        &self,
        peers: &PeerSet,
        parsed: &PointRequest,
        missing: &[(CacheConfig, u64)],
    ) -> usize {
        let addrs = peers.addrs();
        let mut groups: HashMap<String, Vec<(CacheConfig, u64)>> = HashMap::new();
        for (config, key) in missing {
            let rkey = route_key(&parsed.model, parsed.refs, parsed.warmup, config);
            let order = ranked(rkey, &addrs);
            let Some(&owner) = order.first() else {
                continue;
            };
            if peers.is_self(owner) {
                continue; // ours to compute; no fill, no steal
            }
            if !peers.available(owner) {
                self.counters.peer_steal.bump();
                continue;
            }
            groups
                .entry(owner.to_string())
                .or_default()
                .push((*config, *key));
        }
        let mut filled = 0usize;
        for (addr, points) in &groups {
            let configs: Vec<CacheConfig> = points.iter().map(|(c, _)| *c).collect();
            let wire =
                render_peer_request(&parsed.model, parsed.refs, parsed.warmup, &configs, false);
            if let Ok((200, reply)) = peers.call(addr, "POST", "/v1/sweep", wire.as_bytes()) {
                filled += self.absorb_fill(&reply);
            }
            // Whatever the owner did not deliver is stolen: computed
            // here even though the key hashes elsewhere.
            for (_, key) in points {
                if !self.cache.contains(*key) {
                    self.counters.peer_steal.bump();
                }
            }
        }
        filled
    }

    /// Parses a peer's sweep response and commits every returned point
    /// as a fill: cached and journalled (so a crash-restart replays it),
    /// but *not* counted computed — `occache_points_computed_total`
    /// stays a truthful measure of local scheduler work. The `f64`
    /// metrics round-trip bit-exactly because both sides render with
    /// [`fmt_f64_exact`].
    fn absorb_fill(&self, reply: &[u8]) -> usize {
        let Ok(text) = std::str::from_utf8(reply) else {
            return 0;
        };
        let Ok(doc) = Json::parse(text) else {
            return 0;
        };
        let Some(points) = doc.get("points").and_then(Json::as_array) else {
            return 0;
        };
        let mut filled = 0usize;
        for p in points {
            let Some(key) = p
                .get("key")
                .and_then(Json::as_str)
                .and_then(|h| u64::from_str_radix(h, 16).ok())
            else {
                continue;
            };
            let metric = |name: &str| p.get(name).and_then(Json::as_f64);
            let (Some(miss), Some(traffic), Some(nibble), Some(redundant)) = (
                metric("miss_ratio"),
                metric("traffic_ratio"),
                metric("nibble_traffic_ratio"),
                metric("redundant_load_fraction"),
            ) else {
                continue;
            };
            let entry = Entry {
                miss,
                traffic,
                nibble,
                redundant,
            };
            if self.cache.insert(key, entry) {
                filled += 1;
                self.counters.peer_fill_points.bump();
                if let Some(persist) = &self.persist {
                    persist.record(key, entry);
                    self.counters.journal_appends.bump();
                }
            }
        }
        filled
    }

    /// `POST /v1/simulate`: one design point, interactive lane.
    fn simulate(&self, body: &[u8]) -> (u16, String) {
        let parsed = match parse_point_request(body, self.default_refs) {
            Ok(p) => p,
            Err(why) => return (400, err("bad-request", &why, false)),
        };
        let set = match self.trace_set(&parsed.model, parsed.refs) {
            Ok(s) => s,
            Err(why) => return (400, err("bad-request", &why, false)),
        };
        let config = match parsed.configs.first() {
            Some(c) => *c,
            None => return (400, err("bad-request", "no config given", false)),
        };
        if parsed.fill {
            self.counters.peer_fill_served.bump();
        }
        let key = point_key(&config, set.fingerprint, parsed.warmup);
        if let Some(entry) = self.cache.get(key) {
            self.counters.points_cached.bump();
            return (200, point_json(&parsed, config, key, &entry, true));
        }
        // Miss: if another shard owns this key, ask it before computing
        // (`peer_fill` requests themselves never fan out further).
        if !parsed.fill {
            if let Some(peers) = &self.peers {
                if self.peer_fill(peers, &parsed, &[(config, key)]) > 0 {
                    if let Some(entry) = self.cache.get(key) {
                        self.counters.points_cached.bump();
                        return (200, point_json(&parsed, config, key, &entry, true));
                    }
                }
            }
        }
        if self.breaker.is_quarantined(key) {
            self.counters.quarantined.bump();
            return (
                503,
                ErrorBody::new(
                    "quarantined",
                    "point keeps failing; circuit breaker is open",
                    false,
                )
                .with_key(key)
                .render(),
            );
        }
        let (tx, rx) = channel();
        let submit = self.scheduler.submit(Job {
            config,
            traces: Arc::clone(&set),
            warmup: parsed.warmup,
            priority: Priority::Interactive,
            key,
            reply: tx,
        });
        match submit {
            Err(SubmitError::Busy) => {
                self.counters.shed_interactive.bump();
                return (429, err("queue-full", "queue full; retry shortly", true));
            }
            Err(SubmitError::Closed) => {
                return (503, err("draining", "service is shutting down", false))
            }
            Ok(()) => {}
        }
        match rx.recv_timeout(REPLY_TIMEOUT) {
            Ok(result) => match result.result {
                Ok(point) => {
                    let entry = Entry::of(&point);
                    self.commit_point(key, entry);
                    (200, point_json(&parsed, config, key, &entry, false))
                }
                Err(e) => {
                    self.breaker.record_failure(key);
                    (500, point_error_body(&e, key))
                }
            },
            Err(RecvTimeoutError::Timeout | RecvTimeoutError::Disconnected) => (
                503,
                ErrorBody::new(
                    "evaluation-timeout",
                    "evaluation did not finish in time",
                    false,
                )
                .with_key(key)
                .render(),
            ),
        }
    }

    /// `POST /v1/sweep`: a grid in one request, bulk lane (shed first
    /// under pressure).
    fn sweep(&self, body: &[u8]) -> (u16, String) {
        let parsed = match parse_point_request(body, self.default_refs) {
            Ok(p) => p,
            Err(why) => return (400, err("bad-request", &why, false)),
        };
        if parsed.configs.is_empty() {
            return (400, err("bad-request", "empty grid", false));
        }
        let set = match self.trace_set(&parsed.model, parsed.refs) {
            Ok(s) => s,
            Err(why) => return (400, err("bad-request", &why, false)),
        };
        if parsed.fill {
            self.counters.peer_fill_served.bump();
        }
        let keys: Vec<u64> = parsed
            .configs
            .iter()
            .map(|c| point_key(c, set.fingerprint, parsed.warmup))
            .collect();
        // Fill pass: batch-ask each remote owner for the points it
        // should already hold, so the cache pass below hits instead of
        // recomputing another shard's work.
        if !parsed.fill {
            if let Some(peers) = &self.peers {
                let missing: Vec<(CacheConfig, u64)> = keys
                    .iter()
                    .zip(&parsed.configs)
                    .filter(|(key, _)| !self.cache.contains(**key))
                    .map(|(key, config)| (*config, *key))
                    .collect();
                if !missing.is_empty() {
                    self.peer_fill(peers, &parsed, &missing);
                }
            }
        }
        // Cache pass first, then submit every miss back-to-back so a
        // worker claims them as one coalesced batch.
        let mut slots: Vec<Option<(Entry, bool)>> = Vec::with_capacity(keys.len());
        for &key in &keys {
            slots.push(self.cache.get(key).map(|e| (e, true)));
        }
        let (tx, rx) = channel();
        let mut pending = 0usize;
        let mut failures: Vec<PointError> = Vec::new();
        for (i, &key) in keys.iter().enumerate() {
            if slots[i].is_some() {
                continue;
            }
            if self.breaker.is_quarantined(key) {
                self.counters.quarantined.bump();
                failures.push(PointError {
                    config: parsed.configs[i],
                    fault: PointFault::Quarantined,
                    message: "point keeps failing; circuit breaker is open".to_string(),
                });
                continue;
            }
            let submit = self.scheduler.submit(Job {
                config: parsed.configs[i],
                traces: Arc::clone(&set),
                warmup: parsed.warmup,
                priority: Priority::Bulk,
                key,
                reply: tx.clone(),
            });
            match submit {
                Ok(()) => pending += 1,
                Err(SubmitError::Busy) => {
                    // Any already-submitted jobs still run; their replies
                    // land in the dropped receiver harmlessly and their
                    // results still reach the cache via a later request.
                    self.counters.shed_bulk.bump();
                    return (429, err("queue-full", "queue full; retry shortly", true));
                }
                Err(SubmitError::Closed) => {
                    return (503, err("draining", "service is shutting down", false));
                }
            }
        }
        drop(tx);
        let deadline = Instant::now() + REPLY_TIMEOUT;
        let mut by_key: HashMap<u64, Result<Entry, PointError>> = HashMap::new();
        while pending > 0 {
            let left = deadline.saturating_duration_since(Instant::now());
            match rx.recv_timeout(left) {
                Ok(reply) => {
                    pending -= 1;
                    match reply.result {
                        Ok(point) => {
                            let entry = Entry::of(&point);
                            self.commit_point(reply.key, entry);
                            by_key.insert(reply.key, Ok(entry));
                        }
                        Err(e) => {
                            self.breaker.record_failure(reply.key);
                            by_key.insert(reply.key, Err(e));
                        }
                    }
                }
                Err(RecvTimeoutError::Timeout | RecvTimeoutError::Disconnected) => {
                    return (
                        503,
                        err(
                            "evaluation-timeout",
                            "evaluation did not finish in time",
                            false,
                        ),
                    );
                }
            }
        }
        let mut points = String::new();
        let mut cached = 0usize;
        let mut computed = 0usize;
        for (i, (&key, config)) in keys.iter().zip(&parsed.configs).enumerate() {
            let (entry, was_cached) = match &slots[i] {
                Some((entry, _)) => (*entry, true),
                None => match by_key.get(&key) {
                    Some(Ok(entry)) => (*entry, false),
                    Some(Err(e)) => {
                        failures.push(e.clone());
                        continue;
                    }
                    // Duplicate configs in one request share a key and a
                    // single computed reply covers them all.
                    None => continue,
                },
            };
            if was_cached {
                cached += 1;
            } else {
                computed += 1;
            }
            if !points.is_empty() {
                points.push(',');
            }
            points.push_str(&point_json_inner(*config, key, &entry, was_cached));
        }
        let mut fail_text = String::new();
        for e in &failures {
            if !fail_text.is_empty() {
                fail_text.push(',');
            }
            fail_text.push_str(&format!(
                "{{\"config\":\"{}\",\"fault\":\"{}\",\"message\":\"{}\"}}",
                escape(&e.config.to_string()),
                e.fault,
                escape(&e.message),
            ));
        }
        (
            200,
            format!(
                "{{\"model\":\"{}\",\"refs\":{},\"warmup\":{},\"total\":{},\
                 \"cached\":{cached},\"computed\":{computed},\
                 \"points\":[{points}],\"failures\":[{fail_text}]}}",
                escape(&parsed.model),
                parsed.refs,
                parsed.warmup,
                parsed.configs.len(),
            ),
        )
    }
}

/// A decoded simulate/sweep request body. Shared with the router, which
/// parses only to compute routing keys.
#[derive(Debug)]
pub(crate) struct PointRequest {
    pub(crate) model: String,
    pub(crate) refs: usize,
    pub(crate) warmup: usize,
    /// `peer_fill: true` marks a peer-originated request: answer from
    /// local cache/scheduler, never fan out again (no fill loops).
    pub(crate) fill: bool,
    pub(crate) configs: Vec<CacheConfig>,
}

pub(crate) fn parse_point_request(
    body: &[u8],
    default_refs: usize,
) -> Result<PointRequest, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    let doc = Json::parse(text).map_err(|e| format!("bad JSON: {e}"))?;
    let model = doc
        .get("model")
        .and_then(Json::as_str)
        .ok_or("missing \"model\"")?
        .to_string();
    let refs = match doc.get("refs") {
        None => default_refs,
        Some(v) => v.as_usize().ok_or("\"refs\" must be a whole number")?,
    };
    if refs == 0 {
        return Err("\"refs\" must be positive".into());
    }
    let warmup = match doc.get("warmup") {
        None => 0,
        Some(v) => v.as_usize().ok_or("\"warmup\" must be a whole number")?,
    };
    let fill = match doc.get("peer_fill") {
        None => false,
        Some(v) => v.as_bool().ok_or("\"peer_fill\" must be a boolean")?,
    };
    let default_word = WorkloadSpec::set_by_name(&model)
        .and_then(|specs| specs.first().map(|s| s.arch().word_size()))
        .unwrap_or(2);
    let mut configs = Vec::new();
    if let Some(config) = doc.get("config") {
        configs.push(parse_config(config, default_word)?);
    }
    if let Some(points) = doc.get("points").and_then(Json::as_array) {
        for p in points {
            configs.push(parse_config(p, default_word)?);
        }
    }
    if let Some(grid) = doc.get("grid") {
        let nets = grid
            .get("nets")
            .and_then(Json::as_array)
            .ok_or("\"grid\" needs a \"nets\" array")?;
        let word = match grid.get("word") {
            None => default_word,
            Some(v) => v.as_u64().ok_or("\"word\" must be a whole number")?,
        };
        let assoc = match grid.get("assoc") {
            None => 4,
            Some(v) => v.as_u64().ok_or("\"assoc\" must be a whole number")?,
        };
        for net in nets {
            let net = net
                .as_u64()
                .ok_or("\"nets\" entries must be whole numbers")?;
            for (block, sub) in occache_experiments::sweep::table1_pairs(net, word) {
                let config = CacheConfig::builder()
                    .net_size(net)
                    .block_size(block)
                    .sub_block_size(sub)
                    .associativity(assoc)
                    .word_size(word)
                    .build()
                    .map_err(|e| format!("grid config ({net},{block},{sub}): {e}"))?;
                configs.push(config);
            }
        }
    }
    if configs.is_empty() {
        return Err("no \"config\", \"points\", or \"grid\" given".into());
    }
    Ok(PointRequest {
        model,
        refs,
        warmup,
        fill,
        configs,
    })
}

fn parse_config(doc: &Json, default_word: u64) -> Result<CacheConfig, String> {
    let field = |name: &str| -> Result<u64, String> {
        doc.get(name)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("config needs a whole-number \"{name}\""))
    };
    let word = match doc.get("word") {
        None => default_word,
        Some(v) => v.as_u64().ok_or("\"word\" must be a whole number")?,
    };
    let assoc = match doc.get("assoc") {
        None => 4,
        Some(v) => v.as_u64().ok_or("\"assoc\" must be a whole number")?,
    };
    CacheConfig::builder()
        .net_size(field("net")?)
        .block_size(field("block")?)
        .sub_block_size(field("sub")?)
        .associativity(assoc)
        .word_size(word)
        .build()
        .map_err(|e| format!("invalid config: {e}"))
}

/// Shorthand for a rendered [`ErrorBody`] without a point key.
fn err(code: &str, message: &str, retryable: bool) -> String {
    ErrorBody::new(code, message, retryable).render()
}

/// The structured body for a failed evaluation: code `eval-<fault>`
/// (e.g. `eval-panic`, `eval-timeout`), the point key attributed.
/// Panics are marked retryable — the supervisor's own retry already
/// absorbed transient ones, but a client retry can still succeed when
/// the failure was injected chaos; systematic failures hit the circuit
/// breaker and turn into non-retryable `quarantined` instead.
fn point_error_body(e: &PointError, key: u64) -> String {
    let retryable = matches!(e.fault, PointFault::Panic | PointFault::WorkerLoss);
    ErrorBody::new(
        &format!("eval-{}", e.fault),
        &format!("point evaluation failed ({}): {}", e.config, e.message),
        retryable,
    )
    .with_key(key)
    .render()
}

/// The per-point response fields shared by simulate and sweep. `f64`
/// metrics use [`fmt_f64_exact`] — the shortest exact rendering, shared
/// with the checkpoint journal — so a cached response is bit-identical
/// to the computed one.
fn point_json_inner(config: CacheConfig, key: u64, entry: &Entry, cached: bool) -> String {
    format!(
        "{{\"key\":\"{key:016x}\",\"cached\":{cached},\
         \"config\":{{\"net\":{},\"block\":{},\"sub\":{},\"assoc\":{},\"word\":{}}},\
         \"gross_size\":{},\"miss_ratio\":{},\"traffic_ratio\":{},\
         \"nibble_traffic_ratio\":{},\"redundant_load_fraction\":{}}}",
        config.net_size(),
        config.block_size(),
        config.sub_block_size(),
        config.associativity(),
        config.word_size(),
        config.gross_size(),
        fmt_f64_exact(entry.miss),
        fmt_f64_exact(entry.traffic),
        fmt_f64_exact(entry.nibble),
        fmt_f64_exact(entry.redundant),
    )
}

fn point_json(
    parsed: &PointRequest,
    config: CacheConfig,
    key: u64,
    entry: &Entry,
    cached: bool,
) -> String {
    let inner = point_json_inner(config, key, entry, cached);
    format!(
        "{{\"model\":\"{}\",\"refs\":{},\"warmup\":{},{}",
        escape(&parsed.model),
        parsed.refs,
        parsed.warmup,
        &inner[1..],
    )
}

/// Restores a [`DesignPoint`] from a cache entry (what a journal resume
/// does). Exposed for integration tests comparing served responses to
/// direct evaluation.
pub fn restore_point(config: CacheConfig, entry: &Entry) -> DesignPoint {
    DesignPoint {
        config,
        miss_ratio: entry.miss,
        traffic_ratio: entry.traffic,
        nibble_traffic_ratio: entry.nibble,
        redundant_load_fraction: entry.redundant,
        gross_size: config.gross_size(),
    }
}

/// A running server: accept loop on its own thread, shared [`Service`]
/// behind it.
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    service: Arc<Service>,
    stop: Arc<AtomicBool>,
    accept: Option<std::thread::JoinHandle<io::Result<()>>>,
}

impl Server {
    /// Binds, starts the worker pool and the accept loop, and returns.
    /// The bound address (with the real port when `:0` was asked) is in
    /// [`Server::addr`].
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn start(config: &ServiceConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let service = Arc::new(Service::new(config));
        let stop = Arc::new(AtomicBool::new(false));
        let accept = {
            let service = Arc::clone(&service);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("occache-accept".to_string())
                .spawn(move || accept_loop(&listener, &service, &stop))?
        };
        {
            // Warm start off the accept path: /v1/health answers
            // immediately, /v1/ready flips once the cache is loaded.
            let service = Arc::clone(&service);
            std::thread::Builder::new()
                .name("occache-warm".to_string())
                .spawn(move || service.warm_load())?;
        }
        Ok(Server {
            addr,
            service,
            stop,
            accept: Some(accept),
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared service (tests and embedders).
    pub fn service(&self) -> &Arc<Service> {
        &self.service
    }

    /// Whether the accept loop has exited (e.g. after SIGINT).
    pub fn finished(&self) -> bool {
        self.accept.as_ref().is_none_or(|h| h.is_finished())
    }

    /// Graceful shutdown: stop accepting, drain connections and the
    /// scheduler queue, join everything.
    ///
    /// # Errors
    ///
    /// Propagates an accept-loop I/O failure (the drain still ran).
    pub fn stop(mut self) -> io::Result<()> {
        self.service.begin_drain();
        self.stop.store(true, Ordering::SeqCst);
        let outcome = match self.accept.take() {
            Some(handle) => handle
                .join()
                .unwrap_or_else(|_| Err(io::Error::other("accept loop panicked"))),
            None => Ok(()),
        };
        self.service.scheduler.shutdown();
        if let Some(peers) = &self.service.peers {
            peers.shutdown();
        }
        outcome
    }
}

fn accept_loop(
    listener: &TcpListener,
    service: &Arc<Service>,
    stop: &Arc<AtomicBool>,
) -> io::Result<()> {
    let active = Arc::new(AtomicUsize::new(0));
    let should_stop =
        |stop: &AtomicBool| stop.load(Ordering::SeqCst) || occache_runtime::interrupt::requested();
    while !should_stop(stop) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                active.fetch_add(1, Ordering::SeqCst);
                let service = Arc::clone(service);
                let stop = Arc::clone(stop);
                let conn_active = Arc::clone(&active);
                let spawned = std::thread::Builder::new()
                    .name("occache-conn".to_string())
                    .spawn(move || {
                        let _ = serve_connection(stream, &service, &stop);
                        conn_active.fetch_sub(1, Ordering::SeqCst);
                    });
                if spawned.is_err() {
                    active.fetch_sub(1, Ordering::SeqCst);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(e) => return Err(e),
        }
    }
    // Drain: give in-flight connections a bounded window to finish.
    // The readiness flag flips first so health checks route away.
    service.begin_drain();
    let deadline = Instant::now() + DRAIN_DEADLINE;
    while active.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
        std::thread::sleep(ACCEPT_POLL);
    }
    Ok(())
}

fn serve_connection(stream: TcpStream, service: &Service, stop: &AtomicBool) -> io::Result<()> {
    // The socket read timeout bounds each individual read; the
    // connection deadline bounds the whole request, so a slow-loris
    // trickling bytes inside the read timeout still gets cut off. A
    // deadline shorter than the default read timeout tightens the
    // per-read bound too, so the deadline overshoots by at most itself.
    let read_timeout = service
        .conn_timeout
        .map_or(READ_TIMEOUT, |t| t.min(READ_TIMEOUT));
    stream.set_read_timeout(Some(read_timeout))?;
    let fault = service.fault.as_deref();
    let mut conn = Connection::new(stream);
    loop {
        let deadline = service.conn_timeout.map(|t| Instant::now() + t);
        let outcome = match conn.read_request_before(deadline) {
            Ok(o) => o,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                // A half-sent request deserves a structured 408; an
                // idle keep-alive timing out is a normal close.
                if conn.mid_request() {
                    service.counters.timeouts.bump();
                    service.counters.client_errors.bump();
                    let body = err("request-timeout", "request not completed in time", true);
                    let _ = conn.write_json(408, &body);
                }
                return Ok(());
            }
            Err(e) => return Err(e),
        };
        match outcome {
            ReadOutcome::Closed => return Ok(()),
            ReadOutcome::Malformed(e) => {
                service.counters.client_errors.bump();
                let (status, code) = match e {
                    ParseError::TooLarge | ParseError::BodyTooLarge => (413, "payload-too-large"),
                    ParseError::Bad(_) => (400, "bad-request"),
                };
                conn.write_json(status, &err(code, &e.to_string(), false))?;
                return Ok(()); // framing is gone; close
            }
            ReadOutcome::Complete(request) => {
                if let Some(stall) = fault.and_then(ServeFault::stall_read_now) {
                    std::thread::sleep(stall);
                }
                if fault.is_some_and(ServeFault::drop_conn_now) {
                    return Ok(()); // injected: vanish without a response
                }
                let keep_alive = request.head.keep_alive;
                let (status, content_type, headers, body) = service.handle(&request);
                if fault.is_some_and(ServeFault::torn_write_now) {
                    // Injected: send only half the response, then close.
                    let wire = crate::http::render_response(
                        status,
                        content_type,
                        &headers,
                        body.as_bytes(),
                    );
                    conn.write_torn_response(
                        status,
                        content_type,
                        &headers,
                        body.as_bytes(),
                        wire.len() / 2,
                    )?;
                    return Ok(());
                }
                conn.write_response(status, content_type, &headers, body.as_bytes())?;
                if !keep_alive || stop.load(Ordering::SeqCst) {
                    return Ok(());
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_point_request_reads_config_points_and_grid() {
        let body = br#"{"model":"pdp11","refs":5000,"config":{"net":1024,"block":16,"sub":8}}"#;
        let p = parse_point_request(body, 999).unwrap();
        assert_eq!(p.model, "pdp11");
        assert_eq!(p.refs, 5000);
        assert_eq!(p.configs.len(), 1);
        assert_eq!(p.configs[0].word_size(), 2, "PDP-11 word default");

        let grid = br#"{"model":"pdp11","grid":{"nets":[64],"assoc":4}}"#;
        let p = parse_point_request(grid, 999).unwrap();
        assert_eq!(
            p.configs.len(),
            occache_experiments::sweep::table1_pairs(64, 2).len()
        );
        assert_eq!(p.refs, 999, "default refs apply");

        let points =
            br#"{"model":"s370","points":[{"net":64,"block":8,"sub":4},{"net":64,"block":8,"sub":8}]}"#;
        let p = parse_point_request(points, 999).unwrap();
        assert_eq!(p.configs.len(), 2);
        assert_eq!(p.configs[0].word_size(), 4, "S/370 word default");
    }

    #[test]
    fn parse_point_request_rejects_junk() {
        for bad in [
            &b"not json"[..],
            br#"{"refs":1}"#,
            br#"{"model":"pdp11"}"#,
            br#"{"model":"pdp11","refs":0,"config":{"net":64,"block":8,"sub":4}}"#,
            br#"{"model":"pdp11","config":{"net":63,"block":8,"sub":4}}"#,
            br#"{"model":"pdp11","grid":{}}"#,
        ] {
            assert!(
                parse_point_request(bad, 100).is_err(),
                "{:?} parsed",
                String::from_utf8_lossy(bad)
            );
        }
    }

    #[test]
    fn point_json_is_parseable_and_carries_exact_floats() {
        let config = CacheConfig::builder()
            .net_size(1024)
            .block_size(16)
            .sub_block_size(8)
            .word_size(2)
            .build()
            .unwrap();
        let entry = Entry {
            miss: 1.0 / 3.0,
            traffic: 0.1 + 0.2,
            nibble: 6e-9,
            redundant: 0.0,
        };
        let text = point_json_inner(config, 0xabcd, &entry, true);
        let doc = Json::parse(&text).unwrap();
        assert_eq!(doc.get("cached").and_then(Json::as_bool), Some(true));
        assert_eq!(
            doc.get("miss_ratio")
                .and_then(Json::as_f64)
                .map(f64::to_bits),
            Some((1.0f64 / 3.0).to_bits())
        );
        assert_eq!(
            doc.get("gross_size").and_then(Json::as_u64),
            Some(config.gross_size())
        );
    }
}
