//! A per-point-key circuit breaker: the serving twin of the batch
//! journal's quarantine-after-N tombstone policy.
//!
//! A design point whose evaluation keeps panicking (a simulator bug, or
//! injected chaos) must not be allowed to burn a worker on every
//! request forever. The breaker counts *consecutive* failures per point
//! key; at the threshold the key is quarantined and subsequent requests
//! for it get an immediate structured 503 (`code: "quarantined"`, the
//! key attributed) without touching the scheduler. A success resets the
//! key's count — only an unbroken run of failures trips the breaker,
//! matching `occache-experiments::checkpoint`'s tombstone policy of
//! quarantining after [`DEFAULT_THRESHOLD`] recorded failures.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Consecutive failures that trip the breaker, matching the journal's
/// quarantine-after-2 tombstone policy (`OCCACHE_SERVE_BREAKER`
/// overrides; 0 disables).
pub const DEFAULT_THRESHOLD: u32 = 2;

/// Bound on tracked keys; beyond it the failure counts reset rather
/// than grow without limit (quarantined keys are kept — losing *those*
/// would reopen a tripped breaker).
const MAX_TRACKED: usize = 4096;

/// The breaker state shared by every connection thread.
#[derive(Debug)]
pub struct Breaker {
    threshold: u32,
    failures: Mutex<HashMap<u64, u32>>,
    quarantined: Mutex<HashSet<u64>>,
    tripped: AtomicU64,
}

impl Breaker {
    /// A breaker tripping at `threshold` consecutive failures per key;
    /// 0 disables it entirely.
    pub fn new(threshold: u32) -> Breaker {
        Breaker {
            threshold,
            failures: Mutex::new(HashMap::new()),
            quarantined: Mutex::new(HashSet::new()),
            tripped: AtomicU64::new(0),
        }
    }

    /// Whether requests for this key are quarantined.
    pub fn is_quarantined(&self, key: u64) -> bool {
        self.threshold > 0
            && self
                .quarantined
                .lock()
                .expect("breaker lock")
                .contains(&key)
    }

    /// Records a failed evaluation; true when this failure tripped the
    /// breaker for the key.
    pub fn record_failure(&self, key: u64) -> bool {
        if self.threshold == 0 {
            return false;
        }
        let mut failures = self.failures.lock().expect("breaker lock");
        if failures.len() >= MAX_TRACKED && !failures.contains_key(&key) {
            failures.clear();
        }
        let count = failures.entry(key).or_insert(0);
        *count += 1;
        if *count >= self.threshold {
            failures.remove(&key);
            drop(failures);
            let newly = self.quarantined.lock().expect("breaker lock").insert(key);
            if newly {
                self.tripped.fetch_add(1, Ordering::SeqCst);
            }
            return newly;
        }
        false
    }

    /// Records a successful evaluation, resetting the key's consecutive
    /// count.
    pub fn record_success(&self, key: u64) {
        if self.threshold > 0 {
            self.failures.lock().expect("breaker lock").remove(&key);
        }
    }

    /// Keys quarantined since start (monotonic, for `/metrics`).
    pub fn tripped(&self) -> u64 {
        self.tripped.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trips_on_consecutive_failures_only() {
        let b = Breaker::new(2);
        assert!(!b.record_failure(7));
        assert!(!b.is_quarantined(7));
        b.record_success(7); // resets the run
        assert!(!b.record_failure(7));
        assert!(b.record_failure(7), "second consecutive failure trips");
        assert!(b.is_quarantined(7));
        assert!(!b.record_failure(7), "already quarantined, not re-tripped");
        assert_eq!(b.tripped(), 1);
        assert!(!b.is_quarantined(8), "other keys unaffected");
    }

    #[test]
    fn zero_threshold_disables() {
        let b = Breaker::new(0);
        for _ in 0..10 {
            assert!(!b.record_failure(1));
        }
        assert!(!b.is_quarantined(1));
        assert_eq!(b.tripped(), 0);
    }

    #[test]
    fn tracked_keys_are_bounded_but_quarantine_survives() {
        let b = Breaker::new(2);
        b.record_failure(1);
        b.record_failure(1);
        assert!(b.is_quarantined(1));
        for key in 2..(MAX_TRACKED as u64 + 10) {
            b.record_failure(key);
        }
        assert!(b.is_quarantined(1), "quarantine survives the count reset");
    }
}
