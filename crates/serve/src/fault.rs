//! Deterministic socket- and scheduler-layer fault injection: the
//! serving counterpart of the batch harness's `OCCACHE_FAULT_POINT`.
//!
//! `OCCACHE_SERVE_FAULT` holds a comma-separated list of fault specs,
//! each firing on every K-th matching event (a shared atomic event
//! counter per kind — no randomness, so a chaos run is reproducible
//! bit for bit):
//!
//! * `torn-write:K` — every K-th response is truncated mid-body and the
//!   connection closed (the client sees fewer bytes than the declared
//!   `Content-Length`).
//! * `stall-read:K[:secs]` — every K-th request stalls `secs` (default
//!   6) before being handled, simulating a wedged handler.
//! * `drop-conn:K` — every K-th request's connection is closed without
//!   any response at all.
//! * `panic-worker:K` — every K-th design-point evaluation panics
//!   inside the worker (compiled into the supervisor policy via
//!   [`FaultPlan::panic_every`]), exercising retry, fault attribution
//!   and the circuit breaker.
//! * `drop-peer:K` — every K-th outbound peer call (fill or forward)
//!   fails before dialing, exercising peer retry, the per-peer breaker
//!   and the compute-locally fallback.
//! * `slow-peer:K[:secs]` — every K-th outbound peer call stalls `secs`
//!   (default 3) before dialing, eating into the strict peer deadline.
//! * `flap-peer:K` — every K-th peer health probe is reported failed
//!   regardless of the real answer, flapping the per-peer breaker
//!   through down/half-open/up.
//!
//! Every injection is counted and exposed on `/metrics`
//! (`occache_fault_*_injected_total`), which is how the CI chaos gate
//! proves the faults actually fired.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use occache_runtime::executor::FaultPlan;

/// Default stall for `stall-read` when the spec gives no seconds.
const DEFAULT_STALL: Duration = Duration::from_secs(6);

/// Default stall for `slow-peer` when the spec gives no seconds —
/// longer than the default `OCCACHE_PEER_TIMEOUT` so the call times out.
const DEFAULT_PEER_STALL: Duration = Duration::from_secs(3);

/// The parsed fault plan plus its per-kind event counters.
#[derive(Debug, Default)]
pub struct ServeFault {
    torn_write: Option<u64>,
    stall_read: Option<(u64, Duration)>,
    drop_conn: Option<u64>,
    panic_worker: Option<u64>,
    drop_peer: Option<u64>,
    slow_peer: Option<(u64, Duration)>,
    flap_peer: Option<u64>,
    torn_events: AtomicU64,
    stall_events: AtomicU64,
    drop_events: AtomicU64,
    drop_peer_events: AtomicU64,
    slow_peer_events: AtomicU64,
    flap_peer_events: AtomicU64,
    torn_fired: AtomicU64,
    stall_fired: AtomicU64,
    drop_fired: AtomicU64,
    drop_peer_fired: AtomicU64,
    slow_peer_fired: AtomicU64,
    flap_peer_fired: AtomicU64,
}

impl ServeFault {
    /// Parses a comma-separated fault spec
    /// (`torn-write:3,stall-read:5:2,panic-worker:7`).
    ///
    /// # Errors
    ///
    /// A message naming the malformed spec fragment.
    pub fn parse(spec: &str) -> Result<ServeFault, String> {
        let mut plan = ServeFault::default();
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let mut fields = part.split(':');
            let kind = fields.next().unwrap_or("");
            let period: u64 = fields
                .next()
                .ok_or_else(|| format!("fault spec `{part}` needs a period (kind:K)"))?
                .parse()
                .map_err(|_| format!("fault spec `{part}` has a non-numeric period"))?;
            if period == 0 {
                return Err(format!("fault spec `{part}` period must be at least 1"));
            }
            let extra = fields.next();
            if fields.next().is_some() {
                return Err(format!("fault spec `{part}` has too many fields"));
            }
            let stall_extra = |default: Duration| -> Result<Duration, String> {
                match extra {
                    None => Ok(default),
                    Some(raw) => {
                        let secs: f64 = raw
                            .parse()
                            .map_err(|_| format!("fault spec `{part}` has non-numeric seconds"))?;
                        if !secs.is_finite() || secs <= 0.0 {
                            return Err(format!("fault spec `{part}` seconds must be positive"));
                        }
                        Ok(Duration::from_secs_f64(secs))
                    }
                }
            };
            match kind {
                "torn-write" if extra.is_none() => plan.torn_write = Some(period),
                "drop-conn" if extra.is_none() => plan.drop_conn = Some(period),
                "panic-worker" if extra.is_none() => plan.panic_worker = Some(period),
                "drop-peer" if extra.is_none() => plan.drop_peer = Some(period),
                "flap-peer" if extra.is_none() => plan.flap_peer = Some(period),
                "stall-read" => plan.stall_read = Some((period, stall_extra(DEFAULT_STALL)?)),
                "slow-peer" => plan.slow_peer = Some((period, stall_extra(DEFAULT_PEER_STALL)?)),
                _ => {
                    return Err(format!(
                        "unknown fault `{part}` (torn-write:K, stall-read:K[:secs], \
                         drop-conn:K, panic-worker:K, drop-peer:K, slow-peer:K[:secs], \
                         flap-peer:K)"
                    ))
                }
            }
        }
        Ok(plan)
    }

    /// Reads `OCCACHE_SERVE_FAULT`; unset or empty means no injection.
    ///
    /// # Errors
    ///
    /// A message naming the variable when it is set but malformed.
    pub fn try_from_env() -> Result<Option<ServeFault>, String> {
        match std::env::var("OCCACHE_SERVE_FAULT") {
            Ok(raw) if raw.trim().is_empty() => Ok(None),
            Ok(raw) => ServeFault::parse(&raw)
                .map(Some)
                .map_err(|e| format!("OCCACHE_SERVE_FAULT: {e}")),
            Err(std::env::VarError::NotPresent) => Ok(None),
            Err(std::env::VarError::NotUnicode(_)) => {
                Err("OCCACHE_SERVE_FAULT is not valid UTF-8".to_string())
            }
        }
    }

    fn fire(period: Option<u64>, events: &AtomicU64, fired: &AtomicU64) -> bool {
        let Some(period) = period else { return false };
        let n = events.fetch_add(1, Ordering::SeqCst) + 1;
        if n.is_multiple_of(period) {
            fired.fetch_add(1, Ordering::SeqCst);
            return true;
        }
        false
    }

    /// Counts one response event; true when it must be torn.
    pub fn torn_write_now(&self) -> bool {
        Self::fire(self.torn_write, &self.torn_events, &self.torn_fired)
    }

    /// Counts one request event; `Some(stall)` when it must stall.
    pub fn stall_read_now(&self) -> Option<Duration> {
        let (period, stall) = self.stall_read?;
        Self::fire(Some(period), &self.stall_events, &self.stall_fired).then_some(stall)
    }

    /// Counts one request event; true when its connection must drop.
    pub fn drop_conn_now(&self) -> bool {
        Self::fire(self.drop_conn, &self.drop_events, &self.drop_fired)
    }

    /// Counts one outbound peer-call event; true when it must fail
    /// before dialing.
    pub fn drop_peer_now(&self) -> bool {
        Self::fire(
            self.drop_peer,
            &self.drop_peer_events,
            &self.drop_peer_fired,
        )
    }

    /// Counts one outbound peer-call event; `Some(stall)` when it must
    /// stall before dialing.
    pub fn slow_peer_now(&self) -> Option<Duration> {
        let (period, stall) = self.slow_peer?;
        Self::fire(Some(period), &self.slow_peer_events, &self.slow_peer_fired).then_some(stall)
    }

    /// Counts one health-probe event; true when the probe result must be
    /// reported as a failure regardless of the real answer.
    pub fn flap_peer_now(&self) -> bool {
        Self::fire(
            self.flap_peer,
            &self.flap_peer_events,
            &self.flap_peer_fired,
        )
    }

    /// The worker-panic plan to compile into the supervisor policy, if
    /// `panic-worker:K` was requested.
    pub fn worker_fault(&self) -> Option<FaultPlan> {
        self.panic_worker.map(FaultPlan::panic_every)
    }

    /// Injections fired so far, by kind, for `/metrics`. `panic-worker`
    /// fires inside the supervisor and is visible there as retried/
    /// failed points rather than here.
    pub fn injected(&self) -> [(&'static str, u64); 6] {
        [
            ("torn_write", self.torn_fired.load(Ordering::SeqCst)),
            ("stall_read", self.stall_fired.load(Ordering::SeqCst)),
            ("drop_conn", self.drop_fired.load(Ordering::SeqCst)),
            ("drop_peer", self.drop_peer_fired.load(Ordering::SeqCst)),
            ("slow_peer", self.slow_peer_fired.load(Ordering::SeqCst)),
            ("flap_peer", self.flap_peer_fired.load(Ordering::SeqCst)),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_spec_and_fires_deterministically() {
        let f =
            ServeFault::parse("torn-write:3,stall-read:2:0.5,drop-conn:4,panic-worker:7").unwrap();
        // torn-write every 3rd event.
        let fired: Vec<bool> = (0..6).map(|_| f.torn_write_now()).collect();
        assert_eq!(fired, [false, false, true, false, false, true]);
        // stall-read every 2nd, with the spec's half second.
        assert_eq!(f.stall_read_now(), None);
        assert_eq!(f.stall_read_now(), Some(Duration::from_millis(500)));
        // drop-conn every 4th.
        assert!((0..3).all(|_| !f.drop_conn_now()));
        assert!(f.drop_conn_now());
        assert!(f.worker_fault().is_some());
        assert_eq!(
            f.injected(),
            [
                ("torn_write", 2),
                ("stall_read", 1),
                ("drop_conn", 1),
                ("drop_peer", 0),
                ("slow_peer", 0),
                ("flap_peer", 0),
            ]
        );
    }

    #[test]
    fn peer_faults_fire_on_their_own_event_streams() {
        let f = ServeFault::parse("drop-peer:2,slow-peer:2:0.25,flap-peer:3").unwrap();
        assert!(!f.drop_peer_now());
        assert!(f.drop_peer_now());
        assert_eq!(f.slow_peer_now(), None);
        assert_eq!(f.slow_peer_now(), Some(Duration::from_millis(250)));
        assert!((0..2).all(|_| !f.flap_peer_now()));
        assert!(f.flap_peer_now());
        assert!(ServeFault::parse("slow-peer:1")
            .unwrap()
            .slow_peer_now()
            .is_some());
        assert!(ServeFault::parse("drop-peer:1:2").is_err());
        assert!(ServeFault::parse("flap-peer:0").is_err());
    }

    #[test]
    fn absent_kinds_never_fire() {
        let f = ServeFault::parse("torn-write:1").unwrap();
        assert!(f.torn_write_now());
        assert_eq!(f.stall_read_now(), None);
        assert!(!f.drop_conn_now());
        assert!(f.worker_fault().is_none());
    }

    #[test]
    fn malformed_specs_are_refused() {
        for bad in [
            "torn-write",
            "torn-write:0",
            "torn-write:x",
            "torn-write:2:9",
            "stall-read:2:abc",
            "stall-read:2:-1",
            "stall-read:2:1:4",
            "rm-rf:1",
        ] {
            assert!(ServeFault::parse(bad).is_err(), "{bad:?} parsed");
        }
        assert!(ServeFault::parse("").unwrap().worker_fault().is_none());
    }
}
