//! `occache-serve` — a batching, cache-fronted simulation service.
//!
//! A dependency-free (std-only) HTTP/1.1 service that evaluates cache
//! design points on demand. Clients POST JSON design points or grids
//! referencing the named workload models from `occache-workloads`; the
//! service fronts a shared worker-pool scheduler with a
//! content-addressed result cache keyed by the same FNV fingerprints
//! the checkpoint journals use, so any point a batch sweep already
//! sealed to disk — or any point served once — comes back without
//! re-simulation, bit-identical to direct evaluation.
//!
//! Layers, bottom up:
//!
//! * [`json`] — a minimal recursive-descent JSON parser and escaper,
//!   plus the unified structured error body both wire sides speak.
//! * [`http`] — HTTP/1.1 framing over any `Read + Write` stream, with
//!   per-connection deadlines and torn-write injection support.
//! * [`metrics`] — atomic counters and a fixed-bucket latency histogram.
//! * [`cache`] — the bounded content-addressed result cache.
//! * [`fault`] — deterministic socket/scheduler chaos injection
//!   (`OCCACHE_SERVE_FAULT`).
//! * [`breaker`] — the per-point-key circuit breaker mirroring the
//!   journal quarantine policy.
//! * [`persist`] — the write-behind result journal (crash recovery).
//! * [`scheduler`] — the bounded-queue worker pool that coalesces
//!   compatible points into one-pass multisim engine slices.
//! * [`peer`] — the cluster peer table: health probes, per-peer circuit
//!   breakers, and the deadline-bounded peer HTTP client.
//! * [`router`] — rendezvous-hash request routing and the thin
//!   `occache-route` front door that scatters sweeps across shards.
//! * [`service`] — routing, request handling, accept loop, graceful
//!   shutdown.

#![warn(missing_docs)]

pub mod breaker;
pub mod cache;
pub mod fault;
pub mod http;
pub mod json;
pub mod metrics;
pub mod peer;
pub mod persist;
pub mod router;
pub mod scheduler;
pub mod service;
