//! Peer tracking for the multi-node tier: per-peer health with a
//! circuit breaker, background liveness probes, and the bounded-retry
//! HTTP client every outbound peer call goes through.
//!
//! Both the shard nodes (warm-cache fill, [`crate::service`]) and the
//! router ([`crate::router`]) hold a [`PeerSet`]. A peer is `Up` until
//! [`PeerPolicy::failure_threshold`] *consecutive* probe or request
//! failures trip its breaker to `Down`; down peers are skipped by
//! routing and fill for [`PeerPolicy::cooldown`], after which the next
//! caller or probe goes through as a `HalfOpen` trial — one success
//! restores `Up`, one failure re-opens the breaker. A background thread
//! probes `GET /v1/health` on every non-self peer at
//! [`PeerPolicy::probe_interval`], so a dead peer is discovered and a
//! recovered one re-admitted even when no traffic is flowing.
//!
//! Every outbound call carries a strict deadline
//! (`OCCACHE_PEER_TIMEOUT`) spanning connect, write and read, and is
//! retried at most `OCCACHE_PEER_RETRIES` times with deterministic
//! (FNV-jittered, not random) backoff. Callers treat exhaustion as "peer
//! unavailable" and fall back — the router re-ranks to a survivor, a
//! node computes locally — so a peer failure is never surfaced to a
//! client as an unattributed error.

use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use occache_runtime::keys::fnv1a;

use crate::fault::ServeFault;

/// Consecutive failures before a peer's breaker opens.
const DEFAULT_FAILURE_THRESHOLD: u32 = 3;

/// How long an open breaker holds a peer out before a half-open trial.
const DEFAULT_COOLDOWN: Duration = Duration::from_secs(2);

/// Background liveness-probe cadence.
const DEFAULT_PROBE_INTERVAL: Duration = Duration::from_millis(500);

/// Cap on one deterministic backoff step between peer-call retries.
const BACKOFF_CAP: Duration = Duration::from_millis(250);

/// Tuning for peer calls and the per-peer breaker.
#[derive(Debug, Clone)]
pub struct PeerPolicy {
    /// Strict wall-clock deadline for one peer call, connect included
    /// (`OCCACHE_PEER_TIMEOUT`, default 2 s, cannot be disabled).
    pub timeout: Duration,
    /// Retries after a failed peer call before the caller falls back
    /// (`OCCACHE_PEER_RETRIES`, default 1).
    pub retries: usize,
    /// Consecutive failures that trip the breaker (default 3).
    pub failure_threshold: u32,
    /// How long a tripped peer is skipped before a half-open trial
    /// (default 2 s).
    pub cooldown: Duration,
    /// Liveness-probe cadence (default 500 ms).
    pub probe_interval: Duration,
}

impl PeerPolicy {
    /// Reads `OCCACHE_PEER_TIMEOUT` / `OCCACHE_PEER_RETRIES`; breaker
    /// thresholds are fixed policy, not knobs.
    ///
    /// # Errors
    ///
    /// Returns a message naming the malformed variable.
    pub fn try_from_env() -> Result<PeerPolicy, String> {
        Ok(PeerPolicy {
            timeout: occache_runtime::config::try_peer_timeout()?,
            retries: occache_runtime::config::try_peer_retries()?,
            ..PeerPolicy::default()
        })
    }

    /// A fast-cycling policy for tests: short deadline, short cooldown.
    pub fn for_tests() -> PeerPolicy {
        PeerPolicy {
            timeout: Duration::from_millis(500),
            retries: 1,
            failure_threshold: 2,
            cooldown: Duration::from_millis(200),
            probe_interval: Duration::from_millis(50),
        }
    }
}

impl Default for PeerPolicy {
    fn default() -> PeerPolicy {
        PeerPolicy {
            timeout: occache_runtime::config::DEFAULT_PEER_TIMEOUT,
            retries: occache_runtime::config::DEFAULT_PEER_RETRIES,
            failure_threshold: DEFAULT_FAILURE_THRESHOLD,
            cooldown: DEFAULT_COOLDOWN,
            probe_interval: DEFAULT_PROBE_INTERVAL,
        }
    }
}

/// Breaker position for one peer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeerHealth {
    /// Taking traffic.
    Up,
    /// Breaker open: skipped until the cooldown expires.
    Down,
    /// Cooldown expired: the next call is a trial.
    HalfOpen,
}

#[derive(Debug)]
enum Health {
    Up,
    Down { until: Instant },
    HalfOpen,
}

#[derive(Debug)]
struct PeerState {
    health: Health,
    consecutive_failures: u32,
}

#[derive(Debug)]
struct Peer {
    addr: String,
    state: Mutex<PeerState>,
}

/// The static peer list with live per-peer health.
#[derive(Debug)]
pub struct PeerSet {
    peers: Vec<Peer>,
    self_addr: Option<String>,
    policy: PeerPolicy,
    fault: Option<Arc<ServeFault>>,
    down_total: AtomicU64,
    probe_failures: AtomicU64,
    fill_requests: AtomicU64,
    stop: AtomicBool,
    probe: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl PeerSet {
    /// Builds the set and starts the background probe thread (which
    /// skips `self_addr` — a node does not probe itself).
    pub fn start(
        peers: Vec<String>,
        self_addr: Option<String>,
        policy: PeerPolicy,
        fault: Option<Arc<ServeFault>>,
    ) -> Arc<PeerSet> {
        let set = Arc::new(PeerSet {
            peers: peers
                .into_iter()
                .map(|addr| Peer {
                    addr,
                    state: Mutex::new(PeerState {
                        health: Health::Up,
                        consecutive_failures: 0,
                    }),
                })
                .collect(),
            self_addr,
            policy,
            fault,
            down_total: AtomicU64::new(0),
            probe_failures: AtomicU64::new(0),
            fill_requests: AtomicU64::new(0),
            stop: AtomicBool::new(false),
            probe: Mutex::new(None),
        });
        let handle = {
            let set = Arc::clone(&set);
            std::thread::Builder::new()
                .name("occache-probe".to_string())
                .spawn(move || probe_loop(&set))
                .ok()
        };
        *set.probe.lock().expect("probe handle lock") = handle;
        set
    }

    /// Stops and joins the probe thread. Idempotent.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.probe.lock().expect("probe handle lock").take() {
            let _ = handle.join();
        }
    }

    /// The configured peer addresses, in list order.
    pub fn addrs(&self) -> Vec<String> {
        self.peers.iter().map(|p| p.addr.clone()).collect()
    }

    /// This node's own address in the peer list (nodes only; the router
    /// has none).
    pub fn self_addr(&self) -> Option<&str> {
        self.self_addr.as_deref()
    }

    /// Whether `addr` is this node itself.
    pub fn is_self(&self, addr: &str) -> bool {
        self.self_addr.as_deref() == Some(addr)
    }

    /// The call deadline/retry policy in force.
    pub fn policy(&self) -> &PeerPolicy {
        &self.policy
    }

    fn peer(&self, addr: &str) -> Option<&Peer> {
        self.peers.iter().find(|p| p.addr == addr)
    }

    /// Whether `addr` should be offered traffic right now. A down peer
    /// whose cooldown has expired flips to half-open here, making the
    /// asking caller the trial.
    pub fn available(&self, addr: &str) -> bool {
        if self.is_self(addr) {
            return true;
        }
        let Some(peer) = self.peer(addr) else {
            return false;
        };
        let mut state = peer.state.lock().expect("peer state lock");
        match state.health {
            Health::Up | Health::HalfOpen => true,
            Health::Down { until } => {
                if Instant::now() >= until {
                    state.health = Health::HalfOpen;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// The breaker position of `addr` (gauges and tests).
    pub fn health(&self, addr: &str) -> PeerHealth {
        match self.peer(addr).map(|p| p.state.lock()) {
            Some(Ok(state)) => match state.health {
                Health::Up => PeerHealth::Up,
                Health::Down { .. } => PeerHealth::Down,
                Health::HalfOpen => PeerHealth::HalfOpen,
            },
            _ => PeerHealth::Down,
        }
    }

    /// Records a successful probe or call: failures reset, breaker
    /// closed.
    pub fn record_success(&self, addr: &str) {
        if let Some(peer) = self.peer(addr) {
            let mut state = peer.state.lock().expect("peer state lock");
            state.consecutive_failures = 0;
            state.health = Health::Up;
        }
    }

    /// Records a failed probe or call. A half-open trial failure
    /// re-opens the breaker immediately; an up peer trips after
    /// [`PeerPolicy::failure_threshold`] consecutive failures.
    pub fn record_failure(&self, addr: &str) {
        let Some(peer) = self.peer(addr) else { return };
        let mut state = peer.state.lock().expect("peer state lock");
        state.consecutive_failures = state.consecutive_failures.saturating_add(1);
        let trip = match state.health {
            Health::HalfOpen => true,
            Health::Up => state.consecutive_failures >= self.policy.failure_threshold,
            Health::Down { .. } => false,
        };
        if trip {
            state.health = Health::Down {
                until: Instant::now() + self.policy.cooldown,
            };
            self.down_total.fetch_add(1, Ordering::SeqCst);
        }
    }

    /// Breaker trips since start (the `occache_peer_down_total` metric).
    pub fn down_total(&self) -> u64 {
        self.down_total.load(Ordering::SeqCst)
    }

    /// Failed liveness probes since start.
    pub fn probe_failures(&self) -> u64 {
        self.probe_failures.load(Ordering::SeqCst)
    }

    /// Outbound peer calls attempted (fills and forwards).
    pub fn calls_made(&self) -> u64 {
        self.fill_requests.load(Ordering::SeqCst)
    }

    /// Per-peer state gauge samples: 0 down, 1 half-open, 2 up.
    pub fn state_gauge(&self) -> Vec<(String, u64)> {
        self.peers
            .iter()
            .map(|p| {
                let v = if self.is_self(&p.addr) {
                    2
                } else {
                    match self.health(&p.addr) {
                        PeerHealth::Down => 0,
                        PeerHealth::HalfOpen => 1,
                        PeerHealth::Up => 2,
                    }
                };
                (p.addr.clone(), v)
            })
            .collect()
    }

    /// One bounded peer call: up to `1 + retries` attempts, each under
    /// the strict deadline, with deterministic backoff between attempts.
    /// Success and failure both feed the peer's breaker. Chaos hooks
    /// (`drop-peer`, `slow-peer`) fire here, on the caller side.
    ///
    /// # Errors
    ///
    /// The last attempt's failure, once every attempt is exhausted.
    pub fn call(
        &self,
        addr: &str,
        method: &str,
        path: &str,
        body: &[u8],
    ) -> Result<(u16, Vec<u8>), String> {
        self.fill_requests.fetch_add(1, Ordering::SeqCst);
        let mut last = String::from("no attempt made");
        for attempt in 0..=self.policy.retries {
            if attempt > 0 {
                std::thread::sleep(backoff_delay(addr, attempt));
            }
            let mut budget = self.policy.timeout;
            if let Some(fault) = &self.fault {
                if let Some(stall) = fault.slow_peer_now() {
                    // The stall spends the call's own deadline, exactly
                    // like a peer that is slow to answer.
                    std::thread::sleep(stall.min(budget));
                    budget = budget.saturating_sub(stall);
                }
                if fault.drop_peer_now() {
                    self.record_failure(addr);
                    last = "injected drop-peer fault".to_string();
                    continue;
                }
            }
            if budget.is_zero() {
                self.record_failure(addr);
                last = format!("peer {addr} deadline exhausted before dialing");
                continue;
            }
            match http_call(addr, method, path, body, budget) {
                Ok(reply) => {
                    self.record_success(addr);
                    return Ok(reply);
                }
                Err(e) => {
                    self.record_failure(addr);
                    last = e;
                }
            }
        }
        Err(last)
    }
}

fn probe_loop(set: &PeerSet) {
    // First round runs immediately so a cluster converges on mutual
    // liveness at startup instead of one probe interval later.
    while !set.stop.load(Ordering::SeqCst) {
        for peer in &set.peers {
            if set.is_self(&peer.addr) || set.stop.load(Ordering::SeqCst) {
                continue;
            }
            // A down peer inside its cooldown is left alone; `available`
            // (or this loop, next round) promotes it to half-open once
            // the cooldown expires.
            {
                let state = peer.state.lock().expect("peer state lock");
                if let Health::Down { until } = state.health {
                    if Instant::now() < until {
                        continue;
                    }
                }
            }
            let ok = http_call(&peer.addr, "GET", "/v1/health", b"", set.policy.timeout).is_ok();
            let flapped = set.fault.as_ref().is_some_and(|f| f.flap_peer_now());
            if ok && !flapped {
                set.record_success(&peer.addr);
            } else {
                set.probe_failures.fetch_add(1, Ordering::SeqCst);
                set.record_failure(&peer.addr);
            }
        }
        // Sleep in short slices so shutdown is prompt.
        let deadline = Instant::now() + set.policy.probe_interval;
        while Instant::now() < deadline && !set.stop.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(10));
        }
    }
}

/// Deterministic backoff before retry `attempt` (≥ 1) against `addr`:
/// exponential base with FNV-derived jitter, no randomness, capped at
/// [`BACKOFF_CAP`] so retries stay inside the peer deadline regime.
pub fn backoff_delay(addr: &str, attempt: usize) -> Duration {
    let base = Duration::from_millis(25u64.saturating_mul(1 << attempt.min(4)));
    let jitter = fnv1a(format!("{addr}:{attempt}").as_bytes()) % 25;
    (base + Duration::from_millis(jitter)).min(BACKOFF_CAP)
}

/// One HTTP/1.1 call to `addr` under a strict wall-clock deadline
/// spanning resolve, connect, write and read. `Connection: close` — peer
/// calls are infrequent enough that keep-alive bookkeeping isn't worth
/// the shared-state coupling.
///
/// # Errors
///
/// A message naming the peer and the failing stage.
pub fn http_call(
    addr: &str,
    method: &str,
    path: &str,
    body: &[u8],
    timeout: Duration,
) -> Result<(u16, Vec<u8>), String> {
    let deadline = Instant::now() + timeout;
    let sock = addr
        .to_socket_addrs()
        .map_err(|e| format!("peer {addr}: resolve failed: {e}"))?
        .next()
        .ok_or_else(|| format!("peer {addr}: no address"))?;
    let remaining = deadline.saturating_duration_since(Instant::now());
    if remaining.is_zero() {
        return Err(format!("peer {addr}: deadline before connect"));
    }
    let mut stream = TcpStream::connect_timeout(&sock, remaining)
        .map_err(|e| format!("peer {addr}: connect failed: {e}"))?;
    stream.set_nodelay(true).ok();
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    set_io_deadline(&stream, deadline).map_err(|e| format!("peer {addr}: {e}"))?;
    stream
        .write_all(request.as_bytes())
        .and_then(|()| stream.write_all(body))
        .map_err(|e| format!("peer {addr}: write failed: {e}"))?;
    read_response(&mut stream, addr, deadline)
}

fn set_io_deadline(stream: &TcpStream, deadline: Instant) -> Result<(), String> {
    let remaining = deadline.saturating_duration_since(Instant::now());
    if remaining.is_zero() {
        return Err("deadline exceeded".to_string());
    }
    stream
        .set_read_timeout(Some(remaining))
        .and_then(|()| stream.set_write_timeout(Some(remaining)))
        .map_err(|e| format!("socket deadline: {e}"))
}

fn read_response(
    stream: &mut TcpStream,
    addr: &str,
    deadline: Instant,
) -> Result<(u16, Vec<u8>), String> {
    let mut buf: Vec<u8> = Vec::with_capacity(4096);
    let mut chunk = [0u8; 4096];
    let header_end = loop {
        if let Some(pos) = find_header_end(&buf) {
            break pos;
        }
        if buf.len() > 64 * 1024 {
            return Err(format!("peer {addr}: response headers too large"));
        }
        set_io_deadline(stream, deadline).map_err(|e| format!("peer {addr}: {e}"))?;
        match stream.read(&mut chunk) {
            Ok(0) => return Err(format!("peer {addr}: closed before response headers")),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) => return Err(format!("peer {addr}: read failed: {e}")),
        }
    };
    let head = std::str::from_utf8(&buf[..header_end])
        .map_err(|_| format!("peer {addr}: non-UTF-8 response head"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or("");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("peer {addr}: bad status line {status_line:?}"))?;
    let mut content_length: Option<usize> = None;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().ok();
            }
        }
    }
    let len =
        content_length.ok_or_else(|| format!("peer {addr}: response without Content-Length"))?;
    if len > 64 * 1024 * 1024 {
        return Err(format!(
            "peer {addr}: response body too large ({len} bytes)"
        ));
    }
    let mut body = buf[header_end..].to_vec();
    while body.len() < len {
        set_io_deadline(stream, deadline).map_err(|e| format!("peer {addr}: {e}"))?;
        match stream.read(&mut chunk) {
            // A short body is a torn response, not a result.
            Ok(0) => {
                return Err(format!(
                    "peer {addr}: closed mid-body ({}/{len})",
                    body.len()
                ))
            }
            Ok(n) => body.extend_from_slice(&chunk[..n]),
            Err(e) => return Err(format!("peer {addr}: body read failed: {e}")),
        }
    }
    body.truncate(len);
    Ok((status, body))
}

fn find_header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|p| p + 4)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet_set(peers: &[&str]) -> Arc<PeerSet> {
        // A probe interval long enough that the background thread never
        // interferes with the state transitions under test.
        let policy = PeerPolicy {
            probe_interval: Duration::from_secs(600),
            cooldown: Duration::from_millis(30),
            failure_threshold: 2,
            ..PeerPolicy::for_tests()
        };
        PeerSet::start(
            peers.iter().map(|s| (*s).to_string()).collect(),
            None,
            policy,
            None,
        )
    }

    #[test]
    fn breaker_trips_after_threshold_and_recovers_half_open() {
        let set = quiet_set(&["a:1", "b:2"]);
        assert!(set.available("a:1"));
        set.record_failure("a:1");
        assert_eq!(set.health("a:1"), PeerHealth::Up, "one failure is noise");
        set.record_failure("a:1");
        assert_eq!(set.health("a:1"), PeerHealth::Down);
        assert!(!set.available("a:1"), "down peers take no traffic");
        assert_eq!(set.down_total(), 1);
        assert!(set.available("b:2"), "other peers unaffected");

        std::thread::sleep(Duration::from_millis(40));
        assert!(set.available("a:1"), "cooldown expired: half-open trial");
        assert_eq!(set.health("a:1"), PeerHealth::HalfOpen);
        set.record_failure("a:1");
        assert_eq!(
            set.health("a:1"),
            PeerHealth::Down,
            "trial failure re-opens"
        );
        assert_eq!(set.down_total(), 2);

        std::thread::sleep(Duration::from_millis(40));
        assert!(set.available("a:1"));
        set.record_success("a:1");
        assert_eq!(set.health("a:1"), PeerHealth::Up);
        assert_eq!(
            set.state_gauge(),
            vec![("a:1".to_string(), 2), ("b:2".to_string(), 2)]
        );
        set.shutdown();
    }

    #[test]
    fn call_to_unreachable_peer_fails_attributed_and_feeds_breaker() {
        let set = quiet_set(&["127.0.0.1:1"]);
        let err = set
            .call("127.0.0.1:1", "GET", "/v1/health", b"")
            .unwrap_err();
        assert!(err.contains("127.0.0.1:1"), "failure names the peer: {err}");
        // for_tests retries once: two attempts = threshold, breaker open.
        assert_eq!(set.health("127.0.0.1:1"), PeerHealth::Down);
        assert!(set.calls_made() >= 1);
        set.shutdown();
    }

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        assert_eq!(backoff_delay("a:1", 1), backoff_delay("a:1", 1));
        for attempt in 1..8 {
            assert!(backoff_delay("a:1", attempt) <= BACKOFF_CAP);
        }
    }
}
