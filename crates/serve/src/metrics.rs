//! Service counters and the `/metrics` text exposition.
//!
//! The instruments themselves — the lock-free [`Counter`], the
//! fixed-bucket latency [`Histogram`] and the [`Registry`] snapshot that
//! renders them — live in [`occache_runtime::instrument`], shared with
//! the batch harness (whose `RUN_REPORT.json` totals render through the
//! same registry). This module owns only the service's instrument *set*
//! and the family order of its Prometheus exposition.

use std::time::Duration;

use occache_runtime::instrument::{Counter, Registry};

pub use occache_runtime::instrument::Histogram;

/// Request-level counters for the whole service.
#[derive(Debug, Default)]
pub struct Counters {
    /// All requests accepted for processing (any endpoint).
    pub requests: Counter,
    /// `/v1/simulate` requests.
    pub simulate: Counter,
    /// `/v1/sweep` requests.
    pub sweep: Counter,
    /// `/v1/status` and `/metrics` scrapes.
    pub scrapes: Counter,
    /// Requests rejected with 429 (queue full).
    pub rejected: Counter,
    /// Interactive (single-point) submissions shed by admission control.
    pub shed_interactive: Counter,
    /// Bulk (grid) submissions shed by admission control.
    pub shed_bulk: Counter,
    /// Requests answered 408 (connection deadline hit mid-request).
    pub timeouts: Counter,
    /// Requests refused because the point key is quarantined by the
    /// circuit breaker.
    pub quarantined: Counter,
    /// Computed points queued to the write-behind journal.
    pub journal_appends: Counter,
    /// Requests answered 4xx (malformed input).
    pub client_errors: Counter,
    /// Requests answered 5xx.
    pub server_errors: Counter,
    /// Design points served straight from the result cache.
    pub points_cached: Counter,
    /// Design points computed by the scheduler.
    pub points_computed: Counter,
    /// Design points obtained from an owning peer's cache (warm fill).
    pub peer_fill_points: Counter,
    /// Design points computed locally although a remote peer owns them
    /// (owner down or fill failed).
    pub peer_steal: Counter,
    /// Peer-originated (`peer_fill: true`) requests answered.
    pub peer_fill_served: Counter,
    /// End-to-end latency of simulate/sweep requests.
    pub latency: Histogram,
}

/// Peer-tier stats sampled from the [`crate::peer::PeerSet`] at render
/// time — present only when the node runs in a cluster.
#[derive(Debug, Clone)]
pub struct PeerStats {
    /// Per-peer breaker state: 0 down, 1 half-open, 2 up.
    pub states: Vec<(String, u64)>,
    /// Breaker trips since start.
    pub down_total: u64,
    /// Failed liveness probes since start.
    pub probe_failures: u64,
    /// Outbound peer calls attempted.
    pub calls: u64,
}

/// Point-in-time gauges the service assembles from its other layers for
/// a `/metrics` render.
#[derive(Debug, Clone, Copy, Default)]
pub struct Gauges {
    /// Jobs waiting in the scheduler queue.
    pub queue_depth: usize,
    /// Scheduler worker threads.
    pub workers: usize,
    /// Workers currently evaluating a batch.
    pub workers_busy: usize,
    /// Result-cache entries.
    pub cache_entries: usize,
    /// Result-cache hits since start.
    pub cache_hits: u64,
    /// Result-cache misses since start.
    pub cache_misses: u64,
    /// Seconds since the service started.
    pub uptime_seconds: f64,
    /// Whether `/v1/ready` currently answers 200 (warm start finished,
    /// not draining).
    pub ready: bool,
    /// Whether shutdown has begun.
    pub draining: bool,
    /// The `Retry-After` seconds a 429 would carry right now.
    pub retry_after: u64,
}

/// Assembles the service's instrument families, in exposition order,
/// into a [`Registry`] snapshot.
pub fn registry(
    counters: &Counters,
    gauges: Gauges,
    worker_busy: &[Duration],
    faults_injected: &[(&'static str, u64)],
    peer: Option<&PeerStats>,
) -> Registry {
    let mut reg = Registry::new();
    reg.counter(
        "occache_requests_total",
        "Requests accepted on any endpoint.",
        counters.requests.get(),
    )
    .counter(
        "occache_requests_simulate_total",
        "POST /v1/simulate requests.",
        counters.simulate.get(),
    )
    .counter(
        "occache_requests_sweep_total",
        "POST /v1/sweep requests.",
        counters.sweep.get(),
    )
    .counter(
        "occache_scrapes_total",
        "Status and metrics scrapes.",
        counters.scrapes.get(),
    )
    .counter(
        "occache_rejected_total",
        "Requests rejected with 429 (queue full).",
        counters.rejected.get(),
    )
    .counter(
        "occache_shed_interactive_total",
        "Interactive submissions shed by admission control.",
        counters.shed_interactive.get(),
    )
    .counter(
        "occache_shed_bulk_total",
        "Bulk (grid) submissions shed by admission control.",
        counters.shed_bulk.get(),
    )
    .counter(
        "occache_timeouts_total",
        "Requests answered 408 (connection deadline mid-request).",
        counters.timeouts.get(),
    )
    .counter(
        "occache_quarantined_total",
        "Requests refused because the point key is circuit-broken.",
        counters.quarantined.get(),
    )
    .counter(
        "occache_journal_appends_total",
        "Computed points queued to the write-behind journal.",
        counters.journal_appends.get(),
    )
    .counter(
        "occache_client_errors_total",
        "Requests answered 4xx.",
        counters.client_errors.get(),
    )
    .counter(
        "occache_server_errors_total",
        "Requests answered 5xx.",
        counters.server_errors.get(),
    )
    .counter(
        "occache_cache_hits_total",
        "Design points served from the result cache.",
        gauges.cache_hits,
    )
    .counter(
        "occache_cache_misses_total",
        "Design points not found in the result cache.",
        gauges.cache_misses,
    )
    .counter(
        "occache_points_computed_total",
        "Design points computed by the scheduler.",
        counters.points_computed.get(),
    )
    .counter(
        "occache_peer_fill_points_total",
        "Design points obtained from an owning peer's cache.",
        counters.peer_fill_points.get(),
    )
    .counter(
        "occache_peer_steal_total",
        "Remote-owned design points computed locally (owner down or fill failed).",
        counters.peer_steal.get(),
    )
    .counter(
        "occache_peer_fill_served_total",
        "Peer-originated (peer_fill) requests answered.",
        counters.peer_fill_served.get(),
    )
    .gauge(
        "occache_queue_depth",
        "Jobs waiting in the scheduler queue.",
        gauges.queue_depth as u64,
    )
    .gauge(
        "occache_workers",
        "Scheduler worker threads.",
        gauges.workers as u64,
    )
    .bare("occache_workers_busy", gauges.workers_busy as u128)
    .gauge(
        "occache_cache_entries",
        "Result-cache entries resident.",
        gauges.cache_entries as u64,
    )
    .gauge(
        "occache_ready",
        "1 when /v1/ready answers 200 (warm start done, not draining).",
        u64::from(gauges.ready),
    )
    .gauge(
        "occache_draining",
        "1 once shutdown has begun.",
        u64::from(gauges.draining),
    )
    .gauge(
        "occache_retry_after_seconds",
        "The Retry-After estimate a 429 would carry right now.",
        gauges.retry_after,
    )
    .gauge_seconds(
        "occache_uptime_seconds",
        "Seconds since service start.",
        gauges.uptime_seconds,
    )
    .labeled_counter_seconds(
        "occache_worker_busy_seconds",
        "Cumulative evaluation time per worker.",
        "worker",
        worker_busy
            .iter()
            .enumerate()
            .map(|(i, busy)| (i.to_string(), busy.as_secs_f64())),
    )
    .summary(
        "occache_request_seconds",
        "Simulate/sweep latency quantiles (bucket upper bounds).",
        [("0.5", 0.5), ("0.99", 0.99)]
            .map(|(label, q)| (label.to_string(), counters.latency.quantile_seconds(q))),
    )
    .bare(
        "occache_request_seconds_count",
        u128::from(counters.latency.count()),
    );
    if let Some(peer) = peer {
        reg.counter(
            "occache_peer_down_total",
            "Per-peer circuit-breaker trips.",
            peer.down_total,
        )
        .counter(
            "occache_peer_probe_failures_total",
            "Failed liveness probes.",
            peer.probe_failures,
        )
        .counter(
            "occache_peer_calls_total",
            "Outbound peer calls attempted.",
            peer.calls,
        )
        .labeled_gauge(
            "occache_peer_state",
            "Per-peer breaker state: 0 down, 1 half-open, 2 up.",
            "peer",
            peer.states.iter().cloned(),
        );
    }
    for (kind, fired) in faults_injected {
        reg.counter(
            &format!("occache_fault_{kind}_injected_total"),
            "Chaos injections fired (OCCACHE_SERVE_FAULT).",
            *fired,
        );
    }
    reg
}

/// Renders the Prometheus-style text exposition for `/metrics`.
pub fn render(
    counters: &Counters,
    gauges: Gauges,
    worker_busy: &[Duration],
    faults_injected: &[(&'static str, u64)],
    peer: Option<&PeerStats>,
) -> String {
    registry(counters, gauges, worker_busy, faults_injected, peer).render_prometheus()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_includes_every_family() {
        let counters = Counters::default();
        counters.requests.bump();
        counters.latency.record(Duration::from_millis(2));
        counters.shed_bulk.bump();
        counters.timeouts.bump();
        let text = render(
            &counters,
            Gauges {
                queue_depth: 1,
                workers: 2,
                workers_busy: 1,
                cache_entries: 3,
                cache_hits: 4,
                cache_misses: 5,
                uptime_seconds: 6.5,
                ready: true,
                draining: false,
                retry_after: 3,
            },
            &[Duration::from_secs(1), Duration::from_secs(2)],
            &[("torn_write", 2), ("drop_conn", 0)],
            None,
        );
        for needle in [
            "occache_requests_total 1",
            "occache_queue_depth 1",
            "occache_workers 2",
            "occache_workers_busy 1",
            "occache_shed_interactive_total 0",
            "occache_shed_bulk_total 1",
            "occache_timeouts_total 1",
            "occache_quarantined_total 0",
            "occache_journal_appends_total 0",
            "occache_cache_hits_total 4",
            "occache_cache_misses_total 5",
            "occache_ready 1",
            "occache_draining 0",
            "occache_retry_after_seconds 3",
            "occache_uptime_seconds 6.500",
            "occache_worker_busy_seconds{worker=\"1\"} 2.000",
            "occache_request_seconds{quantile=\"0.5\"} 0.004096",
            "occache_request_seconds{quantile=\"0.99\"} 0.004096",
            "occache_request_seconds_count 1",
            "occache_fault_torn_write_injected_total 2",
            "occache_fault_drop_conn_injected_total 0",
        ] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
        assert!(
            !text.contains("occache_peer_state"),
            "peer families should be absent outside a cluster:\n{text}"
        );
    }

    #[test]
    fn peer_families_render_when_clustered() {
        let counters = Counters::default();
        counters.peer_fill_points.bump();
        let stats = PeerStats {
            states: vec![
                ("127.0.0.1:7801".to_string(), 2),
                ("127.0.0.1:7802".to_string(), 0),
            ],
            down_total: 1,
            probe_failures: 3,
            calls: 7,
        };
        let text = render(&counters, Gauges::default(), &[], &[], Some(&stats));
        for needle in [
            "occache_peer_fill_points_total 1",
            "occache_peer_steal_total 0",
            "occache_peer_fill_served_total 0",
            "occache_peer_down_total 1",
            "occache_peer_probe_failures_total 3",
            "occache_peer_calls_total 7",
            "occache_peer_state{peer=\"127.0.0.1:7801\"} 2",
            "occache_peer_state{peer=\"127.0.0.1:7802\"} 0",
        ] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }
}
