//! Service counters and a fixed-bucket latency histogram, all atomic —
//! the `/metrics` endpoint renders a snapshot without stopping workers.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Histogram bucket upper bounds in microseconds: powers of four from
/// 64 µs to ~67 s, plus an unbounded overflow bucket. Fixed at compile
/// time so recording is one atomic increment.
const BUCKET_BOUNDS_US: &[u64] = &[
    64,
    256,
    1_024,
    4_096,
    16_384,
    65_536,
    262_144,
    1_048_576,
    4_194_304,
    16_777_216,
    67_108_864,
];

/// A fixed-bucket latency histogram with lock-free recording.
#[derive(Debug)]
pub struct Histogram {
    counts: Vec<AtomicU64>,
    total: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: (0..=BUCKET_BOUNDS_US.len()).map(|_| AtomicU64::new(0)).collect(),
            total: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one observation.
    pub fn record(&self, elapsed: Duration) {
        let us = u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX);
        let bucket = BUCKET_BOUNDS_US
            .iter()
            .position(|&bound| us <= bound)
            .unwrap_or(BUCKET_BOUNDS_US.len());
        self.counts[bucket].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// The `q`-quantile in seconds (upper bound of the bucket holding
    /// it): a conservative estimate, monotone in `q`. Zero when empty.
    pub fn quantile_seconds(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, count) in self.counts.iter().enumerate() {
            seen += count.load(Ordering::Relaxed);
            if seen >= rank {
                let bound_us = BUCKET_BOUNDS_US
                    .get(i)
                    .copied()
                    // Overflow bucket: report the largest finite bound.
                    .unwrap_or(*BUCKET_BOUNDS_US.last().expect("bounds non-empty"));
                return bound_us as f64 / 1e6;
            }
        }
        0.0
    }
}

/// Request-level counters for the whole service.
#[derive(Debug, Default)]
pub struct Counters {
    /// All requests accepted for processing (any endpoint).
    pub requests: AtomicU64,
    /// `/v1/simulate` requests.
    pub simulate: AtomicU64,
    /// `/v1/sweep` requests.
    pub sweep: AtomicU64,
    /// `/v1/status` and `/metrics` scrapes.
    pub scrapes: AtomicU64,
    /// Requests rejected with 429 (queue full).
    pub rejected: AtomicU64,
    /// Requests answered 4xx (malformed input).
    pub client_errors: AtomicU64,
    /// Requests answered 5xx.
    pub server_errors: AtomicU64,
    /// Design points served straight from the result cache.
    pub points_cached: AtomicU64,
    /// Design points computed by the scheduler.
    pub points_computed: AtomicU64,
    /// End-to-end latency of simulate/sweep requests.
    pub latency: Histogram,
}

impl Counters {
    /// Convenience: relaxed increment.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Convenience: relaxed add.
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Convenience: relaxed read.
    pub fn get(counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }
}

/// Point-in-time gauges the service assembles from its other layers for
/// a `/metrics` render.
#[derive(Debug, Clone, Copy, Default)]
pub struct Gauges {
    /// Jobs waiting in the scheduler queue.
    pub queue_depth: usize,
    /// Scheduler worker threads.
    pub workers: usize,
    /// Workers currently evaluating a batch.
    pub workers_busy: usize,
    /// Result-cache entries.
    pub cache_entries: usize,
    /// Result-cache hits since start.
    pub cache_hits: u64,
    /// Result-cache misses since start.
    pub cache_misses: u64,
    /// Seconds since the service started.
    pub uptime_seconds: f64,
}

/// Renders the Prometheus-style text exposition for `/metrics`.
pub fn render(counters: &Counters, gauges: Gauges, worker_busy: &[Duration]) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(1024);
    let mut counter = |name: &str, help: &str, value: u64| {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {value}");
    };
    counter(
        "occache_requests_total",
        "Requests accepted on any endpoint.",
        Counters::get(&counters.requests),
    );
    counter(
        "occache_requests_simulate_total",
        "POST /v1/simulate requests.",
        Counters::get(&counters.simulate),
    );
    counter(
        "occache_requests_sweep_total",
        "POST /v1/sweep requests.",
        Counters::get(&counters.sweep),
    );
    counter(
        "occache_scrapes_total",
        "Status and metrics scrapes.",
        Counters::get(&counters.scrapes),
    );
    counter(
        "occache_rejected_total",
        "Requests rejected with 429 (queue full).",
        Counters::get(&counters.rejected),
    );
    counter(
        "occache_client_errors_total",
        "Requests answered 4xx.",
        Counters::get(&counters.client_errors),
    );
    counter(
        "occache_server_errors_total",
        "Requests answered 5xx.",
        Counters::get(&counters.server_errors),
    );
    counter(
        "occache_cache_hits_total",
        "Design points served from the result cache.",
        gauges.cache_hits,
    );
    counter(
        "occache_cache_misses_total",
        "Design points not found in the result cache.",
        gauges.cache_misses,
    );
    counter(
        "occache_points_computed_total",
        "Design points computed by the scheduler.",
        Counters::get(&counters.points_computed),
    );
    let _ = writeln!(out, "# HELP occache_queue_depth Jobs waiting in the scheduler queue.");
    let _ = writeln!(out, "# TYPE occache_queue_depth gauge");
    let _ = writeln!(out, "occache_queue_depth {}", gauges.queue_depth);
    let _ = writeln!(out, "# HELP occache_workers Scheduler worker threads.");
    let _ = writeln!(out, "# TYPE occache_workers gauge");
    let _ = writeln!(out, "occache_workers {}", gauges.workers);
    let _ = writeln!(out, "occache_workers_busy {}", gauges.workers_busy);
    let _ = writeln!(out, "# HELP occache_cache_entries Result-cache entries resident.");
    let _ = writeln!(out, "# TYPE occache_cache_entries gauge");
    let _ = writeln!(out, "occache_cache_entries {}", gauges.cache_entries);
    let _ = writeln!(out, "# HELP occache_uptime_seconds Seconds since service start.");
    let _ = writeln!(out, "# TYPE occache_uptime_seconds gauge");
    let _ = writeln!(out, "occache_uptime_seconds {:.3}", gauges.uptime_seconds);
    let _ = writeln!(
        out,
        "# HELP occache_worker_busy_seconds Cumulative evaluation time per worker."
    );
    let _ = writeln!(out, "# TYPE occache_worker_busy_seconds counter");
    for (i, busy) in worker_busy.iter().enumerate() {
        let _ = writeln!(
            out,
            "occache_worker_busy_seconds{{worker=\"{i}\"}} {:.3}",
            busy.as_secs_f64()
        );
    }
    let _ = writeln!(
        out,
        "# HELP occache_request_seconds Simulate/sweep latency quantiles (bucket upper bounds)."
    );
    let _ = writeln!(out, "# TYPE occache_request_seconds summary");
    for (label, q) in [("0.5", 0.5), ("0.99", 0.99)] {
        let _ = writeln!(
            out,
            "occache_request_seconds{{quantile=\"{label}\"}} {:?}",
            counters.latency.quantile_seconds(q)
        );
    }
    let _ = writeln!(
        out,
        "occache_request_seconds_count {}",
        counters.latency.count()
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_are_monotone_and_bucketed() {
        let h = Histogram::default();
        for ms in [1u64, 1, 1, 1, 1, 1, 1, 1, 1, 500] {
            h.record(Duration::from_millis(ms));
        }
        let p50 = h.quantile_seconds(0.5);
        let p99 = h.quantile_seconds(0.99);
        assert!(p50 <= p99, "p50 {p50} > p99 {p99}");
        // 1 ms lands in the 1024 µs bucket; 500 ms in the 1.048576 s one.
        assert!((p50 - 0.001024).abs() < 1e-9, "{p50}");
        assert!((p99 - 1.048576).abs() < 1e-9, "{p99}");
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = Histogram::default();
        assert_eq!(h.quantile_seconds(0.5), 0.0);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn render_includes_every_family() {
        let counters = Counters::default();
        Counters::bump(&counters.requests);
        counters.latency.record(Duration::from_millis(2));
        let text = render(
            &counters,
            Gauges {
                queue_depth: 1,
                workers: 2,
                workers_busy: 1,
                cache_entries: 3,
                cache_hits: 4,
                cache_misses: 5,
                uptime_seconds: 6.5,
            },
            &[Duration::from_secs(1), Duration::from_secs(2)],
        );
        for needle in [
            "occache_requests_total 1",
            "occache_queue_depth 1",
            "occache_workers 2",
            "occache_cache_hits_total 4",
            "occache_cache_misses_total 5",
            "occache_worker_busy_seconds{worker=\"1\"} 2.000",
            "occache_request_seconds{quantile=\"0.5\"}",
            "occache_request_seconds{quantile=\"0.99\"}",
        ] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }
}
