//! Hand-rolled HTTP/1.1: a pure, fuzz-tested request parser plus small
//! connection and response helpers over any `Read + Write` stream.
//!
//! The wire-facing surface is deliberately tiny: `GET`/`POST`, explicit
//! `Content-Length` bodies only (chunked transfer encoding is rejected),
//! keep-alive by default. [`parse_head`] is a pure function of the bytes
//! received so far — it either needs more bytes, yields a complete head,
//! or rejects the input — which makes torn reads, oversized heads and
//! malformed framing directly property-testable without sockets.

use std::io::{self, Read, Write};
use std::time::Instant;

/// Upper bound on the request head (request line + headers + blank
/// line). Heads that exceed this without terminating are rejected.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Upper bound on a request body.
pub const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;

/// A parsed request head.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestHead {
    /// Request method, as sent (e.g. `GET`, `POST`).
    pub method: String,
    /// Request target (path + optional query), as sent.
    pub target: String,
    /// Declared body length (0 when absent).
    pub content_length: usize,
    /// Whether the connection should stay open after the response
    /// (HTTP/1.1 default unless `Connection: close`).
    pub keep_alive: bool,
}

/// What [`parse_head`] concluded about the bytes so far.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseOutcome {
    /// No complete head yet — read more bytes and call again.
    Incomplete,
    /// A complete head; `head_len` bytes of the buffer were consumed by
    /// it (the body, if any, starts there).
    Ready {
        /// The parsed head.
        head: RequestHead,
        /// Bytes consumed by the head, including the blank line.
        head_len: usize,
    },
}

/// Why a request was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The head exceeded [`MAX_HEAD_BYTES`] without terminating.
    TooLarge,
    /// The declared body exceeds [`MAX_BODY_BYTES`].
    BodyTooLarge,
    /// Malformed request line, header, or framing.
    Bad(String),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::TooLarge => write!(f, "request head larger than {MAX_HEAD_BYTES} bytes"),
            ParseError::BodyTooLarge => {
                write!(f, "request body larger than {MAX_BODY_BYTES} bytes")
            }
            ParseError::Bad(why) => write!(f, "malformed request: {why}"),
        }
    }
}

/// Finds the end of the head: the index just past the first blank line.
/// Accepts both `\r\n\r\n` and bare `\n\n` separators.
fn head_end(buf: &[u8]) -> Option<usize> {
    let mut i = 0;
    while i < buf.len() {
        if buf[i] == b'\n' {
            if buf.get(i + 1) == Some(&b'\n') {
                return Some(i + 2);
            }
            if buf.get(i + 1) == Some(&b'\r') && buf.get(i + 2) == Some(&b'\n') {
                return Some(i + 3);
            }
        }
        i += 1;
    }
    None
}

/// Parses an HTTP/1.x request head from the bytes received so far.
///
/// Pure function: same bytes, same answer. Returns
/// [`ParseOutcome::Incomplete`] until the blank line has arrived, so a
/// caller can feed it arbitrarily torn reads.
///
/// # Errors
///
/// [`ParseError::TooLarge`] once the unterminated head passes
/// [`MAX_HEAD_BYTES`]; [`ParseError::BodyTooLarge`] for an oversized
/// declared body; [`ParseError::Bad`] for malformed framing (bad request
/// line, non-numeric or conflicting `Content-Length`, chunked transfer
/// encoding, binary junk).
pub fn parse_head(buf: &[u8]) -> Result<ParseOutcome, ParseError> {
    let Some(head_len) = head_end(buf) else {
        if buf.len() > MAX_HEAD_BYTES {
            return Err(ParseError::TooLarge);
        }
        return Ok(ParseOutcome::Incomplete);
    };
    if head_len > MAX_HEAD_BYTES {
        return Err(ParseError::TooLarge);
    }
    let head_text = std::str::from_utf8(&buf[..head_len])
        .map_err(|_| ParseError::Bad("head is not UTF-8".into()))?;
    let mut lines = head_text
        .split('\n')
        .map(|l| l.strip_suffix('\r').unwrap_or(l));

    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ').filter(|p| !p.is_empty());
    let method = parts
        .next()
        .ok_or_else(|| ParseError::Bad("empty request line".into()))?;
    let target = parts
        .next()
        .ok_or_else(|| ParseError::Bad("request line has no target".into()))?;
    let version = parts
        .next()
        .ok_or_else(|| ParseError::Bad("request line has no version".into()))?;
    if parts.next().is_some() {
        return Err(ParseError::Bad("request line has extra fields".into()));
    }
    if !version.starts_with("HTTP/1.") {
        return Err(ParseError::Bad(format!("unsupported version {version:?}")));
    }
    if method.is_empty() || !method.bytes().all(|b| b.is_ascii_alphanumeric()) {
        return Err(ParseError::Bad(format!("bad method {method:?}")));
    }

    let mut content_length: Option<usize> = None;
    let mut keep_alive = true;
    for line in lines {
        if line.is_empty() {
            break; // the blank line terminating the head
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| ParseError::Bad(format!("header without colon: {line:?}")))?;
        let name = name.trim();
        let value = value.trim();
        if name.is_empty() || !name.bytes().all(|b| b.is_ascii_graphic()) {
            return Err(ParseError::Bad(format!("bad header name {name:?}")));
        }
        if name.eq_ignore_ascii_case("content-length") {
            let n: usize = value
                .parse()
                .map_err(|_| ParseError::Bad(format!("bad content-length {value:?}")))?;
            if let Some(prev) = content_length {
                if prev != n {
                    return Err(ParseError::Bad("conflicting content-length".into()));
                }
            }
            content_length = Some(n);
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            return Err(ParseError::Bad(
                "transfer-encoding is not supported (use content-length)".into(),
            ));
        } else if name.eq_ignore_ascii_case("connection") && value.eq_ignore_ascii_case("close") {
            keep_alive = false;
        }
    }
    let content_length = content_length.unwrap_or(0);
    if content_length > MAX_BODY_BYTES {
        return Err(ParseError::BodyTooLarge);
    }
    Ok(ParseOutcome::Ready {
        head: RequestHead {
            method: method.to_string(),
            target: target.to_string(),
            content_length,
            keep_alive,
        },
        head_len,
    })
}

/// A complete request: head plus body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The parsed head.
    pub head: RequestHead,
    /// The body bytes (`content_length` of them).
    pub body: Vec<u8>,
}

/// What one read attempt on a connection produced.
#[derive(Debug)]
pub enum ReadOutcome {
    /// The peer closed the connection cleanly between requests.
    Closed,
    /// A complete request.
    Complete(Request),
    /// The peer sent something unusable; respond 4xx and close.
    Malformed(ParseError),
}

/// One HTTP connection: buffers reads, retains pipelined leftovers
/// between requests, writes responses.
#[derive(Debug)]
pub struct Connection<S> {
    stream: S,
    buf: Vec<u8>,
}

impl<S: Read + Write> Connection<S> {
    /// Wraps a stream.
    pub fn new(stream: S) -> Self {
        Connection {
            stream,
            buf: Vec::new(),
        }
    }

    /// Reads until one complete request (head + declared body) is
    /// buffered. Bytes beyond the request stay buffered for the next
    /// call (pipelining).
    ///
    /// # Errors
    ///
    /// Propagates transport errors (including read timeouts, surfaced by
    /// the OS as `WouldBlock`/`TimedOut`).
    pub fn read_request(&mut self) -> io::Result<ReadOutcome> {
        self.read_request_before(None)
    }

    /// [`Connection::read_request`] with an overall wall-clock deadline.
    ///
    /// The stream's own read timeout bounds each *individual* read; the
    /// deadline bounds the *whole* request, which is what defeats a
    /// slow-loris client trickling one byte per read-timeout window. The
    /// clock is checked between reads, so the deadline can overshoot by
    /// at most one read-timeout.
    ///
    /// # Errors
    ///
    /// `TimedOut` once the deadline passes (check
    /// [`Connection::mid_request`] to distinguish a half-sent request
    /// from an idle keep-alive); transport errors propagate.
    pub fn read_request_before(&mut self, deadline: Option<Instant>) -> io::Result<ReadOutcome> {
        loop {
            match parse_head(&self.buf) {
                Err(e) => return Ok(ReadOutcome::Malformed(e)),
                Ok(ParseOutcome::Ready { head, head_len }) => {
                    let total = head_len + head.content_length;
                    if self.buf.len() >= total {
                        let mut rest = self.buf.split_off(total);
                        std::mem::swap(&mut rest, &mut self.buf);
                        let body = rest[head_len..].to_vec();
                        return Ok(ReadOutcome::Complete(Request { head, body }));
                    }
                }
                Ok(ParseOutcome::Incomplete) => {}
            }
            if let Some(deadline) = deadline {
                if Instant::now() >= deadline {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "connection deadline exceeded",
                    ));
                }
            }
            let mut chunk = [0u8; 8 * 1024];
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Ok(if self.buf.is_empty() {
                    ReadOutcome::Closed
                } else {
                    ReadOutcome::Malformed(ParseError::Bad("connection died mid-request".into()))
                });
            }
            self.buf.extend_from_slice(&chunk[..n]);
        }
    }

    /// Whether a partial request is buffered — a timeout with bytes
    /// pending deserves a 408, an idle keep-alive just a quiet close.
    pub fn mid_request(&self) -> bool {
        !self.buf.is_empty()
    }

    /// Writes a response with the given status, extra headers, and body.
    ///
    /// # Errors
    ///
    /// Propagates transport errors.
    pub fn write_response(
        &mut self,
        status: u16,
        content_type: &str,
        extra_headers: &[(&str, String)],
        body: &[u8],
    ) -> io::Result<()> {
        let wire = render_response(status, content_type, extra_headers, body);
        self.stream.write_all(&wire)?;
        self.stream.flush()
    }

    /// Writes only the first `prefix` bytes of the response — the chaos
    /// harness's torn-write injection. The caller must close the
    /// connection afterwards; the peer sees a response whose body stops
    /// short of its declared `Content-Length`.
    ///
    /// # Errors
    ///
    /// Propagates transport errors.
    pub fn write_torn_response(
        &mut self,
        status: u16,
        content_type: &str,
        extra_headers: &[(&str, String)],
        body: &[u8],
        prefix: usize,
    ) -> io::Result<()> {
        let wire = render_response(status, content_type, extra_headers, body);
        self.stream.write_all(&wire[..prefix.min(wire.len())])?;
        self.stream.flush()
    }

    /// Convenience: a JSON body.
    ///
    /// # Errors
    ///
    /// Propagates transport errors.
    pub fn write_json(&mut self, status: u16, body: &str) -> io::Result<()> {
        self.write_response(status, "application/json", &[], body.as_bytes())
    }

    /// Convenience: a JSON error body `{"error": "..."}`.
    ///
    /// # Errors
    ///
    /// Propagates transport errors.
    pub fn write_error(&mut self, status: u16, message: &str) -> io::Result<()> {
        let body = format!("{{\"error\":\"{}\"}}", crate::json::escape(message));
        self.write_json(status, &body)
    }
}

/// Renders a complete response (status line, headers, blank line, body)
/// to wire bytes. Pure, so torn-write injection can truncate the exact
/// bytes an intact response would have sent.
pub fn render_response(
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, String)],
    body: &[u8],
) -> Vec<u8> {
    let reason = reason_phrase(status);
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n",
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    let mut wire = head.into_bytes();
    wire.extend_from_slice(body);
    wire
}

fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Response",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ready(buf: &[u8]) -> (RequestHead, usize) {
        match parse_head(buf) {
            Ok(ParseOutcome::Ready { head, head_len }) => (head, head_len),
            other => panic!("expected Ready, got {other:?}"),
        }
    }

    #[test]
    fn parses_post_with_body_framing() {
        let raw = b"POST /v1/simulate HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nbody";
        let (head, head_len) = ready(raw);
        assert_eq!(head.method, "POST");
        assert_eq!(head.target, "/v1/simulate");
        assert_eq!(head.content_length, 4);
        assert!(head.keep_alive);
        assert_eq!(&raw[head_len..], b"body");
    }

    #[test]
    fn connection_close_is_honoured() {
        let raw = b"GET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n";
        let (head, _) = ready(raw);
        assert!(!head.keep_alive);
    }

    #[test]
    fn bare_lf_heads_parse_too() {
        let (head, head_len) = ready(b"GET /v1/status HTTP/1.0\n\n");
        assert_eq!(head.method, "GET");
        assert_eq!(head_len, 25);
    }

    #[test]
    fn incomplete_until_blank_line() {
        assert_eq!(
            parse_head(b"POST /v1/simulate HTTP/1.1\r\nContent-Length: 4\r\n"),
            Ok(ParseOutcome::Incomplete)
        );
    }

    #[test]
    fn oversized_head_is_rejected() {
        let big = vec![b'a'; MAX_HEAD_BYTES + 1];
        assert_eq!(parse_head(&big), Err(ParseError::TooLarge));
    }

    #[test]
    fn bad_content_length_is_rejected() {
        for bad in ["-1", "abc", "1e3", ""] {
            let raw = format!("POST / HTTP/1.1\r\nContent-Length: {bad}\r\n\r\n");
            assert!(
                matches!(parse_head(raw.as_bytes()), Err(ParseError::Bad(_))),
                "{bad:?}"
            );
        }
        let raw = format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", usize::MAX);
        assert!(matches!(
            parse_head(raw.as_bytes()),
            Err(ParseError::BodyTooLarge)
        ));
    }

    #[test]
    fn chunked_transfer_is_rejected() {
        let raw = b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n";
        assert!(matches!(parse_head(raw), Err(ParseError::Bad(_))));
    }

    #[test]
    fn connection_reads_pipelined_requests() {
        let wire: Vec<u8> =
            b"GET /a HTTP/1.1\r\n\r\nPOST /b HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi".to_vec();
        let mut conn = Connection::new(io::Cursor::new(wire));
        let first = match conn.read_request().unwrap() {
            ReadOutcome::Complete(r) => r,
            other => panic!("{other:?}"),
        };
        assert_eq!(first.head.target, "/a");
        let second = match conn.read_request().unwrap() {
            ReadOutcome::Complete(r) => r,
            other => panic!("{other:?}"),
        };
        assert_eq!(second.head.target, "/b");
        assert_eq!(second.body, b"hi");
        assert!(matches!(conn.read_request().unwrap(), ReadOutcome::Closed));
    }

    #[test]
    fn response_is_well_formed() {
        let mut conn = Connection::new(io::Cursor::new(Vec::new()));
        conn.write_response(
            429,
            "application/json",
            &[("Retry-After", "1".into())],
            b"{}",
        )
        .unwrap();
        let wire = String::from_utf8(conn.stream.into_inner()).unwrap();
        assert!(
            wire.starts_with("HTTP/1.1 429 Too Many Requests\r\n"),
            "{wire}"
        );
        assert!(wire.contains("Retry-After: 1\r\n"), "{wire}");
        assert!(wire.ends_with("\r\n\r\n{}"), "{wire}");
    }
}
