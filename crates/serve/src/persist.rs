//! The write-behind result journal: crash recovery for served points.
//!
//! The warm-start path (PR 4) could *read* batch checkpoints, but a
//! point computed by the service itself lived only in the in-memory
//! cache — a crash threw it away. With `OCCACHE_SERVE_JOURNAL=dir` set,
//! every computed point is also appended (off the request path, by a
//! single writer thread) to `dir/.checkpoint/serve.jsonl` in the exact
//! sealed v2 record format of `occache_runtime::journal`, so a
//! killed-and-restarted server warm-starts from its own journal and
//! answers previously computed points bit-identically from disk.
//!
//! Properties:
//!
//! * **Write-behind**: the request thread only sends `(key, entry)`
//!   down a channel; fsync cost never lands on a response's latency.
//! * **Dedup**: the writer keeps the set of keys already on disk
//!   (seeded by scanning the journal at open), so re-computed points —
//!   e.g. after the bounded cache evicted them — do not grow the file.
//! * **Crash-safe**: records are sealed with the FNV checksum, and
//!   [`scan_journal`]'s torn-tail repair means a crash mid-append costs
//!   at most the final record.

use std::collections::HashSet;
use std::fs;
use std::io::{self, Write};
use std::path::Path;
use std::sync::mpsc::{channel, Sender};
use std::thread::JoinHandle;

use occache_runtime::journal::{journal_path, point_body, scan_journal, seal, Entry};

/// The journal artifact name the serving layer owns (batch sweeps use
/// their experiment names).
pub const ARTIFACT: &str = "serve";

/// The handle the service holds: a channel into the writer thread.
#[derive(Debug)]
pub struct WriteBehind {
    tx: Option<Sender<(u64, Entry)>>,
    writer: Option<JoinHandle<u64>>,
}

impl WriteBehind {
    /// Opens (creating as needed) the serve journal under `dir`,
    /// returning the writer handle and every intact point already on
    /// disk — the crash-recovery warm start. Torn tails and corrupt
    /// lines are reported to stderr and skipped, exactly like the batch
    /// resume path.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures creating the directory, scanning, or
    /// opening the journal for append.
    pub fn open(dir: &Path) -> io::Result<(WriteBehind, Vec<(u64, Entry)>)> {
        let path = journal_path(dir, ARTIFACT);
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        let scan = scan_journal(&path)?;
        if scan.needs_repair() {
            eprintln!(
                "serve journal {}: {} bad line(s), {} torn tail byte(s) — skipped",
                path.display(),
                scan.issues.len(),
                scan.torn_tail_bytes,
            );
        }
        let recovered: Vec<(u64, Entry)> = scan.points.iter().map(|(&k, &e)| (k, e)).collect();
        let mut seen: HashSet<u64> = scan.points.keys().copied().collect();
        let mut file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)?;
        // A torn tail would corrupt the next append's first record;
        // start every append on a fresh line.
        if scan.torn_tail_bytes > 0 || scan.missing_final_newline {
            file.write_all(b"\n")?;
        }
        let (tx, rx) = channel::<(u64, Entry)>();
        let writer = std::thread::Builder::new()
            .name("occache-journal".to_string())
            .spawn(move || {
                let mut appended = 0u64;
                while let Ok((key, entry)) = rx.recv() {
                    if !seen.insert(key) || entry.non_finite_field().is_some() {
                        continue;
                    }
                    let line = seal(&point_body(key, &entry));
                    if file
                        .write_all(line.as_bytes())
                        .and_then(|()| file.write_all(b"\n"))
                        .and_then(|()| file.flush())
                        .is_err()
                    {
                        // Journalling is best-effort durability on top
                        // of a correct in-memory answer; a full disk
                        // must not take the service down with it.
                        seen.remove(&key);
                        continue;
                    }
                    appended += 1;
                }
                let _ = file.sync_all();
                appended
            })?;
        Ok((
            WriteBehind {
                tx: Some(tx),
                writer: Some(writer),
            },
            recovered,
        ))
    }

    /// Queues one computed point for append. Never blocks the caller.
    pub fn record(&self, key: u64, entry: Entry) {
        if let Some(tx) = &self.tx {
            let _ = tx.send((key, entry));
        }
    }

    /// Drains the channel, fsyncs, joins the writer; returns how many
    /// records this process appended.
    pub fn shutdown(mut self) -> u64 {
        self.close()
    }

    fn close(&mut self) -> u64 {
        drop(self.tx.take());
        self.writer.take().and_then(|w| w.join().ok()).unwrap_or(0)
    }
}

impl Drop for WriteBehind {
    fn drop(&mut self) {
        self.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(seed: f64) -> Entry {
        Entry {
            miss: seed,
            traffic: seed * 2.0,
            nibble: seed / 3.0,
            redundant: 0.0,
        }
    }

    #[test]
    fn appends_dedups_and_recovers_across_reopen() {
        let dir = std::env::temp_dir().join(format!("occache-wb-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let (wb, recovered) = WriteBehind::open(&dir).unwrap();
        assert!(recovered.is_empty());
        wb.record(1, entry(0.25));
        wb.record(2, entry(0.5));
        wb.record(1, entry(0.25)); // dedup
        assert_eq!(wb.shutdown(), 2);

        // Simulate a crash mid-append: a torn trailing record.
        let path = journal_path(&dir, ARTIFACT);
        let mut file = fs::OpenOptions::new().append(true).open(&path).unwrap();
        file.write_all(b"{\"v\":2,\"key\":\"00000000000").unwrap();
        drop(file);

        let (wb, recovered) = WriteBehind::open(&dir).unwrap();
        let mut keys: Vec<u64> = recovered.iter().map(|(k, _)| *k).collect();
        keys.sort_unstable();
        assert_eq!(keys, [1, 2], "intact records survive the torn tail");
        let e1 = recovered.iter().find(|(k, _)| *k == 1).unwrap().1;
        assert_eq!(
            e1.miss.to_bits(),
            0.25f64.to_bits(),
            "bit-identical restore"
        );
        // New appends after the torn tail still parse.
        wb.record(3, entry(0.75));
        assert_eq!(wb.shutdown(), 1);
        let scan = scan_journal(&path).unwrap();
        assert_eq!(scan.points.len(), 3);
        let _ = fs::remove_dir_all(&dir);
    }
}
