//! The content-addressed in-memory result cache.
//!
//! Keys are the checkpoint journal's FNV point keys — config `Debug`
//! rendering + trace-set fingerprint + warm-up — so a cache entry means
//! exactly what a journal line means, and an existing
//! `results/.checkpoint/` directory can warm-start the cache: every
//! design point a prior batch sweep sealed to disk is served without
//! re-simulation.

use std::collections::{HashMap, VecDeque};
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use occache_runtime::journal::{scan_journal, Entry};

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<u64, Entry>,
    // Insertion order for FIFO eviction: oldest entries leave first.
    // (Hot keys are cheap to recompute relative to tracking recency
    // under a lock on every hit.)
    order: VecDeque<u64>,
}

/// A bounded, content-addressed map from point key to journalled metric
/// entry, with hit/miss accounting.
#[derive(Debug)]
pub struct ResultCache {
    inner: Mutex<Inner>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ResultCache {
    /// Creates a cache holding at most `capacity` entries (minimum 1).
    pub fn new(capacity: usize) -> Self {
        ResultCache {
            inner: Mutex::new(Inner::default()),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Looks a point up, counting the hit or miss.
    pub fn get(&self, key: u64) -> Option<Entry> {
        let found = self
            .inner
            .lock()
            .expect("result cache lock")
            .map
            .get(&key)
            .copied();
        match found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Whether a point is resident, without touching the hit/miss
    /// counters — the peer-fill planner peeks before deciding which
    /// misses to ask an owner for, and must not distort the cache stats
    /// the later authoritative lookup records.
    pub fn contains(&self, key: u64) -> bool {
        self.inner
            .lock()
            .expect("result cache lock")
            .map
            .contains_key(&key)
    }

    /// Inserts a computed point. Non-finite entries are refused — the
    /// same gate the journal applies — so a poisoned metric can never be
    /// served twice. Returns whether the entry was stored.
    pub fn insert(&self, key: u64, entry: Entry) -> bool {
        if entry.non_finite_field().is_some() {
            return false;
        }
        let mut inner = self.inner.lock().expect("result cache lock");
        if inner.map.insert(key, entry).is_none() {
            inner.order.push_back(key);
            while inner.map.len() > self.capacity {
                if let Some(old) = inner.order.pop_front() {
                    inner.map.remove(&old);
                } else {
                    break;
                }
            }
        }
        true
    }

    /// Entries resident now.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("result cache lock").map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Hits since start.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Misses since start.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Warm-starts from every checkpoint journal under
    /// `results_dir/.checkpoint/`, returning how many points were
    /// loaded. Tombstones and damaged lines are skipped exactly as a
    /// batch resume skips them; a missing directory loads nothing.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors other than the directory not
    /// existing.
    pub fn warm_start(&self, results_dir: &Path) -> io::Result<usize> {
        let checkpoint = results_dir.join(".checkpoint");
        let entries = match std::fs::read_dir(&checkpoint) {
            Ok(e) => e,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(0),
            Err(e) => return Err(e),
        };
        let mut loaded = 0usize;
        for dirent in entries {
            let path = dirent?.path();
            if path.extension().and_then(|e| e.to_str()) != Some("jsonl") {
                continue; // LOCK, temp files, ...
            }
            let scan = scan_journal(&path)?;
            for (key, entry) in scan.points {
                if self.insert(key, entry) {
                    loaded += 1;
                }
            }
        }
        Ok(loaded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(miss: f64) -> Entry {
        Entry {
            miss,
            traffic: 1.0,
            nibble: 1.0,
            redundant: 0.0,
        }
    }

    #[test]
    fn hit_and_miss_accounting() {
        let cache = ResultCache::new(8);
        assert!(cache.get(1).is_none());
        assert!(cache.insert(1, entry(0.5)));
        assert_eq!(cache.get(1), Some(entry(0.5)));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn fifo_eviction_bounds_the_cache() {
        let cache = ResultCache::new(2);
        cache.insert(1, entry(0.1));
        cache.insert(2, entry(0.2));
        cache.insert(3, entry(0.3));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(1).is_none(), "oldest entry should be evicted");
        assert!(cache.get(3).is_some());
    }

    #[test]
    fn non_finite_entries_are_refused() {
        let cache = ResultCache::new(8);
        assert!(!cache.insert(1, entry(f64::NAN)));
        assert!(cache.is_empty());
    }

    #[test]
    fn warm_start_skips_missing_directory() {
        let dir = std::env::temp_dir().join("occache_serve_warm_none");
        let cache = ResultCache::new(8);
        assert_eq!(cache.warm_start(&dir).unwrap(), 0);
    }
}
