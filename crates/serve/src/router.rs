//! The thin routing tier: consistent-hash request routing over the
//! static peer list, with failover to survivors when a shard is down.
//!
//! `occache-route` owns no scheduler, no cache and no traces — it parses
//! just enough of each request to compute routing keys, forwards
//! canonicalised requests to the owning shard, and merges shard
//! responses. Ownership uses rendezvous (highest-random-weight) hashing
//! over [`route_key`]: every router and every node rank the peer list
//! identically for a key, rankings are stable across restarts (the hash
//! has no seed or process state), and removing one peer reassigns only
//! the keys that peer owned — the minimal-disruption property the
//! membership-change tests pin down.
//!
//! The routing key deliberately differs from the cache's
//! [`occache_runtime::keys::point_key`]: the true point key hashes the
//! materialised trace fingerprint, which only a node that has generated
//! the traces can know. [`route_key`] hashes the *request identity* —
//! model name, reference count, warm-up and the config's full `Debug`
//! rendering. Trace generation is deterministic, so two requests with
//! equal route keys resolve to the same point key on every node; the
//! router stays trace-free and still agrees with the shards about
//! ownership.
//!
//! Failure model: a forward to the owner that fails (deadline, refused,
//! torn response) is retried per [`crate::peer::PeerPolicy`], then the
//! request re-ranks to the best *available* survivor — which computes
//! the point itself rather than proxying on (forwarded requests carry
//! `peer_fill: true`, suppressing onward fan-out). Only when every peer
//! is unreachable does the router answer, and then with a structured,
//! retryable 503 — never an unattributed error.

use std::collections::BTreeMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use occache_core::CacheConfig;
use occache_runtime::config::env_timeout;
use occache_runtime::instrument::{Counter, Registry};
use occache_runtime::keys::fnv1a;

use crate::fault::ServeFault;
use crate::http::{Connection, ParseError, ReadOutcome, Request};
use crate::json::{escape, ErrorBody, Json};
use crate::peer::{PeerPolicy, PeerSet};
use crate::service::parse_point_request;

/// Default bind address for the router.
const DEFAULT_ROUTE_ADDR: &str = "127.0.0.1:7806";

/// Accept-loop poll interval (mirrors the node service).
const ACCEPT_POLL: Duration = Duration::from_millis(25);

/// How long router shutdown waits for in-flight connections.
const DRAIN_DEADLINE: Duration = Duration::from_secs(10);

/// The routing key of one design point: FNV-1a over the request
/// identity (lowercased model, refs, warm-up, config `Debug`). Nodes
/// and routers must compute this identically — it is the unit of
/// ownership.
pub fn route_key(model: &str, refs: usize, warmup: usize, config: &CacheConfig) -> u64 {
    fnv1a(
        format!(
            "route\u{1f}{}\u{1f}{refs}\u{1f}{warmup}\u{1f}{config:?}",
            model.to_ascii_lowercase()
        )
        .as_bytes(),
    )
}

/// The rendezvous weight of `peer` for `key`.
fn score(peer: &str, key: u64) -> u64 {
    let mut bytes = Vec::with_capacity(peer.len() + 9);
    bytes.extend_from_slice(peer.as_bytes());
    bytes.push(0xff);
    bytes.extend_from_slice(&key.to_le_bytes());
    fnv1a(&bytes)
}

/// Peers ranked best-first for `key` (rendezvous hashing, ties broken
/// by address so the order is total). `ranked(...)[0]` is the owner;
/// the rest is the deterministic failover order.
pub fn ranked(key: u64, peers: &[String]) -> Vec<&str> {
    let mut scored: Vec<(u64, &str)> = peers.iter().map(|p| (score(p, key), p.as_str())).collect();
    scored.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(b.1)));
    scored.into_iter().map(|(_, p)| p).collect()
}

/// The peer owning `key`: the top-ranked entry of the full list.
pub fn owner(key: u64, peers: &[String]) -> &str {
    ranked(key, peers).first().copied().unwrap_or("")
}

/// Renders one config as the request-body JSON object the nodes parse.
pub fn config_json(config: &CacheConfig) -> String {
    format!(
        "{{\"net\":{},\"block\":{},\"sub\":{},\"assoc\":{},\"word\":{}}}",
        config.net_size(),
        config.block_size(),
        config.sub_block_size(),
        config.associativity(),
        config.word_size(),
    )
}

/// Renders the canonical peer-to-peer request body: explicit `refs` and
/// `warmup` (so both sides compute identical route keys regardless of
/// local defaults) and `peer_fill: true` (so the receiving node answers
/// from its own cache/scheduler without fanning out further).
pub fn render_peer_request(
    model: &str,
    refs: usize,
    warmup: usize,
    configs: &[CacheConfig],
    single: bool,
) -> String {
    let model = escape(model);
    if single {
        let config = configs.first().map(config_json).unwrap_or_default();
        format!(
            "{{\"model\":\"{model}\",\"refs\":{refs},\"warmup\":{warmup},\
             \"peer_fill\":true,\"config\":{config}}}"
        )
    } else {
        let points: Vec<String> = configs.iter().map(config_json).collect();
        format!(
            "{{\"model\":\"{model}\",\"refs\":{refs},\"warmup\":{warmup},\
             \"peer_fill\":true,\"points\":[{}]}}",
            points.join(",")
        )
    }
}

/// Extracts the raw text inside `"field":[ ... ]` without reparsing —
/// shard responses are spliced byte-for-byte into the merged response so
/// the exact float renderings survive. Returns `None` when the field is
/// absent or unterminated. Safe against brackets inside JSON strings
/// (string state and escapes are tracked; a literal `"field":[` cannot
/// occur inside a JSON string because its quotes would be escaped).
fn extract_array_raw<'a>(body: &'a str, field: &str) -> Option<&'a str> {
    let needle = format!("\"{field}\":[");
    let start = body.find(&needle)? + needle.len();
    let bytes = body.as_bytes();
    let mut depth = 1usize;
    let mut in_string = false;
    let mut escaped = false;
    for (i, &b) in bytes.iter().enumerate().skip(start) {
        if in_string {
            if escaped {
                escaped = false;
            } else if b == b'\\' {
                escaped = true;
            } else if b == b'"' {
                in_string = false;
            }
            continue;
        }
        match b {
            b'"' => in_string = true,
            b'[' | b'{' => depth += 1,
            b']' | b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&body[start..i]);
                }
            }
            _ => {}
        }
    }
    None
}

/// Router tuning, normally read from the environment.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Bind address (`OCCACHE_ROUTE_ADDR`, default `127.0.0.1:7806`).
    pub addr: String,
    /// The shard list (`OCCACHE_PEERS`, required).
    pub peers: Vec<String>,
    /// Default references when a request omits `refs` (`OCCACHE_REFS`).
    pub default_refs: usize,
    /// Peer call deadline/retry/breaker policy.
    pub policy: PeerPolicy,
    /// Per-connection wall-clock deadline
    /// (`OCCACHE_SERVE_CONN_TIMEOUT`, default 5 s).
    pub conn_timeout: Option<Duration>,
    /// Deterministic chaos injection (`OCCACHE_SERVE_FAULT`).
    pub fault: Option<Arc<ServeFault>>,
}

impl RouterConfig {
    /// Reads the configuration from the environment. `OCCACHE_PEERS` is
    /// mandatory — a router with no shards routes nothing.
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing or malformed variable.
    pub fn try_from_env() -> Result<RouterConfig, String> {
        let peers = occache_runtime::config::try_peers()?
            .ok_or("OCCACHE_PEERS must be set for occache-route")?;
        Ok(RouterConfig {
            addr: std::env::var("OCCACHE_ROUTE_ADDR")
                .unwrap_or_else(|_| DEFAULT_ROUTE_ADDR.to_string()),
            peers,
            default_refs: occache_experiments::sweep::try_trace_len()?,
            policy: PeerPolicy::try_from_env()?,
            conn_timeout: env_timeout("OCCACHE_SERVE_CONN_TIMEOUT", Some(Duration::from_secs(5)))?,
            fault: ServeFault::try_from_env()?.map(Arc::new),
        })
    }

    /// A test configuration: ephemeral port, fast peer policy.
    pub fn for_tests(peers: Vec<String>) -> RouterConfig {
        RouterConfig {
            addr: "127.0.0.1:0".to_string(),
            peers,
            default_refs: 2_000,
            policy: PeerPolicy::for_tests(),
            conn_timeout: Some(Duration::from_secs(5)),
            fault: None,
        }
    }
}

/// Router request counters.
#[derive(Debug, Default)]
struct RouteCounters {
    requests: Counter,
    forwarded: Counter,
    rerouted: Counter,
    unroutable: Counter,
    scrapes: Counter,
    client_errors: Counter,
    server_errors: Counter,
}

/// The routing service shared by every connection thread.
#[derive(Debug)]
pub struct Router {
    peers: Arc<PeerSet>,
    addrs: Vec<String>,
    default_refs: usize,
    counters: RouteCounters,
    conn_timeout: Option<Duration>,
    fault: Option<Arc<ServeFault>>,
    started: Instant,
}

impl Router {
    /// Builds the router and starts its peer probes.
    pub fn new(config: &RouterConfig) -> Router {
        let peers = PeerSet::start(
            config.peers.clone(),
            None,
            config.policy.clone(),
            config.fault.clone(),
        );
        Router {
            addrs: peers.addrs(),
            peers,
            default_refs: config.default_refs,
            counters: RouteCounters::default(),
            conn_timeout: config.conn_timeout,
            fault: config.fault.clone(),
            started: Instant::now(),
        }
    }

    /// The live peer set (tests and embedders).
    pub fn peers(&self) -> &Arc<PeerSet> {
        &self.peers
    }

    /// Handles one parsed request.
    fn handle(&self, request: &Request) -> (u16, String) {
        self.counters.requests.bump();
        let path = request
            .head
            .target
            .split('?')
            .next()
            .unwrap_or(&request.head.target);
        let method = request.head.method.as_str();
        let (status, body) = match (method, path) {
            ("POST", "/v1/simulate") => self.forward_simulate(&request.body),
            ("POST", "/v1/sweep") => self.forward_sweep(&request.body),
            ("GET", "/v1/health") => (200, "{\"status\":\"ok\"}".to_string()),
            ("GET", "/v1/ready") => {
                if self.addrs.iter().any(|a| self.peers.available(a)) {
                    (200, "{\"ready\":true}".to_string())
                } else {
                    (
                        503,
                        ErrorBody::new("no-peers-available", "every peer is down", true).render(),
                    )
                }
            }
            ("GET", "/v1/status") => {
                self.counters.scrapes.bump();
                (200, self.status_json())
            }
            ("GET", "/metrics") => {
                self.counters.scrapes.bump();
                return (200, self.metrics_text());
            }
            (
                _,
                "/v1/simulate" | "/v1/sweep" | "/v1/status" | "/v1/health" | "/v1/ready"
                | "/metrics",
            ) => (
                405,
                ErrorBody::new("method-not-allowed", "method not allowed", false).render(),
            ),
            _ => (
                404,
                ErrorBody::new("not-found", "no such endpoint", false).render(),
            ),
        };
        match status {
            400..=499 => self.counters.client_errors.bump(),
            500..=599 => self.counters.server_errors.bump(),
            _ => {}
        }
        (status, body)
    }

    /// Tries `key`'s peers best-first: available ones in ranked order,
    /// then — if the breaker benched everyone — the owner regardless, so
    /// a fully-benched cluster still gets one live attempt instead of a
    /// reflex 503. Returns the relayed response and whether a non-owner
    /// answered.
    fn forward_ranked(&self, key: u64, path: &str, body: &str) -> Option<(u16, Vec<u8>, bool)> {
        let order = ranked(key, &self.addrs);
        let mut attempted = false;
        for (i, addr) in order.iter().enumerate() {
            if !self.peers.available(addr) {
                continue;
            }
            attempted = true;
            if let Ok((status, reply)) = self.peers.call(addr, "POST", path, body.as_bytes()) {
                return Some((status, reply, i > 0));
            }
        }
        if !attempted {
            if let Some(addr) = order.first() {
                if let Ok((status, reply)) = self.peers.call(addr, "POST", path, body.as_bytes()) {
                    return Some((status, reply, false));
                }
            }
        }
        None
    }

    fn forward_simulate(&self, body: &[u8]) -> (u16, String) {
        let parsed = match parse_point_request(body, self.default_refs) {
            Ok(p) => p,
            Err(why) => return (400, ErrorBody::new("bad-request", &why, false).render()),
        };
        let Some(config) = parsed.configs.first().copied() else {
            return (
                400,
                ErrorBody::new("bad-request", "no config given", false).render(),
            );
        };
        let key = route_key(&parsed.model, parsed.refs, parsed.warmup, &config);
        let wire = render_peer_request(&parsed.model, parsed.refs, parsed.warmup, &[config], true);
        match self.forward_ranked(key, "/v1/simulate", &wire) {
            Some((status, reply, rerouted)) => {
                self.counters.forwarded.bump();
                if rerouted {
                    self.counters.rerouted.bump();
                }
                (status, String::from_utf8_lossy(&reply).into_owned())
            }
            None => {
                self.counters.unroutable.bump();
                (
                    503,
                    ErrorBody::new("no-peers-available", "every peer is unreachable", true)
                        .render(),
                )
            }
        }
    }

    fn forward_sweep(&self, body: &[u8]) -> (u16, String) {
        let parsed = match parse_point_request(body, self.default_refs) {
            Ok(p) => p,
            Err(why) => return (400, ErrorBody::new("bad-request", &why, false).render()),
        };
        if parsed.configs.is_empty() {
            return (
                400,
                ErrorBody::new("bad-request", "empty grid", false).render(),
            );
        }
        // Partition the grid by owner — BTreeMap so sub-requests (and
        // the merged point order) are deterministic.
        let mut groups: BTreeMap<&str, Vec<CacheConfig>> = BTreeMap::new();
        for config in &parsed.configs {
            let key = route_key(&parsed.model, parsed.refs, parsed.warmup, config);
            let order = ranked(key, &self.addrs);
            let target = order
                .iter()
                .find(|a| self.peers.available(a))
                .or_else(|| order.first())
                .copied()
                .unwrap_or("");
            groups.entry(target).or_default().push(*config);
        }
        let mut total = 0u64;
        let mut cached = 0u64;
        let mut computed = 0u64;
        let mut points = String::new();
        let mut failures = String::new();
        for (addr, configs) in &groups {
            let wire =
                render_peer_request(&parsed.model, parsed.refs, parsed.warmup, configs, false);
            let key = route_key(&parsed.model, parsed.refs, parsed.warmup, &configs[0]);
            let reply = if let Ok(r) = self.peers.call(addr, "POST", "/v1/sweep", wire.as_bytes()) {
                self.counters.forwarded.bump();
                Some(r)
            } else {
                // The group's owner is gone mid-request: re-rank and let
                // a survivor compute the whole group.
                self.forward_ranked(key, "/v1/sweep", &wire)
                    .map(|(status, reply, _)| {
                        self.counters.forwarded.bump();
                        self.counters.rerouted.bump();
                        (status, reply)
                    })
            };
            let Some((status, reply)) = reply else {
                self.counters.unroutable.bump();
                return (
                    503,
                    ErrorBody::new("no-peers-available", "every peer is unreachable", true)
                        .render(),
                );
            };
            let text = String::from_utf8_lossy(&reply).into_owned();
            if status != 200 {
                // One shard refusing (429 under pressure, 503 draining)
                // fails the whole sweep with that shard's own structured
                // body — attributed, and retryable when the shard says so.
                return (status, text);
            }
            let doc = match Json::parse(&text) {
                Ok(d) => d,
                Err(e) => {
                    self.counters.unroutable.bump();
                    return (
                        502,
                        ErrorBody::new(
                            "bad-peer-response",
                            &format!("peer {addr} sent unparseable sweep response: {e}"),
                            true,
                        )
                        .render(),
                    );
                }
            };
            let field = |name: &str| doc.get(name).and_then(Json::as_u64).unwrap_or(0);
            total += field("total");
            cached += field("cached");
            computed += field("computed");
            for (dst, name) in [(&mut points, "points"), (&mut failures, "failures")] {
                if let Some(raw) = extract_array_raw(&text, name) {
                    if !raw.is_empty() {
                        if !dst.is_empty() {
                            dst.push(',');
                        }
                        dst.push_str(raw);
                    }
                }
            }
        }
        (
            200,
            format!(
                "{{\"model\":\"{}\",\"refs\":{},\"warmup\":{},\"total\":{total},\
                 \"cached\":{cached},\"computed\":{computed},\
                 \"points\":[{points}],\"failures\":[{failures}]}}",
                escape(&parsed.model),
                parsed.refs,
                parsed.warmup,
            ),
        )
    }

    fn status_json(&self) -> String {
        let up = self
            .addrs
            .iter()
            .filter(|a| self.peers.available(a))
            .count();
        // `journal_replayed` is always 0 here — the router is stateless —
        // but stays in the schema so dashboards read one shape for both
        // front-ends.
        format!(
            "{{\"service\":\"occache-route\",\"peers\":{},\"peers_up\":{up},\
             \"forwarded\":{},\"rerouted\":{},\"unroutable\":{},\
             \"peer_down_total\":{},\"uptime_seconds\":{:?},\"uptime_s\":{},\
             \"journal_replayed\":0}}",
            self.addrs.len(),
            self.counters.forwarded.get(),
            self.counters.rerouted.get(),
            self.counters.unroutable.get(),
            self.peers.down_total(),
            self.started.elapsed().as_secs_f64(),
            self.started.elapsed().as_secs(),
        )
    }

    fn metrics_text(&self) -> String {
        let mut reg = Registry::new();
        reg.counter(
            "occache_route_requests_total",
            "Requests accepted by the router.",
            self.counters.requests.get(),
        )
        .counter(
            "occache_route_forwarded_total",
            "Requests forwarded to a shard.",
            self.counters.forwarded.get(),
        )
        .counter(
            "occache_route_rerouted_total",
            "Requests answered by a survivor instead of the owner.",
            self.counters.rerouted.get(),
        )
        .counter(
            "occache_route_unroutable_total",
            "Requests refused because every peer was unreachable.",
            self.counters.unroutable.get(),
        )
        .counter(
            "occache_route_client_errors_total",
            "Requests answered 4xx.",
            self.counters.client_errors.get(),
        )
        .counter(
            "occache_route_server_errors_total",
            "Requests answered 5xx.",
            self.counters.server_errors.get(),
        )
        .counter(
            "occache_peer_down_total",
            "Per-peer circuit-breaker trips.",
            self.peers.down_total(),
        )
        .counter(
            "occache_peer_probe_failures_total",
            "Failed liveness probes.",
            self.peers.probe_failures(),
        )
        .counter(
            "occache_peer_calls_total",
            "Outbound peer calls attempted.",
            self.peers.calls_made(),
        )
        .labeled_gauge(
            "occache_peer_state",
            "Per-peer breaker state: 0 down, 1 half-open, 2 up.",
            "peer",
            self.peers.state_gauge(),
        )
        .gauge_seconds(
            "occache_uptime_seconds",
            "Seconds since router start.",
            self.started.elapsed().as_secs_f64(),
        );
        if let Some(fault) = &self.fault {
            for (kind, fired) in fault.injected() {
                reg.counter(
                    &format!("occache_fault_{kind}_injected_total"),
                    "Chaos injections fired (OCCACHE_SERVE_FAULT).",
                    fired,
                );
            }
        }
        reg.render_prometheus()
    }
}

/// A running router: accept loop on its own thread.
#[derive(Debug)]
pub struct RouterServer {
    addr: SocketAddr,
    router: Arc<Router>,
    stop: Arc<AtomicBool>,
    accept: Option<std::thread::JoinHandle<io::Result<()>>>,
}

impl RouterServer {
    /// Binds and starts the accept loop.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn start(config: &RouterConfig) -> io::Result<RouterServer> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let router = Arc::new(Router::new(config));
        let stop = Arc::new(AtomicBool::new(false));
        let accept = {
            let router = Arc::clone(&router);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("occache-route-accept".to_string())
                .spawn(move || accept_loop(&listener, &router, &stop))?
        };
        Ok(RouterServer {
            addr,
            router,
            stop,
            accept: Some(accept),
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared router (tests and embedders).
    pub fn router(&self) -> &Arc<Router> {
        &self.router
    }

    /// Whether the accept loop has exited (e.g. after SIGINT).
    pub fn finished(&self) -> bool {
        self.accept.as_ref().is_none_or(|h| h.is_finished())
    }

    /// Graceful shutdown: stop accepting, drain, join the probes.
    ///
    /// # Errors
    ///
    /// Propagates an accept-loop I/O failure (the drain still ran).
    pub fn stop(mut self) -> io::Result<()> {
        self.stop.store(true, Ordering::SeqCst);
        let outcome = match self.accept.take() {
            Some(handle) => handle
                .join()
                .unwrap_or_else(|_| Err(io::Error::other("router accept loop panicked"))),
            None => Ok(()),
        };
        self.router.peers.shutdown();
        outcome
    }
}

fn accept_loop(
    listener: &TcpListener,
    router: &Arc<Router>,
    stop: &Arc<AtomicBool>,
) -> io::Result<()> {
    let active = Arc::new(AtomicUsize::new(0));
    let should_stop =
        |stop: &AtomicBool| stop.load(Ordering::SeqCst) || occache_runtime::interrupt::requested();
    while !should_stop(stop) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                active.fetch_add(1, Ordering::SeqCst);
                let router = Arc::clone(router);
                let stop = Arc::clone(stop);
                let conn_active = Arc::clone(&active);
                let spawned = std::thread::Builder::new()
                    .name("occache-route-conn".to_string())
                    .spawn(move || {
                        let _ = serve_connection(stream, &router, &stop);
                        conn_active.fetch_sub(1, Ordering::SeqCst);
                    });
                if spawned.is_err() {
                    active.fetch_sub(1, Ordering::SeqCst);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(e) => return Err(e),
        }
    }
    let deadline = Instant::now() + DRAIN_DEADLINE;
    while active.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
        std::thread::sleep(ACCEPT_POLL);
    }
    Ok(())
}

fn serve_connection(stream: TcpStream, router: &Router, stop: &AtomicBool) -> io::Result<()> {
    let read_timeout = router
        .conn_timeout
        .unwrap_or(Duration::from_secs(5))
        .min(Duration::from_secs(5));
    stream.set_read_timeout(Some(read_timeout))?;
    let mut conn = Connection::new(stream);
    loop {
        let deadline = router.conn_timeout.map(|t| Instant::now() + t);
        let outcome = match conn.read_request_before(deadline) {
            Ok(o) => o,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if conn.mid_request() {
                    let body =
                        ErrorBody::new("request-timeout", "request not completed in time", true)
                            .render();
                    let _ = conn.write_json(408, &body);
                }
                return Ok(());
            }
            Err(e) => return Err(e),
        };
        match outcome {
            ReadOutcome::Closed => return Ok(()),
            ReadOutcome::Malformed(e) => {
                let (status, code) = match e {
                    ParseError::TooLarge | ParseError::BodyTooLarge => (413, "payload-too-large"),
                    ParseError::Bad(_) => (400, "bad-request"),
                };
                conn.write_json(
                    status,
                    &ErrorBody::new(code, &e.to_string(), false).render(),
                )?;
                return Ok(());
            }
            ReadOutcome::Complete(request) => {
                let keep_alive = request.head.keep_alive;
                let (status, body) = router.handle(&request);
                let content_type = if request.head.target.starts_with("/metrics") {
                    "text/plain; version=0.0.4"
                } else {
                    "application/json"
                };
                conn.write_response(status, content_type, &[], body.as_bytes())?;
                if !keep_alive || stop.load(Ordering::SeqCst) {
                    return Ok(());
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn peers(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("10.0.0.{i}:780{i}")).collect()
    }

    #[test]
    fn ranking_is_deterministic_across_restarts() {
        // A "restart" is just a second computation — the hash carries no
        // process state, so equal inputs must rank equally, always.
        let list = peers(5);
        for key in 0..512u64 {
            assert_eq!(ranked(key, &list), ranked(key, &list));
        }
    }

    #[test]
    fn removing_one_peer_reassigns_only_its_keys() {
        let full = peers(5);
        let removed = "10.0.0.2:7802";
        let survivors: Vec<String> = full.iter().filter(|p| *p != removed).cloned().collect();
        let mut reassigned = 0usize;
        for key in 0..4096u64 {
            let before = owner(key, &full);
            let after = owner(key, &survivors);
            if before == removed {
                reassigned += 1;
                assert_ne!(after, removed);
            } else {
                assert_eq!(before, after, "key {key} moved although its owner survived");
            }
        }
        assert!(
            reassigned > 0,
            "the removed peer owned nothing in 4096 keys"
        );
    }

    #[test]
    fn route_key_separates_every_identity_field() {
        let config = occache_core::CacheConfig::builder()
            .net_size(64)
            .block_size(8)
            .sub_block_size(4)
            .word_size(2)
            .build()
            .unwrap();
        let other = occache_core::CacheConfig::builder()
            .net_size(64)
            .block_size(8)
            .sub_block_size(8)
            .word_size(2)
            .build()
            .unwrap();
        let base = route_key("pdp11", 1000, 0, &config);
        assert_eq!(
            base,
            route_key("PDP11", 1000, 0, &config),
            "model case-folds"
        );
        assert_ne!(base, route_key("s370", 1000, 0, &config));
        assert_ne!(base, route_key("pdp11", 1001, 0, &config));
        assert_ne!(base, route_key("pdp11", 1000, 100, &config));
        assert_ne!(base, route_key("pdp11", 1000, 0, &other));
    }

    #[test]
    fn extract_array_raw_handles_strings_and_nesting() {
        let body = r#"{"total":2,"points":[{"key":"00ab","config":{"net":64}},{"key":"00cd"}],"failures":[{"message":"odd ] brace } in text"}]}"#;
        assert_eq!(
            extract_array_raw(body, "points"),
            Some(r#"{"key":"00ab","config":{"net":64}},{"key":"00cd"}"#)
        );
        assert_eq!(
            extract_array_raw(body, "failures"),
            Some(r#"{"message":"odd ] brace } in text"}"#)
        );
        assert_eq!(extract_array_raw(body, "absent"), None);
        assert_eq!(extract_array_raw(r#"{"points":["#, "points"), None);
        assert_eq!(extract_array_raw(r#"{"points":[]}"#, "points"), Some(""));
    }

    #[test]
    fn peer_request_round_trips_through_the_node_parser() {
        let config = occache_core::CacheConfig::builder()
            .net_size(128)
            .block_size(16)
            .sub_block_size(4)
            .associativity(2)
            .word_size(4)
            .build()
            .unwrap();
        let wire = render_peer_request("s370", 5000, 100, &[config], false);
        let parsed = parse_point_request(wire.as_bytes(), 999).unwrap();
        assert_eq!(parsed.model, "s370");
        assert_eq!(parsed.refs, 5000);
        assert_eq!(parsed.warmup, 100);
        assert!(parsed.fill, "peer requests suppress onward fan-out");
        assert_eq!(parsed.configs, vec![config]);
        assert_eq!(
            route_key("s370", 5000, 100, &config),
            route_key(
                &parsed.model,
                parsed.refs,
                parsed.warmup,
                &parsed.configs[0]
            ),
            "routing agrees across the wire"
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// Minimal disruption, property form: dropping any one peer from
        /// any small cluster reassigns only that peer's keys.
        #[test]
        fn membership_change_is_minimal_disruption(
            n in 2usize..6,
            gone in 0usize..6,
            key in 0u64..=u64::MAX,
        ) {
            let full = peers(n);
            let gone = &full[gone % n].clone();
            let survivors: Vec<String> =
                full.iter().filter(|p| *p != gone).cloned().collect();
            let before = owner(key, &full).to_string();
            let after = owner(key, &survivors).to_string();
            if before == *gone {
                prop_assert_ne!(&after, gone);
            } else {
                prop_assert_eq!(&before, &after);
            }
        }

        /// Every key has exactly one owner and the full ranking is a
        /// permutation of the peer list.
        #[test]
        fn ranking_is_a_permutation(n in 1usize..8, key in 0u64..=u64::MAX) {
            let list = peers(n);
            let order = ranked(key, &list);
            prop_assert_eq!(order.len(), n);
            let mut sorted: Vec<&str> = order.clone();
            sorted.sort_unstable();
            let mut expect: Vec<&str> = list.iter().map(String::as_str).collect();
            expect.sort_unstable();
            prop_assert_eq!(sorted, expect);
        }
    }
}
