//! Cache configuration: the design parameters of Table 1 plus the policies
//! held fixed by the paper (which we expose anyway so they can be ablated).

use std::error::Error;
use std::fmt;

/// Block replacement policy within a set.
///
/// The paper runs everything with LRU ("LRU permits more efficient
/// simulation and reasonable alternatives perform comparably", §3.1, citing
/// Strecker's observation that LRU, FIFO and RANDOM differ little); FIFO and
/// Random are provided for the ablation experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ReplacementPolicy {
    /// Least-recently-used (the paper's choice).
    #[default]
    Lru,
    /// First-in first-out: eviction order is fill order, untouched by hits.
    Fifo,
    /// Uniform-random victim selection (deterministic given the cache seed).
    Random,
}

impl fmt::Display for ReplacementPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ReplacementPolicy::Lru => "LRU",
            ReplacementPolicy::Fifo => "FIFO",
            ReplacementPolicy::Random => "RANDOM",
        };
        f.write_str(name)
    }
}

/// Fetch policy: what gets loaded on a miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FetchPolicy {
    /// Demand fetch: only the missing sub-block is loaded (§1: "only the
    /// missing sub-block is loaded").
    #[default]
    Demand,
    /// Load-forward (§4.4): the missing sub-block *and all subsequent
    /// sub-blocks in the same block* are loaded.
    LoadForward {
        /// `false` selects the paper's *redundant-load* scheme, which
        /// re-fetches sub-blocks that are already resident (simple memory
        /// interface, some redundant bus traffic). `true` selects the
        /// optimized scheme that remembers valid sub-blocks and skips them —
        /// the variant the paper describes but does not implement.
        remember_valid: bool,
    },
    /// Sequential sub-block prefetch — the §2.2 "smart cache" direction,
    /// after Smith \[11\]: a miss on sub-block *i* also loads *i+1*
    /// (within the block). Prefetching trades extra traffic and possible
    /// pollution for latency, exactly the cost/risk §2.2 describes.
    PrefetchNext {
        /// `false` is *prefetch-on-miss*; `true` is Smith's *tagged*
        /// prefetch: the first reference to a prefetched sub-block also
        /// triggers the next prefetch, keeping sequential streams ahead.
        tagged: bool,
    },
}

impl FetchPolicy {
    /// The paper's load-forward variant (redundant loads allowed).
    pub const LOAD_FORWARD: FetchPolicy = FetchPolicy::LoadForward {
        remember_valid: false,
    };
}

impl fmt::Display for FetchPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FetchPolicy::Demand => f.write_str("demand"),
            FetchPolicy::LoadForward {
                remember_valid: false,
            } => f.write_str("load-forward"),
            FetchPolicy::LoadForward {
                remember_valid: true,
            } => f.write_str("load-forward(optimized)"),
            FetchPolicy::PrefetchNext { tagged: false } => f.write_str("prefetch-on-miss"),
            FetchPolicy::PrefetchNext { tagged: true } => f.write_str("tagged-prefetch"),
        }
    }
}

/// Write-update policy (an extension; the paper filters writes out of its
/// metrics, and we do too — these control only the auxiliary write-traffic
/// accounting in [`Metrics`](crate::Metrics)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WritePolicy {
    /// Every write also goes to memory; no dirty state.
    #[default]
    WriteThrough,
    /// Writes dirty the sub-block; dirty sub-blocks are flushed on eviction.
    CopyBack,
}

impl fmt::Display for WritePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WritePolicy::WriteThrough => f.write_str("write-through"),
            WritePolicy::CopyBack => f.write_str("copy-back"),
        }
    }
}

/// Error constructing a [`CacheConfig`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// A size parameter was zero or not a power of two.
    NotPowerOfTwo {
        /// Which parameter was invalid.
        what: &'static str,
        /// The offending value.
        value: u64,
    },
    /// Sizes must satisfy `word <= sub_block <= block <= net`.
    SizeOrdering {
        /// Human-readable description of the violated relation.
        relation: &'static str,
    },
    /// Associativity must be at least 1.
    ZeroAssociativity,
    /// More than 64 sub-blocks per block (the per-frame bitmask limit).
    TooManySubBlocks {
        /// Requested sub-blocks per block.
        requested: u64,
    },
    /// Address width outside `16..=48` bits.
    BadAddressBits {
        /// Requested width.
        requested: u32,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::NotPowerOfTwo { what, value } => {
                write!(f, "{what} must be a nonzero power of two, got {value}")
            }
            ConfigError::SizeOrdering { relation } => {
                write!(f, "size ordering violated: {relation}")
            }
            ConfigError::ZeroAssociativity => f.write_str("associativity must be at least 1"),
            ConfigError::TooManySubBlocks { requested } => write!(
                f,
                "at most 64 sub-blocks per block are supported, got {requested}"
            ),
            ConfigError::BadAddressBits { requested } => {
                write!(
                    f,
                    "address width must be within 16..=48 bits, got {requested}"
                )
            }
        }
    }
}

impl Error for ConfigError {}

/// A validated cache design point.
///
/// Mirrors Table 1 of the paper: net (data) size, block size, sub-block
/// size, associativity, replacement and fetch policies — plus the bus word
/// size (the per-reference transfer unit of a cacheless system, 2 bytes for
/// the 16-bit architectures and 4 for the 32-bit ones) and the address width
/// used for gross-size arithmetic (32 bits in the paper, even for the 16-bit
/// machines).
///
/// ```
/// use occache_core::CacheConfig;
///
/// let config = CacheConfig::builder()
///     .net_size(1024)
///     .block_size(16)
///     .sub_block_size(8)
///     .word_size(2)
///     .build()?;
/// assert_eq!(config.num_sets(), 16);
/// assert_eq!(config.sub_blocks_per_block(), 2);
/// assert_eq!(config.gross_size(), 1264); // Table 7, row "1264 / 16,8"
/// # Ok::<(), occache_core::ConfigError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheConfig {
    net_size: u64,
    block_size: u64,
    sub_block_size: u64,
    associativity: u64,
    replacement: ReplacementPolicy,
    fetch: FetchPolicy,
    write: WritePolicy,
    word_size: u64,
    address_bits: u32,
}

impl CacheConfig {
    /// Starts building a configuration.
    ///
    /// Defaults match the paper's fixed parameters: 4-way set associative,
    /// LRU replacement, demand fetch, 32-bit addresses; `word_size` defaults
    /// to 4 bytes (the 32-bit data path) and the Table-1 sweep overrides it
    /// per architecture.
    pub fn builder() -> CacheConfigBuilder {
        CacheConfigBuilder::new()
    }

    /// Net (data-only) cache size in bytes.
    pub const fn net_size(&self) -> u64 {
        self.net_size
    }

    /// Block size in bytes (the unit an address tag covers).
    pub const fn block_size(&self) -> u64 {
        self.block_size
    }

    /// Sub-block size in bytes (the memory transfer unit).
    pub const fn sub_block_size(&self) -> u64 {
        self.sub_block_size
    }

    /// Requested associativity. The *effective* associativity is capped at
    /// the number of blocks (a 64-byte cache of 16-byte blocks can be at most
    /// 4-way); see [`CacheConfig::effective_associativity`].
    pub const fn associativity(&self) -> u64 {
        self.associativity
    }

    /// Replacement policy.
    pub const fn replacement(&self) -> ReplacementPolicy {
        self.replacement
    }

    /// Fetch policy.
    pub const fn fetch(&self) -> FetchPolicy {
        self.fetch
    }

    /// Write-update policy (auxiliary accounting only).
    pub const fn write_policy(&self) -> WritePolicy {
        self.write
    }

    /// Bus word size in bytes: what a cacheless system would transfer per
    /// reference. Denominator of the traffic ratio.
    pub const fn word_size(&self) -> u64 {
        self.word_size
    }

    /// Address width in bits used for tag-size arithmetic.
    pub const fn address_bits(&self) -> u32 {
        self.address_bits
    }

    /// Number of blocks in the cache.
    pub const fn num_blocks(&self) -> u64 {
        self.net_size / self.block_size
    }

    /// Effective associativity: `min(associativity, num_blocks)`.
    pub const fn effective_associativity(&self) -> u64 {
        let blocks = self.num_blocks();
        if self.associativity < blocks {
            self.associativity
        } else {
            blocks
        }
    }

    /// Number of sets.
    pub const fn num_sets(&self) -> u64 {
        self.num_blocks() / self.effective_associativity()
    }

    /// Sub-blocks per block.
    pub const fn sub_blocks_per_block(&self) -> u64 {
        self.block_size / self.sub_block_size
    }

    /// Words per sub-block (the `w` of the paper's `a + b*w` bus-cost model).
    pub const fn words_per_sub_block(&self) -> u64 {
        self.sub_block_size / self.word_size
    }

    /// Tag width in bits. The paper stores the full block address as the tag
    /// (it does not shave off set-index bits — footnote 3 neglects
    /// "lower-order effects of changes in the number of bits in the address
    /// tag"), and its published gross sizes only reproduce under that model.
    pub const fn tag_bits(&self) -> u32 {
        self.address_bits - self.block_size.trailing_zeros()
    }

    /// Gross cache size in bytes: data + tags + sub-block valid bits,
    /// rounded up to whole bytes. Reproduces the paper's Table 7 cost
    /// column exactly (e.g. 1024-byte net, 16-byte blocks, 8-byte
    /// sub-blocks → 1264).
    pub const fn gross_size(&self) -> u64 {
        let data_bits = self.net_size * 8;
        let tag_bits = self.num_blocks() * self.tag_bits() as u64;
        let valid_bits = self.num_blocks() * self.sub_blocks_per_block();
        (data_bits + tag_bits + valid_bits).div_ceil(8)
    }
}

impl fmt::Display for CacheConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}B net ({},{}) {}-way {} {}",
            self.net_size,
            self.block_size,
            self.sub_block_size,
            self.effective_associativity(),
            self.replacement,
            self.fetch
        )
    }
}

/// Builder for [`CacheConfig`]; see [`CacheConfig::builder`].
#[derive(Debug, Clone)]
pub struct CacheConfigBuilder {
    net_size: u64,
    block_size: u64,
    sub_block_size: Option<u64>,
    associativity: u64,
    replacement: ReplacementPolicy,
    fetch: FetchPolicy,
    write: WritePolicy,
    word_size: u64,
    address_bits: u32,
}

impl CacheConfigBuilder {
    fn new() -> Self {
        CacheConfigBuilder {
            net_size: 1024,
            block_size: 16,
            sub_block_size: None,
            associativity: 4,
            replacement: ReplacementPolicy::Lru,
            fetch: FetchPolicy::Demand,
            write: WritePolicy::WriteThrough,
            word_size: 4,
            address_bits: 32,
        }
    }

    /// Sets the net (data) size in bytes.
    pub fn net_size(&mut self, bytes: u64) -> &mut Self {
        self.net_size = bytes;
        self
    }

    /// Sets the block size in bytes.
    pub fn block_size(&mut self, bytes: u64) -> &mut Self {
        self.block_size = bytes;
        self
    }

    /// Sets the sub-block size in bytes. Defaults to the block size
    /// (i.e. a conventional cache without sub-block placement).
    pub fn sub_block_size(&mut self, bytes: u64) -> &mut Self {
        self.sub_block_size = Some(bytes);
        self
    }

    /// Sets the associativity (ways per set).
    pub fn associativity(&mut self, ways: u64) -> &mut Self {
        self.associativity = ways;
        self
    }

    /// Sets the replacement policy.
    pub fn replacement(&mut self, policy: ReplacementPolicy) -> &mut Self {
        self.replacement = policy;
        self
    }

    /// Sets the fetch policy.
    pub fn fetch(&mut self, policy: FetchPolicy) -> &mut Self {
        self.fetch = policy;
        self
    }

    /// Sets the write-update policy (auxiliary accounting only).
    pub fn write_policy(&mut self, policy: WritePolicy) -> &mut Self {
        self.write = policy;
        self
    }

    /// Sets the bus word size in bytes.
    pub fn word_size(&mut self, bytes: u64) -> &mut Self {
        self.word_size = bytes;
        self
    }

    /// Sets the address width in bits (default 32, as in the paper).
    pub fn address_bits(&mut self, bits: u32) -> &mut Self {
        self.address_bits = bits;
        self
    }

    /// Validates and produces the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] describing the first violated invariant:
    /// non-power-of-two sizes, bad ordering (`word <= sub <= block <= net`),
    /// zero associativity, more than 64 sub-blocks per block, or an address
    /// width outside `16..=48`.
    pub fn build(&self) -> Result<CacheConfig, ConfigError> {
        let sub_block_size = self.sub_block_size.unwrap_or(self.block_size);
        for (what, value) in [
            ("net size", self.net_size),
            ("block size", self.block_size),
            ("sub-block size", sub_block_size),
            ("word size", self.word_size),
        ] {
            if value == 0 || !value.is_power_of_two() {
                return Err(ConfigError::NotPowerOfTwo { what, value });
            }
        }
        if self.associativity == 0 {
            return Err(ConfigError::ZeroAssociativity);
        }
        if self.word_size > sub_block_size {
            return Err(ConfigError::SizeOrdering {
                relation: "word size must not exceed sub-block size",
            });
        }
        if sub_block_size > self.block_size {
            return Err(ConfigError::SizeOrdering {
                relation: "sub-block size must not exceed block size",
            });
        }
        if self.block_size > self.net_size {
            return Err(ConfigError::SizeOrdering {
                relation: "block size must not exceed net cache size",
            });
        }
        let subs = self.block_size / sub_block_size;
        if subs > 64 {
            return Err(ConfigError::TooManySubBlocks { requested: subs });
        }
        if !(16..=48).contains(&self.address_bits) {
            return Err(ConfigError::BadAddressBits {
                requested: self.address_bits,
            });
        }
        Ok(CacheConfig {
            net_size: self.net_size,
            block_size: self.block_size,
            sub_block_size,
            associativity: self.associativity,
            replacement: self.replacement,
            fetch: self.fetch,
            write: self.write,
            word_size: self.word_size,
            address_bits: self.address_bits,
        })
    }
}

impl Default for CacheConfigBuilder {
    fn default() -> Self {
        CacheConfigBuilder::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(net: u64, block: u64, sub: u64, word: u64) -> CacheConfig {
        CacheConfig::builder()
            .net_size(net)
            .block_size(block)
            .sub_block_size(sub)
            .word_size(word)
            .build()
            .unwrap()
    }

    #[test]
    fn geometry_of_paper_headline_config() {
        let c = cfg(1024, 16, 8, 2);
        assert_eq!(c.num_blocks(), 64);
        assert_eq!(c.effective_associativity(), 4);
        assert_eq!(c.num_sets(), 16);
        assert_eq!(c.sub_blocks_per_block(), 2);
        assert_eq!(c.words_per_sub_block(), 4);
        assert_eq!(c.tag_bits(), 28);
    }

    #[test]
    fn gross_sizes_match_table_7_net_64() {
        // (block, sub) -> gross size from the Table 7 left column.
        for (block, sub, gross) in [
            (16, 8, 79),
            (16, 4, 80),
            (16, 2, 82),
            (8, 8, 94),
            (8, 4, 95),
            (8, 2, 97),
            (4, 4, 126),
            (4, 2, 128),
            (2, 2, 192),
        ] {
            assert_eq!(
                cfg(64, block, sub, 2).gross_size(),
                gross,
                "({block},{sub})"
            );
        }
    }

    #[test]
    fn gross_sizes_match_table_7_net_256() {
        for (block, sub, gross) in [
            (32, 32, 284),
            (32, 16, 285),
            (32, 8, 287),
            (32, 4, 291),
            (32, 2, 299),
            (16, 16, 314),
            (16, 8, 316),
            (16, 4, 320),
            (16, 2, 328),
            (8, 8, 376),
            (8, 4, 380),
            (8, 2, 388),
            (4, 4, 504),
            (4, 2, 512),
            (2, 2, 768),
        ] {
            assert_eq!(
                cfg(256, block, sub, 2).gross_size(),
                gross,
                "({block},{sub})"
            );
        }
    }

    #[test]
    fn gross_sizes_match_table_7_net_1024() {
        for (block, sub, gross) in [
            (64, 16, 1084),
            (64, 8, 1092),
            (64, 4, 1108),
            (64, 2, 1140),
            (32, 32, 1136),
            (32, 16, 1140),
            (32, 8, 1148),
            (32, 4, 1164),
            (32, 2, 1196),
            (16, 16, 1256),
            (16, 8, 1264),
            (16, 4, 1280),
            (16, 2, 1312),
            (8, 8, 1504),
            (8, 4, 1520),
            (8, 2, 1552),
            (4, 4, 2016),
            (4, 2, 2048),
            (2, 2, 3072),
        ] {
            assert_eq!(
                cfg(1024, block, sub, 2).gross_size(),
                gross,
                "({block},{sub})"
            );
        }
    }

    #[test]
    fn minimum_cache_ram_estimate_matches_section_2_2() {
        // §2.2: 16 blocks × [29 tag + 2 valid + 64 data bits] / 8 = 190 bytes.
        let c = CacheConfig::builder()
            .net_size(128) // 32 words of 4 bytes
            .block_size(8)
            .sub_block_size(4)
            .associativity(2)
            .word_size(4)
            .build()
            .unwrap();
        assert_eq!(c.num_blocks(), 16);
        assert_eq!(c.tag_bits(), 29);
        assert_eq!(c.gross_size(), 190);
    }

    #[test]
    fn vax_minimum_cache_is_95_bytes() {
        // §5: 64-byte 8,4 cache on the 32-bit VAX needs 95 bytes of RAM.
        let c = cfg(64, 8, 4, 4);
        assert_eq!(c.gross_size(), 95);
    }

    #[test]
    fn sub_block_defaults_to_block() {
        let c = CacheConfig::builder()
            .net_size(512)
            .block_size(16)
            .word_size(2)
            .build()
            .unwrap();
        assert_eq!(c.sub_block_size(), 16);
        assert_eq!(c.sub_blocks_per_block(), 1);
    }

    #[test]
    fn effective_associativity_caps_at_block_count() {
        let c = CacheConfig::builder()
            .net_size(32)
            .block_size(16)
            .sub_block_size(8)
            .associativity(4)
            .word_size(2)
            .build()
            .unwrap();
        assert_eq!(c.num_blocks(), 2);
        assert_eq!(c.effective_associativity(), 2);
        assert_eq!(c.num_sets(), 1);
    }

    #[test]
    fn rejects_non_power_of_two() {
        let err = CacheConfig::builder().net_size(1000).build().unwrap_err();
        assert!(matches!(
            err,
            ConfigError::NotPowerOfTwo {
                what: "net size",
                ..
            }
        ));
    }

    #[test]
    fn rejects_sub_bigger_than_block() {
        let err = CacheConfig::builder()
            .net_size(1024)
            .block_size(8)
            .sub_block_size(16)
            .build()
            .unwrap_err();
        assert!(matches!(err, ConfigError::SizeOrdering { .. }));
    }

    #[test]
    fn rejects_block_bigger_than_net() {
        let err = CacheConfig::builder()
            .net_size(16)
            .block_size(32)
            .sub_block_size(8)
            .build()
            .unwrap_err();
        assert!(matches!(err, ConfigError::SizeOrdering { .. }));
    }

    #[test]
    fn rejects_word_bigger_than_sub() {
        let err = CacheConfig::builder()
            .net_size(1024)
            .block_size(16)
            .sub_block_size(2)
            .word_size(4)
            .build()
            .unwrap_err();
        assert!(matches!(err, ConfigError::SizeOrdering { .. }));
    }

    #[test]
    fn rejects_zero_associativity() {
        let err = CacheConfig::builder().associativity(0).build().unwrap_err();
        assert_eq!(err, ConfigError::ZeroAssociativity);
    }

    #[test]
    fn rejects_too_many_sub_blocks() {
        // 1024-byte blocks of 2-byte sub-blocks would need 512 valid bits.
        let err = CacheConfig::builder()
            .net_size(16384)
            .block_size(1024)
            .sub_block_size(2)
            .word_size(2)
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::TooManySubBlocks { requested: 512 });
    }

    #[test]
    fn rejects_bad_address_bits() {
        let err = CacheConfig::builder().address_bits(8).build().unwrap_err();
        assert_eq!(err, ConfigError::BadAddressBits { requested: 8 });
    }

    #[test]
    fn sector_cache_360_85_geometry() {
        // 16 KB, 1024-byte sectors, 64-byte sub-blocks, fully associative.
        let c = CacheConfig::builder()
            .net_size(16 * 1024)
            .block_size(1024)
            .sub_block_size(64)
            .associativity(16)
            .word_size(4)
            .build()
            .unwrap();
        assert_eq!(c.num_blocks(), 16);
        assert_eq!(c.num_sets(), 1);
        assert_eq!(c.sub_blocks_per_block(), 16);
    }

    #[test]
    fn display_is_informative() {
        let c = cfg(1024, 16, 8, 2);
        let s = c.to_string();
        assert!(s.contains("1024"), "{s}");
        assert!(s.contains("(16,8)"), "{s}");
        assert!(s.contains("LRU"), "{s}");
    }

    #[test]
    fn error_display_is_nonempty() {
        let errs: Vec<ConfigError> = vec![
            ConfigError::NotPowerOfTwo {
                what: "net size",
                value: 3,
            },
            ConfigError::SizeOrdering { relation: "x" },
            ConfigError::ZeroAssociativity,
            ConfigError::TooManySubBlocks { requested: 128 },
            ConfigError::BadAddressBits { requested: 8 },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
