//! Effective memory access time (§3.2).
//!
//! The paper models effective access time as
//! `t_eff = t_cache · (1 - m) + t_mem · m` and notes that the relative
//! importance of the miss ratio falls as the cache/memory speed ratio
//! shrinks. This module provides that model plus the derived quantities a
//! designer actually compares: speedup over a cacheless system and the
//! break-even miss ratio.

/// Technology timing parameters for the §3.2 model.
///
/// Times are in arbitrary consistent units (the paper reasons in ns).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccessTiming {
    /// Cache hit access time (`t_cache`).
    pub cache: f64,
    /// Main-memory access time as seen on a miss (`t_mem`), including the
    /// transfer of one sub-block.
    pub memory: f64,
}

impl AccessTiming {
    /// Creates a timing model.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < cache <= memory`.
    pub fn new(cache: f64, memory: f64) -> Self {
        assert!(cache > 0.0 && memory >= cache, "need 0 < cache <= memory");
        AccessTiming { cache, memory }
    }

    /// Effective access time at miss ratio `m`:
    /// `t_cache · (1 - m) + t_mem · m`.
    ///
    /// # Panics
    ///
    /// Panics if `m` is outside `[0, 1]`.
    pub fn effective(&self, miss_ratio: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&miss_ratio),
            "miss ratio out of range: {miss_ratio}"
        );
        self.cache * (1.0 - miss_ratio) + self.memory * miss_ratio
    }

    /// Speedup over a cacheless system (every access at `t_mem`).
    pub fn speedup(&self, miss_ratio: f64) -> f64 {
        self.memory / self.effective(miss_ratio)
    }

    /// The miss ratio at which the cache stops helping relative to a
    /// hypothetical slower cache-less path of `budget` per access —
    /// i.e. solve `effective(m) = budget`. Returns `None` when no miss
    /// ratio in `[0, 1]` satisfies it.
    pub fn break_even_miss_ratio(&self, budget: f64) -> Option<f64> {
        // effective is affine in m: cache + (memory - cache) * m.
        if self.memory == self.cache {
            return (budget == self.cache).then_some(0.0);
        }
        let m = (budget - self.cache) / (self.memory - self.cache);
        (0.0..=1.0).contains(&m).then_some(m)
    }

    /// Ratio of main-memory to cache access time — the paper's knob for
    /// "the smaller the ratio, the less important are reductions in the
    /// miss ratio".
    pub fn speed_ratio(&self) -> f64 {
        self.memory / self.cache
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_interpolates_endpoints() {
        let t = AccessTiming::new(100.0, 500.0);
        assert_eq!(t.effective(0.0), 100.0);
        assert_eq!(t.effective(1.0), 500.0);
        assert_eq!(t.effective(0.5), 300.0);
    }

    #[test]
    fn speedup_at_paper_like_ratios() {
        // A 1984-ish on-chip cache: 100 ns hit, 500 ns memory. At the
        // paper's PDP-11 1024-byte (8,8) miss ratio of 0.039 the cache is
        // worth ~4.3x.
        let t = AccessTiming::new(100.0, 500.0);
        let speedup = t.speedup(0.039);
        assert!((4.0..4.5).contains(&speedup), "{speedup}");
    }

    #[test]
    fn miss_ratio_matters_less_at_small_speed_ratios() {
        // §3.2: halving the miss ratio helps more when memory is much
        // slower than the cache.
        let fast_mem = AccessTiming::new(100.0, 200.0);
        let slow_mem = AccessTiming::new(100.0, 1000.0);
        let gain = |t: &AccessTiming| t.effective(0.2) / t.effective(0.1);
        assert!(gain(&slow_mem) > gain(&fast_mem));
    }

    #[test]
    fn break_even_solves_the_affine_model() {
        let t = AccessTiming::new(100.0, 500.0);
        let m = t.break_even_miss_ratio(300.0).unwrap();
        assert!((m - 0.5).abs() < 1e-12);
        assert_eq!(t.break_even_miss_ratio(50.0), None, "below cache time");
        assert_eq!(t.break_even_miss_ratio(600.0), None, "above memory time");
    }

    #[test]
    fn equal_speeds_degenerate_case() {
        let t = AccessTiming::new(100.0, 100.0);
        assert_eq!(t.break_even_miss_ratio(100.0), Some(0.0));
        assert_eq!(t.break_even_miss_ratio(101.0), None);
        assert_eq!(t.speed_ratio(), 1.0);
    }

    #[test]
    #[should_panic(expected = "miss ratio out of range")]
    fn rejects_bad_miss_ratio() {
        AccessTiming::new(1.0, 2.0).effective(1.5);
    }

    #[test]
    #[should_panic(expected = "need 0 < cache <= memory")]
    fn rejects_inverted_timings() {
        AccessTiming::new(500.0, 100.0);
    }
}
