//! One-pass multi-configuration LRU simulation.
//!
//! The paper chose LRU partly because "LRU permits more efficient
//! simulation": with LRU replacement and bit-selection set mapping, a
//! set holds exactly the `A` most-recently-referenced distinct blocks of
//! its congruence class, so a *single* pass over a trace can decide
//! hits and misses for many cache sizes at once (Mattson's stack
//! algorithms; [`LruStackAnalyzer`](crate::LruStackAnalyzer) is the
//! miss-count-only sketch of the idea).
//!
//! [`AllSizesLruEngine`] is the full-fidelity version: for a compatible
//! *slice* of configurations — same block size, LRU replacement, demand
//! fetch, write-through accounting; sub-block size, word size and
//! associativity may differ per configuration — it maintains per-set
//! recency stacks keyed on the **coarsest** set count in the slice and
//! derives every configuration's behaviour from recency ranks:
//!
//! * a block is resident in configuration *i* iff fewer than `A_i` more
//!   recently referenced blocks share its (size-*i*) congruence class
//!   (the standard inclusion argument, specialised to nested
//!   power-of-two set counts: every size-*i* class is a union of the
//!   engine's stacks, so one scan of the merged recency order answers
//!   all sizes at once);
//! * the victim of a full-set miss in configuration *i* is the class
//!   member with exactly `A_i - 1` more recent classmates — found during
//!   the same scan;
//! * sub-block valid/referenced bitmasks are kept **per configuration**
//!   for each block, because evictions (which clear them) happen at
//!   different times for different cache sizes.
//!
//! Three layout decisions keep the per-reference cost near a single
//! direct simulation, which is what makes one pass worth N of them:
//!
//! * stacks store most-recent **last**, as 16-byte `(block, handle)`
//!   entries whose sub-block masks live in a side slab — a first-touch
//!   insert is an O(1) push and a promote rotates only the entries above
//!   the touched block, never the mask state;
//! * configurations with equal set count and associativity share one
//!   *residency class*: the scan counts classmates once per class, so a
//!   slice of eight sub-block variants over three net sizes pays for
//!   three counters, not eight;
//! * stacks are **pruned**: an entry with at least `A_i` more recent
//!   classmates in *every* class is resident nowhere, can never be hit
//!   or chosen as a victim again, and its eviction statistics were
//!   recorded when it fell out — so when a stack outgrows twice the
//!   slice's total resident capacity, the dead entries are dropped and
//!   their slab rows recycled. Without this, a stack holds every block
//!   ever referenced and a miss on a long-dormant block pays a rotate
//!   over all of them — quadratic on small caches with large blocks
//!   (one coarse set) under million-reference traces.
//!
//! Metrics are accumulated through the same [`Metrics`] recording calls,
//! in the same per-access pattern, as [`SubBlockCache`]'s access path,
//! so [`simulate_many`] is bit-identical to running [`simulate`] once
//! per configuration — including warm-start resets, write accounting and
//! the eviction statistics. The equivalence is enforced by property
//! tests in `tests/multisim_equiv.rs`.
//!
//! What the engine deliberately does **not** express (callers fall back
//! to [`simulate`]): FIFO and Random replacement (not stack algorithms —
//! no inclusion property), the prefetch and load-forward fetch policies
//! (fill width depends on per-size valid bits in ways that break the
//! shared-scan structure), copy-back write accounting (write-back bytes
//! depend on per-size dirty state at eviction), and geometries whose set
//! count is not a power of two (bit-selection needs one).
//!
//! [`simulate`]: crate::simulate
//! [`SubBlockCache`]: crate::SubBlockCache

use std::collections::{HashMap, HashSet};
use std::error::Error;
use std::fmt;
use std::hash::{BuildHasherDefault, Hasher};

use occache_trace::{AccessKind, Address, MemRef};

use crate::config::{CacheConfig, FetchPolicy, ReplacementPolicy, WritePolicy};
use crate::metrics::Metrics;

/// Maximum configurations one engine instance simulates per pass.
///
/// Deduplicated residency classes make the scan cost per pass depend on
/// the distinct (set count, associativity) pairs, not the slice width,
/// so wide slices amortise the scan across more configurations almost
/// for free. The width is still bounded because per-block sub-block
/// bitmasks are fixed-size arrays carried by every once-referenced
/// block; planners chunk larger groups into runs of at most this many.
pub const MAX_MULTISIM_CONFIGS: usize = 16;

/// Why a configuration (or a slice of them) cannot run on the one-pass
/// engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MultiSimError {
    /// No configurations were given.
    NoConfigs,
    /// More than [`MAX_MULTISIM_CONFIGS`] configurations in one slice.
    TooManyConfigs {
        /// How many were given.
        given: usize,
    },
    /// A configuration uses a policy or geometry the engine cannot
    /// express; use the direct simulator for it.
    Unsupported {
        /// The offending configuration.
        config: CacheConfig,
        /// What exactly is unsupported.
        why: &'static str,
    },
    /// Configurations in one slice must share a block size.
    MismatchedGeometry {
        /// The slice's first configuration (defines the geometry).
        first: CacheConfig,
        /// The configuration that disagrees with it.
        other: CacheConfig,
    },
}

impl fmt::Display for MultiSimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MultiSimError::NoConfigs => f.write_str("no configurations to simulate"),
            MultiSimError::TooManyConfigs { given } => write!(
                f,
                "at most {MAX_MULTISIM_CONFIGS} configurations per one-pass slice, got {given}"
            ),
            MultiSimError::Unsupported { config, why } => {
                write!(f, "{config}: {why}")
            }
            MultiSimError::MismatchedGeometry { first, other } => write!(
                f,
                "slice geometry mismatch: {first} vs {other} (block sizes must match)"
            ),
        }
    }
}

impl Error for MultiSimError {}

/// Whether a single configuration is expressible on the one-pass engine
/// (LRU + demand fetch + write-through + power-of-two set count).
///
/// Configurations failing this must run on the direct simulator; see the
/// module docs for why each exclusion exists.
pub fn engine_supports(config: &CacheConfig) -> bool {
    supports_or_reason(config).is_none()
}

fn supports_or_reason(config: &CacheConfig) -> Option<&'static str> {
    if config.replacement() != ReplacementPolicy::Lru {
        return Some("one-pass simulation requires LRU (FIFO/Random have no inclusion property)");
    }
    if config.fetch() != FetchPolicy::Demand {
        return Some("one-pass simulation requires demand fetch");
    }
    if config.write_policy() != WritePolicy::WriteThrough {
        return Some("one-pass simulation requires write-through accounting");
    }
    let sets = config.num_sets();
    if !sets.is_power_of_two() || sets * config.effective_associativity() != config.num_blocks() {
        return Some("one-pass simulation requires a power-of-two set count");
    }
    None
}

/// A multiply-then-shift hasher for block numbers: the presence set is
/// probed once per reference on the hot path, where SipHash would cost
/// as much as the rest of the access.
#[derive(Debug, Default, Clone, Copy)]
struct BlockHasher(u64);

impl Hasher for BlockHasher {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        }
    }

    fn write_u64(&mut self, x: u64) {
        self.0 = x.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    }

    fn finish(&self) -> u64 {
        self.0 ^ (self.0 >> 31)
    }
}

type BlockSet = HashSet<u64, BuildHasherDefault<BlockHasher>>;

/// Per-configuration sub-block state of one resident (or once-resident)
/// block. Indexed by the configuration's position in the slice.
#[derive(Debug, Clone, Copy, Default)]
struct SubMasks {
    valid: [u64; MAX_MULTISIM_CONFIGS],
    refd: [u64; MAX_MULTISIM_CONFIGS],
}

/// One recency-stack entry: a block number plus the handle of its
/// [`SubMasks`] in the engine's slab. Keeping the entry at 16 bytes —
/// and the mask state out of line — is what makes promotes cheap: a
/// rotate moves entries, never masks.
#[derive(Debug, Clone, Copy)]
struct Entry {
    block: u64,
    mask: u32,
}

/// One recency stack (the blocks of one coarse congruence class, minus
/// pruned dead entries), **least**-recently-used first: the most recent
/// entry is at the end, so promotion rotates only the entries more
/// recent than the touched block and a first-touch insert is an O(1)
/// push.
#[derive(Debug, Clone, Default)]
struct Stack {
    entries: Vec<Entry>,
}

/// A deduplicated residency class. Configurations with equal set count
/// and associativity make identical residency and victim decisions, so
/// the scan maintains one classmate counter per *class*, not per
/// configuration — a slice mixing sub-block sizes over a few net sizes
/// scans at the cost of the net sizes alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ResidencyClass {
    /// `num_sets - 1`: two blocks share a set iff their block numbers
    /// agree under this mask.
    class_mask: u64,
    /// Effective associativity.
    assoc: usize,
}

#[derive(Debug, Clone)]
struct SizeState {
    /// Index of this configuration's [`ResidencyClass`] in the engine.
    class: usize,
    /// log2 of the configuration's sub-block size.
    sub_shift: u32,
    sub_size: u64,
    /// Sub-block slots per block, as recorded in eviction statistics.
    slots: u64,
    /// Bus word size (write-through accounting).
    word_size: u64,
    metrics: Metrics,
}

/// The one-pass all-sizes LRU engine. See the module docs for the
/// algorithm; construct with [`AllSizesLruEngine::new`] and drive with
/// [`access`](AllSizesLruEngine::access), or use [`simulate_many`].
///
/// ```
/// use occache_core::{simulate, simulate_many, CacheConfig};
/// use occache_trace::MemRef;
///
/// let configs: Vec<CacheConfig> = [64u64, 256]
///     .iter()
///     .map(|&net| {
///         CacheConfig::builder()
///             .net_size(net)
///             .block_size(16)
///             .sub_block_size(8)
///             .word_size(2)
///             .build()
///             .expect("valid geometry")
///     })
///     .collect();
/// let trace: Vec<MemRef> = (0..500u64).map(|i| MemRef::read((i * 13) % 640 * 2)).collect();
/// let all = simulate_many(&configs, trace.iter().copied(), 0)?;
/// for (config, metrics) in configs.iter().zip(&all) {
///     assert_eq!(*metrics, simulate(*config, trace.iter().copied(), 0));
/// }
/// # Ok::<(), occache_core::MultiSimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct AllSizesLruEngine {
    block_shift: u32,
    block_mask: u64,
    /// `coarsest_set_count - 1`: which stack a block lands in.
    coarse_mask: u64,
    /// Deduplicated (set count, associativity) classes; `SizeState::class`
    /// indexes into this.
    classes: Vec<ResidencyClass>,
    sizes: Vec<SizeState>,
    stacks: Vec<Stack>,
    /// Per-block sub-block masks, indexed by [`Entry::mask`]. Stack
    /// rotations move 16-byte entries, never this state; rows of pruned
    /// entries are recycled through `free`.
    masks: Vec<SubMasks>,
    /// Slab rows released by pruning, ready for reuse.
    free: Vec<u32>,
    /// Blocks currently in some stack; probed so a miss on an absent
    /// block does not scan its whole stack to learn nothing. Pruned
    /// blocks leave this set along with their stack.
    seen: BlockSet,
    /// Stack length that triggers a prune: twice the slice's total
    /// resident capacity per coarse set (with a floor so shallow stacks
    /// never bother). A prune drops a stack to at most half of this, so
    /// the O(len) sweep amortises to O(1) per first-touch insert.
    prune_threshold: usize,
}

impl AllSizesLruEngine {
    /// Builds an engine for a compatible slice of configurations.
    ///
    /// # Errors
    ///
    /// Returns a [`MultiSimError`] when the slice is empty or too wide,
    /// a configuration needs an unsupported policy/geometry, or the
    /// configurations disagree on block size.
    pub fn new(configs: &[CacheConfig]) -> Result<Self, MultiSimError> {
        let first = *configs.first().ok_or(MultiSimError::NoConfigs)?;
        if configs.len() > MAX_MULTISIM_CONFIGS {
            return Err(MultiSimError::TooManyConfigs {
                given: configs.len(),
            });
        }
        for &config in configs {
            if let Some(why) = supports_or_reason(&config) {
                return Err(MultiSimError::Unsupported { config, why });
            }
            if config.block_size() != first.block_size() {
                return Err(MultiSimError::MismatchedGeometry {
                    first,
                    other: config,
                });
            }
        }
        let coarse_sets = configs.iter().map(|c| c.num_sets()).min().unwrap_or(1);
        let mut classes: Vec<ResidencyClass> = Vec::new();
        let sizes = configs
            .iter()
            .map(|c| {
                let rc = ResidencyClass {
                    class_mask: c.num_sets() - 1,
                    assoc: c.effective_associativity() as usize,
                };
                let class = classes.iter().position(|x| *x == rc).unwrap_or_else(|| {
                    classes.push(rc);
                    classes.len() - 1
                });
                SizeState {
                    class,
                    sub_shift: c.sub_block_size().trailing_zeros(),
                    sub_size: c.sub_block_size(),
                    slots: c.sub_blocks_per_block(),
                    word_size: c.word_size(),
                    metrics: Metrics::new(c.word_size()),
                }
            })
            .collect();
        // Resident capacity of one coarse set across the slice: each
        // class contributes its blocks-per-coarse-set (its finer sets are
        // nested inside the coarse one, so the ratio is exact).
        let live_bound: u64 = classes
            .iter()
            .map(|c| (c.class_mask + 1) / coarse_sets * c.assoc as u64)
            .sum();
        Ok(AllSizesLruEngine {
            block_shift: first.block_size().trailing_zeros(),
            block_mask: first.block_size() - 1,
            coarse_mask: coarse_sets - 1,
            classes,
            sizes,
            stacks: vec![Stack::default(); coarse_sets as usize],
            masks: Vec::new(),
            free: Vec::new(),
            seen: BlockSet::default(),
            prune_threshold: (2 * live_bound).max(64) as usize,
        })
    }

    /// Presents one reference to every simulated configuration.
    pub fn access(&mut self, addr: Address, kind: AccessKind) {
        let a = addr.value();
        let block = a >> self.block_shift;
        let offset = a & self.block_mask;
        let counted = kind.is_counted();
        let kc = self.classes.len();
        let entries = &mut self.stacks[(block & self.coarse_mask) as usize].entries;
        let slab = &mut self.masks;

        // Hot copies of the class parameters: the scan reads them once
        // per entry and the borrow checker would otherwise pin `self`.
        let mut cmask = [0u64; MAX_MULTISIM_CONFIGS];
        let mut cassoc = [0usize; MAX_MULTISIM_CONFIGS];
        for (i, class) in self.classes.iter().enumerate() {
            cmask[i] = class.class_mask;
            cassoc[i] = class.assoc;
        }

        // One scan down the merged recency order, starting at the most
        // recent entry (the end). For each residency class we count
        // classmates more recent than `block`, capped at the
        // associativity; the entry that brings a count to `A_i` is the
        // class's eviction victim if this access misses there.
        let mut counts = [0usize; MAX_MULTISIM_CONFIGS];
        let mut victim = [usize::MAX; MAX_MULTISIM_CONFIGS];
        let mut unsaturated = kc;
        let mut pos = entries.len();
        let mut found = None;
        while pos > 0 && unsaturated > 0 {
            pos -= 1;
            let diff = entries[pos].block ^ block;
            if diff == 0 {
                found = Some(pos);
                break;
            }
            for i in 0..kc {
                if counts[i] < cassoc[i] && diff & cmask[i] == 0 {
                    counts[i] += 1;
                    if counts[i] == cassoc[i] {
                        victim[i] = pos;
                        unsaturated -= 1;
                    }
                }
            }
        }
        // Every count is saturated (a miss everywhere) but the block may
        // still sit below the scanned region and must be re-promoted.
        // The presence set makes misses on absent blocks skip this tail
        // scan; a present block is guaranteed to be found (blocks leave
        // `seen` exactly when pruning drops them from their stack).
        if found.is_none() && pos > 0 && self.seen.contains(&block) {
            let mut q = pos - 1;
            while entries[q].block != block {
                q -= 1;
            }
            found = Some(q);
        }

        match found {
            Some(p) if unsaturated == kc => {
                // No class saturated before the block turned up: resident
                // — a tag hit — at every size. This is the common case,
                // kept tight: one slab row borrow, no victim logic.
                let m = &mut slab[entries[p].mask as usize];
                for (si, size) in self.sizes.iter_mut().enumerate() {
                    let sub_bit = 1u64 << (offset >> size.sub_shift);
                    m.refd[si] |= sub_bit;
                    if m.valid[si] & sub_bit != 0 {
                        size.metrics.record_access(counted, true);
                    } else {
                        m.valid[si] |= sub_bit;
                        size.metrics.record_access(counted, false);
                        size.metrics.record_fetch(counted, size.sub_size, 1, 0);
                    }
                }
                entries[p..].rotate_left(1);
            }
            Some(p) => {
                let mi = entries[p].mask as usize;
                for (si, size) in self.sizes.iter_mut().enumerate() {
                    let c = size.class;
                    let sub_bit = 1u64 << (offset >> size.sub_shift);
                    if counts[c] < cassoc[c] {
                        // Block resident at this size: tag hit.
                        let m = &mut slab[mi];
                        m.refd[si] |= sub_bit;
                        if m.valid[si] & sub_bit != 0 {
                            size.metrics.record_access(counted, true);
                        } else {
                            m.valid[si] |= sub_bit;
                            size.metrics.record_access(counted, false);
                            size.metrics.record_fetch(counted, size.sub_size, 1, 0);
                        }
                    } else {
                        // Not resident: the set is full (>= A_i more
                        // recent classmates exist), so evict and refill.
                        let vm = &mut slab[entries[victim[c]].mask as usize];
                        let referenced = u64::from(vm.refd[si].count_ones());
                        size.metrics
                            .record_eviction(size.slots, size.slots - referenced);
                        vm.valid[si] = 0;
                        vm.refd[si] = 0;
                        let m = &mut slab[mi];
                        m.valid[si] = sub_bit;
                        m.refd[si] = sub_bit;
                        size.metrics.record_access(counted, false);
                        size.metrics.record_fetch(counted, size.sub_size, 1, 0);
                    }
                }
                // Promote to most-recently-used (the end).
                entries[p..].rotate_left(1);
            }
            None => {
                // First reference to this block since it last left every
                // configuration (or ever): a miss everywhere, identical
                // in metric calls to finding it below all saturation
                // points — which is what lets pruning drop such entries.
                let mut m = SubMasks::default();
                for (si, size) in self.sizes.iter_mut().enumerate() {
                    let c = size.class;
                    let sub_bit = 1u64 << (offset >> size.sub_shift);
                    if counts[c] == cassoc[c] {
                        let vm = &mut slab[entries[victim[c]].mask as usize];
                        let referenced = u64::from(vm.refd[si].count_ones());
                        size.metrics
                            .record_eviction(size.slots, size.slots - referenced);
                        vm.valid[si] = 0;
                        vm.refd[si] = 0;
                    }
                    // Else an empty frame absorbs the fill: no eviction.
                    m.valid[si] = sub_bit;
                    m.refd[si] = sub_bit;
                    size.metrics.record_access(counted, false);
                    size.metrics.record_fetch(counted, size.sub_size, 1, 0);
                }
                let handle = match self.free.pop() {
                    Some(h) => {
                        slab[h as usize] = m;
                        h
                    }
                    None => {
                        slab.push(m);
                        (slab.len() - 1) as u32
                    }
                };
                entries.push(Entry {
                    block,
                    mask: handle,
                });
                self.seen.insert(block);
                if entries.len() > self.prune_threshold {
                    prune_stack(
                        entries,
                        &cmask[..kc],
                        &cassoc[..kc],
                        &mut self.free,
                        &mut self.seen,
                    );
                }
            }
        }

        if kind == AccessKind::DataWrite {
            for size in &mut self.sizes {
                size.metrics.record_write_through(size.word_size);
            }
        }
    }

    /// Entries currently held across all stacks (test hook: pruning must
    /// keep this bounded by resident capacity, not trace length).
    #[cfg(test)]
    fn stack_entries(&self) -> usize {
        self.stacks.iter().map(|s| s.entries.len()).sum()
    }

    /// Zeroes every configuration's metrics while keeping cache state —
    /// the warm-start discipline, mirroring
    /// [`SubBlockCache::reset_metrics`](crate::SubBlockCache::reset_metrics).
    pub fn reset_metrics(&mut self) {
        for size in &mut self.sizes {
            size.metrics.reset();
        }
    }

    /// Metrics accumulated so far, in the order of the configurations
    /// given to [`AllSizesLruEngine::new`].
    pub fn metrics(&self) -> Vec<Metrics> {
        self.sizes.iter().map(|s| s.metrics).collect()
    }
}

/// Drops every stack entry that is resident in no configuration,
/// recycling its slab row and presence bit.
///
/// Walking from the most recent end, an entry's per-class rank (number
/// of more recent classmates) decides liveness: resident somewhere iff
/// the rank is below some class's associativity — the same test the
/// access scan applies to the probed block. Dead entries never influence
/// future scans: within a class group the `A_i` most recent members are
/// exactly the residents, and the scan's per-class cap stops counting
/// (and victim selection) there, so everything below is unreachable
/// except by the tail search — whose misses the presence set now
/// absorbs. Survivors keep their relative order; metrics are untouched.
fn prune_stack(
    entries: &mut Vec<Entry>,
    cmask: &[u64],
    cassoc: &[usize],
    free: &mut Vec<u32>,
    seen: &mut BlockSet,
) {
    let mut ranks: Vec<HashMap<u64, usize, BuildHasherDefault<BlockHasher>>> =
        cmask.iter().map(|_| HashMap::default()).collect();
    let mut keep: Vec<Entry> = Vec::with_capacity(entries.len());
    for e in entries.iter().rev() {
        let mut live = false;
        for (i, rank) in ranks.iter_mut().enumerate() {
            let r = rank.entry(e.block & cmask[i]).or_insert(0);
            if *r < cassoc[i] {
                live = true;
            }
            *r += 1;
        }
        if live {
            keep.push(*e);
        } else {
            free.push(e.mask);
            seen.remove(&e.block);
        }
    }
    keep.reverse();
    *entries = keep;
}

/// Simulates a whole trace against a compatible slice of configurations
/// in one pass, returning per-configuration metrics in input order.
///
/// The one-pass counterpart of [`simulate`](crate::simulate): `warmup`
/// references prime the caches and are excluded from the metrics, and
/// every returned [`Metrics`] is bit-identical to what
/// `simulate(configs[i], refs, warmup)` would produce.
///
/// # Errors
///
/// Returns a [`MultiSimError`] when the slice cannot run on the engine;
/// see [`engine_supports`] for the per-configuration conditions.
pub fn simulate_many<I>(
    configs: &[CacheConfig],
    refs: I,
    warmup: usize,
) -> Result<Vec<Metrics>, MultiSimError>
where
    I: IntoIterator<Item = MemRef>,
{
    let mut engine = AllSizesLruEngine::new(configs)?;
    let mut iter = refs.into_iter();
    for r in iter.by_ref().take(warmup) {
        engine.access(r.address(), r.kind());
    }
    engine.reset_metrics();
    for r in iter {
        engine.access(r.address(), r.kind());
    }
    Ok(engine.metrics())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate;

    fn cfg(net: u64, block: u64, sub: u64) -> CacheConfig {
        CacheConfig::builder()
            .net_size(net)
            .block_size(block)
            .sub_block_size(sub)
            .word_size(2)
            .build()
            .unwrap()
    }

    /// A deterministic trace with loops, strides and writes — enough
    /// structure to exercise hits, conflict misses and evictions.
    fn mixed_trace(len: u64, span: u64) -> Vec<MemRef> {
        (0..len)
            .map(|i| {
                let addr = (i * 7 + (i / 13) * 31) % span * 2;
                match i % 5 {
                    0 | 1 => MemRef::ifetch(addr),
                    2 | 3 => MemRef::read(addr),
                    _ => MemRef::write(addr),
                }
            })
            .collect()
    }

    #[test]
    fn matches_direct_simulation_across_sizes() {
        let configs = [cfg(64, 16, 8), cfg(256, 16, 8), cfg(1024, 16, 8)];
        let trace = mixed_trace(20_000, 4096);
        let all = simulate_many(&configs, trace.iter().copied(), 0).unwrap();
        for (config, metrics) in configs.iter().zip(&all) {
            let direct = simulate(*config, trace.iter().copied(), 0);
            assert_eq!(*metrics, direct, "{config}");
        }
    }

    #[test]
    fn matches_direct_simulation_with_warmup() {
        let configs = [cfg(64, 8, 2), cfg(256, 8, 2), cfg(1024, 8, 2)];
        let trace = mixed_trace(10_000, 2048);
        let all = simulate_many(&configs, trace.iter().copied(), 1_000).unwrap();
        for (config, metrics) in configs.iter().zip(&all) {
            let direct = simulate(*config, trace.iter().copied(), 1_000);
            assert_eq!(*metrics, direct, "{config}");
        }
    }

    #[test]
    fn single_config_slice_matches_direct() {
        let configs = [cfg(128, 8, 8)];
        let trace = mixed_trace(5_000, 1024);
        let all = simulate_many(&configs, trace.iter().copied(), 0).unwrap();
        assert_eq!(all[0], simulate(configs[0], trace.iter().copied(), 0));
    }

    #[test]
    fn tiny_caches_with_capped_associativity_match() {
        // net 32, block 16 -> 2 blocks, effective associativity 2, 1 set.
        let configs = [cfg(32, 16, 8), cfg(64, 16, 8)];
        let trace = mixed_trace(5_000, 512);
        let all = simulate_many(&configs, trace.iter().copied(), 0).unwrap();
        for (config, metrics) in configs.iter().zip(&all) {
            assert_eq!(
                *metrics,
                simulate(*config, trace.iter().copied(), 0),
                "{config}"
            );
        }
    }

    #[test]
    fn rejects_unsupported_policies() {
        let lru = cfg(64, 8, 4);
        let fifo = CacheConfig::builder()
            .net_size(64)
            .block_size(8)
            .sub_block_size(4)
            .word_size(2)
            .replacement(ReplacementPolicy::Fifo)
            .build()
            .unwrap();
        assert!(engine_supports(&lru));
        assert!(!engine_supports(&fifo));
        assert!(matches!(
            AllSizesLruEngine::new(&[fifo]),
            Err(MultiSimError::Unsupported { .. })
        ));
        let prefetch = CacheConfig::builder()
            .net_size(64)
            .block_size(8)
            .sub_block_size(4)
            .word_size(2)
            .fetch(FetchPolicy::PrefetchNext { tagged: false })
            .build()
            .unwrap();
        assert!(!engine_supports(&prefetch));
        let copy_back = CacheConfig::builder()
            .net_size(64)
            .block_size(8)
            .sub_block_size(4)
            .word_size(2)
            .write_policy(WritePolicy::CopyBack)
            .build()
            .unwrap();
        assert!(!engine_supports(&copy_back));
    }

    #[test]
    fn rejects_non_power_of_two_set_counts() {
        // 8 blocks at 3-way: 8/3 truncates, so bit selection cannot map it.
        let odd = CacheConfig::builder()
            .net_size(64)
            .block_size(8)
            .sub_block_size(8)
            .associativity(3)
            .word_size(2)
            .build()
            .unwrap();
        assert!(!engine_supports(&odd));
    }

    #[test]
    fn rejects_mismatched_slices() {
        let err = AllSizesLruEngine::new(&[cfg(64, 16, 8), cfg(64, 8, 8)]).unwrap_err();
        assert!(matches!(err, MultiSimError::MismatchedGeometry { .. }));
        assert!(AllSizesLruEngine::new(&[]).is_err());
        let seventeen = [cfg(64, 8, 4); 17];
        assert!(matches!(
            AllSizesLruEngine::new(&seventeen),
            Err(MultiSimError::TooManyConfigs { given: 17 })
        ));
    }

    #[test]
    fn mixed_sub_block_sizes_share_one_pass() {
        // Same block size, three sub-block variants at two nets: six
        // configurations, two residency classes. The slice exercises the
        // class-deduplication path and per-size sub-block accounting.
        let configs = [
            cfg(64, 16, 16),
            cfg(64, 16, 8),
            cfg(64, 16, 4),
            cfg(256, 16, 16),
            cfg(256, 16, 8),
            cfg(256, 16, 4),
        ];
        let trace = mixed_trace(20_000, 4096);
        let all = simulate_many(&configs, trace.iter().copied(), 0).unwrap();
        for (config, metrics) in configs.iter().zip(&all) {
            let direct = simulate(*config, trace.iter().copied(), 0);
            assert_eq!(*metrics, direct, "{config}");
        }
    }

    #[test]
    fn pruning_bounds_stacks_and_preserves_metrics() {
        // Small caches with large blocks collapse to one coarse set, the
        // shape where unpruned stacks grow with the trace (every block
        // ever referenced) and a dormant-block miss rotates all of them.
        // A wide-span trace forces thousands of distinct blocks through
        // a slice whose total resident capacity is a couple dozen.
        let configs = [cfg(64, 32, 8), cfg(256, 32, 8), cfg(1024, 32, 8)];
        let trace = mixed_trace(60_000, 1 << 17);
        let mut engine = AllSizesLruEngine::new(&configs).unwrap();
        for r in &trace {
            engine.access(r.address(), r.kind());
        }
        assert!(
            engine.stack_entries() <= engine.prune_threshold,
            "stacks grew past the prune threshold: {} > {}",
            engine.stack_entries(),
            engine.prune_threshold
        );
        for (config, metrics) in configs.iter().zip(engine.metrics()) {
            assert_eq!(
                metrics,
                simulate(*config, trace.iter().copied(), 0),
                "{config}"
            );
        }
    }

    #[test]
    fn error_display_is_nonempty() {
        let errs = [
            MultiSimError::NoConfigs,
            MultiSimError::TooManyConfigs { given: 9 },
            MultiSimError::Unsupported {
                config: cfg(64, 8, 4),
                why: "test",
            },
            MultiSimError::MismatchedGeometry {
                first: cfg(64, 8, 4),
                other: cfg(64, 16, 8),
            },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
