//! One-pass multi-configuration LRU simulation.
//!
//! The paper chose LRU partly because "LRU permits more efficient
//! simulation": with LRU replacement and bit-selection set mapping, a
//! set holds exactly the `A` most-recently-referenced distinct blocks of
//! its congruence class, so a *single* pass over a trace can decide
//! hits and misses for many cache sizes at once (Mattson's stack
//! algorithms; [`LruStackAnalyzer`](crate::LruStackAnalyzer) is the
//! miss-count-only sketch of the idea).
//!
//! [`AllSizesLruEngine`] is the full-fidelity version: for a *slice* of
//! configurations — LRU replacement, demand fetch, write-through
//! accounting; net size, block size, sub-block size, word size and
//! associativity may all differ per configuration — it presents each
//! reference to every configuration in one pass. Configurations with
//! equal block size, set count and associativity make identical
//! residency and victim decisions, so they share one *residency class*;
//! the engine keeps, per class and per set, the `A` most-recently-used
//! resident blocks in recency order (the LRU inclusion property says
//! those are exactly the residents). A reference then costs, per class,
//! one probe of at most `A` block numbers plus a prefix shift to restore
//! recency order — `O(Σ A_i)` for the whole slice, independent of trace
//! length and of how many blocks the trace has ever touched. Because a
//! class owns its block shift, an entire sweep grid (every block size ×
//! net size × sub-block size) can ride one pass over the trace: for the
//! paper's 4-way Table 7 grids that is a few dozen word compares per
//! reference covering all fifty-odd configurations, far cheaper than
//! maintaining a merged recency stack of every once-referenced block
//! and scanning it for classmate ranks — and six passes fewer than
//! slicing the grid by block size.
//!
//! Sub-block bitmasks are kept **per configuration** for each resident
//! way, because evictions (which clear them) happen at different times
//! for different cache sizes. Under demand fetch a sub-block is valid
//! exactly when it has been referenced (the fetch *is* a reference, and
//! nothing else fills), so one mask word per (way, configuration)
//! serves as both the valid and the referenced set — the policies that
//! split the two (prefetch fills unreferenced sub-blocks) are exactly
//! the ones the engine rejects. A set is laid out as the `A` block
//! numbers in recency order followed by `A` fixed-position mask rows of
//! `m` member words each, with a packed per-set **permutation word**
//! (sixteen 4-bit fields, capping associativity at 16) mapping recency
//! rank to physical mask row. A recency promote therefore rotates only
//! the block words and the permutation's 4-bit fields; the mask rows —
//! the bulk of the set at several members — never move, and a hit
//! touches exactly one of them. Empty ways hold a sentinel block number
//! (`u64::MAX`, which no real block can equal once blocks span at least
//! two bytes), so sets are always structurally full: the probe compares
//! every way unconditionally and the insert path is one unified
//! shift-and-fill, with eviction statistics gated on the victim being
//! real. The specialised runners lean on two measured facts: hits on
//! the two most-recent ways dominate (straight-line reuse plus the
//! instruction/data ping-pong), so those short-circuit before the full
//! probe; and consecutive references chain through the same set's
//! words, so chunks are run through two classes — and, when a second
//! trace is available, two engines ([`simulate_many_pair`]) — with
//! their per-reference steps interleaved to overlap the
//! store-to-load-forwarding stalls.
//!
//! The access path itself accumulates only what demand fetch +
//! write-through cannot derive: per-configuration counted/write misses
//! and eviction counts, in flat arrays the per-size loops stream over
//! branch-free. Everything else in [`Metrics`] is a product of those
//! (one sub-block fetched per counted miss, one word written through
//! per data write, `slots` sub-slots released per eviction) and is
//! reconstructed exactly at read-out, so [`simulate_many`] stays
//! bit-identical to running [`simulate`] once per configuration —
//! including warm-start resets, write accounting and the eviction
//! statistics. The equivalence is enforced by property tests in
//! `tests/multisim_equiv.rs`.
//!
//! What the engine deliberately does **not** express (callers fall back
//! to [`simulate`]): FIFO and Random replacement (not stack algorithms —
//! no inclusion property), the prefetch and load-forward fetch policies
//! (fill width depends on per-size valid bits in ways that break the
//! shared-pass structure), copy-back write accounting (write-back bytes
//! depend on per-size dirty state at eviction), and geometries whose set
//! count is not a power of two (bit-selection needs one).
//!
//! [`simulate`]: crate::simulate
//! [`SubBlockCache`]: crate::SubBlockCache

use std::error::Error;
use std::fmt;

use occache_trace::{AccessKind, Address, MemRef};

use crate::config::{CacheConfig, FetchPolicy, ReplacementPolicy, WritePolicy};
use crate::metrics::{EngineCounters, Metrics};

/// Maximum configurations one engine instance simulates per pass.
///
/// Deduplicated residency classes make the residency cost per pass
/// depend on the distinct (block size, set count, associativity)
/// triples, not the slice width, so wide slices amortise the probes —
/// and the single pass over the trace — across more configurations
/// almost for free. The width is still bounded so the per-configuration
/// counter bank stays a few cache lines; planners chunk larger grids
/// into runs of at most this many.
pub const MAX_MULTISIM_CONFIGS: usize = 64;

/// Why a configuration (or a slice of them) cannot run on the one-pass
/// engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MultiSimError {
    /// No configurations were given.
    NoConfigs,
    /// More than [`MAX_MULTISIM_CONFIGS`] configurations in one slice.
    TooManyConfigs {
        /// How many were given.
        given: usize,
    },
    /// A configuration uses a policy or geometry the engine cannot
    /// express; use the direct simulator for it.
    Unsupported {
        /// The offending configuration.
        config: CacheConfig,
        /// What exactly is unsupported.
        why: &'static str,
    },
}

impl fmt::Display for MultiSimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MultiSimError::NoConfigs => f.write_str("no configurations to simulate"),
            MultiSimError::TooManyConfigs { given } => write!(
                f,
                "at most {MAX_MULTISIM_CONFIGS} configurations per one-pass slice, got {given}"
            ),
            MultiSimError::Unsupported { config, why } => {
                write!(f, "{config}: {why}")
            }
        }
    }
}

impl Error for MultiSimError {}

/// Whether a single configuration is expressible on the one-pass engine
/// (LRU + demand fetch + write-through + power-of-two set count).
///
/// Configurations failing this must run on the direct simulator; see the
/// module docs for why each exclusion exists.
pub fn engine_supports(config: &CacheConfig) -> bool {
    supports_or_reason(config).is_none()
}

fn supports_or_reason(config: &CacheConfig) -> Option<&'static str> {
    if config.replacement() != ReplacementPolicy::Lru {
        return Some("one-pass simulation requires LRU (FIFO/Random have no inclusion property)");
    }
    if config.fetch() != FetchPolicy::Demand {
        return Some("one-pass simulation requires demand fetch");
    }
    if config.write_policy() != WritePolicy::WriteThrough {
        return Some("one-pass simulation requires write-through accounting");
    }
    let sets = config.num_sets();
    if !sets.is_power_of_two() || sets * config.effective_associativity() != config.num_blocks() {
        return Some("one-pass simulation requires a power-of-two set count");
    }
    if config.block_size() < 2 {
        return Some(
            "one-pass simulation requires block size >= 2 (block numbers reserve a sentinel)",
        );
    }
    if config.effective_associativity() > 16 {
        return Some(
            "one-pass simulation caps associativity at 16 ways (recency permutations pack into 4-bit fields)",
        );
    }
    None
}

/// Per-configuration eviction/miss accumulators plus the two slice-wide
/// access counters, kept as flat arrays so the per-size hot loops touch
/// a handful of cache lines instead of one `Metrics` struct per size.
#[derive(Debug, Clone, Copy)]
struct CounterBank {
    /// Counted accesses — identical for every configuration in a slice,
    /// so one scalar stands in for all of them.
    accesses: u64,
    /// Data writes — likewise slice-wide; write-through bytes are
    /// `write_accesses * word_size` per configuration at read-out.
    write_accesses: u64,
    /// Miss counters in two lanes — `miss[1]` counted (read/fetch)
    /// misses, `miss[0]` data-write misses — so the hot loops pick a
    /// lane by index instead of by branch.
    miss: [[u64; MAX_MULTISIM_CONFIGS]; 2],
    evicted_blocks: [u64; MAX_MULTISIM_CONFIGS],
    /// Referenced sub-blocks summed over evictions (the unreferenced
    /// count is `evicted_blocks * slots` minus this, per configuration).
    evicted_referenced: [u64; MAX_MULTISIM_CONFIGS],
}

impl Default for CounterBank {
    // Derived `Default` needs `[u64; N]: Default`, which the standard
    // library only provides up to 32 elements.
    fn default() -> Self {
        CounterBank {
            accesses: 0,
            write_accesses: 0,
            miss: [[0; MAX_MULTISIM_CONFIGS]; 2],
            evicted_blocks: [0; MAX_MULTISIM_CONFIGS],
            evicted_referenced: [0; MAX_MULTISIM_CONFIGS],
        }
    }
}

/// What the per-size update loop needs about one configuration of a
/// class, packed so the loop reads it sequentially.
#[derive(Debug, Clone, Copy)]
struct SizeMeta {
    /// Index of the configuration within the slice (counter bank slot).
    si: u8,
    /// log2 of the sub-block size.
    sub_shift: u32,
    /// `sub_blocks_per_block - 1`: selects the sub-slot bit index from
    /// the shifted address.
    slot_mask: u64,
}

/// Sentinel block number marking an unoccupied way.
///
/// With block size ≥ 2 (enforced by [`engine_supports`]) real block
/// numbers are at most `u64::MAX >> 1`, so the sentinel never collides
/// and sets can be treated as always full: the probe compares every way
/// and the fill path is the eviction path with its statistics masked
/// off.
const EMPTY_WAY: u64 = u64::MAX;

/// One deduplicated residency class: the set-mapped LRU state shared by
/// every configuration with this (block size, set count, associativity)
/// triple.
///
/// `data` packs each set as `[block_0 .. block_{A-1},
/// masks_0 .. masks_{A-1}]` — the `A` resident block numbers
/// contiguous (so the probe reads one cache line) and in recency order,
/// most recent first, followed by `A` rows of `m = meta.len()`
/// member-configuration mask words in **physical** order. Mask rows
/// never move: promoting a block rotates only the block words, and the
/// per-set entry of `perm` — sixteen 4-bit fields mapping recency rank
/// to physical mask row — is updated instead. Rotating the mask rows
/// too would make every LRU promotion copy `A * m` words through a
/// store-to-load-forwarding chain; one packed-permutation word update
/// replaces all of that traffic. Unoccupied ways hold [`EMPTY_WAY`]
/// with zero masks, so every set is structurally full and the hot path
/// never consults an occupancy count.
#[derive(Debug, Clone)]
struct ClassState {
    /// log2 of the block size: addresses shift down by this to become
    /// this class's block numbers.
    shift: u32,
    /// `num_sets - 1`: bit-selection set index mask over block numbers.
    mask: u64,
    /// Effective associativity (ways per set).
    assoc: usize,
    /// The slice configurations belonging to this class.
    meta: Vec<SizeMeta>,
    /// `num_sets * assoc * (1 + meta.len())` words of per-set state
    /// (see the struct docs for the layout).
    data: Vec<u64>,
    /// Per-set recency→physical-mask-row permutation, 4 bits per rank
    /// (which is why the engine caps associativity at 16 ways).
    perm: Vec<u64>,
}

/// The identity recency permutation: rank `r` maps to physical row `r`.
const IDENT_PERM: u64 = 0xFEDC_BA98_7654_3210;

/// Promotes rank `pos` of a packed permutation to rank 0, shifting
/// ranks `0..pos` up by one — the LRU-stack rotation, applied to the
/// 4-bit fields instead of the mask rows they name.
#[inline]
fn promote(perm: u64, pos: usize) -> u64 {
    let lo_mask = u64::MAX >> (60 - 4 * pos);
    let moved = (perm >> (4 * pos)) & 15;
    (perm & !lo_mask) | ((perm << 4) & lo_mask) | moved
}

/// Chunk-loop context for one class in a shape-specialised runner:
/// per-chunk tables, borrowed set state, and chunk-local counters.
///
/// Chunk-local miss counters, flushed once by [`SpecCtx::flush`]: the
/// shared bank's slots are the same few addresses every reference, and
/// a read-modify-write there each iteration serialises the loop on
/// store-to-load forwarding. Total and write-lane-only counts (plain
/// arrays, no per-reference lane indexing) let the register allocator
/// keep them live.
///
/// Factoring the per-reference step into [`SpecCtx::visit`] lets one
/// reference loop drive either a single class ([`ClassState::run_spec`])
/// or two classes interleaved ([`run_pair_spec`]); see the latter for
/// why interleaving pays.
struct SpecCtx<'a, const M: usize> {
    shift: u32,
    set_mask: u64,
    /// Finest member sub-block granularity; block offsets are taken at
    /// this grain when indexing `bit_table`.
    min_shift: u32,
    off_mask: u64,
    /// Per-offset sub-block bit per member; see [`SpecCtx::new`].
    bit_table: [[u64; M]; 32],
    data: &'a mut [u64],
    perms: &'a mut [u64],
    /// Member slice indices, pre-masked so the flush indexes unchecked.
    si: [usize; M],
    miss_total: [u64; M],
    miss_write: [u64; M],
    evb: u64,
    evr: [u64; M],
}

impl<'a, const M: usize> SpecCtx<'a, M> {
    #[inline(always)]
    fn new<const WAYS: usize>(class: &'a mut ClassState) -> Self {
        debug_assert_eq!(class.assoc, WAYS);
        debug_assert_eq!(class.meta.len(), M);
        let mut sub_shift = [0u32; M];
        let mut slot_mask = [0u64; M];
        let mut si = [0usize; M];
        for (w, sm) in class.meta.iter().enumerate() {
            sub_shift[w] = sm.sub_shift;
            slot_mask[w] = sm.slot_mask;
            // Slice indices are < MAX_MULTISIM_CONFIGS by construction;
            // the mask proves it to the optimiser so the counter
            // updates in `flush` index unchecked.
            si[w] = usize::from(sm.si) & (MAX_MULTISIM_CONFIGS - 1);
        }
        // Every member's sub-block bit depends only on the address's
        // offset within the block, and the offset has at most
        // block/min-sub ≤ 32 distinct values — so the two shifts and
        // the mask-and-shift per member per reference collapse to one
        // load from this table, rebuilt per chunk on the stack (≤ 1.5 KB,
        // L1-hot).
        let shift = class.shift;
        let min_shift = sub_shift.iter().copied().min().unwrap_or(0);
        let off_bits = shift - min_shift;
        debug_assert!(off_bits <= 5, "block/sub ratio capped at 32 by Table 1");
        let off_mask = (1u64 << off_bits) - 1;
        let mut bit_table = [[0u64; M]; 32];
        for (off, bits) in bit_table.iter_mut().enumerate().take(1 << off_bits) {
            for w in 0..M {
                let slot = ((off as u64) >> (sub_shift[w] - min_shift)) & slot_mask[w];
                bits[w] = 1u64 << slot;
            }
        }
        let set_mask = class.mask;
        let data = &mut class.data[..];
        let perms = &mut class.perm[..];
        // Two length proofs ahead of the reference loop: every set
        // index in `visit` is `block & set_mask`, so `base + row_words`
        // never exceeds `(set_mask + 1) * row_words` — with the
        // equalities pinned here the per-reference row slicing and
        // permutation access compile without bounds checks.
        assert_eq!(data.len(), (set_mask as usize + 1) * (WAYS * (1 + M)));
        assert_eq!(perms.len(), set_mask as usize + 1);
        SpecCtx {
            shift,
            set_mask,
            min_shift,
            off_mask,
            bit_table,
            data,
            perms,
            si,
            miss_total: [0u64; M],
            miss_write: [0u64; M],
            evb: 0,
            evr: [0u64; M],
        }
    }

    /// Presents one reference to this class: the entire per-reference
    /// step of the specialised runners.
    #[inline(always)]
    fn visit<const WAYS: usize>(&mut self, a: u64, wmask: u64) {
        let row_words = WAYS * (1 + M);
        let block = a >> self.shift;
        let set = (block & self.set_mask) as usize;
        let base = set * row_words;
        let data = &mut *self.data;
        let perms = &mut *self.perms;
        let row = &mut data[base..base + row_words];
        let bits = &self.bit_table[((a >> self.min_shift) & self.off_mask) as usize];
        // Top-two fast path: hits on the two most recent ways cover
        // both straight-line reuse and the in-set ping-pong of two
        // interleaved streams (instruction fetches alternating with
        // data references), so this branch predicts far better than
        // a front-way-only check — and which of the two ways hit is
        // resolved with selects, not a second branch. Mask rows are
        // physical: only the hit way's row is touched, found through
        // the permutation word, and a way-1 hit swaps the two front
        // permutation fields instead of moving any masks.
        let p = perms[set];
        if WAYS >= 2 {
            let h1 = row[1] == block;
            if row[0] == block || h1 {
                let b0 = row[0];
                row[0] = block;
                row[1] = if h1 { b0 } else { row[1] };
                let phys0 = (p as usize) & (WAYS - 1);
                let phys1 = ((p >> 4) as usize) & (WAYS - 1);
                let mrow = WAYS + if h1 { phys1 } else { phys0 } * M;
                let swapped = (p & !0xFF) | (((p & 15) << 4) | ((p >> 4) & 15));
                perms[set] = if h1 { swapped } else { p };
                for w in 0..M {
                    let bit = bits[w];
                    let old = row[mrow + w];
                    let missed = u64::from(old & bit == 0);
                    self.miss_total[w] += missed;
                    self.miss_write[w] += missed & wmask;
                    row[mrow + w] = old | bit;
                }
                return;
            }
        } else if row[0] == block {
            for w in 0..M {
                let bit = bits[w];
                let old = row[WAYS + w];
                let missed = u64::from(old & bit == 0);
                self.miss_total[w] += missed;
                self.miss_write[w] += missed & wmask;
                row[WAYS + w] = old | bit;
            }
            return;
        }
        // Ways 0 and 1 were just probed (way 0 alone when WAYS is
        // 1), so the scan starts at 2 — empty for 1- and 2-way sets,
        // where falling through means a miss.
        let mut j = usize::MAX;
        #[allow(clippy::needless_range_loop)] // select scan: stay branch-free
        for t in 2..WAYS {
            if row[t] == block {
                j = t;
            }
        }
        let hit = j != usize::MAX;
        let pos = if hit { j } else { WAYS - 1 };
        let mrow = WAYS + (((p >> (4 * pos)) as usize) & (WAYS - 1)) * M;
        // Eviction of a real block is the rarest outcome; keeping
        // its statistics behind a branch spares the common paths
        // the victim-mask loads and counter read-modify-writes. The
        // victim's masks live in the row about to be refilled, read
        // here before the update loop overwrites them.
        if !hit && row[WAYS - 1] != EMPTY_WAY {
            self.evb += 1;
            for w in 0..M {
                self.evr[w] += u64::from(row[mrow + w].count_ones());
            }
        }
        // All-ones when hit: masks the old way's words so the miss
        // case sees zeros without a separate arm.
        let keep = u64::from(hit).wrapping_neg();
        for w in 0..M {
            let bit = bits[w];
            let old = row[mrow + w] & keep;
            let missed = u64::from(old & bit == 0);
            self.miss_total[w] += missed;
            self.miss_write[w] += missed & wmask;
            row[mrow + w] = old | bit;
        }
        // Shift block words right where their slot index is ≤ pos,
        // leave the rest: with const bounds this unrolls to pure
        // load/select/store, no branch on `pos`. The mask rows stay
        // put — the permutation promotion below is the whole of the
        // recency bookkeeping for them.
        for t in (1..WAYS).rev() {
            let shifted = row[t - 1];
            let kept = row[t];
            row[t] = if t <= pos { shifted } else { kept };
        }
        row[0] = block;
        perms[set] = promote(p, pos);
    }

    /// Folds the chunk-local counters into the shared bank.
    fn flush(
        self,
        miss: &mut [[u64; MAX_MULTISIM_CONFIGS]; 2],
        evicted_blocks: &mut [u64; MAX_MULTISIM_CONFIGS],
        evicted_referenced: &mut [u64; MAX_MULTISIM_CONFIGS],
    ) {
        for w in 0..M {
            miss[1][self.si[w]] += self.miss_total[w] - self.miss_write[w];
            miss[0][self.si[w]] += self.miss_write[w];
            evicted_blocks[self.si[w]] += self.evb;
            evicted_referenced[self.si[w]] += self.evr[w];
        }
    }
}

/// Runs one pre-decoded chunk through two same-shape classes with
/// their per-reference steps interleaved in a single loop.
///
/// A class's step for reference `i+1` frequently chains on its step
/// for reference `i` through store-to-load forwarding — sequential
/// code keeps hitting the same set, so the permutation word and the
/// front block words are stored and immediately reloaded. Interleaving
/// two classes puts a second, fully independent dependency chain in
/// the out-of-order window, overlapping those stalls (and sharing the
/// one address load per reference); measured on the Table 7 grid this
/// is worth roughly a third of the pass.
fn run_pair_spec<const WAYS: usize, const MA: usize, const MB: usize>(
    first: &mut ClassState,
    second: &mut ClassState,
    addrs: &[u64],
    lanes: &[u8],
    miss: &mut [[u64; MAX_MULTISIM_CONFIGS]; 2],
    evicted_blocks: &mut [u64; MAX_MULTISIM_CONFIGS],
    evicted_referenced: &mut [u64; MAX_MULTISIM_CONFIGS],
) {
    let mut ca = SpecCtx::<MA>::new::<WAYS>(first);
    let mut cb = SpecCtx::<MB>::new::<WAYS>(second);
    for (&a, &lane) in addrs.iter().zip(lanes) {
        // All-ones for data writes (lane 0), zero for counted refs.
        let wmask = u64::from(lane & 1).wrapping_sub(1);
        ca.visit::<WAYS>(a, wmask);
        cb.visit::<WAYS>(a, wmask);
    }
    ca.flush(miss, evicted_blocks, evicted_referenced);
    cb.flush(miss, evicted_blocks, evicted_referenced);
}

/// Runs a chunk through every class, pairing adjacent 4-way classes so
/// their loops interleave (see [`run_pair_spec`]); classes that cannot
/// pair — odd one out, non-4-way, or too many members for a
/// specialisation — run alone via [`ClassState::run`].
///
/// Pairing never changes results (classes are independent); it only
/// changes how their per-reference steps are scheduled.
fn run_classes(
    classes: &mut [ClassState],
    addrs: &[u64],
    lanes: &[u8],
    miss: &mut [[u64; MAX_MULTISIM_CONFIGS]; 2],
    evicted_blocks: &mut [u64; MAX_MULTISIM_CONFIGS],
    evicted_referenced: &mut [u64; MAX_MULTISIM_CONFIGS],
) {
    let mut i = 0;
    while i < classes.len() {
        if i + 1 < classes.len() {
            let (head, tail) = classes.split_at_mut(i + 1);
            let a = &mut head[i];
            let b = &mut tail[0];
            if a.assoc == 4 && b.assoc == 4 {
                macro_rules! pair {
                    ($ma:literal, $mb:literal) => {{
                        run_pair_spec::<4, $ma, $mb>(
                            a,
                            b,
                            addrs,
                            lanes,
                            miss,
                            evicted_blocks,
                            evicted_referenced,
                        );
                        true
                    }};
                }
                let paired = match (a.meta.len(), b.meta.len()) {
                    (1, 1) => pair!(1, 1),
                    (1, 2) => pair!(1, 2),
                    (1, 3) => pair!(1, 3),
                    (1, 4) => pair!(1, 4),
                    (1, 5) => pair!(1, 5),
                    (1, 6) => pair!(1, 6),
                    (2, 1) => pair!(2, 1),
                    (2, 2) => pair!(2, 2),
                    (2, 3) => pair!(2, 3),
                    (2, 4) => pair!(2, 4),
                    (2, 5) => pair!(2, 5),
                    (2, 6) => pair!(2, 6),
                    (3, 1) => pair!(3, 1),
                    (3, 2) => pair!(3, 2),
                    (3, 3) => pair!(3, 3),
                    (3, 4) => pair!(3, 4),
                    (3, 5) => pair!(3, 5),
                    (3, 6) => pair!(3, 6),
                    (4, 1) => pair!(4, 1),
                    (4, 2) => pair!(4, 2),
                    (4, 3) => pair!(4, 3),
                    (4, 4) => pair!(4, 4),
                    (4, 5) => pair!(4, 5),
                    (4, 6) => pair!(4, 6),
                    (5, 1) => pair!(5, 1),
                    (5, 2) => pair!(5, 2),
                    (5, 3) => pair!(5, 3),
                    (5, 4) => pair!(5, 4),
                    (5, 5) => pair!(5, 5),
                    (5, 6) => pair!(5, 6),
                    (6, 1) => pair!(6, 1),
                    (6, 2) => pair!(6, 2),
                    (6, 3) => pair!(6, 3),
                    (6, 4) => pair!(6, 4),
                    (6, 5) => pair!(6, 5),
                    (6, 6) => pair!(6, 6),
                    _ => false,
                };
                if paired {
                    i += 2;
                    continue;
                }
            }
        }
        classes[i].run(addrs, lanes, miss, evicted_blocks, evicted_referenced);
        i += 1;
    }
}

/// One side of a [`run_quad_spec`] call: an adjacent class pair of one
/// engine, that engine's decoded chunk, and its counter bank.
type QuadSide<'a> = (
    &'a mut ClassState,
    &'a mut ClassState,
    &'a [u64],
    &'a [u8],
    &'a mut CounterBank,
);

/// Runs two engines' chunks through an adjacent class pair of each,
/// all four per-reference steps interleaved in a single loop.
///
/// The two engines see different references, so their chains share
/// nothing at all; the four-way interleave is what finally covers the
/// store-to-load forwarding stalls a two-way interleave still exposes.
/// Chunks must be the same length (the caller falls back otherwise).
fn run_quad_spec<const WAYS: usize, const MA: usize, const MB: usize>(
    side_a: QuadSide<'_>,
    side_b: QuadSide<'_>,
) {
    let (a1, a2, addrs_a, lanes_a, bank_a) = side_a;
    let (b1, b2, addrs_b, lanes_b, bank_b) = side_b;
    debug_assert_eq!(addrs_a.len(), addrs_b.len());
    let mut ca1 = SpecCtx::<MA>::new::<WAYS>(a1);
    let mut ca2 = SpecCtx::<MB>::new::<WAYS>(a2);
    let mut cb1 = SpecCtx::<MA>::new::<WAYS>(b1);
    let mut cb2 = SpecCtx::<MB>::new::<WAYS>(b2);
    for i in 0..addrs_a.len().min(addrs_b.len()) {
        let aa = addrs_a[i];
        let ab = addrs_b[i];
        // All-ones for data writes (lane 0), zero for counted refs.
        let wa = u64::from(lanes_a[i] & 1).wrapping_sub(1);
        let wb = u64::from(lanes_b[i] & 1).wrapping_sub(1);
        ca1.visit::<WAYS>(aa, wa);
        cb1.visit::<WAYS>(ab, wb);
        ca2.visit::<WAYS>(aa, wa);
        cb2.visit::<WAYS>(ab, wb);
    }
    ca1.flush(
        &mut bank_a.miss,
        &mut bank_a.evicted_blocks,
        &mut bank_a.evicted_referenced,
    );
    ca2.flush(
        &mut bank_a.miss,
        &mut bank_a.evicted_blocks,
        &mut bank_a.evicted_referenced,
    );
    cb1.flush(
        &mut bank_b.miss,
        &mut bank_b.evicted_blocks,
        &mut bank_b.evicted_referenced,
    );
    cb2.flush(
        &mut bank_b.miss,
        &mut bank_b.evicted_blocks,
        &mut bank_b.evicted_referenced,
    );
}

impl ClassState {
    /// Presents one reference (`lane` 1 = counted, 0 = data write) to
    /// this class and its member configurations. Generic fallback for
    /// shapes [`ClassState::run`] has no specialisation for, and the
    /// single-reference [`AllSizesLruEngine::access`] path.
    fn one(
        &mut self,
        a: u64,
        lane: usize,
        miss: &mut [[u64; MAX_MULTISIM_CONFIGS]; 2],
        evicted_blocks: &mut [u64; MAX_MULTISIM_CONFIGS],
        evicted_referenced: &mut [u64; MAX_MULTISIM_CONFIGS],
    ) {
        let block = a >> self.shift;
        let ways = self.assoc;
        let m = self.meta.len();
        let set = (block & self.mask) as usize;
        let base = set * ways * (1 + m);
        let row = &mut self.data[base..base + ways * (1 + m)];
        // Probe every way (sentinels never match; resident block
        // numbers are distinct, so no early exit is needed).
        let mut j = usize::MAX;
        #[allow(clippy::needless_range_loop)] // select scan: stay branch-free
        for t in 0..ways {
            if row[t] == block {
                j = t;
            }
        }
        let hit = j != usize::MAX;
        // The way being replaced at the front: the hit way, or the
        // least-recent way (victim) on a miss.
        let pos = if hit { j } else { ways - 1 };
        let perm = &mut self.perm[set];
        // The mask row of the touched way never moves; the permutation
        // names it and is rotated in its stead below.
        let mrow = ways + (((*perm >> (4 * pos)) & 15) as usize) * m;
        let miss_ctr = &mut miss[lane];
        if !hit && row[ways - 1] != EMPTY_WAY {
            // Evicting a real block: record its referenced sub-blocks
            // for every member configuration before the refill below
            // overwrites the victim's masks.
            for (w, sm) in self.meta.iter().enumerate() {
                let si = usize::from(sm.si);
                evicted_blocks[si] += 1;
                evicted_referenced[si] += u64::from(row[mrow + w].count_ones());
            }
        }
        // Rotate block words 0..=pos right by one — the pos way (hit or
        // victim) lands at slot 0 — and promote the permutation to
        // match; the mask rows stay put.
        row[..pos + 1].rotate_right(1);
        row[0] = block;
        *perm = promote(*perm, pos);
        let keep = u64::from(hit).wrapping_neg();
        for (w, sm) in self.meta.iter().enumerate() {
            let bit = 1u64 << ((a >> sm.sub_shift) & sm.slot_mask);
            let old = row[mrow + w] & keep;
            miss_ctr[usize::from(sm.si) & (MAX_MULTISIM_CONFIGS - 1)] += u64::from(old & bit == 0);
            row[mrow + w] = old | bit;
        }
    }

    /// Runs a whole pre-decoded chunk of references through this class,
    /// dispatching to a shape-specialised inner loop when one exists.
    ///
    /// The specialisations cover every (associativity, member-count)
    /// shape the paper grids produce; anything else falls back to the
    /// generic per-reference path, which is exact but branchier.
    fn run(
        &mut self,
        addrs: &[u64],
        lanes: &[u8],
        miss: &mut [[u64; MAX_MULTISIM_CONFIGS]; 2],
        evicted_blocks: &mut [u64; MAX_MULTISIM_CONFIGS],
        evicted_referenced: &mut [u64; MAX_MULTISIM_CONFIGS],
    ) {
        macro_rules! spec {
            ($w:literal, $m:literal) => {
                self.run_spec::<$w, $m>(addrs, lanes, miss, evicted_blocks, evicted_referenced)
            };
        }
        match (self.assoc, self.meta.len()) {
            (1, 1) => spec!(1, 1),
            (1, 2) => spec!(1, 2),
            (1, 3) => spec!(1, 3),
            (1, 4) => spec!(1, 4),
            (1, 5) => spec!(1, 5),
            (1, 6) => spec!(1, 6),
            (2, 1) => spec!(2, 1),
            (2, 2) => spec!(2, 2),
            (2, 3) => spec!(2, 3),
            (2, 4) => spec!(2, 4),
            (2, 5) => spec!(2, 5),
            (2, 6) => spec!(2, 6),
            (4, 1) => spec!(4, 1),
            (4, 2) => spec!(4, 2),
            (4, 3) => spec!(4, 3),
            (4, 4) => spec!(4, 4),
            (4, 5) => spec!(4, 5),
            (4, 6) => spec!(4, 6),
            (8, 1) => spec!(8, 1),
            (8, 2) => spec!(8, 2),
            _ => {
                for (&a, &lane) in addrs.iter().zip(lanes) {
                    self.one(
                        a,
                        usize::from(lane),
                        miss,
                        evicted_blocks,
                        evicted_referenced,
                    );
                }
            }
        }
    }

    /// The shape-specialised inner loop: `WAYS`-way sets with `M`
    /// member configurations, both const so every way-loop and
    /// size-loop in [`SpecCtx::visit`] fully unrolls and the hit/miss
    /// arms collapse to straight-line selects.
    ///
    /// Must be exactly equivalent to calling [`ClassState::one`] per
    /// reference; `access_run_matches_per_reference_access` and the
    /// equivalence proptests enforce this.
    fn run_spec<const WAYS: usize, const M: usize>(
        &mut self,
        addrs: &[u64],
        lanes: &[u8],
        miss: &mut [[u64; MAX_MULTISIM_CONFIGS]; 2],
        evicted_blocks: &mut [u64; MAX_MULTISIM_CONFIGS],
        evicted_referenced: &mut [u64; MAX_MULTISIM_CONFIGS],
    ) {
        let mut ctx = SpecCtx::<M>::new::<WAYS>(self);
        for (&a, &lane) in addrs.iter().zip(lanes) {
            // All-ones for data writes (lane 0), zero for counted refs.
            let wmask = u64::from(lane & 1).wrapping_sub(1);
            ctx.visit::<WAYS>(a, wmask);
        }
        ctx.flush(miss, evicted_blocks, evicted_referenced);
    }
}

/// The one-pass all-sizes LRU engine. See the module docs for the
/// algorithm; construct with [`AllSizesLruEngine::new`] and drive with
/// [`access`](AllSizesLruEngine::access), or use [`simulate_many`].
///
/// ```
/// use occache_core::{simulate, simulate_many, CacheConfig};
/// use occache_trace::MemRef;
///
/// let configs: Vec<CacheConfig> = [64u64, 256]
///     .iter()
///     .map(|&net| {
///         CacheConfig::builder()
///             .net_size(net)
///             .block_size(16)
///             .sub_block_size(8)
///             .word_size(2)
///             .build()
///             .expect("valid geometry")
///     })
///     .collect();
/// let trace: Vec<MemRef> = (0..500u64).map(|i| MemRef::read((i * 13) % 640 * 2)).collect();
/// let all = simulate_many(&configs, trace.iter().copied(), 0)?;
/// for (config, metrics) in configs.iter().zip(&all) {
///     assert_eq!(*metrics, simulate(*config, trace.iter().copied(), 0));
/// }
/// # Ok::<(), occache_core::MultiSimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct AllSizesLruEngine {
    /// Number of configurations (prefix of the per-size arrays).
    n: usize,
    classes: Vec<ClassState>,
    sub_size: [u64; MAX_MULTISIM_CONFIGS],
    /// Sub-block slots per block, as recorded in eviction statistics.
    slots: [u64; MAX_MULTISIM_CONFIGS],
    /// Bus word size (write-through accounting).
    word_size: [u64; MAX_MULTISIM_CONFIGS],
    bank: CounterBank,
    /// Chunk scratch: addresses decoded once per [`access_run`] chunk so
    /// the per-class passes read plain words instead of re-decoding
    /// every reference per class.
    ///
    /// [`access_run`]: AllSizesLruEngine::access_run
    scratch_addr: Vec<u64>,
    /// Chunk scratch: counter lane per reference (1 counted, 0 write).
    scratch_lane: Vec<u8>,
}

impl AllSizesLruEngine {
    /// Builds an engine for a compatible slice of configurations.
    ///
    /// # Errors
    ///
    /// Returns a [`MultiSimError`] when the slice is empty or too wide,
    /// or a configuration needs an unsupported policy/geometry.
    pub fn new(configs: &[CacheConfig]) -> Result<Self, MultiSimError> {
        if configs.is_empty() {
            return Err(MultiSimError::NoConfigs);
        }
        if configs.len() > MAX_MULTISIM_CONFIGS {
            return Err(MultiSimError::TooManyConfigs {
                given: configs.len(),
            });
        }
        for &config in configs {
            if let Some(why) = supports_or_reason(&config) {
                return Err(MultiSimError::Unsupported { config, why });
            }
        }
        let mut classes: Vec<ClassState> = Vec::new();
        let mut sub_size = [0u64; MAX_MULTISIM_CONFIGS];
        let mut slots = [0u64; MAX_MULTISIM_CONFIGS];
        let mut word_size = [0u64; MAX_MULTISIM_CONFIGS];
        for (si, c) in configs.iter().enumerate() {
            let shift = c.block_size().trailing_zeros();
            let mask = c.num_sets() - 1;
            let assoc = c.effective_associativity() as usize;
            let class = match classes
                .iter_mut()
                .find(|x| x.shift == shift && x.mask == mask && x.assoc == assoc)
            {
                Some(class) => class,
                None => {
                    classes.push(ClassState {
                        shift,
                        mask,
                        assoc,
                        meta: Vec::new(),
                        data: Vec::new(),
                        perm: Vec::new(),
                    });
                    classes.last_mut().expect("just pushed")
                }
            };
            class.meta.push(SizeMeta {
                si: si as u8,
                sub_shift: c.sub_block_size().trailing_zeros(),
                slot_mask: c.sub_blocks_per_block() - 1,
            });
            sub_size[si] = c.sub_block_size();
            slots[si] = c.sub_blocks_per_block();
            word_size[si] = c.word_size();
        }
        // Set state is sized once membership is final: per way, one
        // block word plus one mask word per member configuration, the
        // block words leading each set and initialised to the sentinel.
        for class in &mut classes {
            let sets = (class.mask + 1) as usize;
            let set_words = class.assoc * (1 + class.meta.len());
            class.data = vec![0; sets * set_words];
            for set in class.data.chunks_exact_mut(set_words) {
                set[..class.assoc].fill(EMPTY_WAY);
            }
            class.perm = vec![IDENT_PERM; sets];
        }
        Ok(AllSizesLruEngine {
            n: configs.len(),
            classes,
            sub_size,
            slots,
            word_size,
            bank: CounterBank::default(),
            scratch_addr: Vec::new(),
            scratch_lane: Vec::new(),
        })
    }

    /// Presents one reference to every simulated configuration.
    pub fn access(&mut self, addr: Address, kind: AccessKind) {
        let counted = u64::from(kind.is_counted());
        self.bank.accesses += counted;
        self.bank.write_accesses += 1 - counted;
        let CounterBank {
            miss,
            evicted_blocks,
            evicted_referenced,
            ..
        } = &mut self.bank;
        let a = addr.value();
        for class in &mut self.classes {
            class.one(
                a,
                counted as usize,
                miss,
                evicted_blocks,
                evicted_referenced,
            );
        }
    }

    /// Feeds a run of references through the engine, class by class: the
    /// chunked ingest fast path the streamed evaluation loop drives, one
    /// buffer refill at a time, without materialising a whole trace.
    ///
    /// Residency classes are independent simulations, so processing the
    /// whole chunk for one class before the next is exactly equivalent
    /// to presenting each reference to every class in turn — and much
    /// faster, because each class's tight inner loop keeps its set
    /// state cache-resident and its branch history coherent instead of
    /// cycling through every class's working set per reference.
    pub fn access_run(&mut self, refs: &[MemRef]) {
        self.decode_chunk(refs);
        let CounterBank {
            miss,
            evicted_blocks,
            evicted_referenced,
            ..
        } = &mut self.bank;
        run_classes(
            &mut self.classes,
            &self.scratch_addr,
            &self.scratch_lane,
            miss,
            evicted_blocks,
            evicted_referenced,
        );
    }

    /// Decodes one chunk into the address/lane scratch and folds the
    /// access totals into the bank.
    fn decode_chunk(&mut self, refs: &[MemRef]) {
        self.scratch_addr.clear();
        self.scratch_lane.clear();
        for r in refs {
            let counted = u8::from(r.kind().is_counted());
            self.bank.accesses += u64::from(counted);
            self.bank.write_accesses += u64::from(1 - counted);
            self.scratch_addr.push(r.address().value());
            self.scratch_lane.push(counted);
        }
    }

    /// Whether `other` simulates the identical residency-class layout
    /// (same configurations in the same order), making the two engines
    /// eligible for the interleaved paired run.
    fn same_shape(&self, other: &Self) -> bool {
        self.n == other.n
            && self.classes.len() == other.classes.len()
            && self.classes.iter().zip(&other.classes).all(|(a, b)| {
                a.shift == b.shift
                    && a.mask == b.mask
                    && a.assoc == b.assoc
                    && a.meta.len() == b.meta.len()
            })
    }

    /// Presents one chunk to this engine and another chunk to a
    /// second engine over the same configurations, interleaving their
    /// per-reference steps.
    ///
    /// Two engines driven by different traces are completely
    /// independent, so their steps overlap perfectly in the
    /// out-of-order window (see [`run_pair_spec`] for why that pays);
    /// combined with adjacent-class pairing this keeps four
    /// dependency chains in flight. Results are exactly what two
    /// separate [`access_run`](Self::access_run) calls would produce —
    /// which is also the fallback when the chunks differ in length or
    /// the engines in shape.
    pub fn access_run_pair(&mut self, refs: &[MemRef], other: &mut Self, other_refs: &[MemRef]) {
        if refs.len() != other_refs.len() || !self.same_shape(other) {
            self.access_run(refs);
            other.access_run(other_refs);
            return;
        }
        self.decode_chunk(refs);
        other.decode_chunk(other_refs);
        let Self {
            classes: classes_a,
            bank: bank_a,
            scratch_addr: addrs_a,
            scratch_lane: lanes_a,
            ..
        } = self;
        let Self {
            classes: classes_b,
            bank: bank_b,
            scratch_addr: addrs_b,
            scratch_lane: lanes_b,
            ..
        } = other;
        let mut i = 0;
        while i < classes_a.len() {
            if i + 1 < classes_a.len() {
                let (head_a, tail_a) = classes_a.split_at_mut(i + 1);
                let (head_b, tail_b) = classes_b.split_at_mut(i + 1);
                let a1 = &mut head_a[i];
                let a2 = &mut tail_a[0];
                let b1 = &mut head_b[i];
                let b2 = &mut tail_b[0];
                if a1.assoc == 4 && a2.assoc == 4 {
                    macro_rules! quad {
                        ($ma:literal, $mb:literal) => {{
                            run_quad_spec::<4, $ma, $mb>(
                                (a1, a2, addrs_a, lanes_a, bank_a),
                                (b1, b2, addrs_b, lanes_b, bank_b),
                            );
                            true
                        }};
                    }
                    let done = match (a1.meta.len(), a2.meta.len()) {
                        (1, 1) => quad!(1, 1),
                        (1, 2) => quad!(1, 2),
                        (1, 3) => quad!(1, 3),
                        (1, 4) => quad!(1, 4),
                        (1, 5) => quad!(1, 5),
                        (1, 6) => quad!(1, 6),
                        (2, 1) => quad!(2, 1),
                        (2, 2) => quad!(2, 2),
                        (2, 3) => quad!(2, 3),
                        (2, 4) => quad!(2, 4),
                        (2, 5) => quad!(2, 5),
                        (2, 6) => quad!(2, 6),
                        (3, 1) => quad!(3, 1),
                        (3, 2) => quad!(3, 2),
                        (3, 3) => quad!(3, 3),
                        (3, 4) => quad!(3, 4),
                        (3, 5) => quad!(3, 5),
                        (3, 6) => quad!(3, 6),
                        (4, 1) => quad!(4, 1),
                        (4, 2) => quad!(4, 2),
                        (4, 3) => quad!(4, 3),
                        (4, 4) => quad!(4, 4),
                        (4, 5) => quad!(4, 5),
                        (4, 6) => quad!(4, 6),
                        (5, 1) => quad!(5, 1),
                        (5, 2) => quad!(5, 2),
                        (5, 3) => quad!(5, 3),
                        (5, 4) => quad!(5, 4),
                        (5, 5) => quad!(5, 5),
                        (5, 6) => quad!(5, 6),
                        (6, 1) => quad!(6, 1),
                        (6, 2) => quad!(6, 2),
                        (6, 3) => quad!(6, 3),
                        (6, 4) => quad!(6, 4),
                        (6, 5) => quad!(6, 5),
                        (6, 6) => quad!(6, 6),
                        _ => false,
                    };
                    if done {
                        i += 2;
                        continue;
                    }
                }
            }
            classes_a[i].run(
                addrs_a,
                lanes_a,
                &mut bank_a.miss,
                &mut bank_a.evicted_blocks,
                &mut bank_a.evicted_referenced,
            );
            classes_b[i].run(
                addrs_b,
                lanes_b,
                &mut bank_b.miss,
                &mut bank_b.evicted_blocks,
                &mut bank_b.evicted_referenced,
            );
            i += 1;
        }
    }

    /// Zeroes every configuration's metrics while keeping cache state —
    /// the warm-start discipline, mirroring
    /// [`SubBlockCache::reset_metrics`](crate::SubBlockCache::reset_metrics).
    pub fn reset_metrics(&mut self) {
        self.bank = CounterBank::default();
    }

    /// Metrics accumulated so far, in the order of the configurations
    /// given to [`AllSizesLruEngine::new`]. Derived counters (fetch
    /// traffic, write-through bytes, evicted sub-slots) are expanded
    /// from the compact per-size counts here, exactly.
    pub fn metrics(&self) -> Vec<Metrics> {
        (0..self.n)
            .map(|si| {
                Metrics::from_engine(
                    self.word_size[si],
                    self.sub_size[si],
                    self.slots[si],
                    EngineCounters {
                        accesses: self.bank.accesses,
                        write_accesses: self.bank.write_accesses,
                        misses: self.bank.miss[1][si],
                        write_misses: self.bank.miss[0][si],
                        evicted_blocks: self.bank.evicted_blocks[si],
                        evicted_referenced_subs: self.bank.evicted_referenced[si],
                    },
                )
            })
            .collect()
    }
}

/// Simulates a whole trace against a compatible slice of configurations
/// in one pass, returning per-configuration metrics in input order.
///
/// The one-pass counterpart of [`simulate`](crate::simulate): `warmup`
/// references prime the caches and are excluded from the metrics, and
/// every returned [`Metrics`] is bit-identical to what
/// `simulate(configs[i], refs, warmup)` would produce.
///
/// # Errors
///
/// Returns a [`MultiSimError`] when the slice cannot run on the engine;
/// see [`engine_supports`] for the per-configuration conditions.
pub fn simulate_many<I>(
    configs: &[CacheConfig],
    refs: I,
    warmup: usize,
) -> Result<Vec<Metrics>, MultiSimError>
where
    I: IntoIterator<Item = MemRef>,
{
    let mut engine = AllSizesLruEngine::new(configs)?;
    let mut iter = refs.into_iter();
    // Buffer the stream into chunks sized to stay cache-resident while
    // the per-class tiled loops of `access_run` sweep over them.
    let mut buf: Vec<MemRef> = Vec::with_capacity(ENGINE_CHUNK);
    let mut remaining = warmup;
    while remaining > 0 {
        buf.clear();
        buf.extend(iter.by_ref().take(remaining.min(ENGINE_CHUNK)));
        if buf.is_empty() {
            break;
        }
        remaining -= buf.len();
        engine.access_run(&buf);
    }
    engine.reset_metrics();
    loop {
        buf.clear();
        buf.extend(iter.by_ref().take(ENGINE_CHUNK));
        if buf.is_empty() {
            break;
        }
        engine.access_run(&buf);
    }
    Ok(engine.metrics())
}

/// [`simulate_many`] for two traces at once: one engine per trace,
/// driven chunk-by-chunk through
/// [`AllSizesLruEngine::access_run_pair`] so the two passes interleave.
///
/// Returns exactly what two separate [`simulate_many`] calls would
/// (the interleave never mixes state); the pairing is purely a
/// scheduling change that overlaps the two traces' dependency chains.
///
/// # Errors
///
/// Returns a [`MultiSimError`] exactly as [`simulate_many`] would.
pub fn simulate_many_pair<I, J>(
    configs: &[CacheConfig],
    refs_a: I,
    refs_b: J,
    warmup: usize,
) -> Result<(Vec<Metrics>, Vec<Metrics>), MultiSimError>
where
    I: IntoIterator<Item = MemRef>,
    J: IntoIterator<Item = MemRef>,
{
    let mut engine_a = AllSizesLruEngine::new(configs)?;
    let mut engine_b = engine_a.clone();
    let mut iter_a = refs_a.into_iter();
    let mut iter_b = refs_b.into_iter();
    let mut buf_a: Vec<MemRef> = Vec::with_capacity(ENGINE_CHUNK);
    let mut buf_b: Vec<MemRef> = Vec::with_capacity(ENGINE_CHUNK);
    let mut remaining = warmup;
    while remaining > 0 {
        let take = remaining.min(ENGINE_CHUNK);
        buf_a.clear();
        buf_a.extend(iter_a.by_ref().take(take));
        buf_b.clear();
        buf_b.extend(iter_b.by_ref().take(take));
        if buf_a.is_empty() && buf_b.is_empty() {
            break;
        }
        // Both traces consume warmup at the same pace, so the chunks
        // stay aligned until one stream ends (the pair call falls back
        // to serial runs for ragged tails).
        remaining -= take.min(buf_a.len().max(buf_b.len()));
        engine_a.access_run_pair(&buf_a, &mut engine_b, &buf_b);
    }
    engine_a.reset_metrics();
    engine_b.reset_metrics();
    loop {
        buf_a.clear();
        buf_a.extend(iter_a.by_ref().take(ENGINE_CHUNK));
        buf_b.clear();
        buf_b.extend(iter_b.by_ref().take(ENGINE_CHUNK));
        if buf_a.is_empty() && buf_b.is_empty() {
            break;
        }
        engine_a.access_run_pair(&buf_a, &mut engine_b, &buf_b);
    }
    Ok((engine_a.metrics(), engine_b.metrics()))
}

/// Chunk size (in references) used when feeding an iterator through the
/// engine's tiled [`access_run`](AllSizesLruEngine::access_run) path: a
/// chunk this size stays L1/L2-resident while every residency class
/// sweeps over it.
pub const ENGINE_CHUNK: usize = 4096;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate;

    fn cfg(net: u64, block: u64, sub: u64) -> CacheConfig {
        CacheConfig::builder()
            .net_size(net)
            .block_size(block)
            .sub_block_size(sub)
            .word_size(2)
            .build()
            .unwrap()
    }

    /// A deterministic trace with loops, strides and writes — enough
    /// structure to exercise hits, conflict misses and evictions.
    fn mixed_trace(len: u64, span: u64) -> Vec<MemRef> {
        (0..len)
            .map(|i| {
                let addr = (i * 7 + (i / 13) * 31) % span * 2;
                match i % 5 {
                    0 | 1 => MemRef::ifetch(addr),
                    2 | 3 => MemRef::read(addr),
                    _ => MemRef::write(addr),
                }
            })
            .collect()
    }

    #[test]
    fn matches_direct_simulation_across_sizes() {
        let configs = [cfg(64, 16, 8), cfg(256, 16, 8), cfg(1024, 16, 8)];
        let trace = mixed_trace(20_000, 4096);
        let all = simulate_many(&configs, trace.iter().copied(), 0).unwrap();
        for (config, metrics) in configs.iter().zip(&all) {
            let direct = simulate(*config, trace.iter().copied(), 0);
            assert_eq!(*metrics, direct, "{config}");
        }
    }

    #[test]
    fn matches_direct_simulation_with_warmup() {
        let configs = [cfg(64, 8, 2), cfg(256, 8, 2), cfg(1024, 8, 2)];
        let trace = mixed_trace(10_000, 2048);
        let all = simulate_many(&configs, trace.iter().copied(), 1_000).unwrap();
        for (config, metrics) in configs.iter().zip(&all) {
            let direct = simulate(*config, trace.iter().copied(), 1_000);
            assert_eq!(*metrics, direct, "{config}");
        }
    }

    #[test]
    fn single_config_slice_matches_direct() {
        let configs = [cfg(128, 8, 8)];
        let trace = mixed_trace(5_000, 1024);
        let all = simulate_many(&configs, trace.iter().copied(), 0).unwrap();
        assert_eq!(all[0], simulate(configs[0], trace.iter().copied(), 0));
    }

    #[test]
    fn tiny_caches_with_capped_associativity_match() {
        // net 32, block 16 -> 2 blocks, effective associativity 2, 1 set.
        let configs = [cfg(32, 16, 8), cfg(64, 16, 8)];
        let trace = mixed_trace(5_000, 512);
        let all = simulate_many(&configs, trace.iter().copied(), 0).unwrap();
        for (config, metrics) in configs.iter().zip(&all) {
            assert_eq!(
                *metrics,
                simulate(*config, trace.iter().copied(), 0),
                "{config}"
            );
        }
    }

    #[test]
    fn rejects_unsupported_policies() {
        let lru = cfg(64, 8, 4);
        let fifo = CacheConfig::builder()
            .net_size(64)
            .block_size(8)
            .sub_block_size(4)
            .word_size(2)
            .replacement(ReplacementPolicy::Fifo)
            .build()
            .unwrap();
        assert!(engine_supports(&lru));
        assert!(!engine_supports(&fifo));
        assert!(matches!(
            AllSizesLruEngine::new(&[fifo]),
            Err(MultiSimError::Unsupported { .. })
        ));
        let prefetch = CacheConfig::builder()
            .net_size(64)
            .block_size(8)
            .sub_block_size(4)
            .word_size(2)
            .fetch(FetchPolicy::PrefetchNext { tagged: false })
            .build()
            .unwrap();
        assert!(!engine_supports(&prefetch));
        let copy_back = CacheConfig::builder()
            .net_size(64)
            .block_size(8)
            .sub_block_size(4)
            .word_size(2)
            .write_policy(WritePolicy::CopyBack)
            .build()
            .unwrap();
        assert!(!engine_supports(&copy_back));
    }

    #[test]
    fn rejects_non_power_of_two_set_counts() {
        // 8 blocks at 3-way: 8/3 truncates, so bit selection cannot map it.
        let odd = CacheConfig::builder()
            .net_size(64)
            .block_size(8)
            .sub_block_size(8)
            .associativity(3)
            .word_size(2)
            .build()
            .unwrap();
        assert!(!engine_supports(&odd));
    }

    #[test]
    fn rejects_empty_and_oversized_slices() {
        assert!(matches!(
            AllSizesLruEngine::new(&[]),
            Err(MultiSimError::NoConfigs)
        ));
        let oversized = [cfg(64, 8, 4); MAX_MULTISIM_CONFIGS + 1];
        assert!(matches!(
            AllSizesLruEngine::new(&oversized),
            Err(MultiSimError::TooManyConfigs { .. })
        ));
    }

    #[test]
    fn mixed_block_sizes_share_one_pass() {
        // A whole Table-7-shaped grid in one slice: three block sizes
        // with distinct sub-block choices across three net sizes. Every
        // (block, sets, assoc) triple becomes its own residency class,
        // so no two configurations here may share residency decisions
        // incorrectly.
        let configs = [
            cfg(64, 32, 8),
            cfg(64, 16, 16),
            cfg(64, 8, 2),
            cfg(256, 32, 8),
            cfg(256, 16, 16),
            cfg(256, 8, 2),
            cfg(1024, 32, 8),
            cfg(1024, 16, 16),
            cfg(1024, 8, 2),
        ];
        let trace = mixed_trace(20_000, 4096);
        let all = simulate_many(&configs, trace.iter().copied(), 500).unwrap();
        for (config, metrics) in configs.iter().zip(&all) {
            let direct = simulate(*config, trace.iter().copied(), 500);
            assert_eq!(*metrics, direct, "{config}");
        }
    }

    #[test]
    fn mixed_sub_block_sizes_share_one_pass() {
        // Same block size, three sub-block variants at two nets: six
        // configurations, two residency classes. The slice exercises the
        // class-deduplication path and per-size sub-block accounting.
        let configs = [
            cfg(64, 16, 16),
            cfg(64, 16, 8),
            cfg(64, 16, 4),
            cfg(256, 16, 16),
            cfg(256, 16, 8),
            cfg(256, 16, 4),
        ];
        let trace = mixed_trace(20_000, 4096);
        let all = simulate_many(&configs, trace.iter().copied(), 0).unwrap();
        for (config, metrics) in configs.iter().zip(&all) {
            let direct = simulate(*config, trace.iter().copied(), 0);
            assert_eq!(*metrics, direct, "{config}");
        }
    }

    #[test]
    fn wide_span_traces_match_direct_with_bounded_state() {
        // Small caches with large blocks collapse to one set; a
        // wide-span trace forces thousands of distinct blocks through a
        // slice whose total resident capacity is a couple dozen ways.
        // The engine's state is capacity-bound by construction (only
        // resident blocks are stored), so this shape — quadratic for a
        // merged recency stack holding every block ever referenced —
        // must stay linear and exact.
        let configs = [cfg(64, 32, 8), cfg(256, 32, 8), cfg(1024, 32, 8)];
        let trace = mixed_trace(60_000, 1 << 17);
        let mut engine = AllSizesLruEngine::new(&configs).unwrap();
        for r in &trace {
            engine.access(r.address(), r.kind());
        }
        for (config, metrics) in configs.iter().zip(engine.metrics()) {
            assert_eq!(
                metrics,
                simulate(*config, trace.iter().copied(), 0),
                "{config}"
            );
        }
    }

    #[test]
    fn access_run_matches_per_reference_access() {
        let configs = [cfg(64, 16, 8), cfg(256, 16, 8)];
        let trace = mixed_trace(10_000, 2048);
        let mut chunked = AllSizesLruEngine::new(&configs).unwrap();
        for chunk in trace.chunks(97) {
            chunked.access_run(chunk);
        }
        let mut one = AllSizesLruEngine::new(&configs).unwrap();
        for r in &trace {
            one.access(r.address(), r.kind());
        }
        assert_eq!(chunked.metrics(), one.metrics());
    }

    #[test]
    fn error_display_is_nonempty() {
        let errs = [
            MultiSimError::NoConfigs,
            MultiSimError::TooManyConfigs { given: 9 },
            MultiSimError::Unsupported {
                config: cfg(64, 8, 4),
                why: "test",
            },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
