//! Split instruction/data caches — one of the "further studies" the paper
//! calls out in §3.1 ("Further studies should look at partitioning
//! instruction and data caches").
//!
//! A [`SplitCache`] routes instruction fetches to one sub-block cache and
//! data accesses to another, and aggregates their metrics so split designs
//! can be compared against unified ones at equal total net size.

use occache_trace::{AccessKind, Address};

use crate::cache::{AccessOutcome, SubBlockCache};
use crate::config::CacheConfig;

/// A pair of caches partitioned by access kind.
///
/// ```
/// use occache_core::{CacheConfig, SplitCache};
/// use occache_trace::{AccessKind, Address};
///
/// let half = CacheConfig::builder()
///     .net_size(512)
///     .block_size(16)
///     .sub_block_size(8)
///     .word_size(2)
///     .build()?;
/// let mut split = SplitCache::new(half, half);
/// split.access(Address::new(0x100), AccessKind::InstrFetch);
/// split.access(Address::new(0x8000), AccessKind::DataRead);
/// assert_eq!(split.icache().metrics().accesses(), 1);
/// assert_eq!(split.dcache().metrics().accesses(), 1);
/// assert_eq!(split.accesses(), 2);
/// # Ok::<(), occache_core::ConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SplitCache {
    icache: SubBlockCache,
    dcache: SubBlockCache,
}

impl SplitCache {
    /// Creates a split cache from the two halves' configurations.
    pub fn new(instr: CacheConfig, data: CacheConfig) -> Self {
        SplitCache {
            icache: SubBlockCache::new(instr),
            dcache: SubBlockCache::new(data),
        }
    }

    /// The instruction cache.
    pub fn icache(&self) -> &SubBlockCache {
        &self.icache
    }

    /// The data cache.
    pub fn dcache(&self) -> &SubBlockCache {
        &self.dcache
    }

    /// Routes one reference to the appropriate half.
    pub fn access(&mut self, addr: Address, kind: AccessKind) -> AccessOutcome {
        if kind.is_data() {
            self.dcache.access(addr, kind)
        } else {
            self.icache.access(addr, kind)
        }
    }

    /// Runs an entire reference sequence.
    pub fn run<I>(&mut self, refs: I)
    where
        I: IntoIterator<Item = occache_trace::MemRef>,
    {
        for r in refs {
            self.access(r.address(), r.kind());
        }
    }

    /// Combined counted accesses.
    pub fn accesses(&self) -> u64 {
        self.icache.metrics().accesses() + self.dcache.metrics().accesses()
    }

    /// Combined counted misses.
    pub fn misses(&self) -> u64 {
        self.icache.metrics().misses() + self.dcache.metrics().misses()
    }

    /// Combined miss ratio.
    pub fn miss_ratio(&self) -> f64 {
        let accesses = self.accesses();
        if accesses == 0 {
            0.0
        } else {
            self.misses() as f64 / accesses as f64
        }
    }

    /// Combined traffic ratio. Both halves must share a word size, which
    /// holds for any same-architecture pairing.
    pub fn traffic_ratio(&self) -> f64 {
        let word = self.icache.config().word_size();
        debug_assert_eq!(word, self.dcache.config().word_size());
        let bytes = self.icache.metrics().fetch_bytes() + self.dcache.metrics().fetch_bytes();
        let denom = self.accesses() * word;
        if denom == 0 {
            0.0
        } else {
            bytes as f64 / denom as f64
        }
    }

    /// Zeroes both halves' metrics, keeping contents (warm-start).
    pub fn reset_metrics(&mut self) {
        self.icache.reset_metrics();
        self.dcache.reset_metrics();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use occache_trace::MemRef;

    fn half() -> CacheConfig {
        CacheConfig::builder()
            .net_size(128)
            .block_size(8)
            .sub_block_size(4)
            .word_size(2)
            .build()
            .unwrap()
    }

    #[test]
    fn routes_by_kind() {
        let mut s = SplitCache::new(half(), half());
        s.access(Address::new(0), AccessKind::InstrFetch);
        s.access(Address::new(0), AccessKind::DataRead);
        s.access(Address::new(0), AccessKind::DataWrite);
        assert_eq!(s.icache().metrics().accesses(), 1);
        assert_eq!(s.dcache().metrics().accesses(), 1);
        assert_eq!(s.dcache().metrics().write_accesses(), 1);
    }

    #[test]
    fn no_cross_interference() {
        let mut s = SplitCache::new(half(), half());
        // Instruction at address A does not warm the D-cache for address A.
        s.access(Address::new(0x40), AccessKind::InstrFetch);
        let outcome = s.access(Address::new(0x40), AccessKind::DataRead);
        assert!(outcome.is_miss());
    }

    #[test]
    fn combined_metrics_sum_halves() {
        let mut s = SplitCache::new(half(), half());
        s.run(vec![
            MemRef::ifetch(0),
            MemRef::ifetch(0),
            MemRef::read(0x100),
            MemRef::read(0x200),
        ]);
        assert_eq!(s.accesses(), 4);
        assert_eq!(s.misses(), 3);
        assert!((s.miss_ratio() - 0.75).abs() < 1e-12);
        // Three misses × 4-byte sub-blocks over 4 × 2-byte words.
        assert!((s.traffic_ratio() - 12.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn reset_metrics_keeps_contents() {
        let mut s = SplitCache::new(half(), half());
        s.access(Address::new(0), AccessKind::InstrFetch);
        s.reset_metrics();
        assert_eq!(s.accesses(), 0);
        let outcome = s.access(Address::new(0), AccessKind::InstrFetch);
        assert_eq!(outcome, AccessOutcome::Hit);
    }

    #[test]
    fn empty_split_cache_has_zero_ratios() {
        let s = SplitCache::new(half(), half());
        assert_eq!(s.miss_ratio(), 0.0);
        assert_eq!(s.traffic_ratio(), 0.0);
    }
}
