//! Shared-bus contention: the paper's motivating scenario.
//!
//! §1 and §3.2 motivate the traffic ratio with bus-limited systems —
//! "this problem is particularly acute if the bus is to be shared among
//! two or more microprocessors". This module provides the standard
//! back-of-envelope model for that scenario: each processor offers bus
//! work in proportion to its traffic ratio; the bus saturates at
//! utilisation 1; queueing delay grows as utilisation approaches 1
//! (M/M/1 approximation, the classic first-order sizing model).

/// A bus shared by identical cached processors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SharedBus {
    /// Fraction of a single *cacheless* processor's time the bus would be
    /// busy serving it (offered load per processor before caching).
    /// 1.0 means one cacheless processor saturates the bus exactly.
    pub uncached_demand: f64,
}

impl SharedBus {
    /// Creates a bus model.
    ///
    /// # Panics
    ///
    /// Panics unless `uncached_demand` is positive.
    pub fn new(uncached_demand: f64) -> Self {
        assert!(uncached_demand > 0.0, "demand must be positive");
        SharedBus { uncached_demand }
    }

    /// Bus utilisation with `processors` processors each reduced to
    /// `traffic_ratio` of the cacheless demand. May exceed 1 — that means
    /// the configuration saturates.
    pub fn utilization(&self, processors: u32, traffic_ratio: f64) -> f64 {
        assert!(traffic_ratio >= 0.0, "traffic ratio must be nonnegative");
        processors as f64 * self.uncached_demand * traffic_ratio
    }

    /// Whether the configuration keeps the bus below saturation.
    pub fn is_feasible(&self, processors: u32, traffic_ratio: f64) -> bool {
        self.utilization(processors, traffic_ratio) < 1.0
    }

    /// Largest processor count that keeps utilisation strictly below
    /// `target` (e.g. 0.7 for a comfortably-provisioned bus).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < target <= 1`.
    pub fn max_processors(&self, traffic_ratio: f64, target: f64) -> u32 {
        assert!(target > 0.0 && target <= 1.0, "target out of (0, 1]");
        if traffic_ratio <= 0.0 {
            return u32::MAX;
        }
        let per_processor = self.uncached_demand * traffic_ratio;
        // Largest n with n * per_processor < target.
        let n = (target / per_processor).ceil() - 1.0;
        if n < 0.0 {
            0
        } else {
            n as u32
        }
    }

    /// Mean queueing-delay multiplier at the given load (M/M/1:
    /// `1 / (1 - utilisation)`); `None` at or beyond saturation.
    pub fn delay_factor(&self, processors: u32, traffic_ratio: f64) -> Option<f64> {
        let rho = self.utilization(processors, traffic_ratio);
        (rho < 1.0).then(|| 1.0 / (1.0 - rho))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_scales_linearly() {
        let bus = SharedBus::new(0.5);
        assert!((bus.utilization(1, 0.2) - 0.1).abs() < 1e-12);
        assert!((bus.utilization(4, 0.2) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn feasibility_threshold() {
        let bus = SharedBus::new(1.0);
        // A cacheless processor exactly saturates the bus.
        assert!(!bus.is_feasible(1, 1.0));
        // The paper's minimum cache (traffic ratio ~0.66) makes one
        // processor feasible.
        assert!(bus.is_feasible(1, 0.66));
    }

    #[test]
    fn caches_multiply_the_processor_count() {
        // §4.2.1: a 16,8 1024-byte PDP-11 cache has traffic ratio 0.206 —
        // five times more processors than the 1.0 cacheless baseline.
        let bus = SharedBus::new(1.0);
        assert_eq!(bus.max_processors(1.0, 0.99), 0);
        let with_cache = bus.max_processors(0.206, 0.99);
        assert_eq!(with_cache, 4);
        // A sub-block size of 2 bytes (traffic 0.190) does not change the
        // integer count here, but 0.10 would.
        assert_eq!(bus.max_processors(0.10, 0.99), 9);
    }

    #[test]
    fn delay_factor_blows_up_near_saturation() {
        let bus = SharedBus::new(0.25);
        let light = bus.delay_factor(1, 0.2).unwrap();
        let heavy = bus.delay_factor(15, 0.25).unwrap();
        assert!(light < 1.1);
        assert!(heavy > 15.0, "{heavy}");
        assert_eq!(bus.delay_factor(16, 0.25), None, "saturated");
    }

    #[test]
    fn zero_traffic_is_unbounded() {
        let bus = SharedBus::new(1.0);
        assert_eq!(bus.max_processors(0.0, 0.9), u32::MAX);
    }

    #[test]
    #[should_panic(expected = "demand must be positive")]
    fn rejects_nonpositive_demand() {
        let _ = SharedBus::new(0.0);
    }

    #[test]
    #[should_panic(expected = "target out of")]
    fn rejects_bad_target() {
        SharedBus::new(1.0).max_processors(0.5, 1.5);
    }
}
