//! Bus-cost models (§4.3).
//!
//! The paper observes that with nibble/page-mode memories or transactional
//! busses, fetching `w` sequential words costs `a + b*w` rather than `w`.
//! With unit cost for a single word (`a + b = 1`) and Bursky's 160 ns / 55 ns
//! timings approximated as 3:1, the paper uses `cost(w) = 1 + (w-1)/3`.

/// A model of the cost of one memory transaction transferring `w` words.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum BusModel {
    /// Cost proportional to words moved (`cost(w) = w`): the conventional
    /// microprocessor bus all non-scaled traffic ratios assume.
    #[default]
    Linear,
    /// Affine cost `overhead + per_word * w`.
    ///
    /// Use [`BusModel::paper_nibble`] for the paper's calibration.
    Affine {
        /// Fixed cost per transaction (`a`).
        overhead: f64,
        /// Marginal cost per word (`b`).
        per_word: f64,
    },
}

impl BusModel {
    /// The paper's nibble-mode calibration: `cost(w) = 1 + (w-1)/3`,
    /// i.e. `a = 2/3`, `b = 1/3` (first word 3× the cost of subsequent
    /// words, unit cost for a single-word transfer).
    pub const fn paper_nibble() -> BusModel {
        BusModel::Affine {
            overhead: 2.0 / 3.0,
            per_word: 1.0 / 3.0,
        }
    }

    /// Builds an affine model from device timings: access time for the
    /// first word and for each subsequent word, normalised so a single-word
    /// transfer costs 1. Bursky's typical RAM (`first = 160 ns`,
    /// `subsequent = 55 ns`) gives approximately the paper's 3:1 model.
    ///
    /// # Panics
    ///
    /// Panics if either timing is not positive.
    pub fn from_timings(first: f64, subsequent: f64) -> BusModel {
        assert!(first > 0.0 && subsequent > 0.0, "timings must be positive");
        BusModel::Affine {
            overhead: (first - subsequent) / first,
            per_word: subsequent / first,
        }
    }

    /// Cost of one transaction transferring `words` sequential words.
    pub fn transfer_cost(&self, words: u64) -> f64 {
        match *self {
            BusModel::Linear => words as f64,
            BusModel::Affine { overhead, per_word } => overhead + per_word * words as f64,
        }
    }

    /// Total cost of `transactions` transactions moving `words` words in
    /// aggregate. Exact for any affine model because
    /// `Σ (a + b·wᵢ) = a·T + b·ΣWᵢ`.
    pub fn total_cost(&self, transactions: u64, words: u64) -> f64 {
        match *self {
            BusModel::Linear => words as f64,
            BusModel::Affine { overhead, per_word } => {
                overhead * transactions as f64 + per_word * words as f64
            }
        }
    }

    /// The paper's scaling factor for a fixed transfer size of `w` words:
    /// `cost(w) / w`. Multiplying a standard traffic ratio by this factor
    /// yields the scaled traffic ratio when every transaction moves
    /// exactly `w` words (demand fetch).
    pub fn scale_factor(&self, words: u64) -> f64 {
        assert!(words > 0, "transfer size must be positive");
        self.transfer_cost(words) / words as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_cost_is_words() {
        assert_eq!(BusModel::Linear.transfer_cost(1), 1.0);
        assert_eq!(BusModel::Linear.transfer_cost(8), 8.0);
        assert_eq!(BusModel::Linear.total_cost(3, 24), 24.0);
    }

    #[test]
    fn paper_nibble_matches_formula() {
        let bus = BusModel::paper_nibble();
        for w in 1..=32u64 {
            let expected = 1.0 + (w as f64 - 1.0) / 3.0;
            assert!((bus.transfer_cost(w) - expected).abs() < 1e-12, "w = {w}");
        }
    }

    #[test]
    fn paper_scale_factors_match_table_7() {
        // Table 7's nibble columns are traffic × (1 + (w-1)/3)/w; for
        // w = 4 words (8-byte sub-blocks, 2-byte words) the factor is 1/2.
        let bus = BusModel::paper_nibble();
        assert!((bus.scale_factor(1) - 1.0).abs() < 1e-12);
        assert!((bus.scale_factor(2) - 2.0 / 3.0).abs() < 1e-12);
        assert!((bus.scale_factor(4) - 0.5).abs() < 1e-12);
        assert!((bus.scale_factor(16) - 6.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn from_timings_normalises_first_word_to_unit() {
        let bus = BusModel::from_timings(160.0, 55.0);
        assert!((bus.transfer_cost(1) - 1.0).abs() < 1e-12);
        // Two words: (160 + 55)/160.
        assert!((bus.transfer_cost(2) - 215.0 / 160.0).abs() < 1e-12);
    }

    #[test]
    fn from_timings_approximates_paper_model() {
        let bursky = BusModel::from_timings(160.0, 55.0);
        let paper = BusModel::paper_nibble();
        for w in 1..=16u64 {
            let diff = (bursky.transfer_cost(w) - paper.transfer_cost(w)).abs();
            assert!(diff / paper.transfer_cost(w) < 0.07, "w = {w}: {diff}");
        }
    }

    #[test]
    fn total_cost_is_sum_of_transactions() {
        let bus = BusModel::paper_nibble();
        // Three transactions of 4 words each.
        let individual = 3.0 * bus.transfer_cost(4);
        assert!((bus.total_cost(3, 12) - individual).abs() < 1e-12);
    }
}
