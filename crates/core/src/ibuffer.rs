//! Instruction buffers (§2.2): the design point *between* no cache and a
//! minimum cache.
//!
//! An instruction buffer holds one or more runs of consecutive
//! instruction blocks and feeds the fetch stage. The paper distinguishes
//! two kinds:
//!
//! * buffers that do **not** recognise branch targets (DEC VAX-11/780:
//!   eight contiguous bytes) — they "reduce latency for consecutive
//!   instruction accesses, they do not reduce the number of bytes required
//!   from the memory system";
//! * buffers that **do** (CRAY-1: four 64-instruction buffers) — these can
//!   hold entire loops and therefore also cut memory traffic.
//!
//! [`InstructionBuffer`] models both, parameterised by buffer count,
//! buffer length, and target recognition; the metrics separate *stall
//! ratio* (latency events) from *traffic* (bytes fetched), because for
//! buffers the two diverge — which is exactly the paper's point.

use occache_trace::Address;

/// One contiguous window of buffered instruction blocks.
#[derive(Debug, Clone, Copy)]
struct Window {
    /// First buffered block (inclusive); `None` when empty.
    start: Option<u64>,
    /// Number of valid blocks from `start`.
    len: u64,
}

/// A set of sequential instruction buffers.
#[derive(Debug, Clone)]
pub struct InstructionBuffer {
    block_size: u64,
    capacity_blocks: u64,
    recognize_targets: bool,
    windows: Vec<Window>,
    /// LRU order over windows, most recent first.
    order: Vec<usize>,
    fetches: u64,
    stalls: u64,
    bytes_fetched: u64,
}

impl InstructionBuffer {
    /// Creates `buffers` buffers, each holding `capacity_blocks`
    /// consecutive blocks of `block_size` bytes.
    ///
    /// `recognize_targets = false` models the VAX-11/780 style (a branch
    /// always refills, even to a buffered address); `true` models the
    /// CRAY-1 style (a branch whose target is buffered hits, so whole
    /// loops execute out of the buffers).
    ///
    /// # Panics
    ///
    /// Panics if `buffers` or `capacity_blocks` is zero, or `block_size`
    /// is not a power of two.
    pub fn new(
        buffers: usize,
        capacity_blocks: u64,
        block_size: u64,
        recognize_targets: bool,
    ) -> Self {
        assert!(buffers > 0, "need at least one buffer");
        assert!(capacity_blocks > 0, "buffers must hold at least one block");
        assert!(
            block_size.is_power_of_two(),
            "block size must be a power of two"
        );
        InstructionBuffer {
            block_size,
            capacity_blocks,
            recognize_targets,
            windows: vec![
                Window {
                    start: None,
                    len: 0
                };
                buffers
            ],
            order: (0..buffers).collect(),
            fetches: 0,
            stalls: 0,
            bytes_fetched: 0,
        }
    }

    /// The VAX-11/780 instruction buffer: eight contiguous bytes, no
    /// branch-target recognition.
    pub fn vax780() -> Self {
        InstructionBuffer::new(1, 1, 8, false)
    }

    /// The CRAY-1 arrangement scaled to the study: four buffers of
    /// `capacity_blocks` blocks with target recognition.
    pub fn cray_style(capacity_blocks: u64, block_size: u64) -> Self {
        InstructionBuffer::new(4, capacity_blocks, block_size, true)
    }

    fn window_containing(&self, block: u64) -> Option<usize> {
        self.windows.iter().position(|w| match w.start {
            Some(start) => block >= start && block < start + w.len,
            None => false,
        })
    }

    fn promote(&mut self, idx: usize) {
        let pos = self
            .order
            .iter()
            .position(|&i| i == idx)
            .expect("window index is in order list");
        let entry = self.order.remove(pos);
        self.order.insert(0, entry);
    }

    /// Presents one instruction fetch. Returns `true` when the fetch was
    /// served without a stall.
    pub fn fetch(&mut self, addr: Address) -> bool {
        let block = addr.block_number(self.block_size);
        self.fetches += 1;

        // Already buffered?
        if let Some(idx) = self.window_containing(block) {
            let start = self.windows[idx].start.expect("window is nonempty");
            let is_newest = start + self.windows[idx].len - 1 == block;
            if self.recognize_targets || is_newest {
                self.promote(idx);
                return true;
            }
            // Without target recognition a non-sequential re-reference
            // refills below, as if the data were absent.
        }

        // Sequential continuation of the most recent window?
        let mru = self.order[0];
        if let Some(start) = self.windows[mru].start {
            if block == start + self.windows[mru].len {
                // Streamed in ahead of the processor: no stall, but the
                // bytes still cross the pins.
                self.bytes_fetched += self.block_size;
                let w = &mut self.windows[mru];
                if w.len == self.capacity_blocks {
                    w.start = Some(start + 1);
                } else {
                    w.len += 1;
                }
                return true;
            }
        }

        // Branch out: refill the least-recently-used window.
        self.stalls += 1;
        self.bytes_fetched += self.block_size;
        let victim = *self.order.last().expect("at least one window");
        self.windows[victim] = Window {
            start: Some(block),
            len: 1,
        };
        self.promote(victim);
        false
    }

    /// Total fetches presented.
    pub fn fetches(&self) -> u64 {
        self.fetches
    }

    /// Fraction of fetches that stalled (the latency metric).
    pub fn stall_ratio(&self) -> f64 {
        if self.fetches == 0 {
            0.0
        } else {
            self.stalls as f64 / self.fetches as f64
        }
    }

    /// Bytes fetched from memory.
    pub fn bytes_fetched(&self) -> u64 {
        self.bytes_fetched
    }

    /// Traffic ratio against a cacheless system moving `word_size` bytes
    /// per fetch.
    pub fn traffic_ratio(&self, word_size: u64) -> f64 {
        if self.fetches == 0 {
            0.0
        } else {
            self.bytes_fetched as f64 / (self.fetches * word_size) as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(buffer: &mut InstructionBuffer, addrs: impl IntoIterator<Item = u64>) {
        for a in addrs {
            buffer.fetch(Address::new(a));
        }
    }

    #[test]
    fn sequential_stream_never_stalls_after_first() {
        let mut b = InstructionBuffer::vax780();
        run(&mut b, (0..100).map(|i| i * 2));
        assert_eq!(b.stalls, 1, "only the initial fill stalls");
    }

    #[test]
    fn sequential_stream_still_moves_every_byte() {
        // §2.2: buffers without target recognition do not cut traffic.
        let mut b = InstructionBuffer::vax780();
        run(&mut b, (0..400).map(|i| i * 2));
        // 400 2-byte fetches = 100 8-byte blocks.
        assert_eq!(b.bytes_fetched(), 100 * 8);
        assert!((b.traffic_ratio(2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn vax_buffer_refetches_loops() {
        let mut b = InstructionBuffer::vax780();
        // An 8-instruction loop spanning two blocks, 50 laps: the
        // backward branch leaves the one-block window every lap.
        for _ in 0..50 {
            run(&mut b, (0..8).map(|i| i * 2));
        }
        // Every lap stalls at the loop head and re-fetches both blocks.
        assert!(b.stall_ratio() > 0.1, "{}", b.stall_ratio());
        assert!(b.traffic_ratio(2) > 0.2, "{}", b.traffic_ratio(2));
    }

    #[test]
    fn cray_buffer_captures_loops() {
        let mut b = InstructionBuffer::cray_style(16, 8);
        // A loop spanning 4 blocks, 50 laps.
        for _ in 0..50 {
            run(&mut b, (0..16).map(|i| i * 2));
        }
        assert!(b.stall_ratio() < 0.01, "{}", b.stall_ratio());
        // Only the first lap moved bytes.
        assert_eq!(b.bytes_fetched(), 4 * 8);
    }

    #[test]
    fn cray_holds_multiple_streams() {
        let mut b = InstructionBuffer::cray_style(8, 8);
        // Alternate between two distant loops; four buffers hold both.
        for _ in 0..20 {
            run(&mut b, (0..8).map(|i| 0x1000 + i * 2));
            run(&mut b, (0..8).map(|i| 0x8000 + i * 2));
        }
        assert!(b.stall_ratio() < 0.05, "{}", b.stall_ratio());
    }

    #[test]
    fn lru_evicts_oldest_window() {
        let mut b = InstructionBuffer::new(2, 4, 8, true);
        run(&mut b, [0x1000u64]);
        run(&mut b, [0x2000u64]);
        run(&mut b, [0x3000u64]); // evicts the 0x1000 window
        assert!(b.window_containing(0x2000 / 8).is_some());
        assert!(b.window_containing(0x1000 / 8).is_none());
    }

    #[test]
    fn sliding_window_caps_at_capacity() {
        let mut b = InstructionBuffer::new(1, 4, 8, true);
        run(&mut b, (0..100).map(|i| i * 8)); // one fetch per block
                                              // Window slid: only the last 4 blocks are held.
        assert!(b.window_containing(99).is_some());
        assert!(b.window_containing(94).is_none());
    }

    #[test]
    fn empty_buffer_reports_zeroes() {
        let b = InstructionBuffer::vax780();
        assert_eq!(b.stall_ratio(), 0.0);
        assert_eq!(b.traffic_ratio(2), 0.0);
        assert_eq!(b.fetches(), 0);
    }
}
