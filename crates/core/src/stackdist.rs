//! Single-pass LRU stack-distance analysis (Mattson et al., 1970).
//!
//! The paper chose LRU replacement partly because "LRU permits more
//! efficient simulation" [16] — one pass over a trace yields the miss ratio
//! of *every* fully-associative LRU capacity at once, via the stack-distance
//! histogram. We use it to cross-validate the direct simulator and to sweep
//! cache sizes cheaply.
//!
//! The miss-count sketch here generalizes to a full-fidelity engine in
//! [`multisim`](crate::multisim): set-aware, sub-block-aware, and
//! bit-identical to the direct simulator, which is what the experiment
//! sweeps actually run on.

use std::collections::HashMap;

use occache_trace::Address;

/// Computes the LRU stack-distance histogram of a block-reference stream.
///
/// Distances are in *blocks*: an access at stack distance `d` hits in every
/// fully-associative LRU cache holding more than `d` blocks.
///
/// ```
/// use occache_core::LruStackAnalyzer;
/// use occache_trace::Address;
///
/// let mut an = LruStackAnalyzer::new(16);
/// for addr in [0u64, 16, 0, 32, 16] {
///     an.access(Address::new(addr));
/// }
/// // Capacity 1: only repeats of the immediately previous block hit.
/// assert_eq!(an.misses_at_capacity(1), 5);
/// // Capacity 2: the "0, 16, 0" re-reference hits; the final "16" is at
/// // stack distance 2 and still misses.
/// assert_eq!(an.misses_at_capacity(2), 4);
/// assert_eq!(an.misses_at_capacity(3), 3);
/// ```
#[derive(Debug, Clone)]
pub struct LruStackAnalyzer {
    block_size: u64,
    stack: Vec<u64>,
    histogram: Vec<u64>,
    cold_misses: u64,
    total: u64,
    // Block -> stack position would be invalidated by every rotation, so we
    // scan; a map of block -> last-seen keeps the scan bounded in practice.
    resident: HashMap<u64, ()>,
}

impl LruStackAnalyzer {
    /// Creates an analyzer for the given block size in bytes.
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is not a power of two.
    pub fn new(block_size: u64) -> Self {
        assert!(
            block_size.is_power_of_two(),
            "block size must be a power of two"
        );
        LruStackAnalyzer {
            block_size,
            stack: Vec::new(),
            histogram: Vec::new(),
            cold_misses: 0,
            total: 0,
            resident: HashMap::new(),
        }
    }

    /// Processes one reference.
    pub fn access(&mut self, addr: Address) {
        let block = addr.block_number(self.block_size);
        self.total += 1;
        if self.resident.contains_key(&block) {
            let pos = self
                .stack
                .iter()
                .position(|&b| b == block)
                .expect("resident block is on the stack");
            if pos >= self.histogram.len() {
                self.histogram.resize(pos + 1, 0);
            }
            self.histogram[pos] += 1;
            self.stack.remove(pos);
        } else {
            self.cold_misses += 1;
            self.resident.insert(block, ());
        }
        self.stack.insert(0, block);
    }

    /// Total references processed.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Cold (first-touch) misses.
    pub fn cold_misses(&self) -> u64 {
        self.cold_misses
    }

    /// Number of distinct blocks touched.
    pub fn distinct_blocks(&self) -> usize {
        self.stack.len()
    }

    /// Misses a fully-associative LRU cache of `capacity_blocks` blocks
    /// would take on the processed stream.
    pub fn misses_at_capacity(&self, capacity_blocks: usize) -> u64 {
        let far: u64 = self.histogram.iter().skip(capacity_blocks).sum();
        far + self.cold_misses
    }

    /// Miss ratio at a given capacity (0 if no references processed).
    pub fn miss_ratio_at_capacity(&self, capacity_blocks: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.misses_at_capacity(capacity_blocks) as f64 / self.total as f64
        }
    }

    /// Miss-ratio curve over a list of capacities (in blocks).
    pub fn miss_ratio_curve(&self, capacities: &[usize]) -> Vec<(usize, f64)> {
        capacities
            .iter()
            .map(|&c| (c, self.miss_ratio_at_capacity(c)))
            .collect()
    }
}

/// Set-associative single-pass LRU analysis: one LRU stack per set, so a
/// single pass yields the miss count of *every associativity* for a fixed
/// set count (the set-associative generalisation of Mattson's method).
///
/// ```
/// use occache_core::SetAssocLruAnalyzer;
/// use occache_trace::Address;
///
/// let mut an = SetAssocLruAnalyzer::new(16, 4);
/// for addr in [0u64, 64, 0, 128, 64] {
///     an.access(Address::new(addr));
/// }
/// assert!(an.misses_at_ways(1) >= an.misses_at_ways(2));
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocLruAnalyzer {
    block_size: u64,
    num_sets: u64,
    stacks: Vec<Vec<u64>>,
    histogram: Vec<u64>,
    cold_misses: u64,
    total: u64,
}

impl SetAssocLruAnalyzer {
    /// Creates an analyzer for `num_sets` sets of `block_size`-byte blocks.
    ///
    /// # Panics
    ///
    /// Panics unless both arguments are powers of two.
    pub fn new(block_size: u64, num_sets: u64) -> Self {
        assert!(
            block_size.is_power_of_two(),
            "block size must be a power of two"
        );
        assert!(
            num_sets.is_power_of_two(),
            "set count must be a power of two"
        );
        SetAssocLruAnalyzer {
            block_size,
            num_sets,
            stacks: vec![Vec::new(); num_sets as usize],
            histogram: Vec::new(),
            cold_misses: 0,
            total: 0,
        }
    }

    /// Processes one reference.
    pub fn access(&mut self, addr: Address) {
        let block = addr.block_number(self.block_size);
        let set = (block % self.num_sets) as usize;
        let stack = &mut self.stacks[set];
        self.total += 1;
        match stack.iter().position(|&b| b == block) {
            Some(pos) => {
                if pos >= self.histogram.len() {
                    self.histogram.resize(pos + 1, 0);
                }
                self.histogram[pos] += 1;
                stack.remove(pos);
            }
            None => self.cold_misses += 1,
        }
        stack.insert(0, block);
    }

    /// Total references processed.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Misses an LRU cache with this analyzer's set count and `ways`
    /// blocks per set would take.
    pub fn misses_at_ways(&self, ways: usize) -> u64 {
        self.cold_misses + self.histogram.iter().skip(ways).sum::<u64>()
    }

    /// Miss ratio at a given associativity.
    pub fn miss_ratio_at_ways(&self, ways: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.misses_at_ways(ways) as f64 / self.total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(addrs: &[u64], block: u64) -> LruStackAnalyzer {
        let mut an = LruStackAnalyzer::new(block);
        for &a in addrs {
            an.access(Address::new(a));
        }
        an
    }

    #[test]
    fn cold_misses_count_distinct_blocks() {
        let an = run(&[0, 8, 16, 0, 8], 8);
        assert_eq!(an.cold_misses(), 3);
        assert_eq!(an.distinct_blocks(), 3);
    }

    #[test]
    fn capacity_monotonicity() {
        let an = run(&[0, 8, 16, 24, 0, 8, 16, 24, 0], 8);
        let mut prev = u64::MAX;
        for cap in 1..8 {
            let m = an.misses_at_capacity(cap);
            assert!(m <= prev, "capacity {cap}");
            prev = m;
        }
    }

    #[test]
    fn infinite_capacity_leaves_only_cold_misses() {
        let an = run(&[0, 8, 0, 8, 16, 0], 8);
        assert_eq!(an.misses_at_capacity(1000), an.cold_misses());
    }

    #[test]
    fn block_granularity_merges_addresses() {
        // Two addresses in one 16-byte block are one block reference.
        let an = run(&[0, 8], 16);
        assert_eq!(an.cold_misses(), 1);
        assert_eq!(an.misses_at_capacity(1), 1);
    }

    #[test]
    fn cyclic_pattern_thrashes_below_working_set() {
        // Cycle over 4 blocks: LRU with capacity < 4 misses every time.
        let addrs: Vec<u64> = (0..40).map(|i| (i % 4) * 32).collect();
        let an = run(&addrs, 32);
        assert_eq!(an.misses_at_capacity(3), 40, "LRU worst case");
        assert_eq!(an.misses_at_capacity(4), 4, "fits: only cold misses");
    }

    #[test]
    fn miss_ratio_curve_is_consistent() {
        let addrs: Vec<u64> = (0..100).map(|i| (i * 13) % 16 * 8).collect();
        let an = run(&addrs, 8);
        for (cap, mr) in an.miss_ratio_curve(&[1, 2, 4, 8, 16]) {
            assert!((mr - an.miss_ratio_at_capacity(cap)).abs() < 1e-12);
            assert!((0.0..=1.0).contains(&mr));
        }
    }

    #[test]
    fn set_assoc_single_set_equals_fully_associative() {
        let addrs: Vec<u64> = (0..200).map(|i| (i * 37) % 64 * 8).collect();
        let mut full = LruStackAnalyzer::new(8);
        let mut setassoc = SetAssocLruAnalyzer::new(8, 1);
        for &a in &addrs {
            full.access(Address::new(a));
            setassoc.access(Address::new(a));
        }
        for ways in [1usize, 2, 4, 8, 16] {
            assert_eq!(full.misses_at_capacity(ways), setassoc.misses_at_ways(ways));
        }
    }

    #[test]
    fn set_assoc_monotone_in_ways() {
        let addrs: Vec<u64> = (0..500).map(|i| (i * 101) % 512 * 4).collect();
        let mut an = SetAssocLruAnalyzer::new(16, 8);
        for &a in &addrs {
            an.access(Address::new(a));
        }
        let mut previous = u64::MAX;
        for ways in 1..16 {
            let m = an.misses_at_ways(ways);
            assert!(m <= previous);
            previous = m;
        }
        assert!(an.miss_ratio_at_ways(1) <= 1.0);
    }

    #[test]
    fn set_assoc_conflicts_exceed_fully_associative() {
        // Blocks that all collide in one set: a 2-set analyzer sees them
        // thrash; the fully associative analyzer of equal capacity hits.
        let addrs: Vec<u64> = (0..40).map(|i| (i % 3) * 32).collect(); // blocks 0,2,4 -> set 0 of 2
        let mut setassoc = SetAssocLruAnalyzer::new(16, 2);
        let mut full = LruStackAnalyzer::new(16);
        for &a in &addrs {
            setassoc.access(Address::new(a));
            full.access(Address::new(a));
        }
        // Capacity 4 blocks total: fully associative holds all 3 hot
        // blocks; 2-way x 2 sets maps all three into set 0 and thrashes.
        assert!(setassoc.misses_at_ways(2) > full.misses_at_capacity(4));
    }
}
