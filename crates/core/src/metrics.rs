//! Performance metrics: miss ratio, traffic ratio, and the raw counts the
//! bus-cost models need.
//!
//! Following the paper (§3.1), the headline ratios count **only data reads
//! and instruction fetches**; data writes update cache state but are tallied
//! separately so write-policy effects stay out of the comparisons. The
//! warm-start discipline (§4.2.2) is supported by
//! [`Metrics::reset`][Metrics::reset] — run a warm-up prefix, reset, then
//! measure.
//!
//! Both the direct simulator and the one-pass engine
//! ([`multisim`](crate::multisim)) accumulate through the same recording
//! methods in the same per-access order, which is what makes their outputs
//! comparable with `==` rather than within a tolerance.

use crate::bus::BusModel;

/// Counters accumulated by a cache over a run.
///
/// ```
/// use occache_core::{CacheConfig, SubBlockCache};
/// use occache_trace::{AccessKind, Address};
///
/// let config = CacheConfig::builder()
///     .net_size(64)
///     .block_size(8)
///     .sub_block_size(4)
///     .word_size(4)
///     .build()?;
/// let mut cache = SubBlockCache::new(config);
/// cache.access(Address::new(0), AccessKind::DataRead);   // miss
/// cache.access(Address::new(0), AccessKind::DataRead);   // hit
/// let m = cache.metrics();
/// assert_eq!(m.accesses(), 2);
/// assert_eq!(m.misses(), 1);
/// assert_eq!(m.miss_ratio(), 0.5);
/// // Demand fetch moved one 4-byte sub-block for two 4-byte-word accesses.
/// assert_eq!(m.traffic_ratio(), 0.5);
/// # Ok::<(), occache_core::ConfigError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Metrics {
    word_size: u64,
    accesses: u64,
    misses: u64,
    fetch_bytes: u64,
    fetch_transactions: u64,
    sub_loads: u64,
    redundant_sub_loads: u64,
    prefetched_subs: u64,
    prefetch_uses: u64,
    write_accesses: u64,
    write_misses: u64,
    write_through_bytes: u64,
    write_back_bytes: u64,
    evicted_blocks: u64,
    evicted_sub_slots: u64,
    evicted_unreferenced_subs: u64,
}

/// The counters the one-pass engine actually has to accumulate per
/// configuration. Under demand fetch + write-through every other
/// `Metrics` field is a product of these (each counted miss fetches
/// exactly one sub-block, each write writes through exactly one word,
/// each eviction releases exactly `slots` sub-slots), so the engine's
/// hot path updates four numbers and the rest are reconstructed here.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct EngineCounters {
    /// Counted accesses (identical for every configuration in a slice).
    pub accesses: u64,
    /// Data writes (identical for every configuration in a slice).
    pub write_accesses: u64,
    pub misses: u64,
    pub write_misses: u64,
    pub evicted_blocks: u64,
    /// Total referenced sub-blocks across all evictions.
    pub evicted_referenced_subs: u64,
}

impl Metrics {
    pub(crate) fn new(word_size: u64) -> Self {
        Metrics {
            word_size,
            ..Metrics::default()
        }
    }

    /// Expands the engine's compact counters into full `Metrics`,
    /// bit-identical to accumulating through the recording methods:
    /// demand fetch moves one `sub_size` sub-block per counted miss,
    /// write-through moves one word per data write, and an eviction
    /// releases `slots` sub-slots of which `evicted_referenced_subs`
    /// were touched.
    pub(crate) fn from_engine(
        word_size: u64,
        sub_size: u64,
        slots: u64,
        c: EngineCounters,
    ) -> Metrics {
        Metrics {
            word_size,
            accesses: c.accesses,
            misses: c.misses,
            fetch_bytes: c.misses * sub_size,
            fetch_transactions: c.misses,
            sub_loads: c.misses,
            write_accesses: c.write_accesses,
            write_misses: c.write_misses,
            write_through_bytes: c.write_accesses * word_size,
            evicted_blocks: c.evicted_blocks,
            evicted_sub_slots: c.evicted_blocks * slots,
            evicted_unreferenced_subs: c.evicted_blocks * slots - c.evicted_referenced_subs,
            ..Metrics::default()
        }
    }

    pub(crate) fn record_access(&mut self, counted: bool, hit: bool) {
        if counted {
            self.accesses += 1;
            if !hit {
                self.misses += 1;
            }
        } else {
            self.write_accesses += 1;
            if !hit {
                self.write_misses += 1;
            }
        }
    }

    pub(crate) fn record_fetch(&mut self, counted: bool, bytes: u64, subs: u64, redundant: u64) {
        if counted && bytes > 0 {
            self.fetch_bytes += bytes;
            self.fetch_transactions += 1;
            self.sub_loads += subs;
            self.redundant_sub_loads += redundant;
        }
    }

    pub(crate) fn record_prefetch(&mut self) {
        self.prefetched_subs += 1;
    }

    pub(crate) fn record_prefetch_use(&mut self) {
        self.prefetch_uses += 1;
    }

    pub(crate) fn record_write_through(&mut self, bytes: u64) {
        self.write_through_bytes += bytes;
    }

    pub(crate) fn record_write_back(&mut self, bytes: u64) {
        self.write_back_bytes += bytes;
    }

    pub(crate) fn record_eviction(&mut self, sub_slots: u64, unreferenced: u64) {
        self.evicted_blocks += 1;
        self.evicted_sub_slots += sub_slots;
        self.evicted_unreferenced_subs += unreferenced;
    }

    /// Counted accesses (instruction fetches + data reads).
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Counted misses.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Bytes fetched from memory on behalf of counted accesses.
    pub fn fetch_bytes(&self) -> u64 {
        self.fetch_bytes
    }

    /// Number of memory fetch transactions (one per miss fill).
    pub fn fetch_transactions(&self) -> u64 {
        self.fetch_transactions
    }

    /// Sub-blocks loaded on behalf of counted accesses.
    pub fn sub_loads(&self) -> u64 {
        self.sub_loads
    }

    /// Sub-block loads that re-fetched already-resident data (only nonzero
    /// under the redundant load-forward scheme; Table 8's "few redundant
    /// loads" measurement).
    pub fn redundant_sub_loads(&self) -> u64 {
        self.redundant_sub_loads
    }

    /// Sub-blocks loaded by prefetching (all issues, including those
    /// triggered by writes — pollution bookkeeping is policy-level, while
    /// the traffic ratio stays filtered to counted accesses).
    pub fn prefetched_subs(&self) -> u64 {
        self.prefetched_subs
    }

    /// Prefetched sub-blocks later referenced before eviction.
    pub fn prefetch_uses(&self) -> u64 {
        self.prefetch_uses
    }

    /// Fraction of prefetches never used — the *pollution* §2.2 warns
    /// about, after Smith \[11\] (0 when nothing was prefetched).
    pub fn prefetch_pollution(&self) -> f64 {
        if self.prefetched_subs == 0 {
            0.0
        } else {
            1.0 - (self.prefetch_uses.min(self.prefetched_subs) as f64
                / self.prefetched_subs as f64)
        }
    }

    /// Data writes observed (excluded from the ratios).
    pub fn write_accesses(&self) -> u64 {
        self.write_accesses
    }

    /// Data writes that missed (excluded from the ratios).
    pub fn write_misses(&self) -> u64 {
        self.write_misses
    }

    /// Bytes sent to memory by write-through accounting.
    pub fn write_through_bytes(&self) -> u64 {
        self.write_through_bytes
    }

    /// Bytes flushed to memory by copy-back eviction accounting.
    pub fn write_back_bytes(&self) -> u64 {
        self.write_back_bytes
    }

    /// Blocks evicted so far.
    pub fn evicted_blocks(&self) -> u64 {
        self.evicted_blocks
    }

    /// Miss ratio: counted misses / counted accesses (0 if no accesses).
    pub fn miss_ratio(&self) -> f64 {
        ratio(self.misses, self.accesses)
    }

    /// Traffic ratio: bytes moved with the cache divided by bytes a
    /// cacheless system would move (one word per counted access).
    pub fn traffic_ratio(&self) -> f64 {
        ratio(self.fetch_bytes, self.accesses * self.word_size)
    }

    /// Traffic ratio under a bus-cost model `a + b*w` (the paper's *scaled*
    /// traffic ratio, §4.3). [`BusModel::Linear`] reproduces
    /// [`Metrics::traffic_ratio`].
    pub fn scaled_traffic_ratio(&self, bus: BusModel) -> f64 {
        // `word_size` is 0 only for `Metrics::default()`, which has no
        // recorded traffic either; guard rather than divide by zero.
        if self.word_size == 0 {
            return 0.0;
        }
        let words_fetched = self.fetch_bytes / self.word_size;
        let with_cache = bus.total_cost(self.fetch_transactions, words_fetched);
        let without_cache = self.accesses as f64 * bus.transfer_cost(1);
        if without_cache == 0.0 {
            0.0
        } else {
            with_cache / without_cache
        }
    }

    /// Fraction of sub-block slots in evicted blocks that were never
    /// referenced while the block was resident (the paper measures 72% for
    /// the 360/85 sector cache).
    pub fn unreferenced_sub_block_fraction(&self) -> f64 {
        ratio(self.evicted_unreferenced_subs, self.evicted_sub_slots)
    }

    /// Resets all counters (the warm-start discipline), keeping cache
    /// contents intact.
    pub fn reset(&mut self) {
        *self = Metrics::new(self.word_size);
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_are_zero_on_empty_metrics() {
        let m = Metrics::new(2);
        assert_eq!(m.miss_ratio(), 0.0);
        assert_eq!(m.traffic_ratio(), 0.0);
        assert_eq!(m.scaled_traffic_ratio(BusModel::paper_nibble()), 0.0);
        assert_eq!(m.unreferenced_sub_block_fraction(), 0.0);
    }

    #[test]
    fn default_metrics_do_not_divide_by_zero() {
        // `Metrics::default()` has word_size 0; every ratio must still be
        // finite (0), never a panic or NaN.
        let m = Metrics::default();
        assert_eq!(m.miss_ratio(), 0.0);
        assert_eq!(m.traffic_ratio(), 0.0);
        assert_eq!(m.scaled_traffic_ratio(BusModel::paper_nibble()), 0.0);
        assert_eq!(m.unreferenced_sub_block_fraction(), 0.0);
        assert_eq!(m.prefetch_pollution(), 0.0);
    }

    #[test]
    fn counted_and_uncounted_accesses_separate() {
        let mut m = Metrics::new(2);
        m.record_access(true, false);
        m.record_access(true, true);
        m.record_access(false, false);
        assert_eq!(m.accesses(), 2);
        assert_eq!(m.misses(), 1);
        assert_eq!(m.write_accesses(), 1);
        assert_eq!(m.write_misses(), 1);
    }

    #[test]
    fn traffic_ratio_uses_word_denominator() {
        let mut m = Metrics::new(2);
        for _ in 0..10 {
            m.record_access(true, true);
        }
        m.record_access(true, false);
        m.record_fetch(true, 8, 1, 0);
        // 8 bytes fetched over 11 accesses of 2 bytes each.
        assert!((m.traffic_ratio() - 8.0 / 22.0).abs() < 1e-12);
    }

    #[test]
    fn uncounted_fetches_do_not_add_traffic() {
        let mut m = Metrics::new(2);
        m.record_access(true, true);
        m.record_fetch(false, 64, 1, 0);
        assert_eq!(m.fetch_bytes(), 0);
    }

    #[test]
    fn scaled_traffic_matches_paper_formula() {
        // One miss fetching a 4-word sub-block per 10 accesses: linear
        // traffic ratio 0.4; nibble cost (1 + 3/3)/4 per word halves it.
        let mut m = Metrics::new(2);
        for _ in 0..9 {
            m.record_access(true, true);
        }
        m.record_access(true, false);
        m.record_fetch(true, 8, 1, 0); // 8 bytes = 4 words
        assert!((m.traffic_ratio() - 0.4).abs() < 1e-12);
        let scaled = m.scaled_traffic_ratio(BusModel::paper_nibble());
        assert!((scaled - 0.2).abs() < 1e-12, "scaled {scaled}");
    }

    #[test]
    fn eviction_statistics() {
        let mut m = Metrics::new(2);
        m.record_eviction(16, 12);
        m.record_eviction(16, 11);
        assert_eq!(m.evicted_blocks(), 2);
        assert!((m.unreferenced_sub_block_fraction() - 23.0 / 32.0).abs() < 1e-12);
    }

    #[test]
    fn reset_clears_counts_but_keeps_word_size() {
        let mut m = Metrics::new(4);
        m.record_access(true, false);
        m.record_fetch(true, 4, 1, 0);
        m.reset();
        assert_eq!(m.accesses(), 0);
        m.record_access(true, false);
        m.record_fetch(true, 4, 1, 0);
        assert!((m.traffic_ratio() - 1.0).abs() < 1e-12);
    }
}
