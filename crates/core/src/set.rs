//! A cache set: `associativity` frames plus replacement bookkeeping.

use rand::Rng;

use crate::config::ReplacementPolicy;
use crate::frame::Frame;

/// One set of a set-associative cache.
///
/// The `order` list serves both stack-managed policies: for LRU it is the
/// recency stack (most recent first, victim at the back); for FIFO it is the
/// fill-order queue (newest first, victim at the back) which hits do not
/// disturb. Random ignores it.
#[derive(Debug, Clone)]
pub(crate) struct CacheSet {
    frames: Vec<Frame>,
    order: Vec<u16>,
    /// How many frames are present. Present frames always form a prefix of
    /// `frames`: [`choose_victim`](CacheSet::choose_victim) fills the first
    /// empty frame and frames are never un-installed, so [`find`] can scan
    /// `frames[..filled]` and skip the tag compare on empty frames.
    filled: usize,
}

impl CacheSet {
    pub(crate) fn new(associativity: usize) -> Self {
        debug_assert!(associativity >= 1 && associativity <= u16::MAX as usize);
        CacheSet {
            frames: vec![Frame::EMPTY; associativity],
            order: (0..associativity as u16).collect(),
            filled: 0,
        }
    }

    /// Finds the frame holding block `tag`, if resident.
    pub(crate) fn find(&self, tag: u64) -> Option<usize> {
        debug_assert!(self.frames[..self.filled].iter().all(|f| f.present));
        debug_assert!(self.frames[self.filled..].iter().all(|f| !f.present));
        self.frames[..self.filled].iter().position(|f| f.tag == tag)
    }

    pub(crate) fn frame(&self, idx: usize) -> &Frame {
        &self.frames[idx]
    }

    pub(crate) fn frame_mut(&mut self, idx: usize) -> &mut Frame {
        &mut self.frames[idx]
    }

    /// Records a processor reference to `idx` (policy-dependent promotion).
    pub(crate) fn touch(&mut self, idx: usize, policy: ReplacementPolicy) {
        if policy == ReplacementPolicy::Lru {
            self.promote(idx);
        }
        // FIFO and Random orderings are unaffected by hits.
    }

    /// Picks a frame for a newly allocated block: an empty frame if one
    /// exists, otherwise the policy's victim. Promotes the chosen frame to
    /// the front of the order list (meaningful for LRU and FIFO).
    pub(crate) fn choose_victim<R: Rng + ?Sized>(
        &mut self,
        policy: ReplacementPolicy,
        rng: &mut R,
    ) -> usize {
        let idx = if self.filled < self.frames.len() {
            // Present frames are a prefix, so the first empty frame is at
            // `filled`; the caller installs into it, extending the prefix.
            self.filled += 1;
            self.filled - 1
        } else {
            match policy {
                ReplacementPolicy::Lru | ReplacementPolicy::Fifo => {
                    *self.order.last().expect("sets are never empty") as usize
                }
                ReplacementPolicy::Random => rng.gen_range(0..self.frames.len()),
            }
        };
        self.promote(idx);
        idx
    }

    fn promote(&mut self, idx: usize) {
        let pos = self
            .order
            .iter()
            .position(|&i| i as usize == idx)
            .expect("every frame index is in the order list");
        self.order[..=pos].rotate_right(1);
    }

    /// Current eviction candidate order, most-protected first (test hook).
    #[cfg(test)]
    pub(crate) fn order(&self) -> &[u16] {
        &self.order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fill(set: &mut CacheSet, tags: &[u64], policy: ReplacementPolicy, rng: &mut StdRng) {
        for &t in tags {
            let v = set.choose_victim(policy, rng);
            set.frame_mut(v).install(t);
        }
    }

    #[test]
    fn empty_frames_fill_first() {
        let mut set = CacheSet::new(4);
        let mut rng = StdRng::seed_from_u64(0);
        let mut used = Vec::new();
        for t in 0..4 {
            let v = set.choose_victim(ReplacementPolicy::Lru, &mut rng);
            set.frame_mut(v).install(t);
            used.push(v);
        }
        used.sort_unstable();
        assert_eq!(used, vec![0, 1, 2, 3], "each block got its own frame");
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut set = CacheSet::new(2);
        let mut rng = StdRng::seed_from_u64(0);
        fill(&mut set, &[10, 20], ReplacementPolicy::Lru, &mut rng);
        // Touch 10 so 20 becomes LRU.
        let idx10 = set.find(10).unwrap();
        set.touch(idx10, ReplacementPolicy::Lru);
        let victim = set.choose_victim(ReplacementPolicy::Lru, &mut rng);
        assert_eq!(set.frame(victim).tag, 20);
    }

    #[test]
    fn fifo_ignores_hits() {
        let mut set = CacheSet::new(2);
        let mut rng = StdRng::seed_from_u64(0);
        fill(&mut set, &[10, 20], ReplacementPolicy::Fifo, &mut rng);
        // Touch 10 (the older block); FIFO must still evict it first.
        let idx10 = set.find(10).unwrap();
        set.touch(idx10, ReplacementPolicy::Fifo);
        let victim = set.choose_victim(ReplacementPolicy::Fifo, &mut rng);
        assert_eq!(set.frame(victim).tag, 10);
    }

    #[test]
    fn random_victims_cover_all_frames() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 4];
        for _ in 0..200 {
            let mut set = CacheSet::new(4);
            fill(&mut set, &[1, 2, 3, 4], ReplacementPolicy::Random, &mut rng);
            let v = set.choose_victim(ReplacementPolicy::Random, &mut rng);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "victims {seen:?}");
    }

    #[test]
    fn find_misses_absent_tags() {
        let mut set = CacheSet::new(2);
        let mut rng = StdRng::seed_from_u64(0);
        fill(&mut set, &[5], ReplacementPolicy::Lru, &mut rng);
        assert!(set.find(5).is_some());
        assert!(set.find(6).is_none());
    }

    #[test]
    fn order_tracks_mru_front() {
        let mut set = CacheSet::new(3);
        let mut rng = StdRng::seed_from_u64(0);
        fill(&mut set, &[1, 2, 3], ReplacementPolicy::Lru, &mut rng);
        let idx1 = set.find(1).unwrap() as u16;
        set.touch(idx1 as usize, ReplacementPolicy::Lru);
        assert_eq!(set.order()[0], idx1);
    }
}
