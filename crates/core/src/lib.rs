#![warn(missing_docs)]

//! # occache-core — sub-block (sector) cache simulation
//!
//! The primary contribution of Hill & Smith's ISCA 1984 paper is an
//! evaluation of *sub-block placement* for small on-chip caches: address
//! tags cover a **block**, but memory transfers move smaller **sub-blocks**,
//! each with its own valid bit. This crate implements that cache model and
//! everything needed to evaluate it:
//!
//! * [`CacheConfig`] — the Table 1 design space (net size, block size,
//!   sub-block size, associativity, replacement, fetch policy) with
//!   validation and the paper's gross-size (tags + valid bits + data)
//!   arithmetic,
//! * [`SubBlockCache`] — the simulator, including the paper's
//!   *load-forward* prefetch (§4.4) in both the redundant and optimized
//!   variants,
//! * [`Metrics`] — miss ratio and traffic ratio exactly as the paper
//!   defines them (writes excluded), plus warm-start support and the
//!   "sub-blocks never referenced" eviction statistic,
//! * [`BusModel`] — the §4.3 `a + b·w` bus-cost models and scaled traffic
//!   ratios (nibble-mode memories, transactional busses),
//! * [`LruStackAnalyzer`] — single-pass Mattson stack-distance analysis,
//! * [`SliceEngine`] / [`simulate_many`] — one-pass engines
//!   ([`AllSizesLruEngine`], [`AllSizesFifoEngine`],
//!   [`AllSizesRandomEngine`]) that produce bit-identical metrics for
//!   every cache size of a demand-fetch design slice, one engine per
//!   replacement policy ([`multisim`]),
//! * [`SplitCache`] — the split I/D extension flagged as further work.
//!
//! # Example: the paper's miss/traffic trade-off
//!
//! ```
//! use occache_core::{CacheConfig, SubBlockCache};
//! use occache_trace::MemRef;
//!
//! // One 1024-byte cache, 32-byte blocks — vary the sub-block size.
//! let trace: Vec<MemRef> = (0..20_000u64)
//!     .map(|i| MemRef::read((i * 7) % 4096 * 2))
//!     .collect();
//! let mut results = Vec::new();
//! for sub in [2u64, 8, 32] {
//!     let config = CacheConfig::builder()
//!         .net_size(1024)
//!         .block_size(32)
//!         .sub_block_size(sub)
//!         .word_size(2)
//!         .build()?;
//!     let mut cache = SubBlockCache::new(config);
//!     cache.run(trace.iter().copied());
//!     results.push((sub, cache.metrics().miss_ratio(), cache.metrics().traffic_ratio()));
//! }
//! // Smaller sub-blocks: more misses, less traffic (the paper's §4.2 knob).
//! assert!(results[0].1 >= results[2].1);
//! assert!(results[0].2 <= results[2].2);
//! # Ok::<(), occache_core::ConfigError>(())
//! ```

mod bus;
mod cache;
mod config;
mod contention;
mod frame;
mod ibuffer;
mod metrics;
pub mod multisim;
mod set;
mod split;
mod stackdist;
mod timing;

pub use bus::BusModel;
pub use cache::{AccessOutcome, SubBlockCache};
pub use config::{
    CacheConfig, CacheConfigBuilder, ConfigError, FetchPolicy, ReplacementPolicy, WritePolicy,
};
pub use contention::SharedBus;
pub use ibuffer::InstructionBuffer;
pub use metrics::Metrics;
pub use multisim::{
    engine_for, engine_for_seeded, engine_supports, simulate_many, simulate_many_pair,
    simulate_many_seeded, AllSizesFifoEngine, AllSizesLruEngine, AllSizesRandomEngine, EngineKind,
    MultiSimError, SliceEngine, ENGINE_CHUNK, MAX_MULTISIM_CONFIGS,
};
pub use split::SplitCache;
pub use stackdist::{LruStackAnalyzer, SetAssocLruAnalyzer};
pub use timing::AccessTiming;

/// Simulates a whole trace against a configuration and returns the metrics.
///
/// Convenience wrapper over [`SubBlockCache`]; `warmup` references are run
/// first and excluded from the metrics (pass 0 for cold-start ratios).
///
/// ```
/// use occache_core::{simulate, CacheConfig};
/// use occache_trace::MemRef;
///
/// let config = CacheConfig::builder()
///     .net_size(64)
///     .block_size(8)
///     .sub_block_size(4)
///     .word_size(2)
///     .build()?;
/// let trace = vec![MemRef::read(0), MemRef::read(0), MemRef::read(4)];
/// let metrics = simulate(config, trace, 0);
/// assert_eq!(metrics.accesses(), 3);
/// # Ok::<(), occache_core::ConfigError>(())
/// ```
pub fn simulate<I>(config: CacheConfig, refs: I, warmup: usize) -> Metrics
where
    I: IntoIterator<Item = occache_trace::MemRef>,
{
    simulate_seeded(config, refs, warmup, DEFAULT_RANDOM_SEED)
}

/// The seed [`SubBlockCache::new`], [`simulate`] and the one-pass
/// engines all use for Random replacement, so every default-seeded path
/// produces the same (deterministic) victim choices.
pub const DEFAULT_RANDOM_SEED: u64 = 0x0cac_4e5e;

/// [`simulate`] with an explicit seed for the Random-replacement
/// generator (other policies ignore it).
pub fn simulate_seeded<I>(config: CacheConfig, refs: I, warmup: usize, seed: u64) -> Metrics
where
    I: IntoIterator<Item = occache_trace::MemRef>,
{
    let mut cache = SubBlockCache::with_seed(config, seed);
    let mut iter = refs.into_iter();
    for r in iter.by_ref().take(warmup) {
        cache.access(r.address(), r.kind());
    }
    cache.reset_metrics();
    for r in iter {
        cache.access(r.address(), r.kind());
    }
    *cache.metrics()
}

#[cfg(test)]
mod tests {
    use super::*;
    use occache_trace::MemRef;

    #[test]
    fn simulate_with_warmup_excludes_prefix() {
        let config = CacheConfig::builder()
            .net_size(64)
            .block_size(8)
            .sub_block_size(8)
            .word_size(2)
            .build()
            .unwrap();
        let trace = vec![MemRef::read(0), MemRef::read(0), MemRef::read(0)];
        let cold = simulate(config, trace.clone(), 0);
        assert_eq!(cold.misses(), 1);
        assert_eq!(cold.accesses(), 3);
        let warm = simulate(config, trace, 1);
        assert_eq!(warm.misses(), 0);
        assert_eq!(warm.accesses(), 2);
    }
}
