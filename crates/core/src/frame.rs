//! A cache frame: one block's worth of state — tag, per-sub-block valid,
//! referenced and dirty bitmasks.

/// Per-block cache state.
///
/// Bitmasks are indexed by sub-block number within the block; configurations
/// are validated to at most 64 sub-blocks per block so a `u64` suffices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Frame {
    /// Block address (full block number; the simulator compares full block
    /// numbers, which subsumes any tag/index split).
    pub tag: u64,
    /// Sub-blocks currently resident.
    pub valid: u64,
    /// Sub-blocks referenced by the processor while this block was resident
    /// (used for the paper's "sub-blocks never referenced" statistic).
    pub referenced: u64,
    /// Sub-blocks written while resident (copy-back accounting).
    pub dirty: u64,
    /// Sub-blocks loaded by prefetch and not yet referenced (pollution
    /// accounting for the §2.2 prefetch policies).
    pub prefetched: u64,
    /// Whether the frame holds a block at all.
    pub present: bool,
}

impl Frame {
    pub(crate) const EMPTY: Frame = Frame {
        tag: 0,
        valid: 0,
        referenced: 0,
        dirty: 0,
        prefetched: 0,
        present: false,
    };

    /// Re-initialises the frame for a newly allocated block.
    pub(crate) fn install(&mut self, tag: u64) {
        self.tag = tag;
        self.valid = 0;
        self.referenced = 0;
        self.dirty = 0;
        self.prefetched = 0;
        self.present = true;
    }

    /// Whether sub-block `idx` is resident.
    pub(crate) fn is_valid(&self, idx: u32) -> bool {
        self.valid & (1u64 << idx) != 0
    }

    /// Marks sub-block `idx` resident.
    pub(crate) fn set_valid(&mut self, idx: u32) {
        self.valid |= 1u64 << idx;
    }

    /// Marks sub-block `idx` as referenced by the processor.
    pub(crate) fn set_referenced(&mut self, idx: u32) {
        self.referenced |= 1u64 << idx;
    }

    /// Marks sub-block `idx` dirty.
    pub(crate) fn set_dirty(&mut self, idx: u32) {
        self.dirty |= 1u64 << idx;
    }

    /// Marks sub-block `idx` as resident-by-prefetch.
    pub(crate) fn set_prefetched(&mut self, idx: u32) {
        self.prefetched |= 1u64 << idx;
    }

    /// Clears the prefetched mark of `idx`, returning whether it was set
    /// (i.e. this reference is the prefetch's first use).
    pub(crate) fn take_prefetched(&mut self, idx: u32) -> bool {
        let bit = 1u64 << idx;
        let was = self.prefetched & bit != 0;
        self.prefetched &= !bit;
        was
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_resets_masks() {
        let mut f = Frame::EMPTY;
        f.set_valid(3);
        f.set_referenced(3);
        f.set_dirty(3);
        f.set_prefetched(3);
        f.install(42);
        assert!(f.present);
        assert_eq!(f.tag, 42);
        assert_eq!(f.valid, 0);
        assert_eq!(f.referenced, 0);
        assert_eq!(f.dirty, 0);
        assert_eq!(f.prefetched, 0);
    }

    #[test]
    fn bitmask_operations() {
        let mut f = Frame::EMPTY;
        assert!(!f.is_valid(0));
        f.set_valid(0);
        f.set_valid(63);
        assert!(f.is_valid(0));
        assert!(f.is_valid(63));
        assert!(!f.is_valid(32));
        assert_eq!(f.valid.count_ones(), 2);
    }

    #[test]
    fn prefetched_marks_are_consumed_once() {
        let mut f = Frame::EMPTY;
        f.set_prefetched(2);
        assert!(f.take_prefetched(2));
        assert!(!f.take_prefetched(2), "second take finds nothing");
        assert!(!f.take_prefetched(3));
    }
}
