//! The one-pass all-sizes FIFO engine.
//!
//! FIFO shares almost all of the LRU engine's structure: the same
//! residency classes (configurations with equal block size, set count
//! and associativity make identical fill and eviction decisions under
//! FIFO too, since hits never disturb the queue), the same
//! front-packed set layout (fill order instead of recency order), and
//! the same permutation trick for keeping mask rows stationary. The
//! whole policy difference is one compile-time flag on the shared
//! reference step: hits update only the hit way's sub-block mask —
//! no block rotation, no permutation promotion — while misses are the
//! identical shift-and-fill at the back of the queue. Sentinel-filled
//! ways sink to the back and are consumed in fill order, which is
//! exactly the direct simulator's fill-the-first-empty-frame rule.

use occache_trace::{AccessKind, Address, MemRef};

use crate::config::{CacheConfig, ReplacementPolicy};
use crate::metrics::Metrics;

use super::{run_classes, CounterBank, EngineCore, EngineKind, MultiSimError, SliceEngine};

/// The one-pass all-sizes FIFO engine: the FIFO sibling of
/// [`AllSizesLruEngine`](super::AllSizesLruEngine), bit-identical to
/// running [`simulate`](crate::simulate) per member configuration.
///
/// Construct with [`AllSizesFifoEngine::new`] over a slice of FIFO
/// configurations, or let [`simulate_many`](super::simulate_many)
/// dispatch here from the slice's policy.
#[derive(Debug, Clone)]
pub struct AllSizesFifoEngine {
    core: EngineCore,
}

impl AllSizesFifoEngine {
    /// Builds an engine for a compatible slice of FIFO configurations.
    ///
    /// # Errors
    ///
    /// Returns a [`MultiSimError`] when the slice is empty or too wide,
    /// or a configuration needs an unsupported policy/geometry.
    pub fn new(configs: &[CacheConfig]) -> Result<Self, MultiSimError> {
        Ok(AllSizesFifoEngine {
            core: EngineCore::new(configs, ReplacementPolicy::Fifo)?,
        })
    }

    /// Presents one reference to every simulated configuration.
    pub fn access(&mut self, addr: Address, kind: AccessKind) {
        let lane = self.core.count_one(kind);
        let CounterBank {
            miss,
            evicted_blocks,
            evicted_referenced,
            ..
        } = &mut self.core.bank;
        let a = addr.value();
        for class in &mut self.core.classes {
            class.one::<true>(a, lane, miss, evicted_blocks, evicted_referenced);
        }
    }

    /// Feeds a run of references through the engine, class by class —
    /// the same chunked ingest fast path as the LRU engine, FIFO
    /// semantics selected at compile time.
    pub fn access_run(&mut self, refs: &[MemRef]) {
        self.core.decode_chunk(refs);
        let CounterBank {
            miss,
            evicted_blocks,
            evicted_referenced,
            ..
        } = &mut self.core.bank;
        run_classes::<true>(
            &mut self.core.classes,
            &self.core.scratch_addr,
            &self.core.scratch_lane,
            miss,
            evicted_blocks,
            evicted_referenced,
        );
    }

    /// Zeroes every configuration's metrics while keeping queue state —
    /// the warm-start discipline.
    pub fn reset_metrics(&mut self) {
        self.core.reset_metrics();
    }

    /// Metrics accumulated so far, in the order of the configurations
    /// given to [`AllSizesFifoEngine::new`].
    pub fn metrics(&self) -> Vec<Metrics> {
        self.core.metrics()
    }
}

impl SliceEngine for AllSizesFifoEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::Fifo
    }

    fn access_run(&mut self, refs: &[MemRef]) {
        AllSizesFifoEngine::access_run(self, refs);
    }

    fn reset_metrics(&mut self) {
        AllSizesFifoEngine::reset_metrics(self);
    }

    fn metrics(&self) -> Vec<Metrics> {
        AllSizesFifoEngine::metrics(self)
    }

    fn clone_box(&self) -> Box<dyn SliceEngine> {
        Box::new(self.clone())
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::super::tests::{cfg_policy, mixed_trace};
    use super::*;
    use crate::multisim::simulate_many;
    use crate::simulate;

    fn fifo(net: u64, block: u64, sub: u64) -> CacheConfig {
        cfg_policy(net, block, sub, ReplacementPolicy::Fifo)
    }

    #[test]
    fn matches_direct_simulation_across_sizes() {
        let configs = [
            fifo(64, 16, 8),
            fifo(256, 16, 8),
            fifo(1024, 16, 8),
            fifo(256, 16, 4),
            fifo(256, 32, 8),
        ];
        let trace = mixed_trace(20_000, 4096);
        let all = simulate_many(&configs, trace.iter().copied(), 0).unwrap();
        for (config, metrics) in configs.iter().zip(&all) {
            let direct = simulate(*config, trace.iter().copied(), 0);
            assert_eq!(*metrics, direct, "{config}");
        }
    }

    #[test]
    fn matches_direct_simulation_with_warmup() {
        let configs = [fifo(64, 8, 2), fifo(256, 8, 2), fifo(1024, 8, 2)];
        let trace = mixed_trace(10_000, 2048);
        let all = simulate_many(&configs, trace.iter().copied(), 1_000).unwrap();
        for (config, metrics) in configs.iter().zip(&all) {
            let direct = simulate(*config, trace.iter().copied(), 1_000);
            assert_eq!(*metrics, direct, "{config}");
        }
    }

    #[test]
    fn access_run_matches_per_reference_access() {
        let configs = [fifo(64, 16, 8), fifo(256, 16, 8)];
        let trace = mixed_trace(10_000, 2048);
        let mut chunked = AllSizesFifoEngine::new(&configs).unwrap();
        for chunk in trace.chunks(97) {
            chunked.access_run(chunk);
        }
        let mut one = AllSizesFifoEngine::new(&configs).unwrap();
        for r in &trace {
            one.access(r.address(), r.kind());
        }
        assert_eq!(chunked.metrics(), one.metrics());
    }

    #[test]
    fn tiny_caches_with_capped_associativity_match() {
        let configs = [fifo(32, 16, 8), fifo(64, 16, 8)];
        let trace = mixed_trace(5_000, 512);
        let all = simulate_many(&configs, trace.iter().copied(), 0).unwrap();
        for (config, metrics) in configs.iter().zip(&all) {
            assert_eq!(
                *metrics,
                simulate(*config, trace.iter().copied(), 0),
                "{config}"
            );
        }
    }

    #[test]
    fn rejects_lru_members() {
        let lru = cfg_policy(64, 8, 4, ReplacementPolicy::Lru);
        assert!(matches!(
            AllSizesFifoEngine::new(&[lru]),
            Err(MultiSimError::Unsupported { .. })
        ));
    }
}
