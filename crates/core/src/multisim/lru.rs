//! The permutation-packed all-sizes LRU engine, plus the four-way
//! quad-interleave scheduler its paired runs use.

use occache_trace::{AccessKind, Address, MemRef};

use crate::config::{CacheConfig, ReplacementPolicy};
use crate::metrics::Metrics;

use super::{
    run_classes, ClassState, CounterBank, EngineCore, EngineKind, MultiSimError, SliceEngine,
    SpecCtx,
};

/// One side of a [`run_quad_spec`] call: an adjacent class pair of one
/// engine, that engine's decoded chunk, and its counter bank.
type QuadSide<'a> = (
    &'a mut ClassState,
    &'a mut ClassState,
    &'a [u64],
    &'a [u8],
    &'a mut CounterBank,
);

/// Runs two engines' chunks through an adjacent class pair of each,
/// all four per-reference steps interleaved in a single loop.
///
/// The two engines see different references, so their chains share
/// nothing at all; the four-way interleave is what finally covers the
/// store-to-load forwarding stalls a two-way interleave still exposes.
/// Chunks must be the same length (the caller falls back otherwise).
fn run_quad_spec<const WAYS: usize, const MA: usize, const MB: usize>(
    side_a: QuadSide<'_>,
    side_b: QuadSide<'_>,
) {
    let (a1, a2, addrs_a, lanes_a, bank_a) = side_a;
    let (b1, b2, addrs_b, lanes_b, bank_b) = side_b;
    debug_assert_eq!(addrs_a.len(), addrs_b.len());
    let mut ca1 = SpecCtx::<MA>::new::<WAYS>(a1);
    let mut ca2 = SpecCtx::<MB>::new::<WAYS>(a2);
    let mut cb1 = SpecCtx::<MA>::new::<WAYS>(b1);
    let mut cb2 = SpecCtx::<MB>::new::<WAYS>(b2);
    for i in 0..addrs_a.len().min(addrs_b.len()) {
        let aa = addrs_a[i];
        let ab = addrs_b[i];
        // All-ones for data writes (lane 0), zero for counted refs.
        let wa = u64::from(lanes_a[i] & 1).wrapping_sub(1);
        let wb = u64::from(lanes_b[i] & 1).wrapping_sub(1);
        ca1.visit::<WAYS, false>(aa, wa);
        cb1.visit::<WAYS, false>(ab, wb);
        ca2.visit::<WAYS, false>(aa, wa);
        cb2.visit::<WAYS, false>(ab, wb);
    }
    ca1.flush(
        &mut bank_a.miss,
        &mut bank_a.evicted_blocks,
        &mut bank_a.evicted_referenced,
    );
    ca2.flush(
        &mut bank_a.miss,
        &mut bank_a.evicted_blocks,
        &mut bank_a.evicted_referenced,
    );
    cb1.flush(
        &mut bank_b.miss,
        &mut bank_b.evicted_blocks,
        &mut bank_b.evicted_referenced,
    );
    cb2.flush(
        &mut bank_b.miss,
        &mut bank_b.evicted_blocks,
        &mut bank_b.evicted_referenced,
    );
}

/// The one-pass all-sizes LRU engine. See the module docs for the
/// algorithm; construct with [`AllSizesLruEngine::new`] and drive with
/// [`access`](AllSizesLruEngine::access), or use
/// [`simulate_many`](super::simulate_many).
///
/// ```
/// use occache_core::{simulate, simulate_many, CacheConfig};
/// use occache_trace::MemRef;
///
/// let configs: Vec<CacheConfig> = [64u64, 256]
///     .iter()
///     .map(|&net| {
///         CacheConfig::builder()
///             .net_size(net)
///             .block_size(16)
///             .sub_block_size(8)
///             .word_size(2)
///             .build()
///             .expect("valid geometry")
///     })
///     .collect();
/// let trace: Vec<MemRef> = (0..500u64).map(|i| MemRef::read((i * 13) % 640 * 2)).collect();
/// let all = simulate_many(&configs, trace.iter().copied(), 0)?;
/// for (config, metrics) in configs.iter().zip(&all) {
///     assert_eq!(*metrics, simulate(*config, trace.iter().copied(), 0));
/// }
/// # Ok::<(), occache_core::MultiSimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct AllSizesLruEngine {
    core: EngineCore,
}

impl AllSizesLruEngine {
    /// Builds an engine for a compatible slice of LRU configurations.
    ///
    /// # Errors
    ///
    /// Returns a [`MultiSimError`] when the slice is empty or too wide,
    /// or a configuration needs an unsupported policy/geometry.
    pub fn new(configs: &[CacheConfig]) -> Result<Self, MultiSimError> {
        Ok(AllSizesLruEngine {
            core: EngineCore::new(configs, ReplacementPolicy::Lru)?,
        })
    }

    /// Presents one reference to every simulated configuration.
    pub fn access(&mut self, addr: Address, kind: AccessKind) {
        let lane = self.core.count_one(kind);
        let CounterBank {
            miss,
            evicted_blocks,
            evicted_referenced,
            ..
        } = &mut self.core.bank;
        let a = addr.value();
        for class in &mut self.core.classes {
            class.one::<false>(a, lane, miss, evicted_blocks, evicted_referenced);
        }
    }

    /// Feeds a run of references through the engine, class by class: the
    /// chunked ingest fast path the streamed evaluation loop drives, one
    /// buffer refill at a time, without materialising a whole trace.
    ///
    /// Residency classes are independent simulations, so processing the
    /// whole chunk for one class before the next is exactly equivalent
    /// to presenting each reference to every class in turn — and much
    /// faster, because each class's tight inner loop keeps its set
    /// state cache-resident and its branch history coherent instead of
    /// cycling through every class's working set per reference.
    pub fn access_run(&mut self, refs: &[MemRef]) {
        self.core.decode_chunk(refs);
        let CounterBank {
            miss,
            evicted_blocks,
            evicted_referenced,
            ..
        } = &mut self.core.bank;
        run_classes::<false>(
            &mut self.core.classes,
            &self.core.scratch_addr,
            &self.core.scratch_lane,
            miss,
            evicted_blocks,
            evicted_referenced,
        );
    }

    /// Presents one chunk to this engine and another chunk to a
    /// second engine over the same configurations, interleaving their
    /// per-reference steps.
    ///
    /// Two engines driven by different traces are completely
    /// independent, so their steps overlap perfectly in the
    /// out-of-order window (see `run_pair_spec` in the parent module
    /// for why that pays);
    /// combined with adjacent-class pairing this keeps four
    /// dependency chains in flight. Results are exactly what two
    /// separate [`access_run`](Self::access_run) calls would produce —
    /// which is also the fallback when the chunks differ in length or
    /// the engines in shape.
    pub fn access_run_pair(&mut self, refs: &[MemRef], other: &mut Self, other_refs: &[MemRef]) {
        if refs.len() != other_refs.len() || !self.core.same_shape(&other.core) {
            self.access_run(refs);
            other.access_run(other_refs);
            return;
        }
        self.core.decode_chunk(refs);
        other.core.decode_chunk(other_refs);
        let EngineCore {
            classes: classes_a,
            bank: bank_a,
            scratch_addr: addrs_a,
            scratch_lane: lanes_a,
            ..
        } = &mut self.core;
        let EngineCore {
            classes: classes_b,
            bank: bank_b,
            scratch_addr: addrs_b,
            scratch_lane: lanes_b,
            ..
        } = &mut other.core;
        let mut i = 0;
        while i < classes_a.len() {
            if i + 1 < classes_a.len() {
                let (head_a, tail_a) = classes_a.split_at_mut(i + 1);
                let (head_b, tail_b) = classes_b.split_at_mut(i + 1);
                let a1 = &mut head_a[i];
                let a2 = &mut tail_a[0];
                let b1 = &mut head_b[i];
                let b2 = &mut tail_b[0];
                if a1.assoc == 4 && a2.assoc == 4 {
                    macro_rules! quad {
                        ($ma:literal, $mb:literal) => {{
                            run_quad_spec::<4, $ma, $mb>(
                                (a1, a2, addrs_a, lanes_a, bank_a),
                                (b1, b2, addrs_b, lanes_b, bank_b),
                            );
                            true
                        }};
                    }
                    let done = match (a1.meta.len(), a2.meta.len()) {
                        (1, 1) => quad!(1, 1),
                        (1, 2) => quad!(1, 2),
                        (1, 3) => quad!(1, 3),
                        (1, 4) => quad!(1, 4),
                        (1, 5) => quad!(1, 5),
                        (1, 6) => quad!(1, 6),
                        (2, 1) => quad!(2, 1),
                        (2, 2) => quad!(2, 2),
                        (2, 3) => quad!(2, 3),
                        (2, 4) => quad!(2, 4),
                        (2, 5) => quad!(2, 5),
                        (2, 6) => quad!(2, 6),
                        (3, 1) => quad!(3, 1),
                        (3, 2) => quad!(3, 2),
                        (3, 3) => quad!(3, 3),
                        (3, 4) => quad!(3, 4),
                        (3, 5) => quad!(3, 5),
                        (3, 6) => quad!(3, 6),
                        (4, 1) => quad!(4, 1),
                        (4, 2) => quad!(4, 2),
                        (4, 3) => quad!(4, 3),
                        (4, 4) => quad!(4, 4),
                        (4, 5) => quad!(4, 5),
                        (4, 6) => quad!(4, 6),
                        (5, 1) => quad!(5, 1),
                        (5, 2) => quad!(5, 2),
                        (5, 3) => quad!(5, 3),
                        (5, 4) => quad!(5, 4),
                        (5, 5) => quad!(5, 5),
                        (5, 6) => quad!(5, 6),
                        (6, 1) => quad!(6, 1),
                        (6, 2) => quad!(6, 2),
                        (6, 3) => quad!(6, 3),
                        (6, 4) => quad!(6, 4),
                        (6, 5) => quad!(6, 5),
                        (6, 6) => quad!(6, 6),
                        _ => false,
                    };
                    if done {
                        i += 2;
                        continue;
                    }
                }
            }
            classes_a[i].run::<false>(
                addrs_a,
                lanes_a,
                &mut bank_a.miss,
                &mut bank_a.evicted_blocks,
                &mut bank_a.evicted_referenced,
            );
            classes_b[i].run::<false>(
                addrs_b,
                lanes_b,
                &mut bank_b.miss,
                &mut bank_b.evicted_blocks,
                &mut bank_b.evicted_referenced,
            );
            i += 1;
        }
    }

    /// Zeroes every configuration's metrics while keeping cache state —
    /// the warm-start discipline, mirroring
    /// [`SubBlockCache::reset_metrics`](crate::SubBlockCache::reset_metrics).
    pub fn reset_metrics(&mut self) {
        self.core.reset_metrics();
    }

    /// Metrics accumulated so far, in the order of the configurations
    /// given to [`AllSizesLruEngine::new`]. Derived counters (fetch
    /// traffic, write-through bytes, evicted sub-slots) are expanded
    /// from the compact per-size counts here, exactly.
    pub fn metrics(&self) -> Vec<Metrics> {
        self.core.metrics()
    }
}

impl SliceEngine for AllSizesLruEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::Lru
    }

    fn access_run(&mut self, refs: &[MemRef]) {
        AllSizesLruEngine::access_run(self, refs);
    }

    fn reset_metrics(&mut self) {
        AllSizesLruEngine::reset_metrics(self);
    }

    fn metrics(&self) -> Vec<Metrics> {
        AllSizesLruEngine::metrics(self)
    }

    fn clone_box(&self) -> Box<dyn SliceEngine> {
        Box::new(self.clone())
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    // Interleave with a same-type partner; anything else runs the two
    // chunks sequentially (results are identical either way).
    fn run_pair(&mut self, refs: &[MemRef], other: &mut dyn SliceEngine, other_refs: &[MemRef]) {
        match other.as_any_mut().downcast_mut::<AllSizesLruEngine>() {
            Some(partner) => self.access_run_pair(refs, partner, other_refs),
            None => {
                self.access_run(refs);
                other.access_run(other_refs);
            }
        }
    }
}
